//! A minimal, **genuinely parallel** stand-in for the [`rayon`] crate.
//!
//! This workspace builds in environments with no access to a cargo
//! registry, so the real `rayon` cannot be fetched. This shim provides the
//! exact API subset the workspace uses — `par_iter` / `into_par_iter`,
//! `for_each`, `map`, `enumerate`, `flat_map_iter`, rayon-style two-closure
//! `fold`, `reduce`, `sum`, `collect`, and [`current_num_threads`] — backed
//! by a real global thread pool (`pool`): `available_parallelism()`
//! workers (overridable with `RAYON_NUM_THREADS`), lazily spawned on first
//! use.
//!
//! ## Execution model
//!
//! Every parallel iterator here is *indexed*: a source of known length
//! (an integer range, a slice, a `Vec`) composed with per-item adapters.
//! A terminal operation splits the source index space into contiguous
//! chunks (about four per pool thread, never smaller than
//! `MIN_CHUNK_LEN`), runs the adapter pipeline sequentially within each
//! chunk on the pool, and recombines chunk results **in index order** —
//! so `collect` preserves ordering exactly like rayon's indexed collect,
//! while `for_each` observes items in an unspecified interleaving, exactly
//! like rayon's. With one pool thread (or one chunk) everything runs
//! inline on the caller with no synchronization at all.
//!
//! API-bound parity: method signatures carry the same `Fn + Send + Sync`
//! closure and `Send` item bounds the real crate requires (occasionally a
//! slightly stronger one — see `vendor/README.md` for the exact deltas),
//! so code written against this shim compiles unchanged against crates.io
//! rayon.
//!
//! This crate contains no `unsafe` outside the `pool` module, where the
//! narrow lifetime-erasure required by a persistent pool is isolated and
//! documented.
//!
//! [`rayon`]: https://docs.rs/rayon

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;

use std::sync::Mutex;

/// The traits that make `.par_iter()` / `.into_par_iter()` and the
/// parallel-iterator methods resolve, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of threads executing parallel work (pool workers + the
/// submitting thread). Fixed at first use from `RAYON_NUM_THREADS` /
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    pool::global().threads()
}

/// Chunks smaller than this are not worth a trip through the pool queue;
/// the splitter aims for at least this many items per chunk.
const MIN_CHUNK_LEN: usize = 512;

/// Chunks created per pool thread (when the length allows): a little
/// oversplitting smooths out load imbalance between chunks without the
/// complexity of work stealing.
const CHUNKS_PER_THREAD: usize = 4;

/// How many chunks to split `len` items into for the current pool.
fn chunk_count(len: usize, threads: usize) -> usize {
    if len == 0 {
        return 0;
    }
    if threads == 1 {
        return 1;
    }
    (len / MIN_CHUNK_LEN)
        .clamp(1, threads * CHUNKS_PER_THREAD)
        .min(len)
}

/// Run every chunk of `iter` through `consume` on the pool and return the
/// per-chunk results in index order. The backbone of every terminal
/// operation.
fn drive<P, R, G>(iter: P, consume: G) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    G: Fn(P::SeqIter) -> R + Sync,
{
    let pool = pool::global();
    let n_chunks = chunk_count(iter.len_hint(), pool.threads());
    let chunks = iter.split_into(n_chunks);
    if chunks.len() <= 1 {
        return chunks.into_iter().map(consume).collect();
    }
    // Hand each worker its chunk and a result slot through per-index
    // mutexes (uncontended by construction: slot `k` is touched only by
    // the thread that claimed chunk `k`).
    let slots: Vec<Mutex<Option<P::SeqIter>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    pool.broadcast(slots.len(), |k| {
        let chunk = slots[k].lock().unwrap().take().expect("chunk taken twice");
        *out[k].lock().unwrap() = Some(consume(chunk));
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("chunk produced no result"))
        .collect()
}

/// A parallel iterator: an indexed source plus a per-item pipeline.
///
/// `split_into(n)` partitions the remaining index space into at most `n`
/// non-empty, order-contiguous sequential iterators; the provided terminal
/// methods ship those chunks to the pool via `drive`.
pub trait ParallelIterator: Sized + Send {
    /// The type of the items yielded.
    type Item: Send;
    /// The sequential iterator driven within one chunk.
    type SeqIter: Iterator<Item = Self::Item> + Send;

    /// Source length (used only to pick a chunk count; adapters report
    /// their *source's* length even when they change the item count).
    fn len_hint(&self) -> usize;

    /// Split into at most `n_chunks` non-empty chunks, preserving order.
    fn split_into(self, n_chunks: usize) -> Vec<Self::SeqIter>;

    /// Consume the iterator, calling `op` on every item (unordered).
    fn for_each<OP>(self, op: OP)
    where
        OP: Fn(Self::Item) + Send + Sync,
    {
        drive(self, |chunk| chunk.for_each(&op));
    }

    /// Transform every item with `map_op`.
    fn map<B, F>(self, map_op: F) -> Map<Self, F>
    where
        B: Send,
        F: Fn(Self::Item) -> B + Send + Sync + Clone,
    {
        Map { base: self, map_op }
    }

    /// Pair every item with its global index (requires exact-size chunks,
    /// which all sources and `map` provide — rayon's
    /// `IndexedParallelIterator::enumerate` restriction).
    fn enumerate(self) -> Enumerate<Self>
    where
        Self::SeqIter: ExactSizeIterator,
    {
        Enumerate { base: self }
    }

    /// Map each item to a *serial* iterator and flatten the results
    /// (rayon's cheap cousin of `flat_map`).
    fn flat_map_iter<U, F>(self, map_op: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        U::IntoIter: Send,
        F: Fn(Self::Item) -> U + Send + Sync + Clone,
    {
        FlatMapIter { base: self, map_op }
    }

    /// Rayon-style fold: `identity` builds one accumulator *per chunk*
    /// (rayon: per split), `fold_op` folds the chunk's items into it, and
    /// the result is a parallel iterator over the accumulators.
    fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync + Clone,
        F: Fn(T, Self::Item) -> T + Send + Sync + Clone,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    /// Reduce all items to one value, starting from `identity()` (which
    /// must be `op`'s identity element for a deterministic result).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        drive(self, |chunk| chunk.fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Sum all items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        drive(self, |chunk| chunk.sum::<S>()).into_iter().sum()
    }

    /// Collect into any [`FromIterator`] collection, preserving item order
    /// (as rayon's indexed `collect` does): chunks fill per-chunk buffers
    /// in parallel, stitched together in index order on the caller.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        drive(self, |chunk| chunk.collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }
}

// --------------------------------------------------------------- adapters

/// A parallel iterator that transforms items with a closure
/// ([`ParallelIterator::map`]).
pub struct Map<P, F> {
    base: P,
    map_op: F,
}

impl<P, B, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    B: Send,
    F: Fn(P::Item) -> B + Send + Sync + Clone,
{
    type Item = B;
    type SeqIter = std::iter::Map<P::SeqIter, F>;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split_into(self, n_chunks: usize) -> Vec<Self::SeqIter> {
        let map_op = self.map_op;
        self.base
            .split_into(n_chunks)
            .into_iter()
            .map(|chunk| chunk.map(map_op.clone()))
            .collect()
    }
}

/// A parallel iterator that pairs items with their global index
/// ([`ParallelIterator::enumerate`]).
pub struct Enumerate<P> {
    base: P,
}

/// One chunk of an [`Enumerate`]: the inner chunk zipped with its global
/// index range.
pub struct EnumerateChunk<I> {
    inner: I,
    next_index: usize,
}

impl<I: ExactSizeIterator> Iterator for EnumerateChunk<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next_index;
        self.next_index += 1;
        Some((i, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<I: ExactSizeIterator> ExactSizeIterator for EnumerateChunk<I> {}

impl<P> ParallelIterator for Enumerate<P>
where
    P: ParallelIterator,
    P::SeqIter: ExactSizeIterator,
{
    type Item = (usize, P::Item);
    type SeqIter = EnumerateChunk<P::SeqIter>;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split_into(self, n_chunks: usize) -> Vec<Self::SeqIter> {
        let mut next_index = 0;
        self.base
            .split_into(n_chunks)
            .into_iter()
            .map(|chunk| {
                let start = next_index;
                next_index += chunk.len();
                EnumerateChunk {
                    inner: chunk,
                    next_index: start,
                }
            })
            .collect()
    }
}

/// A parallel iterator that maps items to serial iterators and flattens
/// them ([`ParallelIterator::flat_map_iter`]).
pub struct FlatMapIter<P, F> {
    base: P,
    map_op: F,
}

impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    U::IntoIter: Send,
    F: Fn(P::Item) -> U + Send + Sync + Clone,
{
    type Item = U::Item;
    type SeqIter = std::iter::FlatMap<P::SeqIter, U, F>;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split_into(self, n_chunks: usize) -> Vec<Self::SeqIter> {
        let map_op = self.map_op;
        self.base
            .split_into(n_chunks)
            .into_iter()
            .map(|chunk| chunk.flat_map(map_op.clone()))
            .collect()
    }
}

/// A parallel iterator over per-chunk fold accumulators
/// ([`ParallelIterator::fold`]).
pub struct Fold<P, ID, F> {
    base: P,
    identity: ID,
    fold_op: F,
}

/// One chunk of a [`Fold`]: yields exactly one accumulator, built lazily
/// (i.e. on the worker that runs the chunk) from the inner chunk's items.
pub struct FoldChunk<I, ID, F> {
    inner: Option<I>,
    identity: ID,
    fold_op: F,
}

impl<I, T, ID, F> Iterator for FoldChunk<I, ID, F>
where
    I: Iterator,
    ID: Fn() -> T,
    F: Fn(T, I::Item) -> T,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let inner = self.inner.take()?;
        Some(inner.fold((self.identity)(), &self.fold_op))
    }
}

impl<P, T, ID, F> ParallelIterator for Fold<P, ID, F>
where
    P: ParallelIterator,
    T: Send,
    ID: Fn() -> T + Send + Sync + Clone,
    F: Fn(T, P::Item) -> T + Send + Sync + Clone,
{
    type Item = T;
    type SeqIter = FoldChunk<P::SeqIter, ID, F>;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn split_into(self, n_chunks: usize) -> Vec<Self::SeqIter> {
        let (identity, fold_op) = (self.identity, self.fold_op);
        self.base
            .split_into(n_chunks)
            .into_iter()
            .map(|chunk| FoldChunk {
                inner: Some(chunk),
                identity: identity.clone(),
                fold_op: fold_op.clone(),
            })
            .collect()
    }
}

// ---------------------------------------------------------------- sources

/// Conversion into a [`ParallelIterator`] by value — rayon's
/// `IntoParallelIterator`. Implemented for integer ranges and `Vec<T>`.
pub trait IntoParallelIterator {
    /// The parallel iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The type of the items yielded.
    type Item: Send;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Conversion into a [`ParallelIterator`] by shared reference — rayon's
/// `IntoParallelRefIterator` (`.par_iter()` on slices, arrays, `Vec`s).
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The type of the items yielded (typically `&'data T`).
    type Item: Send + 'data;
    /// Iterate `self` by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct ParRange<T> {
    range: std::ops::Range<T>,
}

macro_rules! par_range_impl {
    ($($t:ty),*) => {$(
        impl ParallelIterator for ParRange<$t> {
            type Item = $t;
            type SeqIter = std::ops::Range<$t>;

            fn len_hint(&self) -> usize {
                usize::try_from(self.range.end.saturating_sub(self.range.start)).unwrap_or(usize::MAX)
            }

            fn split_into(self, n_chunks: usize) -> Vec<Self::SeqIter> {
                let len = self.len_hint();
                if len == 0 || n_chunks == 0 {
                    return Vec::new();
                }
                let n_chunks = n_chunks.min(len);
                let (per, extra) = (len / n_chunks, len % n_chunks);
                let mut chunks = Vec::with_capacity(n_chunks);
                let mut start = self.range.start;
                for k in 0..n_chunks {
                    let size = per + usize::from(k < extra);
                    let end = start + size as $t;
                    chunks.push(start..end);
                    start = end;
                }
                chunks
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = ParRange<$t>;
            type Item = $t;

            fn into_par_iter(self) -> ParRange<$t> {
                ParRange { range: self }
            }
        }
    )*};
}

par_range_impl!(u32, u64, usize);

/// Parallel iterator over the elements of a slice.
pub struct ParSlice<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync + 'data> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;
    type SeqIter = std::slice::Iter<'data, T>;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    fn split_into(self, n_chunks: usize) -> Vec<Self::SeqIter> {
        let len = self.slice.len();
        if len == 0 || n_chunks == 0 {
            return Vec::new();
        }
        let n_chunks = n_chunks.min(len);
        let (per, extra) = (len / n_chunks, len % n_chunks);
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut rest = self.slice;
        for k in 0..n_chunks {
            let size = per + usize::from(k < extra);
            let (head, tail) = rest.split_at(size);
            chunks.push(head.iter());
            rest = tail;
        }
        chunks
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParSlice<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync + 'data, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
    type Iter = ParSlice<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParSlice<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct ParVec<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len_hint(&self) -> usize {
        self.vec.len()
    }

    fn split_into(self, n_chunks: usize) -> Vec<Self::SeqIter> {
        let len = self.vec.len();
        if len == 0 || n_chunks == 0 {
            return Vec::new();
        }
        let n_chunks = n_chunks.min(len);
        let (per, extra) = (len / n_chunks, len % n_chunks);
        // Split back-to-front so each `split_off` moves only one chunk.
        let mut chunks: Vec<Vec<T>> = (0..n_chunks).map(|_| Vec::new()).collect();
        let mut vec = self.vec;
        for k in (0..n_chunks).rev() {
            let size = per + usize::from(k < extra);
            chunks[k] = vec.split_off(vec.len() - size);
        }
        debug_assert!(vec.is_empty());
        chunks.into_iter().map(Vec::into_iter).collect()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    type Item = T;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { vec: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u32> = (0..10_000u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10_000u32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_iter_preserves_order() {
        let data: Vec<u64> = (0..5000).collect();
        let out: Vec<u64> = data.clone().into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, data.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_and_enumerate() {
        let data: Vec<u32> = (0..4097).map(|i| i * 10).collect();
        let seen = Mutex::new(vec![0u32; data.len()]);
        data.par_iter().enumerate().for_each(|(i, &x)| {
            seen.lock().unwrap()[i] = x;
        });
        assert_eq!(*seen.lock().unwrap(), data);
    }

    #[test]
    fn array_par_iter() {
        let data = [10u32, 20, 30];
        let sum: u32 = data.par_iter().map(|&x| x).sum();
        assert_eq!(sum, 60);
    }

    #[test]
    fn rayon_style_fold_then_collect() {
        let shards: Vec<Vec<u32>> = (0..10_000u32)
            .into_par_iter()
            .fold(Vec::new, |mut acc, x| {
                acc.push(x);
                acc
            })
            .collect();
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, 10_000);
        // Chunks are contiguous and in order.
        let flat: Vec<u32> = shards.into_iter().flatten().collect();
        assert_eq!(flat, (0..10_000u32).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<u32> = (0..2000u32)
            .into_par_iter()
            .flat_map_iter(|x| [x, x].into_iter())
            .collect();
        let expect: Vec<u32> = (0..2000u32).flat_map(|x| [x, x]).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn sum_and_reduce() {
        let s: u64 = (0..100_001u64).into_par_iter().sum();
        assert_eq!(s, 100_000 * 100_001 / 2);
        let m = (1..6u64).into_par_iter().reduce(|| 1, |a, b| a * b);
        assert_eq!(m, 120);
        let empty = (0..0u64).into_par_iter().reduce(|| 7, |a, b| a + b);
        assert_eq!(empty, 7);
    }

    #[test]
    fn for_each_visits_everything_once() {
        let hits: Vec<AtomicU64> = (0..20_000).map(|_| AtomicU64::new(0)).collect();
        (0..20_000usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_sources() {
        let v: Vec<u32> = (0..0u32).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let s: u64 = Vec::<u64>::new().into_par_iter().sum();
        assert_eq!(s, 0);
        Vec::<u32>::new()
            .par_iter()
            .for_each(|_| panic!("no items"));
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
