//! A minimal, **sequential** stand-in for the [`rayon`] crate.
//!
//! This workspace builds in environments with no access to a cargo
//! registry, so the real `rayon` cannot be fetched. This shim provides the
//! exact API subset the workspace uses — `par_iter` / `into_par_iter`,
//! `for_each`, `map`, `enumerate`, `flat_map_iter`, rayon-style two-closure
//! `fold`, `sum`, `collect`, and [`current_num_threads`] — with identical
//! semantics but executed on the calling thread.
//!
//! Correctness first: every algorithm written against this shim observes
//! the same ordering guarantees rayon provides (order-preserving `collect`,
//! unordered `for_each`), so swapping in the real crate is a pure
//! performance change. The workspace `Cargo.toml` documents the swap: point
//! the `rayon` workspace dependency at crates.io instead of `vendor/rayon`.
//!
//! [`rayon`]: https://docs.rs/rayon

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The traits that make `.par_iter()` / `.into_par_iter()` resolve, mirroring
/// `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads in the "pool" — always 1, because the shim
/// executes on the calling thread.
///
/// Reporting the truth keeps callers honest: anything that prints or
/// scales by thread count (the E8 wall-clock tables, the PRAM commit
/// shard heuristic) describes what actually ran, and automatically picks
/// up the real pool size when the real crate is swapped in.
pub fn current_num_threads() -> usize {
    1
}

/// A "parallel" iterator: a newtype over a sequential [`Iterator`] exposing
/// rayon's method names (rayon's `fold` signature differs from std's, so
/// this cannot simply be the underlying iterator).
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Consume the iterator, calling `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f);
    }

    /// Transform every item with `f`.
    pub fn map<B, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> B,
    {
        ParIter(self.0.map(f))
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Map each item to a *serial* iterator and flatten the results
    /// (rayon's cheap cousin of `flat_map`).
    pub fn flat_map_iter<U, F>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        U: IntoIterator,
        F: FnMut(I::Item) -> U,
    {
        ParIter(self.0.flat_map(f))
    }

    /// Rayon-style fold: `identity` builds a per-worker accumulator and the
    /// result is an iterator of accumulators (exactly one here, since the
    /// shim runs on one thread).
    pub fn fold<T, ID, F>(self, mut identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: FnMut() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Reduce all items to one value, starting from `identity()`.
    pub fn reduce<ID, F>(self, mut identity: ID, reduce_op: F) -> I::Item
    where
        ID: FnMut() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), reduce_op)
    }

    /// Sum all items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// Collect into any [`FromIterator`] collection, preserving item order
    /// (as rayon's indexed `collect` does).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }
}

/// Conversion into a [`ParIter`] by value — rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The type of the items yielded.
    type Item;
    /// Convert `self` into a "parallel" iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;

    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// Conversion into a [`ParIter`] by shared reference — rayon's
/// `IntoParallelRefIterator` (`.par_iter()` on slices, `Vec`s, maps, …).
pub trait IntoParallelRefIterator<'data> {
    /// The underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The type of the items yielded (typically `&'data T`).
    type Item: 'data;
    /// Iterate `self` by reference.
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u32> = (0..100u32).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..100u32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_and_enumerate() {
        let data = [10u32, 20, 30];
        let mut seen = Vec::new();
        data.par_iter()
            .enumerate()
            .for_each(|(i, &x)| seen.push((i, x)));
        assert_eq!(seen, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn rayon_style_fold_then_collect() {
        let shards: Vec<Vec<u32>> = (0..10u32)
            .into_par_iter()
            .fold(Vec::new, |mut acc, x| {
                acc.push(x);
                acc
            })
            .collect();
        let total: usize = shards.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let out: Vec<u32> = vec![1u32, 2, 3]
            .par_iter()
            .flat_map_iter(|&x| 0..x)
            .collect();
        assert_eq!(out, vec![0, 0, 1, 0, 1, 2]);
    }

    #[test]
    fn sum_and_reduce() {
        let s: u64 = (0..=100u64).into_par_iter().sum();
        assert_eq!(s, 5050);
        let m = (1..=5u64).into_par_iter().reduce(|| 1, |a, b| a * b);
        assert_eq!(m, 120);
    }

    #[test]
    fn current_num_threads_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
