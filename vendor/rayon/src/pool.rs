//! The global work pool behind the parallel iterators.
//!
//! A lazily-initialized set of worker threads executes *jobs*. A job is one
//! parallel operation: `n_tasks` independent chunk indices plus a task
//! closure living on the submitting thread's stack. Submission pushes up to
//! `threads - 1` *tickets* for the job onto a shared queue; each ticket,
//! when popped by a worker, repeatedly claims the next unclaimed chunk
//! index and runs the task on it. The submitting thread participates too
//! (it drains chunks exactly like a worker), then blocks until every
//! *claimed* chunk has finished. Leftover tickets for a finished job drain
//! harmlessly: their claim attempt fails (`next >= n_tasks`) and they never
//! touch the task closure.
//!
//! Design notes:
//!
//! * **No work stealing.** Chunks are claimed from a single atomic counter.
//!   For the flat fork-join shapes this workspace uses (split an index
//!   range, run, join) that is equivalent to stealing with far less
//!   machinery; there are no long dependency chains to balance.
//! * **Nested jobs cannot deadlock.** A submitter never waits on an
//!   *unpopped* ticket — it waits only for chunks that some thread has
//!   already claimed, and a claimant always finishes its chunk (by
//!   induction on nesting depth). Idle workers pick tickets up whenever
//!   they can, adding parallelism but never being required for progress.
//! * **Panics propagate.** A panicking task is caught on the executing
//!   thread, the first payload is stored, every chunk is still accounted,
//!   and the submitter re-raises the payload after the job completes —
//!   mirroring rayon's behavior.
//!
//! # Safety
//!
//! This is the only module in the crate that uses `unsafe`. The task
//! closure is type-erased to a thin `*const ()` so that a [`Job`] can be
//! shared with worker threads through an `Arc` without infecting the pool
//! with the closure's lifetime. The soundness argument, referenced by each
//! `unsafe` block below, is:
//!
//! > **Invariant.** The task pointer of a [`Job`] is only dereferenced by a
//! > thread that has *successfully claimed a chunk* (`next.fetch_add(1) <
//! > n_tasks`). The submitter blocks in [`Pool::broadcast`] until `done ==
//! > n_tasks`, and `done` is incremented (under the job mutex) only *after*
//! > the corresponding task call returns. Hence every dereference
//! > happens-before the submitter's stack frame — which owns the closure —
//! > is popped. Tickets that fail to claim a chunk read only the
//! > `Arc`-owned counters and never the task pointer.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One parallel operation in flight. Shared with workers via `Arc` so that
/// stale tickets (popped after the job finished) read valid memory.
struct Job {
    /// Type-erased pointer to the submitter's task closure (`F` below).
    task: *const (),
    /// Monomorphized shim that re-types `task` and calls it with a chunk
    /// index. `unsafe fn` because it dereferences `task` (see Invariant).
    call: unsafe fn(*const (), usize),
    /// Number of chunk indices to execute.
    n_tasks: usize,
    /// Next unclaimed chunk index (grows past `n_tasks` when drained).
    next: AtomicUsize,
    /// Chunks fully executed; the submitter waits for `done == n_tasks`.
    done: Mutex<usize>,
    all_done: Condvar,
    /// First panic payload raised by a task, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `task` is an erased `&F where F: Fn(usize) + Sync`, so sharing it
// across threads is sound (`&F: Send` given `F: Sync`); it is dereferenced
// only under the Invariant above, which guarantees the referent is alive.
// All other fields are ordinary `Send + Sync` synchronization primitives.
#[allow(unsafe_code)]
unsafe impl Send for Job {}
#[allow(unsafe_code)]
unsafe impl Sync for Job {}

impl Job {
    /// Claim and run chunks until none are left. Called by workers holding
    /// a ticket and by the submitting thread itself.
    fn run(&self) {
        loop {
            let k = self.next.fetch_add(1, Ordering::Relaxed);
            if k >= self.n_tasks {
                return;
            }
            // SAFETY: `k < n_tasks`, so per the module Invariant the
            // submitter is still blocked and `task` is alive. The `done`
            // increment below is what eventually releases it.
            #[allow(unsafe_code)]
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.task, k) }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.n_tasks {
                self.all_done.notify_all();
            }
        }
    }
}

/// Queue shared between the submitting threads and the workers.
struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_available: Condvar,
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.work_available.wait(q).unwrap();
            }
        };
        job.run();
    }
}

/// The process-global thread pool.
pub(crate) struct Pool {
    threads: usize,
    /// `None` when `threads == 1`: everything runs inline on the caller and
    /// no worker thread is ever spawned.
    shared: Option<Arc<Shared>>,
}

impl Pool {
    fn new() -> Pool {
        let threads = configured_threads();
        let shared = if threads > 1 {
            let shared = Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                work_available: Condvar::new(),
            });
            // `threads - 1` workers: the submitting thread is always the
            // remaining executor, so at most `threads` chunks run at once.
            for i in 0..threads - 1 {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn pool worker");
            }
            Some(shared)
        } else {
            None
        };
        Pool { threads, shared }
    }

    /// Number of threads executing parallel work (workers + submitter).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Run `task(k)` for every `k in 0..n_tasks`, in parallel across the
    /// pool. Returns when all calls have finished; re-raises the first
    /// panic any of them raised.
    pub(crate) fn broadcast<F>(&self, n_tasks: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        let shared = match &self.shared {
            Some(shared) if n_tasks > 1 => shared,
            _ => {
                for k in 0..n_tasks {
                    task(k);
                }
                return;
            }
        };
        /// Monomorphized re-typing shim for [`Job::call`].
        ///
        /// # Safety
        /// `data` must be the erased `&F` of a live closure (module
        /// Invariant).
        #[allow(unsafe_code)]
        unsafe fn call_shim<F: Fn(usize) + Sync>(data: *const (), k: usize) {
            // SAFETY: guaranteed by the caller (see the module Invariant).
            unsafe { (*data.cast::<F>())(k) }
        }
        let job = Arc::new(Job {
            task: (&task as *const F).cast::<()>(),
            call: call_shim::<F>,
            n_tasks,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let tickets = (self.threads - 1).min(n_tasks - 1);
            let mut q = shared.queue.lock().unwrap();
            for _ in 0..tickets {
                q.push_back(Arc::clone(&job));
            }
            drop(q);
            shared.work_available.notify_all();
        }
        // Participate, then wait for claimed chunks to finish.
        job.run();
        let mut done = job.done.lock().unwrap();
        while *done < n_tasks {
            done = job.all_done.wait(done).unwrap();
        }
        drop(done);
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Pool size: `RAYON_NUM_THREADS` when set to a positive integer (as in
/// real rayon, `0` or garbage falls back to the default), otherwise
/// [`std::thread::available_parallelism`].
fn configured_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The lazily-initialized global pool. The thread count is fixed at first
/// use; set `RAYON_NUM_THREADS` before the first parallel call.
pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_index_once() {
        let pool = global();
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.broadcast(1000, |k| {
            hits[k].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn broadcast_zero_and_one_tasks() {
        let pool = global();
        pool.broadcast(0, |_| panic!("must not run"));
        let ran = AtomicU64::new(0);
        pool.broadcast(1, |k| {
            assert_eq!(k, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let pool = global();
        let caught = std::panic::catch_unwind(|| {
            pool.broadcast(64, |k| {
                if k == 13 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
        // The pool survives a panicked job.
        let ok = AtomicU64::new(0);
        pool.broadcast(8, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_broadcast_makes_progress() {
        let pool = global();
        let total = AtomicU64::new(0);
        pool.broadcast(8, |_| {
            pool.broadcast(8, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    /// Spawn-heavy stress test for the lifetime-erasure invariant: many
    /// threads submit many short stack-borrowing jobs concurrently, so any
    /// use-after-return of a job's task closure would scribble on dead
    /// frames and fail loudly (especially under sanitizers / miri).
    #[test]
    fn stress_many_submitters_short_jobs() {
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                scope.spawn(move || {
                    for round in 0..200u64 {
                        let local: Vec<u64> = (0..64).map(|i| i + t + round).collect();
                        let sum = AtomicU64::new(0);
                        global().broadcast(local.len(), |k| {
                            sum.fetch_add(local[k], Ordering::Relaxed);
                        });
                        let expect: u64 = local.iter().sum();
                        assert_eq!(sum.load(Ordering::Relaxed), expect);
                    }
                });
            }
        });
    }
}
