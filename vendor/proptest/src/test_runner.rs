//! Test-runner plumbing: configuration and the deterministic RNG behind
//! every generated case.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
    /// Accepted for compatibility with the real crate's config; the shim
    /// does not shrink, so this is never read.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Derive the per-test base seed: a hash of the test name, XORed with the
/// `PROPTEST_SEED` environment variable when set.
///
/// The variable (decimal or `0x`-hex) *perturbs* every test's stream so
/// repeated CI runs can explore different cases; because it is mixed with
/// the name hash rather than substituted, it is not a handle for replaying
/// a printed base seed. An unparseable value aborts rather than silently
/// running the default stream.
pub fn base_seed(test_name: &str) -> u64 {
    // FNV-1a over the name keeps distinct tests on distinct streams.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => {
            let t = s.trim();
            match parse_seed(t) {
                Some(v) => h ^ v,
                None => panic!("PROPTEST_SEED={t:?} is not a decimal or 0x-hex u64"),
            }
        }
        Err(_) => h,
    }
}

/// Parse a seed override: decimal or `0x`-prefixed hex.
fn parse_seed(t: &str) -> Option<u64> {
    match t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => t.parse::<u64>().ok(),
    }
}

/// Deterministic splitmix64 stream seeded from `(base_seed, case_index)`.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case.
    pub fn new(base: u64, case: u64) -> Self {
        let mut rng = TestRng {
            state: base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // Decorrelate adjacent case indices.
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift bounding (Lemire); bias is negligible for test
        // generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::new(1, 2);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::new(1, 2);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(3, 4);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = TestRng::new(5, 6);
        for _ in 0..10_000 {
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distinct_names_distinct_seeds() {
        assert_ne!(base_seed("alpha"), base_seed("beta"));
    }

    #[test]
    fn seed_override_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xDEADBEEF"), Some(0xDEAD_BEEF));
        assert_eq!(parse_seed("0Xff"), Some(255));
        assert_eq!(parse_seed("notanumber"), None);
        assert_eq!(parse_seed("-1"), None);
    }
}
