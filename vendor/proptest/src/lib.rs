//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! This workspace builds in environments with no access to a cargo
//! registry, so the real `proptest` cannot be fetched. This shim implements
//! the API subset the workspace's property tests use: the [`proptest!`]
//! macro (with `#![proptest_config(..)]`), `Strategy` with `prop_map`,
//! range / tuple / `any` / `Just` strategies, `prop_oneof!`,
//! `collection::vec` / `collection::hash_set`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, chosen for simplicity:
//!
//! * **No shrinking, no value reporting.** A failing case reports its
//!   case index and the test's base seed, not the generated values —
//!   re-run the test to replay the identical failing case (generation is
//!   deterministic) and add `eprintln!`s or a reduced `cases` count to
//!   inspect inputs.
//! * **Deterministic seeding.** Cases derive from a fixed per-test seed,
//!   so CI runs are reproducible. Set the `PROPTEST_SEED` environment
//!   variable (decimal or `0x`-hex) to *perturb* every test's stream and
//!   explore different cases; it is mixed into the base seed, not a
//!   replay handle.
//! * `prop_assert!` / `prop_assert_eq!` panic immediately instead of
//!   returning `Err`, which is equivalent under the standard test harness.
//!
//! Swapping in the real crate is a one-line change in the workspace
//! `Cargo.toml` (point the `proptest` workspace dependency at crates.io).
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest test file starts with.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     /// Doc comments are allowed.
///     #[test]
///     fn my_property(x in 0usize..100, seed in any::<u64>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let base = $crate::test_runner::base_seed(stringify!($name));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::test_runner::TestRng::new(base, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                let run = || {
                    $(
                        // Rebind so the closure owns the generated values and
                        // an unused-binding warning never fires for inputs a
                        // body ignores.
                        let $arg = $arg;
                    )*
                    $body
                };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {case}/{} of `{}` failed (seed {base:#x})",
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Pick one of several strategies (uniformly) for each generated case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
