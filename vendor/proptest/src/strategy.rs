//! Value-generation strategies: the [`Strategy`] trait and the combinators
//! the workspace uses (ranges, tuples, [`Just`], [`Union`], `prop_map`).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type from a random stream.
///
/// The real proptest separates strategies from value *trees* to support
/// shrinking; this shim generates values directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<B, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> B,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy type (used by [`crate::prop_oneof!`] to mix
    /// heterogeneous arms producing the same value type).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between strategies with a common value type.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, B, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> B,
{
    type Value = B;

    fn generate(&self, rng: &mut TestRng) -> B {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy, via [`any`].
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of type `T`: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! arbitrary_uint {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                lo + rng.below(span.saturating_add(1)) as $ty
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        })*
    };
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xFEED, 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = (10usize..20).generate(&mut r);
            assert!((10..20).contains(&x));
            let f = (1.5f64..4.0).generate(&mut r);
            assert!((1.5..4.0).contains(&f));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut r = rng();
        let strat = (1u32..5, 1u32..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!((2..=8).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let strat = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut r));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn any_bool_varies() {
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(any::<bool>().generate(&mut r));
        }
        assert_eq!(seen.len(), 2);
    }
}
