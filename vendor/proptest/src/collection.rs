//! Collection strategies: random-length `Vec`s and `HashSet`s.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `Vec` of values from `element`, with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet<S::Value>` with *target* size drawn from `size`
/// (the generated set may be smaller when duplicates collide, matching the
/// real proptest's behaviour for tight value ranges).
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A `HashSet` of values from `element`, with roughly `size` elements.
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size }
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.clone().generate(rng);
        let mut out = HashSet::with_capacity(target);
        // Bounded attempts so tight element ranges cannot loop forever.
        for _ in 0..target.saturating_mul(4) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_in_range() {
        let strat = vec(0u64..10, 3..7);
        let mut rng = TestRng::new(9, 9);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn hash_set_respects_bounds() {
        let strat = hash_set(0usize..600, 0..200);
        let mut rng = TestRng::new(1, 1);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.len() < 200);
            assert!(s.iter().all(|&x| x < 600));
        }
    }
}
