//! A minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness.
//!
//! This workspace builds in environments with no access to a cargo
//! registry, so the real `criterion` cannot be fetched. The shim keeps the
//! same bench-authoring surface — [`Criterion::benchmark_group`],
//! `bench_function`, `sample_size`, [`criterion_group!`] /
//! [`criterion_main!`], [`black_box`] — so every bench under
//! `crates/bench/benches/` compiles unchanged and `cargo bench` produces
//! useful (median / min / max) wall-clock numbers, just without criterion's
//! statistical analysis, plots, or history. Swapping in the real crate is a
//! one-line change in the workspace `Cargo.toml`.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to every bench function.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Create a harness with default settings.
    pub fn new() -> Self {
        Criterion { sample_size: 10 }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.sample_size == 0 {
                10
            } else {
                self.sample_size
            },
            _parent: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        run_one("", name, sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, name, self.sample_size, f);
        self
    }

    /// Finish the group (report formatting hook; prints a separator).
    pub fn finish(self) {
        eprintln!();
    }
}

fn run_one<F>(group: &str, name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut samples = Vec::with_capacity(sample_size);
    // One untimed warm-up sample.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    samples.sort_unstable();
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    eprintln!(
        "bench {label:<50} median {:>12.3?}  min {:>12.3?}  max {:>12.3?}  ({sample_size} samples)",
        samples[samples.len() / 2],
        samples[0],
        samples[samples.len() - 1],
    );
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one execution of `routine` (the sample's measurement).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        drop(black_box(out));
    }
}

/// Bundle bench functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups, mirroring criterion's
/// macro of the same name. Ignores harness CLI arguments (e.g. the
/// `--bench` flag cargo passes).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 3 timed samples + 1 warm-up.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_function_outside_group() {
        let mut c = Criterion::new();
        let mut ran = false;
        c.bench_function("top", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}
