//! Thread-count determinism suite.
//!
//! Every public CC entry point — Theorems 1/2/3, the simulated baselines,
//! all `logdiam-par` shared-memory algorithms, and the `logdiam-svc`
//! batched-replay service — must produce identical component labels at
//! `RAYON_NUM_THREADS` 1, 2, and 8; and seeded
//! ARBITRARY PRAM runs must be *bit-identical* (full memory image and
//! traffic counters), which the sharded, priority-resolved commit is
//! designed to guarantee. The pool size is fixed per process, so each
//! measurement is a run of the `determinism_probe` helper binary with a
//! pinned environment, compared byte-for-byte on stdout.
//!
//! Graph shapes and seeds are proptest-generated (the vendored shim is
//! deterministic, so failures reproduce exactly).

use proptest::prelude::*;
use std::process::Command;

const THREAD_COUNTS: [&str; 3] = ["1", "2", "8"];

/// Run the probe once and return its stdout.
fn probe(threads: &str, algo: &str, family: &str, n: usize, seed: u64) -> String {
    probe_env(threads, algo, family, n, seed, &[])
}

/// [`probe`] with extra pinned environment variables (the observability
/// toggles are env-driven, so they are exercised the same way the thread
/// count is: one process per setting, compared byte-for-byte).
fn probe_env(
    threads: &str,
    algo: &str,
    family: &str,
    n: usize,
    seed: u64,
    extra_env: &[(&str, &str)],
) -> String {
    let exe = env!("CARGO_BIN_EXE_determinism_probe");
    let mut cmd = Command::new(exe);
    cmd.args([algo, family, &n.to_string(), &seed.to_string()])
        .env("RAYON_NUM_THREADS", threads);
    for &(k, v) in extra_env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("failed to spawn determinism_probe");
    assert!(
        out.status.success(),
        "probe({algo}, {family}, n={n}, seed={seed}) at {threads} threads failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("probe printed invalid UTF-8")
}

/// Assert one (algo, graph) case fingerprints identically at 1/2/8 threads.
fn assert_thread_invariant(algo: &str, family: &str, n: usize, seed: u64) {
    let baseline = probe(THREAD_COUNTS[0], algo, family, n, seed);
    assert!(
        baseline.contains(' '),
        "probe produced no fingerprint: {baseline:?}"
    );
    for threads in &THREAD_COUNTS[1..] {
        let got = probe(threads, algo, family, n, seed);
        assert_eq!(
            baseline, got,
            "{algo} on {family}(n={n}, seed={seed}) differs between \
             1 thread and {threads} threads"
        );
    }
}

/// The simulated entry points (each drives `Pram` on a seeded-ARBITRARY
/// machine — label determinism here also exercises the sharded commit).
/// `theorem3_nostamp` covers the clear-based MAXLINK legacy path and
/// `theorem1_nostamp` the clear-based EXPAND phase-state path; the
/// defaults cover the generation-stamped paths, and the
/// theorem1/theorem2/vanilla entries run their live-scheduled phases —
/// every live path fingerprints identically at 1/2/8 threads.
const SIM_ALGOS: [&str; 8] = [
    "theorem1",
    "theorem1_nostamp",
    "theorem2",
    "theorem3",
    "theorem3_nostamp",
    "vanilla",
    "awerbuch_shiloach",
    "labelprop_sim",
];

/// The practical shared-memory ports (atomics + rayon).
const PAR_ALGOS: [&str; 5] = [
    "par_labelprop",
    "par_unionfind",
    "par_sv",
    "par_contract",
    "par_bfs",
];

const FAMILIES: [&str; 5] = ["path", "grid", "gnm", "powerlaw", "mixture"];

fn family_strategy() -> impl Strategy<Value = &'static str> {
    (0..FAMILIES.len()).prop_map(|i| FAMILIES[i])
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// Simulated algorithms: small graphs (a full PRAM simulation per
    /// probe run), every entry point, 3 thread counts.
    #[test]
    fn simulated_entry_points_are_thread_invariant(
        family in family_strategy(),
        n in 24usize..120,
        seed in 0u64..1000,
    ) {
        for algo in SIM_ALGOS {
            assert_thread_invariant(algo, family, n, seed);
        }
    }

    /// Practical ports: larger graphs so the parallel paths genuinely
    /// split work at 2 and 8 threads.
    #[test]
    fn practical_ports_are_thread_invariant(
        family in family_strategy(),
        n in 512usize..4096,
        seed in 0u64..1000,
    ) {
        for algo in PAR_ALGOS {
            assert_thread_invariant(algo, family, n, seed);
        }
    }

    /// The connectivity service: a batched replay (with mid-trace folds,
    /// pipelined background rebuilds, and an empty commit) must publish
    /// identical labels at every epoch regardless of thread count — and
    /// the probe replays the trace at shard counts 1/3/8, so the
    /// fingerprint also pins shard-count invariance. The sharded overlay
    /// union–find races internally and the rebuild worker swaps in at
    /// arbitrary times, but canonical min-vertex labeling and
    /// writer-ordered epoch assignment erase both.
    #[test]
    fn svc_replay_is_thread_invariant(
        family in family_strategy(),
        n in 256usize..2048,
        seed in 0u64..1000,
    ) {
        assert_thread_invariant("svc", family, n, seed);
    }

    /// Observability must never touch the determinism surface: spans and
    /// event emission are timing-only, so forcing the runtime toggle
    /// (`LOGDIAM_OBS_SPANS`) off and on must leave every fingerprint —
    /// including the service's per-epoch label fingerprints — bit-identical
    /// at 1, 2, and 8 threads.
    #[test]
    fn spans_toggle_never_changes_fingerprints(
        family in family_strategy(),
        n in 256usize..1024,
        seed in 0u64..1000,
    ) {
        for algo in ["svc", "theorem3", "pram_stress"] {
            let (family, n) = if algo == "pram_stress" { ("path", n + 2048) } else { (family, n) };
            for threads in THREAD_COUNTS {
                let off = probe_env(threads, algo, family, n, seed, &[("LOGDIAM_OBS_SPANS", "0")]);
                let on = probe_env(threads, algo, family, n, seed, &[("LOGDIAM_OBS_SPANS", "1")]);
                assert_eq!(
                    off, on,
                    "{algo} on {family}(n={n}, seed={seed}) at {threads} threads \
                     changes with the observability spans toggle"
                );
            }
        }
    }

    /// Narrow (32-bit) cells are a pure representation change: the same
    /// run on a `LOGDIAM_CELL_WIDTH=32` machine — values that overflow a
    /// narrow cell escape to the side table, and `pram_stress` writes
    /// full-width random values so it escapes constantly — must
    /// fingerprint byte-identically to the full-width machine at 1, 2,
    /// and 8 threads: same labels, same memory image, same counters.
    #[test]
    fn narrow_cells_fingerprint_identically_to_full_width(
        family in family_strategy(),
        n in 24usize..120,
        seed in 0u64..1000,
    ) {
        for algo in ["theorem3", "theorem1", "pram_stress"] {
            let (family, n) = if algo == "pram_stress" { ("path", n + 2048) } else { (family, n) };
            for threads in THREAD_COUNTS {
                let wide = probe_env(threads, algo, family, n, seed, &[("LOGDIAM_CELL_WIDTH", "64")]);
                let narrow = probe_env(threads, algo, family, n, seed, &[("LOGDIAM_CELL_WIDTH", "32")]);
                assert_eq!(
                    wide, narrow,
                    "{algo} on {family}(n={n}, seed={seed}) at {threads} threads \
                     differs between 64-bit and 32-bit cells"
                );
            }
        }
    }

    /// Out-of-core edge runs are invisible to every consumer: building a
    /// graph with `LOGDIAM_RUN_SPILL` pointed at a temp dir — and a tiny
    /// `LOGDIAM_RUN_EDGES` cap so many runs genuinely round-trip through
    /// spill files — must fingerprint byte-identically to the all-in-memory
    /// build at every thread count.
    #[test]
    fn spilled_graph_builds_fingerprint_identically(
        family in family_strategy(),
        n in 256usize..2048,
        seed in 0u64..1000,
    ) {
        let spill_dir = std::env::temp_dir();
        let spill_dir = spill_dir.to_str().expect("temp dir path is not UTF-8");
        for threads in THREAD_COUNTS {
            let mem = probe(threads, "graph_build", family, n, seed);
            let spilled = probe_env(
                threads,
                "graph_build",
                family,
                n,
                seed,
                &[("LOGDIAM_RUN_SPILL", spill_dir), ("LOGDIAM_RUN_EDGES", "512")],
            );
            assert_eq!(
                mem, spilled,
                "graph_build on {family}(n={n}, seed={seed}) at {threads} threads \
                 differs between in-memory and spilled edge runs"
            );
        }
    }

    /// Seeded ARBITRARY PRAM runs are bit-identical across thread counts:
    /// the probe fingerprints the full memory image plus traffic counters
    /// after rounds of deliberately conflicting writes. `n` is large
    /// enough that 8·n processors cross the parallel step threshold, so
    /// the sharded parallel commit (not just the sequential path) is what
    /// is being tested.
    #[test]
    fn seeded_pram_runs_are_bit_identical(
        n in 2048usize..4096,
        seed in 0u64..1000,
    ) {
        assert_thread_invariant("pram_stress", "path", n, seed);
    }
}
