//! Property tests of the PRAM substrate itself: write-resolution
//! semantics, snapshot isolation of steps, combining operators, and the
//! hashing/compaction primitives — the foundations every algorithm result
//! rests on.

use logdiam::kit::compaction::{compact, CompactionMode};
use logdiam::kit::PairwiseHash;
use logdiam::pram::{CombineOp, Pram, WritePolicy, NULL};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// ARBITRARY: the winner of concurrent writes is always one of the
    /// written values, under every policy.
    #[test]
    fn winner_is_a_written_value(
        values in proptest::collection::vec(0u64..1000, 1..64),
        seed in any::<u64>(),
    ) {
        for policy in [
            WritePolicy::ArbitrarySeeded(seed),
            WritePolicy::PriorityMin,
            WritePolicy::PriorityMax,
            WritePolicy::Racy,
        ] {
            let mut pram = Pram::new(policy);
            let cell = pram.alloc_filled(1, NULL);
            let vals = values.clone();
            pram.step(vals.len(), |p, ctx| {
                ctx.write(cell, 0, vals[p as usize]);
            });
            let got = pram.get(cell, 0);
            prop_assert!(values.contains(&got), "{policy:?} produced unwritten {got}");
        }
    }

    /// Steps are snapshot-isolated: reads never observe same-step writes.
    #[test]
    fn snapshot_isolation(n in 2usize..200, seed in any::<u64>()) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let xs = pram.alloc_filled(n, 1);
        // Everyone doubles their right neighbour's value; with snapshot
        // isolation every cell is exactly 2 afterwards (no cascading).
        pram.step(n, |p, ctx| {
            let i = p as usize;
            let v = ctx.read(xs, (i + 1) % n);
            ctx.write(xs, i, v * 2);
        });
        prop_assert!(pram.read_vec(xs).iter().all(|&x| x == 2));
    }

    /// PRIORITY policies are exact.
    #[test]
    fn priority_exactness(n in 1usize..500) {
        let mut pram = Pram::new(WritePolicy::PriorityMin);
        let cell = pram.alloc_filled(1, NULL);
        pram.step(n, |p, ctx| ctx.write(cell, 0, p + 10));
        prop_assert_eq!(pram.get(cell, 0), 10);
        let mut pram = Pram::new(WritePolicy::PriorityMax);
        let cell = pram.alloc_filled(1, NULL);
        pram.step(n, |p, ctx| ctx.write(cell, 0, p + 10));
        prop_assert_eq!(pram.get(cell, 0), n as u64 + 9);
    }

    /// COMBINING sum/min/max/or match their sequential folds.
    #[test]
    fn combining_matches_sequential_fold(
        values in proptest::collection::vec(0u64..1_000_000, 1..128),
    ) {
        for (op, expect) in [
            (CombineOp::Sum, values.iter().sum::<u64>()),
            (CombineOp::Min, *values.iter().min().unwrap()),
            (CombineOp::Max, *values.iter().max().unwrap()),
            (CombineOp::Or, values.iter().fold(0, |a, b| a | b)),
        ] {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
            let cell = pram.alloc_filled(1, 123);
            let vals = values.clone();
            pram.step_combine(vals.len(), op, |p, ctx| {
                ctx.write(cell, 0, vals[p as usize]);
            });
            prop_assert_eq!(pram.get(cell, 0), expect);
        }
    }

    /// Pairwise hashing: outputs in range; equal seeds ⇒ equal functions.
    #[test]
    fn hashing_range_and_determinism(seed in any::<u64>(), range in 1u64..10_000, x in any::<u64>()) {
        let h1 = PairwiseHash::new(seed, range);
        let h2 = PairwiseHash::new(seed, range);
        prop_assert!(h1.eval(x) < range);
        prop_assert_eq!(h1.eval(x), h2.eval(x));
    }

    /// Approximate compaction yields injective indices for any active set.
    #[test]
    fn compaction_always_injective(
        active_set in proptest::collection::hash_set(0usize..600, 0..200),
        seed in any::<u64>(),
    ) {
        let n = 600;
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let active = pram.alloc_filled(n, 0);
        for &v in &active_set {
            pram.set(active, v, 1);
        }
        let res = compact(&mut pram, active, seed, CompactionMode::Measured).unwrap();
        let index = pram.read_vec(res.index);
        let mut used = HashSet::new();
        for (v, &idx) in index.iter().enumerate() {
            if active_set.contains(&v) {
                prop_assert!(idx != NULL);
                prop_assert!(used.insert(idx));
            } else {
                prop_assert_eq!(idx, NULL);
            }
        }
    }
}

/// Deterministic replay: identical machines (seeded policy) run an entire
/// multi-step program to identical memory states.
#[test]
fn deterministic_replay_of_programs() {
    let run = |seed: u64| {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let xs = pram.alloc_filled(256, 0);
        for round in 0..10u64 {
            pram.step(4096, |p, ctx| {
                let slot = ((p ^ round) % 256) as usize;
                let v = ctx.read(xs, slot);
                ctx.write(xs, (slot + 7) % 256, v + p);
            });
        }
        pram.read_vec(xs)
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43));
}
