//! End-to-end integration: generator → simulated algorithm → verifier,
//! across all algorithms, workload shapes, seeds and write policies.

use logdiam::algorithms::baselines::{awerbuch_shiloach, labelprop};
use logdiam::algorithms::theorem1::{self, DensityMode, Theorem1Params};
use logdiam::algorithms::theorem2::spanning_forest;
use logdiam::algorithms::theorem3::{faster_cc, FasterParams};
use logdiam::algorithms::vanilla::vanilla;
use logdiam::algorithms::verify::{check_labels, check_spanning_forest};
use logdiam::graph::{gen, Graph};
use logdiam::pram::{Pram, WritePolicy};

fn workload_suite(seed: u64) -> Vec<(String, Graph)> {
    vec![
        ("path(257)".into(), gen::path(257)),
        ("cycle(100)".into(), gen::cycle(100)),
        ("star(200)".into(), gen::star(200)),
        ("complete(40)".into(), gen::complete(40)),
        ("grid(12,17)".into(), gen::grid(12, 17)),
        ("torus(8,9)".into(), gen::torus(8, 9)),
        ("hypercube(7)".into(), gen::hypercube(7)),
        ("binary_tree(255)".into(), gen::binary_tree(255)),
        ("random_tree(300)".into(), gen::random_tree(300, seed)),
        ("spider(7,20)".into(), gen::spider(7, 20)),
        ("caterpillar(30,4)".into(), gen::caterpillar(30, 4)),
        ("broom(40,25)".into(), gen::broom(40, 25)),
        ("lollipop(20,40)".into(), gen::lollipop(20, 40)),
        ("barbell(15,9)".into(), gen::barbell(15, 9)),
        ("clique_chain(16,8)".into(), gen::clique_chain(16, 8)),
        (
            "hairy_clique_path(20,5)".into(),
            gen::hairy_clique_path(20, 5, seed),
        ),
        ("gnm(400,1100)".into(), gen::gnm(400, 1100, seed)),
        ("gnp(300,0.02)".into(), gen::gnp(300, 0.02, seed)),
        (
            "random_regular(256,4)".into(),
            gen::random_regular(256, 4, seed),
        ),
        (
            "mixture".into(),
            gen::union_all(&[
                gen::path(40),
                gen::complete(12),
                gen::star(25),
                gen::gnm(120, 300, seed ^ 1),
                gen::binary_tree(63),
            ]),
        ),
        (
            "scrambled grid".into(),
            gen::scramble(&gen::grid(10, 14), seed ^ 2),
        ),
        (
            "edgeless(17)".into(),
            logdiam::graph::GraphBuilder::new(17).build(),
        ),
    ]
}

#[test]
fn faster_cc_on_full_workload_suite() {
    let params = FasterParams::default();
    for (name, g) in workload_suite(3) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(5));
        let report = faster_cc(&mut pram, &g, 5, &params);
        check_labels(&g, &report.run.labels).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn theorem1_on_full_workload_suite() {
    let params = Theorem1Params::default();
    for (name, g) in workload_suite(7) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(11));
        let report = theorem1::connected_components(&mut pram, &g, 11, &params);
        check_labels(&g, &report.labels).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn spanning_forest_on_full_workload_suite() {
    let params = Theorem1Params::default();
    for (name, g) in workload_suite(13) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(17));
        let report = spanning_forest(&mut pram, &g, 17, &params);
        check_spanning_forest(&g, &report.forest_edges).unwrap_or_else(|e| panic!("{name}: {e}"));
        check_labels(&g, &report.labels).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn baselines_on_full_workload_suite() {
    for (name, g) in workload_suite(19) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(23));
        let r = awerbuch_shiloach(&mut pram, &g);
        check_labels(&g, &r.labels).unwrap_or_else(|e| panic!("AS {name}: {e}"));
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(23));
        let r = labelprop(&mut pram, &g);
        check_labels(&g, &r.labels).unwrap_or_else(|e| panic!("LP {name}: {e}"));
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(23));
        let r = vanilla(&mut pram, &g, 23);
        check_labels(&g, &r.labels).unwrap_or_else(|e| panic!("Vanilla {name}: {e}"));
    }
}

#[test]
fn every_algorithm_under_every_write_policy() {
    let g = gen::union_all(&[gen::gnm(150, 400, 2), gen::clique_chain(8, 5)]);
    let policies = [
        WritePolicy::ArbitrarySeeded(1),
        WritePolicy::ArbitrarySeeded(0xDEAD),
        WritePolicy::PriorityMin,
        WritePolicy::PriorityMax,
        WritePolicy::Racy,
    ];
    for policy in policies {
        let mut pram = Pram::new(policy);
        let r = faster_cc(&mut pram, &g, 9, &FasterParams::default());
        check_labels(&g, &r.run.labels).unwrap();

        let mut pram = Pram::new(policy);
        let r = theorem1::connected_components(&mut pram, &g, 9, &Theorem1Params::default());
        check_labels(&g, &r.labels).unwrap();

        let mut pram = Pram::new(policy);
        let r = spanning_forest(&mut pram, &g, 9, &Theorem1Params::default());
        check_spanning_forest(&g, &r.forest_edges).unwrap();
    }
}

#[test]
fn density_modes_cross_check() {
    // The §B.5 ñ rule (pure ARBITRARY) and the COMBINING count must both
    // converge to correct answers on the same inputs.
    let g = gen::gnm(500, 2000, 21);
    for density in [DensityMode::Combining, DensityMode::NTildeRule] {
        let params = Theorem1Params {
            density,
            ..Default::default()
        };
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(31));
        let r = theorem1::connected_components(&mut pram, &g, 31, &params);
        check_labels(&g, &r.labels).unwrap();
    }
}

#[test]
fn many_seeds_never_wrong() {
    let g = gen::gnm(300, 900, 5);
    for seed in 0..25u64 {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let r = faster_cc(&mut pram, &g, seed, &FasterParams::default());
        check_labels(&g, &r.run.labels).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
