//! Cross-implementation agreement: every algorithm in the workspace —
//! simulated or practical — must induce the same component partition.

use logdiam::algorithms::theorem1::{self, Theorem1Params};
use logdiam::algorithms::theorem2::spanning_forest;
use logdiam::algorithms::theorem3::{faster_cc, FasterParams};
use logdiam::graph::seq::{components, same_partition};
use logdiam::graph::{gen, Graph};
use logdiam::parallel::{
    contract::contract_cc, labelprop::labelprop_cc, sv::sv_cc, unionfind::unionfind_cc,
};
use logdiam::pram::{Pram, WritePolicy};

fn all_labelings(g: &Graph, seed: u64) -> Vec<(&'static str, Vec<u32>)> {
    let mut out: Vec<(&'static str, Vec<u32>)> = vec![
        ("seq ground truth", components(g)),
        ("par unionfind", unionfind_cc(g)),
        ("par labelprop", labelprop_cc(g)),
        ("par sv", sv_cc(g)),
        ("par contract", contract_cc(g)),
    ];
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
    out.push((
        "sim theorem3",
        faster_cc(&mut pram, g, seed, &FasterParams::default())
            .run
            .labels,
    ));
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
    out.push((
        "sim theorem1",
        theorem1::connected_components(&mut pram, g, seed, &Theorem1Params::default()).labels,
    ));
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
    out.push((
        "sim theorem2",
        spanning_forest(&mut pram, g, seed, &Theorem1Params::default()).labels,
    ));
    out
}

#[test]
fn all_implementations_agree() {
    for (gi, g) in [
        gen::gnm(400, 1200, 3),
        gen::union_all(&[gen::grid(9, 11), gen::cycle(40), gen::star(30)]),
        gen::clique_chain(20, 6),
    ]
    .iter()
    .enumerate()
    {
        let labelings = all_labelings(g, 7 + gi as u64);
        let (base_name, base) = &labelings[0];
        for (name, labels) in &labelings[1..] {
            assert!(
                same_partition(base, labels),
                "graph #{gi}: {name} disagrees with {base_name}"
            );
        }
    }
}

#[test]
fn forest_root_labels_match_cc_labels() {
    // The spanning forest's labels and Theorem 3's labels describe the
    // same partition even though the algorithms share no code path after
    // EXPAND.
    let g = gen::gnm(350, 1000, 9);
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
    let sf = spanning_forest(&mut pram, &g, 1, &Theorem1Params::default());
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(2));
    let cc = faster_cc(&mut pram, &g, 2, &FasterParams::default());
    assert!(same_partition(&sf.labels, &cc.run.labels));
    // Forest size determines the component count.
    let comps = {
        let mut d = components(&g);
        d.sort_unstable();
        d.dedup();
        d.len()
    };
    assert_eq!(sf.forest_edges.len(), g.n() - comps);
}
