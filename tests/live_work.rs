//! Live-work scheduling regression guards (PR 3, extended by PR 5).
//!
//! Every driver's round/phase must charge (and execute) work proportional
//! to the *live* subproblem — live arcs, live table cells, ongoing roots —
//! not O(n + m). These tests pin that property for the Theorem-3 rounds
//! (including the controller's now-charged compaction and the compacted
//! postprocess), for the Theorem-1/Theorem-2 phase drivers, and verify
//! that live-arc filtering, periodic dedup, and the generation-stamped
//! MAXLINK never change the computed partition.

use logdiam::algorithms::theorem1::{connected_components, Theorem1Params};
use logdiam::algorithms::theorem2::spanning_forest;
use logdiam::algorithms::theorem3::{faster_cc, FasterParams};
use logdiam::graph::gen;
use logdiam::graph::seq::{components, same_partition};
use logdiam::pram::{Pram, WritePolicy};
use proptest::prelude::*;

/// On a path graph the live subproblem shrinks geometrically; per-round
/// charged work must follow it down instead of staying pinned at O(n + m).
#[test]
fn path_per_round_work_decays_with_live_arcs() {
    let n: usize = 1 << 14;
    let g = gen::path(n);
    let m = g.m();
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(7));
    let report = faster_cc(&mut pram, &g, 7, &FasterParams::default());
    assert!(same_partition(&components(&g), &report.run.labels));

    let pr = &report.run.per_round;
    assert!(
        pr.len() >= 4,
        "expected a multi-round run, got {}",
        pr.len()
    );
    for r in pr {
        eprintln!(
            "round {:3}: work {:9} live_arcs {:6} ongoing {:6} dormant {:4}",
            r.round, r.work, r.live_arcs, r.ongoing, r.dormant
        );
    }
    eprintln!("total work {} (n+m = {})", report.run.stats.work, n + m);

    // (a) Work decays: the cheapest late round must be far below round 1
    // (with full-array iteration every round costs the same ±constant).
    let first = pr[0].work;
    let min_late = pr[pr.len() / 2..].iter().map(|r| r.work).min().unwrap();
    assert!(
        min_late * 20 <= first,
        "late rounds still pay near-O(n+m): first {first}, min late {min_late}"
    );

    // (b) Work is bounded by the live subproblem: each round's charge must
    // be within a constant of the previous round's live footprint (live
    // arcs dominate; ongoing roots bound the table/budget terms).
    for w in pr.windows(2) {
        let basis = (w[0].live_arcs + w[0].ongoing + 16) as u64;
        assert!(
            w[1].work <= 600 * basis,
            "round {} charged {} against live basis {} (> 600x)",
            w[1].round,
            w[1].work,
            basis
        );
    }

    // (c) Whole-run work stays near-linear in the input, not n·rounds.
    let total = report.run.stats.work;
    assert!(
        total <= 400 * (n + m) as u64,
        "total work {total} is not near-linear in n+m = {}",
        n + m
    );
}

/// Live-arc filtering and duplicate-arc dedup are work optimizations only:
/// the partition must match the sequential ground truth for every dedup
/// cadence, including "never".
#[test]
fn live_filtering_and_dedup_preserve_labels() {
    let graphs = [
        gen::union_all(&[gen::gnm(300, 1200, 11), gen::path(80), gen::star(50)]),
        gen::clique_chain(24, 5),
        gen::grid(17, 23),
        gen::gnm(500, 700, 13), // sparse: many small components
    ];
    for (gi, g) in graphs.iter().enumerate() {
        let truth = components(g);
        for dedup_every in [0, 1, 4] {
            let params = FasterParams {
                dedup_every,
                ..Default::default()
            };
            let seed = 90 + gi as u64;
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let report = faster_cc(&mut pram, g, seed, &params);
            assert!(
                same_partition(&truth, &report.run.labels),
                "graph #{gi} dedup_every={dedup_every}: wrong partition"
            );
        }
    }
}

/// The controller's compaction is charged, visible, and live-sized: it
/// must appear under `compaction_work` (not folded into step work) and
/// decay with the live subproblem like the steps do.
#[test]
fn compaction_work_is_distinct_and_decays() {
    let g = gen::path(1 << 13);
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
    let report = faster_cc(&mut pram, &g, 3, &FasterParams::default());
    assert!(same_partition(&components(&g), &report.run.labels));
    let pr = &report.run.per_round;
    assert!(pr.len() >= 4);
    for r in pr {
        assert!(
            r.compaction_work > 0,
            "round {}: compaction work missing from metrics",
            r.round
        );
    }
    let first = pr[0].compaction_work;
    let min_late = pr[pr.len() / 2..]
        .iter()
        .map(|r| r.compaction_work)
        .min()
        .unwrap();
    assert!(
        min_late * 10 <= first,
        "late-round compaction still pays near-O(n+m): first {first}, min late {min_late}"
    );
}

/// The postprocess is folded onto the final round's compacted state: its
/// whole charge (frontier flatten + final ALTER + materialization/rename +
/// the Theorem-1 solve on the deduplicated remaining root graph) must be
/// sublinear in the input, never the old O(n + m) sweeps.
#[test]
fn postprocess_work_is_sublinear_in_input() {
    let n: usize = 1 << 17;
    let g = gen::path(n);
    let m = g.m();
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(5));
    let report = faster_cc(&mut pram, &g, 5, &FasterParams::default());
    assert!(same_partition(&components(&g), &report.run.labels));
    assert!(
        report.post_work * 2 <= (n + m) as u64,
        "postprocess charged {} against n+m = {} (must be well below — \
         full-array flatten/ALTER/materialize has returned)",
        report.post_work,
        n + m
    );
}

/// Theorem-1 per-phase work must track the live subproblem. `delta0: 0`
/// skips PREPARE so the main loop itself does the contracting — with
/// full-array phases every phase costs the same; with live scheduling the
/// cheapest late phase is far below the first.
#[test]
fn theorem1_per_phase_work_decays_with_live() {
    let g = gen::gnm(6000, 9000, 17);
    let params = Theorem1Params {
        delta0: 0.0,
        ..Default::default()
    };
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(23));
    let report = connected_components(&mut pram, &g, 23, &params);
    assert!(same_partition(&components(&g), &report.labels));
    let pr = &report.per_round;
    assert!(
        pr.len() >= 3,
        "expected a multi-phase run, got {}",
        pr.len()
    );
    for r in pr {
        eprintln!(
            "t1 phase {:2}: work {:9} compaction {:8} live_arcs {:6} ongoing {:6}",
            r.round, r.work, r.compaction_work, r.live_arcs, r.ongoing
        );
        assert!(
            r.compaction_work > 0,
            "phase {} missing compaction work",
            r.round
        );
    }
    let first = pr[0].work;
    let min_late = pr[pr.len() / 2..].iter().map(|r| r.work).min().unwrap();
    assert!(
        min_late * 8 <= first,
        "late phases still pay near-O(n+m): first {first}, min late {min_late}"
    );
}

/// Same pin for the Theorem-2 spanning-forest driver.
#[test]
fn theorem2_per_phase_work_decays_with_live() {
    let g = gen::gnm(4000, 6000, 29);
    let params = Theorem1Params {
        delta0: 0.0,
        ..Default::default()
    };
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(31));
    let report = spanning_forest(&mut pram, &g, 31, &params);
    assert!(same_partition(&components(&g), &report.labels));
    let pr = &report.run.per_round;
    assert!(
        pr.len() >= 3,
        "expected a multi-phase run, got {}",
        pr.len()
    );
    for r in pr {
        eprintln!(
            "t2 phase {:2}: work {:9} compaction {:8} live_arcs {:6} ongoing {:6}",
            r.round, r.work, r.compaction_work, r.live_arcs, r.ongoing
        );
        assert!(
            r.compaction_work > 0,
            "phase {} missing compaction work",
            r.round
        );
    }
    let first = pr[0].work;
    let min_late = pr[pr.len() / 2..].iter().map(|r| r.work).min().unwrap();
    assert!(
        min_late * 8 <= first,
        "late phases still pay near-O(n+m): first {first}, min late {min_late}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Generation-stamped MAXLINK vs the clear-based path, across dedup
    /// cadences: the two paths are the same PRAM program modulo candidate
    /// memory layout, so under the seeded-ARBITRARY machine (whose winner
    /// hash covers cell addresses) they are two equally legal ARBITRARY
    /// executions — the partitions must be identical to each other and to
    /// ground truth for every cadence. (Bit-exact parent equality under
    /// layout-independent PRIORITY policies is pinned at the invocation
    /// level in `theorem3::maxlink`'s unit tests.)
    #[test]
    fn stamped_maxlink_matches_clear_based_partition(
        shape in 0usize..4,
        size in 24usize..160,
        seed in 0u64..500,
    ) {
        let g = match shape {
            0 => gen::gnm(size, 3 * size, seed),
            1 => gen::clique_chain(size / 6 + 2, 5),
            2 => gen::grid(size / 8 + 2, 8),
            _ => gen::union_all(&[gen::gnm(size / 2, size, seed), gen::path(size / 3 + 2)]),
        };
        let truth = components(&g);
        for dedup_every in [1u64, 2, 4, 8] {
            let mut labels = Vec::new();
            for stamps in [true, false] {
                let params = FasterParams {
                    dedup_every,
                    maxlink_stamps: stamps,
                    ..Default::default()
                };
                let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
                let r = faster_cc(&mut pram, &g, seed, &params);
                prop_assert!(
                    same_partition(&truth, &r.run.labels),
                    "stamps={stamps} dedup_every={dedup_every}: wrong partition"
                );
                labels.push(r.run.labels);
            }
            prop_assert!(
                same_partition(&labels[0], &labels[1]),
                "dedup_every={dedup_every}: stamped and clear-based partitions diverge"
            );
        }
    }

    /// Generation-stamped EXPAND phase state (`fdr` + step-3 liveness) vs
    /// the clear-based per-phase allocations, for both phase drivers
    /// (Theorem 1 labels, Theorem 2 forest): stamps never add or remove a
    /// synchronous step, so under the seeded-ARBITRARY machine the two
    /// paths are equally legal executions and the partitions must match
    /// each other and ground truth. (Bit-exact equality under the
    /// pid-only PRIORITY policies is pinned in `theorem1`'s unit tests.)
    #[test]
    fn stamped_expand_matches_clear_based_partition(
        shape in 0usize..4,
        size in 24usize..160,
        seed in 0u64..500,
    ) {
        let g = match shape {
            0 => gen::gnm(size, 3 * size, seed),
            1 => gen::clique_chain(size / 6 + 2, 5),
            2 => gen::grid(size / 8 + 2, 8),
            _ => gen::union_all(&[gen::gnm(size / 2, size, seed), gen::path(size / 3 + 2)]),
        };
        let truth = components(&g);
        let mut labels = Vec::new();
        for stamps in [true, false] {
            let params = Theorem1Params {
                expand_stamps: stamps,
                ..Default::default()
            };
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let r = connected_components(&mut pram, &g, seed, &params);
            prop_assert!(
                same_partition(&truth, &r.labels),
                "t1 expand_stamps={stamps}: wrong partition"
            );
            labels.push(r.labels);

            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let f = spanning_forest(&mut pram, &g, seed, &params);
            prop_assert!(
                same_partition(&truth, &f.labels),
                "t2 expand_stamps={stamps}: wrong partition"
            );
        }
        prop_assert!(
            same_partition(&labels[0], &labels[1]),
            "stamped and clear-based Theorem-1 partitions diverge"
        );
    }
}

/// Dedup cadence must not change the result even when runs are compared
/// against each other on a duplicate-heavy contraction (clique chains
/// funnel many arcs onto the same root pairs).
#[test]
fn dedup_cadence_is_label_invariant_on_duplicate_heavy_graphs() {
    let g = gen::clique_chain(40, 6);
    let truth = components(&g);
    for seed in [1u64, 2, 3] {
        for dedup_every in [0, 1, 2, 8] {
            let params = FasterParams {
                dedup_every,
                ..Default::default()
            };
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let r = faster_cc(&mut pram, &g, seed, &params);
            assert!(
                same_partition(&truth, &r.run.labels),
                "seed {seed} dedup_every {dedup_every}"
            );
        }
    }
}
