//! Live-work scheduling regression guards (PR 3).
//!
//! The Theorem-3 round must charge (and execute) work proportional to the
//! *live* subproblem — live arcs, live table cells, ongoing roots — not
//! O(n + m). These tests pin that property so a future refactor cannot
//! silently reintroduce full-array iteration, and verify that live-arc
//! filtering + periodic dedup never change the computed partition.

use logdiam::algorithms::theorem3::{faster_cc, FasterParams};
use logdiam::graph::gen;
use logdiam::graph::seq::{components, same_partition};
use logdiam::pram::{Pram, WritePolicy};

/// On a path graph the live subproblem shrinks geometrically; per-round
/// charged work must follow it down instead of staying pinned at O(n + m).
#[test]
fn path_per_round_work_decays_with_live_arcs() {
    let n: usize = 1 << 14;
    let g = gen::path(n);
    let m = g.m();
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(7));
    let report = faster_cc(&mut pram, &g, 7, &FasterParams::default());
    assert!(same_partition(&components(&g), &report.run.labels));

    let pr = &report.run.per_round;
    assert!(
        pr.len() >= 4,
        "expected a multi-round run, got {}",
        pr.len()
    );
    for r in pr {
        eprintln!(
            "round {:3}: work {:9} live_arcs {:6} ongoing {:6} dormant {:4}",
            r.round, r.work, r.live_arcs, r.ongoing, r.dormant
        );
    }
    eprintln!("total work {} (n+m = {})", report.run.stats.work, n + m);

    // (a) Work decays: the cheapest late round must be far below round 1
    // (with full-array iteration every round costs the same ±constant).
    let first = pr[0].work;
    let min_late = pr[pr.len() / 2..].iter().map(|r| r.work).min().unwrap();
    assert!(
        min_late * 20 <= first,
        "late rounds still pay near-O(n+m): first {first}, min late {min_late}"
    );

    // (b) Work is bounded by the live subproblem: each round's charge must
    // be within a constant of the previous round's live footprint (live
    // arcs dominate; ongoing roots bound the table/budget terms).
    for w in pr.windows(2) {
        let basis = (w[0].live_arcs + w[0].ongoing + 16) as u64;
        assert!(
            w[1].work <= 600 * basis,
            "round {} charged {} against live basis {} (> 600x)",
            w[1].round,
            w[1].work,
            basis
        );
    }

    // (c) Whole-run work stays near-linear in the input, not n·rounds.
    let total = report.run.stats.work;
    assert!(
        total <= 400 * (n + m) as u64,
        "total work {total} is not near-linear in n+m = {}",
        n + m
    );
}

/// Live-arc filtering and duplicate-arc dedup are work optimizations only:
/// the partition must match the sequential ground truth for every dedup
/// cadence, including "never".
#[test]
fn live_filtering_and_dedup_preserve_labels() {
    let graphs = [
        gen::union_all(&[gen::gnm(300, 1200, 11), gen::path(80), gen::star(50)]),
        gen::clique_chain(24, 5),
        gen::grid(17, 23),
        gen::gnm(500, 700, 13), // sparse: many small components
    ];
    for (gi, g) in graphs.iter().enumerate() {
        let truth = components(g);
        for dedup_every in [0, 1, 4] {
            let params = FasterParams {
                dedup_every,
                ..Default::default()
            };
            let seed = 90 + gi as u64;
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let report = faster_cc(&mut pram, g, seed, &params);
            assert!(
                same_partition(&truth, &report.run.labels),
                "graph #{gi} dedup_every={dedup_every}: wrong partition"
            );
        }
    }
}

/// Dedup cadence must not change the result even when runs are compared
/// against each other on a duplicate-heavy contraction (clique chains
/// funnel many arcs onto the same root pairs).
#[test]
fn dedup_cadence_is_label_invariant_on_duplicate_heavy_graphs() {
    let g = gen::clique_chain(40, 6);
    let truth = components(&g);
    for seed in [1u64, 2, 3] {
        for dedup_every in [0, 1, 2, 8] {
            let params = FasterParams {
                dedup_every,
                ..Default::default()
            };
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let r = faster_cc(&mut pram, &g, seed, &params);
            assert!(
                same_partition(&truth, &r.run.labels),
                "seed {seed} dedup_every {dedup_every}"
            );
        }
    }
}
