//! Property-based tests: random graphs × random seeds × random parameters
//! ⇒ every algorithm's output partition equals the sequential ground truth,
//! and every structural invariant holds.

use logdiam::algorithms::theorem1::{self, DensityMode, Theorem1Params};
use logdiam::algorithms::theorem2::spanning_forest;
use logdiam::algorithms::theorem3::{faster_cc, FasterParams};
use logdiam::algorithms::verify::{check_labels, check_spanning_forest};
use logdiam::graph::{gen, Graph, GraphBuilder};
use logdiam::pram::{Pram, WritePolicy};
use proptest::prelude::*;

/// Strategy: a random graph from a random family.
fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        // G(n, m)
        (20usize..200, 0usize..4, any::<u64>()).prop_map(|(n, dens, seed)| {
            let m = (n * (dens + 1)).min(n * (n - 1) / 2);
            gen::gnm(n, m, seed)
        }),
        // structured families
        (2usize..40, 2usize..8).prop_map(|(k, s)| gen::clique_chain(k, s)),
        (2usize..18, 2usize..18).prop_map(|(r, c)| gen::grid(r, c)),
        (10usize..200).prop_map(gen::path),
        (3usize..120).prop_map(gen::cycle),
        (10usize..200, any::<u64>()).prop_map(|(n, s)| gen::random_tree(n, s)),
        // sparse random edge soup with isolated vertices
        (
            10usize..120,
            proptest::collection::vec((0u32..120, 0u32..120), 0..200)
        )
            .prop_map(|(n, pairs)| {
                let mut b = GraphBuilder::new(n);
                for (u, v) in pairs {
                    if (u as usize) < n && (v as usize) < n {
                        b.add_edge(u, v);
                    }
                }
                b.build()
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn theorem3_matches_ground_truth(g in arb_graph(), seed in any::<u64>()) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let r = faster_cc(&mut pram, &g, seed, &FasterParams::default());
        prop_assert!(check_labels(&g, &r.run.labels).is_ok());
    }

    #[test]
    fn theorem1_matches_ground_truth(
        g in arb_graph(),
        seed in any::<u64>(),
        combining in any::<bool>(),
    ) {
        let params = Theorem1Params {
            density: if combining { DensityMode::Combining } else { DensityMode::NTildeRule },
            ..Default::default()
        };
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let r = theorem1::connected_components(&mut pram, &g, seed, &params);
        prop_assert!(check_labels(&g, &r.labels).is_ok());
    }

    #[test]
    fn spanning_forest_always_valid(g in arb_graph(), seed in any::<u64>()) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let r = spanning_forest(&mut pram, &g, seed, &Theorem1Params::default());
        prop_assert!(check_spanning_forest(&g, &r.forest_edges).is_ok());
        prop_assert!(check_labels(&g, &r.labels).is_ok());
    }

    #[test]
    fn theorem3_parameter_fuzz(
        g in arb_graph(),
        seed in any::<u64>(),
        kappa in 1.2f64..4.0,
        sampling in any::<bool>(),
        iters in 1u32..3,
        b1 in prop_oneof![Just(0u64), Just(4u64), Just(16u64), Just(64u64)],
        dedup_every in prop_oneof![Just(0u64), Just(1u64), Just(4u64), Just(9u64)],
    ) {
        // The machinery must be correct for ANY parameter setting — speed
        // is what the parameters tune, never correctness. `dedup_every`
        // exercises the live-arc dedup cadence of the PR3 scheduler.
        let params = FasterParams {
            kappa,
            enable_sampling: sampling,
            maxlink_iters: iters,
            b1,
            dedup_every,
            ..Default::default()
        };
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let r = faster_cc(&mut pram, &g, seed, &params);
        prop_assert!(check_labels(&g, &r.run.labels).is_ok());
    }
}
