//! Fast CI signal (<5s): the three public entry points agree with the
//! sequential ground truth on one tiny graph per shape class. The heavier
//! suites (`cross_check`, `end_to_end`, `proptest_cc`,
//! `simulator_semantics`) cover the same ground exhaustively; this one
//! exists so a broken build fails in seconds, not minutes.

use logdiam::algorithms::theorem1::Theorem1Params;
use logdiam::graph::seq::{components, num_components, same_partition};
use logdiam::graph::{gen, Graph, GraphBuilder};
use logdiam::prelude::*;

/// One tiny instance per shape class the paper's bounds care about:
/// high-diameter (path), low-diameter dense (clique chain), and
/// multi-component with isolated vertices.
fn smoke_graphs() -> Vec<(&'static str, Graph)> {
    let mut disconnected = GraphBuilder::new(12);
    // {0,1,2} a triangle, {3,4} an edge, 5..12 isolated.
    disconnected.add_edge(0, 1);
    disconnected.add_edge(1, 2);
    disconnected.add_edge(0, 2);
    disconnected.add_edge(3, 4);
    vec![
        ("path_32", gen::path(32)),
        ("clique_chain_4x5", gen::clique_chain(4, 5)),
        ("disconnected_12", disconnected.build()),
    ]
}

#[test]
fn connected_components_matches_ground_truth() {
    for (name, g) in smoke_graphs() {
        let got = logdiam::connected_components(&g);
        assert!(
            same_partition(&got, &components(&g)),
            "practical CC wrong on {name}"
        );
    }
}

#[test]
fn simulate_faster_cc_matches_ground_truth() {
    for (name, g) in smoke_graphs() {
        let (labels, rounds) = logdiam::simulate_faster_cc(&g, 0xC0FFEE);
        assert!(
            same_partition(&labels, &components(&g)),
            "simulated Theorem 3 wrong on {name}"
        );
        assert!(rounds > 0, "no simulated rounds recorded on {name}");
    }
}

#[test]
fn spanning_forest_valid_with_correct_edge_count() {
    for (name, g) in smoke_graphs() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(7));
        let r = spanning_forest(&mut pram, &g, 7, &Theorem1Params::default());
        check_spanning_forest(&g, &r.forest_edges).unwrap_or_else(|e| {
            panic!("invalid forest on {name}: {e:?}");
        });
        assert!(
            same_partition(&r.labels, &components(&g)),
            "forest labels wrong on {name}"
        );
        // A forest has exactly n - #components edges.
        assert_eq!(
            r.forest_edges.len(),
            g.n() - num_components(&g),
            "forest edge count wrong on {name}"
        );
    }
}
