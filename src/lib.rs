//! # `logdiam` — Connected Components on a PRAM in Log Diameter Time
//!
//! A from-scratch reproduction of **Liu, Tarjan, Zhong (SPAA 2020)**:
//! randomized ARBITRARY CRCW PRAM algorithms that compute connected
//! components and spanning forests in `O(log d + log log_{m/n} n)` /
//! `O(log d · log log_{m/n} n)` time with `O(m)` processors, where `d` is
//! the maximum component diameter.
//!
//! The workspace layers:
//!
//! | crate | contents |
//! |---|---|
//! | [`pram`] (`pram-sim`) | the CRCW PRAM simulator (ARBITRARY / PRIORITY / COMBINING) |
//! | [`kit`] (`pram-kit`) | pairwise-independent hashing, approximate compaction, SHORTCUT/ALTER |
//! | [`graph`] (`cc-graph`) | CSR graphs, workload generators, sequential ground truth |
//! | [`algorithms`] (`logdiam-cc`) | Theorems 1–3 plus classic baselines, on the simulator |
//! | [`parallel`] (`logdiam-par`) | practical rayon/atomics ports for wall-clock benches |
//! | [`service`] (`logdiam-svc`) | incremental connectivity service: batched edge streams, epoch snapshots, query API |
//! | [`obs`] (`logdiam-obs`) | observability: metrics registry, spans, structured telemetry events |
//!
//! ## Quickstart
//!
//! ```
//! use logdiam::prelude::*;
//!
//! // A low-diameter graph: 8 cliques of 16 vertices in a chain.
//! let g = logdiam::graph::gen::clique_chain(8, 16);
//!
//! // The paper's Theorem-3 algorithm on a simulated ARBITRARY CRCW PRAM.
//! let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(42));
//! let report = faster_cc(&mut pram, &g, 42, &FasterParams::default());
//! assert!(check_labels(&g, &report.run.labels).is_ok());
//! println!("EXPAND-MAXLINK rounds: {}", report.run.rounds);
//!
//! // The practical shared-memory port.
//! let labels = logdiam::parallel::unionfind::unionfind_cc(&g);
//! assert_eq!(labels[0], 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cc_graph as graph;
pub use logdiam_cc as algorithms;
pub use logdiam_obs as obs;
pub use logdiam_par as parallel;
pub use logdiam_svc as service;
pub use pram_kit as kit;
pub use pram_sim as pram;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::algorithms::theorem1::{connected_components, Theorem1Params};
    pub use crate::algorithms::theorem2::spanning_forest;
    pub use crate::algorithms::theorem3::{faster_cc, FasterParams};
    pub use crate::algorithms::verify::{check_labels, check_spanning_forest};
    pub use crate::pram::{Pram, WritePolicy};
    pub use crate::service::{ConnectivityService, EpochTicket, RebuildBackend, SvcParams};
}

use graph::Graph;

/// One-call connected components (practical shared-memory implementation;
/// labels are minimum-vertex representatives).
pub fn connected_components(g: &Graph) -> Vec<u32> {
    parallel::unionfind::unionfind_cc(g)
}

/// One-call simulated run of the paper's Theorem-3 algorithm; returns the
/// verified labeling and the simulated round count.
pub fn simulate_faster_cc(g: &Graph, seed: u64) -> (Vec<u32>, u64) {
    let mut pram = pram::Pram::new(pram::WritePolicy::ArbitrarySeeded(seed));
    let report = algorithms::theorem3::faster_cc(
        &mut pram,
        g,
        seed,
        &algorithms::theorem3::FasterParams::default(),
    );
    algorithms::verify::check_labels(g, &report.run.labels)
        .expect("simulated run produced an invalid labeling");
    (report.run.labels, report.run.rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_call_apis_agree() {
        let g = graph::gen::gnm(300, 900, 1);
        let a = connected_components(&g);
        let (b, rounds) = simulate_faster_cc(&g, 7);
        assert!(graph::seq::same_partition(&a, &b));
        assert!(rounds > 0);
    }
}
