//! `determinism_probe` — one CC entry point, one graph, one fingerprint.
//!
//! Helper binary for `tests/determinism.rs`: the rayon pool size is fixed
//! per process at first use, so comparing runs at different
//! `RAYON_NUM_THREADS` requires one process per thread count. The test
//! spawns this probe and compares stdout byte-for-byte.
//!
//! ```text
//! determinism_probe <algo> <family> <n> <seed>
//! ```
//!
//! Prints `<fingerprint-hex> <extra>` where the fingerprint hashes the
//! full component labeling (or, for `pram_stress`, the full memory image
//! and traffic counters — bit-identical across thread counts by the
//! sharded-commit design).

use logdiam::graph::{gen, Graph};
use logdiam::pram::{CellWidth, Pram, WritePolicy};

/// Machine constructor honoring `LOGDIAM_CELL_WIDTH` (`32` or `64`,
/// default 64). The determinism suite compares probe runs across the two
/// settings: narrow cells are a pure representation change, so every
/// fingerprint — labels, full memory image, traffic counters — must be
/// byte-identical to the full-width machine's.
fn make_pram(policy: WritePolicy) -> Pram {
    let width = match std::env::var("LOGDIAM_CELL_WIDTH").as_deref() {
        Ok("32") => CellWidth::W32,
        Ok("64") | Err(_) => CellWidth::W64,
        Ok(other) => panic!("LOGDIAM_CELL_WIDTH must be 32 or 64, got {other}"),
    };
    Pram::with_width(policy, width)
}

/// FNV-1a over a `u32` stream: tiny, dependency-free, and order-sensitive
/// (a permuted labeling fingerprints differently).
fn fnv1a(xs: impl IntoIterator<Item = u32>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in xs {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn graph_for(family: &str, n: usize, seed: u64) -> Graph {
    match family {
        "path" => gen::path(n),
        "grid" => gen::grid(n.max(4) / 4, 4),
        "gnm" => gen::gnm(n, 3 * n, seed),
        "powerlaw" => gen::preferential_attachment(n, 3, seed),
        "mixture" => gen::union_all(&[
            gen::gnm(n / 2, n, seed),
            gen::path(n / 4),
            gen::star(n.max(4) / 4),
        ]),
        other => panic!("unknown family {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, algo, family, n, seed] = &args[..] else {
        eprintln!("usage: determinism_probe <algo> <family> <n> <seed>");
        std::process::exit(2);
    };
    let n: usize = n.parse().expect("n must be a number");
    let seed: u64 = seed.parse().expect("seed must be a number");

    // `pram_stress` needs no graph: it hammers one machine with
    // conflicting writes and fingerprints everything observable.
    if algo == "pram_stress" {
        let mut pram = make_pram(WritePolicy::ArbitrarySeeded(seed));
        let xs = pram.alloc(n);
        for round in 0..8u64 {
            pram.step(8 * n, |p, ctx| {
                let r = ctx.rand(round);
                let i = (r % n as u64) as usize;
                let v = ctx.read(xs, i);
                ctx.write(xs, i, v ^ r ^ p);
            });
        }
        let stats = pram.stats();
        let mem = fnv1a(pram.read_vec(xs).into_iter().flat_map(|w| {
            let lo = w as u32;
            let hi = (w >> 32) as u32;
            [lo, hi]
        }));
        println!(
            "{mem:016x} reads={} writes={} conflicts={} max_ops={}",
            stats.reads, stats.writes, stats.write_conflicts, stats.max_ops_per_proc
        );
        return;
    }

    // `svc` replays a batched edge stream through the connectivity
    // service (small rebuild threshold so the fold-and-pipelined-rebuild
    // path runs mid-trace) once per shard count, and fingerprints every
    // epoch's published labels plus the deterministic spectrum counters —
    // the whole maintained history must be identical at any thread count
    // AND for every shard count (the async split's core invariant: epoch
    // assignment is totally ordered by the writer, labels are canonical).
    if algo == "svc" {
        use logdiam::service::{ConnectivityService, SvcParams};
        let g = graph_for(family, n, seed);
        let mut edges = g.edges().to_vec();
        logdiam::graph::Rng::new(seed ^ 0x57EA4).shuffle(&mut edges);
        let (initial_edges, stream) = edges.split_at(edges.len() / 2);
        let mut b = logdiam::graph::GraphBuilder::new(g.n());
        for &(u, v) in initial_edges {
            b.add_edge(u, v);
        }
        let initial = b.build();
        let mut acc = 0u64;
        let mut last = (0, 0, 0);
        for shard_count in [1usize, 3, 8] {
            let svc = ConnectivityService::new(
                initial.clone(),
                SvcParams {
                    rebuild_threshold: 48,
                    snapshot_history: 4,
                    shard_count,
                    ..SvcParams::default()
                },
            );
            acc = acc
                .rotate_left(7)
                .wrapping_add(fnv1a(svc.latest().labels().iter().copied()));
            for chunk in stream.chunks(17) {
                svc.apply_batch(chunk).wait().unwrap();
                acc = acc
                    .rotate_left(1)
                    .wrapping_add(fnv1a(svc.latest().labels().iter().copied()));
            }
            svc.apply_batch(&[]).wait().unwrap(); // empty commit must be deterministic too
            let sp = svc.spectrum();
            // cross_unions is shard-geometry-dependent but must be a pure
            // function of (replay, shard_count): fold it in per shard run.
            acc = acc.rotate_left(3).wrapping_add(sp.cross_unions);
            last = (sp.epoch, sp.components, sp.rebuilds);
        }
        println!(
            "{acc:016x} epoch={} components={} rebuilds={}",
            last.0, last.1, last.2
        );
        return;
    }

    // `graph_build` fingerprints the built graph itself (the canonical
    // edge list), no CC run attached: the spill arm of the determinism
    // suite compares this with `LOGDIAM_RUN_SPILL` set and unset — an
    // out-of-core build must produce the byte-identical CSR.
    if algo == "graph_build" {
        let g = graph_for(family, n, seed);
        let fp = fnv1a(g.edges().iter().flat_map(|&(u, v)| [u, v]));
        println!("{fp:016x} n={} m={}", g.n(), g.m());
        return;
    }

    let g = graph_for(family, n, seed);
    let labels: Vec<u32> = match algo.as_str() {
        // --- simulated (logdiam-cc); all on seeded-ARBITRARY machines ---
        "theorem1" => {
            let mut pram = make_pram(WritePolicy::ArbitrarySeeded(seed));
            logdiam::algorithms::theorem1::connected_components(
                &mut pram,
                &g,
                seed,
                &logdiam::algorithms::theorem1::Theorem1Params::default(),
            )
            .labels
        }
        "theorem2" => {
            let mut pram = make_pram(WritePolicy::ArbitrarySeeded(seed));
            logdiam::algorithms::theorem2::spanning_forest(
                &mut pram,
                &g,
                seed,
                &logdiam::algorithms::theorem1::Theorem1Params::default(),
            )
            .labels
        }
        "theorem3" => {
            let mut pram = make_pram(WritePolicy::ArbitrarySeeded(seed));
            logdiam::algorithms::theorem3::faster_cc(
                &mut pram,
                &g,
                seed,
                &logdiam::algorithms::theorem3::FasterParams::default(),
            )
            .run
            .labels
        }
        // The clear-based EXPAND legacy path (per-phase fdr/liveness
        // allocations instead of generation stamps): a distinct scheduling
        // of the same algorithm, equally thread-count invariant.
        "theorem1_nostamp" => {
            let mut pram = make_pram(WritePolicy::ArbitrarySeeded(seed));
            logdiam::algorithms::theorem1::connected_components(
                &mut pram,
                &g,
                seed,
                &logdiam::algorithms::theorem1::Theorem1Params {
                    expand_stamps: false,
                    ..Default::default()
                },
            )
            .labels
        }
        // The clear-based MAXLINK legacy path: its per-iteration clear and
        // n-cell candidate array are a distinct scheduling of the same
        // algorithm and must be just as thread-count invariant.
        "theorem3_nostamp" => {
            let mut pram = make_pram(WritePolicy::ArbitrarySeeded(seed));
            logdiam::algorithms::theorem3::faster_cc(
                &mut pram,
                &g,
                seed,
                &logdiam::algorithms::theorem3::FasterParams {
                    maxlink_stamps: false,
                    ..Default::default()
                },
            )
            .run
            .labels
        }
        "vanilla" => {
            let mut pram = make_pram(WritePolicy::ArbitrarySeeded(seed));
            logdiam::algorithms::vanilla::vanilla(&mut pram, &g, seed).labels
        }
        "awerbuch_shiloach" => {
            let mut pram = make_pram(WritePolicy::ArbitrarySeeded(seed));
            logdiam::algorithms::baselines::awerbuch_shiloach(&mut pram, &g).labels
        }
        "labelprop_sim" => {
            let mut pram = make_pram(WritePolicy::ArbitrarySeeded(seed));
            logdiam::algorithms::baselines::labelprop(&mut pram, &g).labels
        }
        // --- practical shared-memory ports (logdiam-par) ---
        "par_labelprop" => logdiam::parallel::labelprop::labelprop_cc(&g),
        "par_unionfind" => logdiam::parallel::unionfind::unionfind_cc(&g),
        "par_sv" => logdiam::parallel::sv::sv_cc(&g),
        "par_contract" => logdiam::parallel::contract::contract_cc(&g),
        "par_bfs" => logdiam::parallel::bfs::bfs_cc(&g),
        other => panic!("unknown algorithm {other}"),
    };
    println!("{:016x} n={}", fnv1a(labels.iter().copied()), labels.len());
}
