//! Quickstart: run the paper's algorithm on a simulated PRAM and compare
//! with the practical port and sequential ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use logdiam::prelude::*;

fn main() {
    // A "small-diameter internet-like" graph: 20k vertices, 100k edges.
    let g = logdiam::graph::gen::gnm(20_000, 100_000, 7);
    println!(
        "graph: n = {}, m = {}, components = {}",
        g.n(),
        g.m(),
        logdiam::graph::seq::num_components(&g)
    );

    // --- Theorem 3 on the simulated ARBITRARY CRCW PRAM -----------------
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(42));
    let report = faster_cc(&mut pram, &g, 42, &FasterParams::default());
    check_labels(&g, &report.run.labels).expect("labels must match ground truth");
    println!(
        "Theorem 3 (simulated): {} EXPAND-MAXLINK rounds + {} postprocess phases ({:?})",
        report.run.rounds, report.post.rounds, report.run.stop
    );
    println!(
        "  simulated resources: {} steps, {} work, {} peak words, max level {}",
        report.run.stats.steps,
        report.run.stats.work,
        report.run.stats.peak_words,
        report.run.max_level()
    );

    // --- Theorem 1 (the O(log d · log log n) algorithm) ------------------
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(42));
    let t1 = connected_components(&mut pram, &g, 42, &Theorem1Params::default());
    check_labels(&g, &t1.labels).expect("labels must match ground truth");
    println!(
        "Theorem 1 (simulated): {} phases (+{} PREPARE)",
        t1.rounds, t1.prepare_rounds
    );

    // --- practical shared-memory port ------------------------------------
    let t0 = std::time::Instant::now();
    let labels = logdiam::parallel::unionfind::unionfind_cc(&g);
    println!(
        "practical union-find: {:.1} ms on {} threads",
        t0.elapsed().as_secs_f64() * 1e3,
        rayon::current_num_threads()
    );
    assert!(logdiam::graph::seq::same_partition(
        &labels,
        &report.run.labels
    ));
    println!("all three agree ✓");
}
