//! Direct use of the PRAM simulator: concurrent-write semantics, the
//! COMBINING model, and approximate compaction — the paper's §2 toolbox.
//!
//! ```text
//! cargo run --release --example pram_playground
//! ```

use logdiam::kit::compaction::{compact, CompactionMode};
use logdiam::pram::{CombineOp, Pram, WritePolicy, NULL};

fn main() {
    // --- ARBITRARY concurrent writes ------------------------------------
    println!("ARBITRARY CRCW: 1000 processors write their id to one cell.");
    for seed in [1u64, 2, 3] {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let cell = pram.alloc_filled(1, NULL);
        pram.step(1000, |p, ctx| ctx.write(cell, 0, p));
        println!("  seed {seed}: winner = {}", pram.get(cell, 0));
    }
    println!("  (different seeds = different, equally legal, machines)\n");

    // --- PRIORITY resolution ---------------------------------------------
    let mut pram = Pram::new(WritePolicy::PriorityMin);
    let cell = pram.alloc_filled(1, NULL);
    pram.step(1000, |p, ctx| ctx.write(cell, 0, p));
    println!(
        "PRIORITY(min): winner = {} (always processor 0)\n",
        pram.get(cell, 0)
    );

    // --- COMBINING: count in O(1) ----------------------------------------
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(7));
    let counter = pram.alloc_filled(1, 0);
    pram.step_combine(12345, CombineOp::Sum, |_, ctx| ctx.write(counter, 0, 1));
    println!(
        "COMBINING(sum): {} processors counted in one step → {}\n",
        12345,
        pram.get(counter, 0)
    );

    // --- approximate compaction (Lemma D.2) -------------------------------
    let n = 1 << 14;
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(9));
    let active = pram.alloc_filled(n, 0);
    let mut k = 0;
    for v in (0..n).step_by(37) {
        pram.set(active, v, 1);
        k += 1;
    }
    let res = compact(&mut pram, active, 99, CompactionMode::Measured).unwrap();
    println!(
        "approximate compaction: {k} distinguished cells of an array of {n} \
         mapped one-to-one into {} slots in {} retry rounds",
        res.cap, res.rounds
    );
    let stats = pram.stats();
    println!(
        "machine accounting: steps={} work={} reads={} writes={} peak_words={}",
        stats.steps, stats.work, stats.reads, stats.writes, stats.peak_words
    );
}
