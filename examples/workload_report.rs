//! Characterize workloads through the lens of the paper's bound:
//! `O(log d + log log_{m/n} n)` — then run Theorem 3 and compare the
//! measured rounds with the two terms.
//!
//! ```text
//! cargo run --release --example workload_report
//! ```

use logdiam::graph::{gen, GraphStats};
use logdiam::prelude::*;

fn main() {
    let workloads: Vec<(&str, logdiam::graph::Graph)> = vec![
        (
            "preferential attachment",
            gen::preferential_attachment(20_000, 3, 1),
        ),
        ("random 6-regular", gen::random_regular(20_000, 6, 2)),
        ("G(n, 3n)", gen::gnm(20_000, 60_000, 3)),
        ("grid 140×140", gen::grid(140, 140)),
        ("clique chain 256×8", gen::clique_chain(256, 8)),
        ("binary tree", gen::binary_tree(1 << 14)),
        (
            "3-component mixture",
            gen::union_all(&[
                gen::gnm(5000, 20_000, 4),
                gen::grid(40, 50),
                gen::cycle(800),
            ]),
        ),
    ];

    println!(
        "{:<26} {:>8} {:>9} {:>7} {:>8} {:>9} {:>7}",
        "workload", "n", "m", "d≥", "log2 d", "loglog", "rounds"
    );
    for (name, g) in &workloads {
        let stats = GraphStats::of(g);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(9));
        let report = faster_cc(&mut pram, g, 9, &FasterParams::default());
        check_labels(g, &report.run.labels).expect("verified");
        println!(
            "{:<26} {:>8} {:>9} {:>7} {:>8.1} {:>9.2} {:>7}",
            name,
            stats.n,
            stats.m,
            stats.diameter_lb,
            stats.log2_d,
            stats.loglog_density_n,
            report.run.rounds
        );
    }
    println!("\nrounds should track (log2 d + loglog) up to small constants — the");
    println!("Theorem 3 bound — rather than log2 n ≈ 14 for these sizes.");
}
