//! Theorem 2: compute a spanning forest on the simulated PRAM, validate
//! it, and show the per-component trees.
//!
//! ```text
//! cargo run --release --example spanning_forest_demo
//! ```

use logdiam::prelude::*;

fn main() {
    // A multi-component mixture: the forest must contain one spanning tree
    // per component, built only from input edges.
    let g = logdiam::graph::gen::union_all(&[
        logdiam::graph::gen::gnm(3000, 9000, 11),
        logdiam::graph::gen::grid(25, 40),
        logdiam::graph::gen::binary_tree(511),
        logdiam::graph::gen::cycle(600),
    ]);
    let comps = logdiam::graph::seq::num_components(&g);
    println!(
        "graph: n = {}, m = {}, components = {}",
        g.n(),
        g.m(),
        comps
    );

    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(23));
    let report = spanning_forest(&mut pram, &g, 23, &Theorem1Params::default());

    check_spanning_forest(&g, &report.forest_edges).expect("forest must validate");
    check_labels(&g, &report.labels).expect("labels must match ground truth");

    println!(
        "spanning forest: {} edges (= n - #components = {}), phases = {} (+{} prepare)",
        report.forest_edges.len(),
        g.n() - comps,
        report.run.rounds,
        report.run.prepare_rounds,
    );
    println!(
        "max tree height right after TREE-LINK: {} (Lemma C.8 bound: diameter)",
        report.max_height_observed
    );

    // Show a few forest edges with their endpoints' components.
    println!("first forest edges:");
    for &e in report.forest_edges.iter().take(8) {
        let (u, v) = g.edges()[e];
        println!(
            "  edge #{e}: ({u}, {v}) in component {}",
            report.labels[u as usize]
        );
    }
}
