//! The paper's motivating contrast (§1): "many graphs in applications have
//! components of small diameter". Compare simulated round counts on a
//! social-network-like graph (tiny diameter) against a road-network-like
//! grid (diameter Θ(√n)) — for the paper's algorithm and the classic
//! Θ(log n) baselines.
//!
//! ```text
//! cargo run --release --example social_vs_road
//! ```

use logdiam::algorithms::baselines::awerbuch_shiloach;
use logdiam::algorithms::vanilla::vanilla;
use logdiam::prelude::*;

fn report_for(name: &str, g: &logdiam::graph::Graph) {
    let d = logdiam::graph::seq::diameter_lower_bound(g);
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
    let t3 = faster_cc(&mut pram, g, 1, &FasterParams::default());
    check_labels(g, &t3.run.labels).unwrap();

    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
    let sv = awerbuch_shiloach(&mut pram, g);
    check_labels(g, &sv.labels).unwrap();

    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
    let rf = vanilla(&mut pram, g, 1);
    check_labels(g, &rf.labels).unwrap();

    println!(
        "{name:<28} n={:<7} m={:<8} d≥{:<5} | Theorem3: {:>2} rounds | \
         Awerbuch-Shiloach: {:>2} | Reif random-mate: {:>2}",
        g.n(),
        g.m(),
        d,
        t3.run.rounds,
        sv.rounds,
        rf.rounds
    );
}

fn main() {
    println!("Rounds on small-diameter vs large-diameter graphs\n");

    // "Social network": expander-ish, d = O(log n).
    let social = logdiam::graph::gen::random_regular(30_000, 8, 3);
    report_for("social (random 8-regular)", &social);

    // "Web-ish": sparse giant component, still small diameter.
    let web = logdiam::graph::gen::gnm(30_000, 90_000, 5);
    report_for("web-ish G(n, 3n)", &web);

    // "Road network": grid, d = Θ(√n).
    let road = logdiam::graph::gen::grid(170, 170);
    report_for("road (170x170 grid)", &road);

    // Extreme diameter: a long clique chain.
    let chain = logdiam::graph::gen::clique_chain(512, 8);
    report_for("clique chain (d≈1500)", &chain);

    println!(
        "\nThe paper's point: Theorem 3 tracks log d (flat on the first two, \
         growing gently below), while the classic algorithms pay Θ(log n) \
         everywhere."
    );
}
