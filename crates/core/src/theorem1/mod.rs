//! **Theorem 1** — Connected Components in `O(log d · log log_{m/n} n)`
//! (§B of the paper):
//!
//! ```text
//! PREPARE; repeat { EXPAND; VOTE; LINK; SHORTCUT; ALTER } until no non-loop edge
//! ```
//!
//! * `PREPARE` (§B.2): Vanilla phases until the ongoing-vertex density
//!   `δ = m/n'` reaches a target, giving every later phase a large
//!   neighbour-table budget.
//! * `EXPAND` (§B.3, [`expand`]): each ongoing vertex that wins a private
//!   block grows a hash table of everything within distance `2^i` by
//!   repeated table squaring; collisions and blockless vertices go
//!   *dormant* and dormancy propagates. `O(log d)` inner rounds.
//! * `VOTE` (§B.4, [`vote`]): live vertices elect the component minimum;
//!   dormant vertices flip a leader coin.
//! * `LINK`: non-leaders hook onto a leader found in their table.
//!
//! Progress: each phase cuts the number of ongoing vertices by a positive
//! power of `δ`, so `O(log log_{m/n} n)` phases suffice — the
//! double-exponential decay experiment E2 measures exactly this.
//!
//! The density `δ` is tracked either by a COMBINING sum (§B,
//! Assumption B.6) or by the §B.5 `ñ` update rule on a pure ARBITRARY
//! machine ([`DensityMode`]); tests cross-check the two.
//!
//! **Live-work scheduling.** The driver maintains a [`LiveSet`] (the
//! Lemma-D.2 compaction for the phase-structured drivers, see
//! [`crate::live`]) and schedules every charged step of every phase —
//! PREPARE's Vanilla phases, EXPAND, VOTE, SHORTCUT, ALTER, the COMBINING
//! ongoing count, and the convergence test — over its lists, so a phase
//! costs O(live), not O(n + m). The per-phase refresh is itself charged
//! and reported under [`RoundMetrics::compaction_work`].

mod expand;
mod vote;

pub use expand::{expand, ExpandParams, ExpandScratch, Expansion, PhaseCells};
pub use vote::{link_step, vote};

use crate::live::LiveSet;
use crate::metrics::{RoundMetrics, RunReport, StopReason};
use crate::state::CcState;
use crate::vanilla::{phase_cap, vanilla_phase};
use crate::verify;
use cc_graph::Graph;
use pram_kit::ops::{alter_over, shortcut_over};
use pram_sim::{Pram, NULL};

/// How the per-phase ongoing-vertex count `n'` is obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DensityMode {
    /// COMBINING CRCW sum (Assumption B.6): exact `n'`, one combining step
    /// per phase.
    Combining,
    /// Pure ARBITRARY machine: the §B.5 `ñ` update rule (`ñ` divided by a
    /// fixed factor per phase; never read from the machine).
    NTildeRule,
}

/// Tunable parameters (see crate docs on parameter substitution; the
/// paper's values are given in brackets).
#[derive(Clone, Copy, Debug)]
pub struct Theorem1Params {
    /// Density target PREPARE must reach before the main loop
    /// [paper: `log^c n`, `c = 100`].
    pub delta0: f64,
    /// Table size `K = δ^table_exp` [paper: 1/3; default 1/2 — the largest
    /// exponent that keeps the per-step processor count at `O(m)`, since a
    /// squaring step costs `ñ·K² ≤ ñ·δ = m` processors. The paper's 1/3
    /// leaves a `b^6` slack factor that only matters at astronomical `n`].
    pub table_exp: f64,
    /// Leader probability for dormant vertices:
    /// `clamp(leader_coeff · (K/2)^{-leader_exp}, 0.05, leader_cap)`
    /// [paper: `b^{-2/3}` with threshold `b`; at laptop scale the operative
    /// threshold is the table capacity `≈ K/2`].
    pub leader_coeff: f64,
    /// Exponent in the dormant-leader probability [paper: 2/3].
    pub leader_exp: f64,
    /// Cap on the leader probability.
    pub leader_cap: f64,
    /// `ñ` reduction per phase in [`DensityMode::NTildeRule`]:
    /// `ñ /= max(2, reduction_safety / p_lead)` — the expected contraction
    /// is `1/p_lead`, discounted by a safety factor
    /// [paper: `b^{1/4} = δ^{1/72}`, i.e. extremely conservative].
    pub reduction_safety: f64,
    /// Density accounting mode.
    pub density: DensityMode,
    /// Phase cap (0 = auto).
    pub max_phases: u64,
    /// Largest table size `K`.
    pub max_table: usize,
    /// Back EXPAND's per-vertex phase arrays (`fdr`, step-3 liveness) by
    /// driver-lifetime generation-stamped blocks ([`ExpandScratch`]): the
    /// per-phase refill becomes a stamp bump instead of an O(n) memset,
    /// removing the last per-phase work that scales with `n` rather than
    /// the live set. `false` restores the clear-based per-phase
    /// allocations; the two are equivalent (identical step sequence and
    /// coin streams — pinned by the `live_work` equivalence proptest and
    /// the priority-policy unit tests, like the MAXLINK stamps of
    /// [`crate::theorem3::FasterParams::maxlink_stamps`]).
    pub expand_stamps: bool,
}

impl Default for Theorem1Params {
    fn default() -> Self {
        Theorem1Params {
            delta0: 8.0,
            table_exp: 0.5,
            leader_coeff: 1.0,
            leader_exp: 2.0 / 3.0,
            leader_cap: 0.5,
            reduction_safety: 0.5,
            density: DensityMode::Combining,
            max_phases: 0,
            max_table: 1 << 12,
            expand_stamps: true,
        }
    }
}

impl Theorem1Params {
    /// Derived table size for density `δ`.
    pub fn table_size(&self, delta: f64) -> usize {
        let k = delta.max(1.0).powf(self.table_exp).ceil() as usize;
        k.next_power_of_two().clamp(4, self.max_table)
    }

    /// Derived dormant-leader probability for table size `k`.
    pub fn leader_prob(&self, k: usize) -> f64 {
        (self.leader_coeff * (k as f64 / 2.0).powf(-self.leader_exp)).clamp(0.05, self.leader_cap)
    }

    /// Derived `ñ` reduction factor for table size `k`.
    pub fn reduction(&self, k: usize) -> f64 {
        (self.reduction_safety / self.leader_prob(k)).max(2.0)
    }
}

/// Exact ongoing-vertex count (Assumption B.6's COMBINING sum): the
/// [`LiveSet`] maintains exactly the set of non-loop-arc endpoints, so the
/// count is its vertex-list length; one combining step over the ongoing
/// vertices (each writes 1 into the sum cell) is charged — O(live), where
/// the full-array version paid O(n + m) per phase.
pub(crate) fn live_count_ongoing(pram: &mut Pram, live: &LiveSet) -> usize {
    pram.charge(live.verts.len(), 1);
    live.verts.len()
}

/// Run Theorem 1's Connected Components algorithm on `g`.
pub fn connected_components(
    pram: &mut Pram,
    g: &Graph,
    seed: u64,
    params: &Theorem1Params,
) -> RunReport {
    let st = CcState::init(pram, g);
    let report = connected_components_on_state(pram, &st, seed, params, g.m());
    let labels = st.labels_rooted(pram);
    st.free(pram);
    RunReport { labels, ..report }
}

/// Theorem 1 on an existing machine state (used directly and as the
/// postprocessing stage of Theorem 3). `m_edges` is the edge count used
/// for the density parameter. The caller reads labels from `st` afterwards.
pub fn connected_components_on_state(
    pram: &mut Pram,
    st: &CcState,
    seed: u64,
    params: &Theorem1Params,
    m_edges: usize,
) -> RunReport {
    let n = st.n;
    let m_eff = m_edges.max(1) as f64;
    let leader = pram.alloc(n);
    let mut per_round = Vec::new();
    // The one O(m) pass; every later refresh scans live lists only.
    let mut live = LiveSet::full(pram, st);

    // ---------------------------------------------------------- PREPARE
    // Vanilla phases until δ = m/ñ reaches delta0 (§B.2); on sparse inputs
    // this runs O(log log n) phases.
    let mut ntilde = n as f64;
    let mut prepare_rounds = 0;
    let prepare_cap = phase_cap(n);
    while m_eff / ntilde < params.delta0 && prepare_rounds < prepare_cap && !live.is_solved() {
        prepare_rounds += 1;
        vanilla_phase(pram, st, &live, leader, seed.wrapping_add(prepare_rounds));
        live.refresh(pram, st);
        match params.density {
            DensityMode::Combining => {
                ntilde = live_count_ongoing(pram, &live).max(1) as f64;
            }
            DensityMode::NTildeRule => {
                // Corollary B.4 decay model, conservatively slower (7/8 is
                // the guaranteed expectation; we use 0.95 as a whp-safe
                // envelope).
                ntilde *= 0.95;
            }
        }
    }
    if live.is_solved() {
        // Solved already (tiny graphs).
        pram.free(leader);
        let stats = pram.stats();
        return RunReport {
            labels: Vec::new(),
            rounds: 0,
            prepare_rounds,
            stop: StopReason::Converged,
            stats,
            per_round,
        };
    }

    // ---------------------------------------------------------- main loop
    // Driver-lifetime stamped scratch for EXPAND's per-vertex arrays: one
    // allocation, every phase refills by a generation bump.
    let mut scratch = params.expand_stamps.then(|| ExpandScratch::new(pram, n));
    let max_phases = if params.max_phases > 0 {
        params.max_phases
    } else {
        phase_cap(n)
    };
    let mut stop = StopReason::RoundCap;
    let mut phase = 0;
    // Monotonicity audit (§2.1): Theorem 1's links only merge trees, so
    // the induced partition may only coarsen phase over phase. Checked in
    // this crate's tests and under the `strict` feature.
    let mut prev_labels: Option<Vec<u32>> = None;
    while phase < max_phases {
        phase += 1;
        let phase_seed = seed ^ (phase.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let step_work0 = pram.stats().work;
        let delta = (m_eff / ntilde).max(1.0);
        let k = params.table_size(delta);
        // Blocks: the paper's m/b¹² = ñ·K, K-fold oversubscribed so almost
        // every ongoing vertex wins one; floor of 2ñ when K is clamped.
        // Live arcs (not the original arc count) size the block pool, so
        // table allocation and the squaring copies shrink with the
        // subproblem.
        let nblocks = ((2.0 * ntilde) as usize)
            .max(live.arcs.len() / 2 / (k * k))
            .max(8)
            .next_power_of_two();
        let exp_params = ExpandParams {
            table_size: k,
            nblocks,
            snapshot: false,
            round_cap: (n.max(2) as f64).log2().ceil() as u64 + 6,
        };
        let expansion = expand(pram, st, &exp_params, phase_seed, &live, scratch.as_mut());
        let p_lead = params.leader_prob(k);
        vote(pram, st, &expansion, &live, leader, p_lead, phase_seed);
        link_step(pram, st, &expansion, leader);
        shortcut_over(pram, st.parent, &live.verts);
        alter_over(pram, st.eu, st.ev, st.parent, &live.arcs);

        // Dormancy is recorded only for (pre-phase) live vertices — count
        // over the live list instead of a full-n scan.
        let dormant = live
            .verts
            .iter()
            .filter(|&&v| expansion.fdr.host_get(pram, v as usize) != NULL)
            .count() as u64;
        let expand_rounds = expansion.rounds;
        let table_words = (expansion.nblocks * expansion.k) as u64;
        expansion.free(pram);
        let step_work = pram.stats().work - step_work0;

        let compaction0 = pram.stats().work;
        live.refresh(pram, st);
        per_round.push(RoundMetrics {
            round: phase,
            roots: live.roots.len(),
            ongoing: live.verts.len(),
            dormant,
            expand_rounds,
            table_words,
            work: step_work,
            compaction_work: pram.stats().work - compaction0,
            live_arcs: live.arcs.len(),
            ..Default::default()
        });

        if cfg!(any(test, feature = "strict")) {
            let next = st.labels_rooted(pram);
            if let Some(prev) = prev_labels.as_ref() {
                assert!(
                    verify::partition_coarsens(prev, &next),
                    "Theorem 1 violated monotonicity in phase {phase}"
                );
            }
            prev_labels = Some(next);
        }

        if live.is_solved() {
            stop = StopReason::Converged;
            break;
        }
        match params.density {
            DensityMode::Combining => {
                ntilde = live_count_ongoing(pram, &live).max(1) as f64;
            }
            DensityMode::NTildeRule => {
                ntilde = (ntilde / params.reduction(k)).max(1.0);
            }
        }
    }

    // Correctness fallback: if the phase cap was hit (possible only under
    // adversarial parameters — E6 counts it), finish with Vanilla, which is
    // always correct.
    if stop == StopReason::RoundCap {
        let cap = phase_cap(n);
        let mut extra = 0;
        while !live.is_solved() && extra < cap {
            extra += 1;
            vanilla_phase(pram, st, &live, leader, seed ^ 0xFA11_BACC ^ extra);
            live.refresh(pram, st);
        }
    }

    // Whole-array acyclicity audit: an O(n) host walk, so it runs only in
    // tests and under the `strict` feature (like the monotonicity audit
    // above) — the charged algorithm never pays for it.
    if cfg!(any(test, feature = "strict")) {
        assert!(
            verify::forest_heights(&pram.read_vec(st.parent)).is_ok(),
            "Theorem 1 produced a cyclic labeled digraph"
        );
    }
    if let Some(s) = scratch {
        s.free(pram);
    }
    pram.free(leader);
    let stats = pram.stats();
    RunReport {
        labels: Vec::new(),
        rounds: phase,
        prepare_rounds,
        stop,
        stats,
        per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_labels;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    fn run(g: &Graph, seed: u64, params: &Theorem1Params) -> RunReport {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        connected_components(&mut pram, g, seed, params)
    }

    #[test]
    fn correct_on_basic_shapes() {
        let params = Theorem1Params::default();
        for g in [
            gen::path(60),
            gen::cycle(41),
            gen::star(64),
            gen::complete(24),
            gen::grid(7, 9),
            gen::union_all(&[gen::path(13), gen::cycle(9), gen::complete(6)]),
        ] {
            let report = run(&g, 5, &params);
            check_labels(&g, &report.labels)
                .unwrap_or_else(|e| panic!("graph n={} m={}: {e}", g.n(), g.m()));
        }
    }

    #[test]
    fn correct_on_random_graphs_multiple_seeds() {
        let params = Theorem1Params::default();
        for seed in 0..6 {
            let g = gen::gnm(400, 1600, seed);
            let report = run(&g, seed * 31 + 1, &params);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn correct_under_all_policies() {
        let g = gen::gnm(300, 1200, 7);
        let params = Theorem1Params::default();
        for policy in [
            WritePolicy::ArbitrarySeeded(3),
            WritePolicy::PriorityMin,
            WritePolicy::PriorityMax,
            WritePolicy::Racy,
        ] {
            let mut pram = Pram::new(policy);
            let report = connected_components(&mut pram, &g, 9, &params);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn ntilde_rule_matches_combining_correctness() {
        let g = gen::gnm(500, 2500, 11);
        for density in [DensityMode::Combining, DensityMode::NTildeRule] {
            let params = Theorem1Params {
                density,
                ..Default::default()
            };
            let report = run(&g, 13, &params);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn dense_graph_needs_few_phases() {
        // m/n = 32: expansion tables are big, expect very few phases.
        let g = gen::gnm(512, 512 * 32, 3);
        let params = Theorem1Params::default();
        let report = run(&g, 17, &params);
        check_labels(&g, &report.labels).unwrap();
        assert!(
            report.rounds <= 8,
            "dense graph took {} phases",
            report.rounds
        );
    }

    #[test]
    fn multi_component_mixture() {
        let g = gen::union_all(&[
            gen::gnm(200, 600, 1),
            gen::path(50),
            gen::star(30),
            gen::complete(10),
        ]);
        let params = Theorem1Params::default();
        let report = run(&g, 23, &params);
        check_labels(&g, &report.labels).unwrap();
    }

    #[test]
    fn expansion_rounds_grow_with_diameter() {
        // E11's shape in miniature: per-phase expansion rounds ~ log d.
        let params = Theorem1Params::default();
        let short = run(&gen::clique_chain(2, 16), 3, &params);
        let long = run(&gen::clique_chain(64, 4), 3, &params);
        let s = short
            .per_round
            .iter()
            .map(|r| r.expand_rounds)
            .max()
            .unwrap_or(0);
        let l = long
            .per_round
            .iter()
            .map(|r| r.expand_rounds)
            .max()
            .unwrap_or(0);
        assert!(l > s, "expand rounds short={s} long={l}");
    }

    #[test]
    fn edgeless_graph() {
        let g = cc_graph::GraphBuilder::new(7).build();
        let report = run(&g, 1, &Theorem1Params::default());
        check_labels(&g, &report.labels).unwrap();
    }

    #[test]
    fn stamped_expand_matches_clear_based_labels_under_priority_policies() {
        // Stamps never alter the step sequence or coin streams, so under
        // a pid-only priority policy the full run is bit-identical.
        let g = gen::gnm(400, 1600, 5);
        for policy in [WritePolicy::PriorityMin, WritePolicy::PriorityMax] {
            let run_with = |stamps: bool| {
                let params = Theorem1Params {
                    expand_stamps: stamps,
                    ..Default::default()
                };
                let mut pram = Pram::new(policy);
                connected_components(&mut pram, &g, 9, &params).labels
            };
            let stamped = run_with(true);
            assert_eq!(stamped, run_with(false), "policy {policy:?}");
            check_labels(&g, &stamped).unwrap();
        }
    }
}
