//! The EXPAND method (§B.3): hash-table neighbourhood squaring with
//! live/dormant bookkeeping.
//!
//! Protocol (steps numbered as in the paper):
//!
//! 1. every ongoing vertex starts *live*;
//! 2. vertices are hashed onto blocks by `h_B`; a vertex that does not win
//!    its block alone is **fully dormant** (it owns no table);
//! 3. every live vertex hashes itself and, per graph arc `(v, w)` with `v`
//!    live, its neighbour `w` into `H(v)`; arcs with a non-live tail mark
//!    their head dormant;
//! 4. any hash that collided marks the table's owner dormant;
//! 5. repeat (until no table gains a new entry): every owner `u` copies
//!    `H(v)` for all `v ∈ H(u)` into `H(u)` — after `i` clean rounds
//!    `H(u) = B(u, 2^i)` (Lemma B.7) — and dormancy propagates through
//!    table membership; collisions again mark owners dormant.
//!
//! The first-dormant-round of every vertex is recorded (`fdr`), because
//! Theorem 2's TREE-LINK replays liveness per round; Theorem 1 only needs
//! "dormant at the end" (`fdr != NULL`).
//!
//! **Live-work scheduling.** Every charged step iterates the caller's
//! [`LiveSet`]: the block lottery, liveness recording, and table seeding
//! run one processor per *ongoing* vertex (`live.verts`), the per-arc
//! inserts and collision checks one per *live* arc (`live.arcs`), and the
//! squaring rounds one per occupied-block cell pair (`owned` — already
//! live-sized). The per-vertex `fdr` flag array is still allocated at `n`
//! cells so runtime vertex ids index it directly, but allocation is
//! uncharged host setup (arena-recycled memset) — no charged step scales
//! with `n` or `m`.

use crate::live::LiveSet;
use crate::state::CcState;
use pram_kit::ops::Flag;
use pram_kit::PairwiseHash;
use pram_sim::{Handle, Pram, NULL};

/// First-dormant-round encoding: fully dormant (lost the block lottery).
pub const FDR_FULLY: u64 = 0;

/// Parameters of one EXPAND invocation.
#[derive(Clone, Copy, Debug)]
pub struct ExpandParams {
    /// Hash-table size `K` (power of two) — the paper's `δ^{1/3}`.
    pub table_size: usize,
    /// Number of blocks for `h_B` (power of two) — the paper's `m/b^{12}`,
    /// i.e. `ñ · K`.
    pub nblocks: usize,
    /// Keep a snapshot of all tables after every round (Theorem 2 needs
    /// `H_j(u)` for the TREE-LINK replay).
    pub snapshot: bool,
    /// Cap on step-(5) rounds (safety; `log₂ d + O(1)` suffice).
    pub round_cap: u64,
}

/// The state EXPAND leaves behind for VOTE / LINK / TREE-LINK.
pub struct Expansion {
    /// Table size `K`.
    pub k: usize,
    /// Number of blocks.
    pub nblocks: usize,
    /// All tables, `nblocks × K` cells; `H(u)` is the row of `u`'s block.
    pub tables: Handle,
    /// Block owner per block (`NULL` = unowned).
    pub owner: Handle,
    /// First-dormant-round per vertex: `NULL` = never dormant (live),
    /// `FDR_FULLY` = no block, `i + 1` = became dormant in round `i`.
    pub fdr: Handle,
    /// The vertex→block hash.
    pub hb: PairwiseHash,
    /// The vertex→cell hash.
    pub hv: PairwiseHash,
    /// Host list of `(block, owner)` pairs (controller bookkeeping).
    pub owned: Vec<(u64, u64)>,
    /// Step-(5) rounds executed (the `O(log d)` inner loop; E11).
    pub rounds: u64,
    /// Per-round table snapshots (`snapshots[j]` = tables in round `j`),
    /// present only when requested.
    pub snapshots: Vec<Handle>,
}

impl Expansion {
    /// Address of cell `i` of `H` for block `blk` within `tables`.
    #[inline]
    pub fn cell(&self, blk: u64, i: u64) -> usize {
        blk as usize * self.k + i as usize
    }

    /// Release everything.
    pub fn free(self, pram: &mut Pram) {
        pram.free(self.tables);
        pram.free(self.owner);
        pram.free(self.fdr);
        for s in self.snapshots {
            pram.free(s);
        }
    }
}

/// Run EXPAND on the current graph (the live arcs of `st`, scheduled over
/// `live`); see module docs.
pub fn expand(
    pram: &mut Pram,
    st: &CcState,
    params: &ExpandParams,
    seed: u64,
    live: &LiveSet,
) -> Expansion {
    let n = st.n;
    let k = params.table_size;
    let nblocks = params.nblocks;
    assert!(k.is_power_of_two() && nblocks.is_power_of_two());
    let (eu, ev) = (st.eu, st.ev);
    let hb = PairwiseHash::new(seed ^ 0xB10C_B10C, nblocks as u64);
    let hv = PairwiseHash::new(seed ^ 0x7AB1_E7AB, k as u64);

    let tables = pram.alloc_filled(nblocks * k, NULL);
    let owner = pram.alloc_filled(nblocks, NULL);
    let fdr = pram.alloc_filled(n, NULL);
    let live3 = pram.alloc_filled(n, 0);

    // (There is no ongoing-flag pass: `live.verts` *is* the set of
    // non-loop-arc endpoints — Definition B.1 via Lemma B.2 — and every
    // consumer iterates it directly.)

    // Step 2: block lottery.
    pram.step_over(&live.verts, move |_, &v, ctx| {
        ctx.write(owner, hb.eval(v as u64) as usize, v as u64);
    });
    pram.step_over(&live.verts, move |_, &v, ctx| {
        if ctx.read(owner, hb.eval(v as u64) as usize) != v as u64 {
            ctx.write(fdr, v as usize, FDR_FULLY);
        }
    });
    // Record step-3 liveness (the paper's "live before Step (3)").
    pram.step_over(&live.verts, move |_, &v, ctx| {
        if ctx.read(fdr, v as usize) == NULL {
            ctx.write(live3, v as usize, 1);
        }
    });

    // Step 3: seed the tables. Self-insert...
    pram.step_over(&live.verts, move |_, &v, ctx| {
        let v = v as u64;
        if ctx.read(live3, v as usize) == 1 {
            let blk = hb.eval(v);
            ctx.write(tables, blk as usize * k + hv.eval(v) as usize, v);
        }
    });
    // ...and per-arc inserts; arcs with a non-live tail mark their head
    // dormant (round 0).
    pram.step_over(&live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b {
            return;
        }
        if ctx.read(live3, a as usize) == 1 {
            let blk = hb.eval(a);
            ctx.write(tables, blk as usize * k + hv.eval(b) as usize, b);
        } else if ctx.read(fdr, b as usize) == NULL {
            ctx.write(fdr, b as usize, 1);
        }
    });

    // Step 4: collision detection for every hash done in step 3.
    pram.step_over(&live.verts, move |_, &v, ctx| {
        let v = v as u64;
        if ctx.read(live3, v as usize) == 1 {
            let blk = hb.eval(v);
            if ctx.read(tables, blk as usize * k + hv.eval(v) as usize) != v {
                ctx.write(fdr, v as usize, 1);
            }
        }
    });
    pram.step_over(&live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b || ctx.read(live3, a as usize) != 1 {
            return;
        }
        let blk = hb.eval(a);
        if ctx.read(tables, blk as usize * k + hv.eval(b) as usize) != b {
            ctx.write(fdr, a as usize, 1);
        }
    });

    // Host list of owned blocks (controller bookkeeping; frozen from here).
    let owned: Vec<(u64, u64)> = pram
        .slice(owner)
        .iter()
        .enumerate()
        .filter_map(|(blk, &u)| (u != NULL).then_some((blk as u64, u)))
        .collect();

    let mut snapshots = Vec::new();
    let snap = |pram: &mut Pram, snapshots: &mut Vec<Handle>| {
        if params.snapshot {
            let copy = pram.alloc(nblocks * k);
            pram.host_copy(tables, copy);
            pram.charge(nblocks * k, 1); // the copy is a real parallel step
            snapshots.push(copy);
        }
    };
    snap(pram, &mut snapshots); // H_0

    // Step 5: squaring rounds, double-buffered exactly as the paper
    // prescribes ("storing the old tables for all vertices while hashing
    // new items into the new table"): reads come from the frozen previous
    // round, writes and collision checks hit the current table. The
    // progress flag covers both new table occupancy *and* new dormancy, so
    // the loop only exits once dormancy has fully propagated — this is
    // what makes VOTE's live case ("live ⇒ table = whole component")
    // deterministic at loop exit.
    let progress = Flag::new(pram);
    let old = pram.alloc(nblocks * k);
    let mut rounds = 0;
    loop {
        if rounds >= params.round_cap {
            break;
        }
        let round_mark = rounds + 2; // fdr encoding for "dormant in round i"
        progress.clear(pram);
        pram.host_copy(tables, old);
        // The double-buffer copy is a real step.
        pram.charge(nblocks * k, 1);
        // (5a) propagate dormancy + rehash H(v) for v ∈ H(u) into H(u).
        pram.step(owned.len() * k * k, |pp, ctx| {
            let idx = (pp as usize) / (k * k);
            let rem = (pp as usize) % (k * k);
            let (p, q) = (rem / k, rem % k);
            let (blk, u) = owned[idx];
            let v = ctx.read(old, blk as usize * k + p);
            if v == NULL {
                return;
            }
            if q == 0 && ctx.read(fdr, v as usize) != NULL && ctx.read(fdr, u as usize) == NULL {
                ctx.write(fdr, u as usize, round_mark);
                progress.raise(ctx);
            }
            // H(v) exists only if v owns its block.
            let blkv = hb.eval(v);
            if ctx.read(owner, blkv as usize) != v {
                return;
            }
            let w = ctx.read(old, blkv as usize * k + q);
            if w == NULL {
                return;
            }
            let dst = blk as usize * k + hv.eval(w) as usize;
            if ctx.read(tables, dst) == NULL {
                progress.raise(ctx);
            }
            ctx.write(tables, dst, w);
        });
        // (5b) collision detection for exactly the hashes done in (5a):
        // the sources are re-derived from the same frozen buffer.
        pram.step(owned.len() * k * k, |pp, ctx| {
            let idx = (pp as usize) / (k * k);
            let rem = (pp as usize) % (k * k);
            let (p, q) = (rem / k, rem % k);
            let (blk, u) = owned[idx];
            let v = ctx.read(old, blk as usize * k + p);
            if v == NULL {
                return;
            }
            let blkv = hb.eval(v);
            if ctx.read(owner, blkv as usize) != v {
                return;
            }
            let w = ctx.read(old, blkv as usize * k + q);
            if w == NULL {
                return;
            }
            if ctx.read(tables, blk as usize * k + hv.eval(w) as usize) != w
                && ctx.read(fdr, u as usize) == NULL
            {
                ctx.write(fdr, u as usize, round_mark);
                progress.raise(ctx);
            }
        });
        rounds += 1;
        snap(pram, &mut snapshots); // H_rounds
        if !progress.read(pram) {
            break;
        }
    }
    pram.free(old);
    progress.free(pram);
    pram.free(live3);

    Expansion {
        k,
        nblocks,
        tables,
        owner,
        fdr,
        hb,
        hv,
        owned,
        rounds,
        snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use pram_sim::WritePolicy;
    use std::collections::HashSet;

    fn setup(g: &cc_graph::Graph, k: usize, seed: u64) -> (Pram, CcState, Expansion) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let st = CcState::init(&mut pram, g);
        let live = LiveSet::full(&mut pram, &st);
        let params = ExpandParams {
            table_size: k,
            nblocks: (4 * g.n()).next_power_of_two(),
            snapshot: false,
            round_cap: 24,
        };
        let e = expand(&mut pram, &st, &params, seed, &live);
        (pram, st, e)
    }

    /// Host view of H(u) for an owner u.
    fn table_of(pram: &Pram, e: &Expansion, u: u64) -> HashSet<u64> {
        let blk = e.hb.eval(u);
        assert_eq!(pram.get(e.owner, blk as usize), u);
        (0..e.k)
            .map(|i| pram.get(e.tables, blk as usize * e.k + i))
            .filter(|&x| x != NULL)
            .collect()
    }

    #[test]
    fn live_vertices_learn_their_whole_component() {
        // Big tables, tiny components: everyone should stay live and learn
        // the full component (Lemma B.7 extreme).
        let g = gen::union_all(&[gen::path(6), gen::cycle(5)]);
        let (pram, _st, e) = setup(&g, 64, 3);
        let fdr = pram.read_vec(e.fdr);
        for u in 0..g.n() as u64 {
            if fdr[u as usize] != NULL {
                continue; // unlucky block loser; allowed
            }
            let t = table_of(&pram, &e, u);
            let comp: HashSet<u64> = if u < 6 {
                (0..6).collect()
            } else {
                (6..11).collect()
            };
            assert_eq!(t, comp, "vertex {u}");
        }
    }

    #[test]
    fn rounds_scale_with_diameter() {
        let short = setup(&gen::complete(12), 64, 5).2.rounds;
        let long = setup(&gen::path(200), 512, 5).2.rounds;
        assert!(long > short, "short={short} long={long}");
        // log2(200) ≈ 7.6 — a couple of extra rounds for the final no-op.
        assert!(long <= 12, "long={long}");
    }

    #[test]
    fn tiny_tables_force_dormancy_in_big_component() {
        // K = 4 but the component has 40 vertices: collisions are
        // inevitable, so plenty of vertices must be dormant — and dormancy
        // must propagate (every live survivor has a full view, which is
        // impossible at K=4 < 40, so in fact *all* become dormant).
        let g = gen::cycle(40);
        let (pram, _st, e) = setup(&g, 4, 7);
        let fdr = pram.read_vec(e.fdr);
        let dormant = fdr.iter().filter(|&&x| x != NULL).count();
        assert_eq!(dormant, 40, "all of the 40-cycle must go dormant at K=4");
    }

    #[test]
    fn fdr_records_first_round_monotonically() {
        let g = gen::path(100);
        let (pram, _st, e) = setup(&g, 8, 11);
        let fdr = pram.read_vec(e.fdr);
        for (v, &x) in fdr.iter().enumerate() {
            assert!(
                x == NULL || x <= e.rounds + 1,
                "vertex {v}: fdr {x} beyond executed rounds {}",
                e.rounds
            );
        }
    }

    #[test]
    fn snapshots_are_monotone_in_occupancy() {
        let g = gen::path(40);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(5));
        let st = CcState::init(&mut pram, &g);
        let live = LiveSet::full(&mut pram, &st);
        let params = ExpandParams {
            table_size: 64,
            nblocks: (4 * g.n()).next_power_of_two(),
            snapshot: true,
            round_cap: 24,
        };
        let e = expand(&mut pram, &st, &params, 5, &live);
        assert_eq!(e.snapshots.len() as u64, e.rounds + 1);
        for w in e.snapshots.windows(2) {
            let prev = pram.read_vec(w[0]);
            let next = pram.read_vec(w[1]);
            let p = prev.iter().filter(|&&x| x != NULL).count();
            let n2 = next.iter().filter(|&&x| x != NULL).count();
            assert!(n2 >= p, "occupancy shrank between rounds");
        }
    }

    #[test]
    fn non_ongoing_vertices_stay_out() {
        // Only endpoints of non-loop arcs are ongoing: the live set — the
        // list every EXPAND step iterates — covers exactly the vertices
        // with real edges (all of them here), and contracting a vertex's
        // arcs to loops removes it.
        let g = gen::union_all(&[gen::path(5), gen::path(3)]);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(9));
        let st = CcState::init(&mut pram, &g);
        let mut live = LiveSet::full(&mut pram, &st);
        assert_eq!(live.verts.len(), g.n()); // all have real edges here
                                             // Contract vertex 0's arcs to loops: it leaves the ongoing set.
        let eu = pram.read_vec(st.eu);
        let ev = pram.read_vec(st.ev);
        for i in 0..st.arcs {
            if eu[i] == 0 || ev[i] == 0 {
                pram.set(st.eu, i, 1);
                pram.set(st.ev, i, 1);
            }
        }
        live.refresh(&mut pram, &st);
        assert!(!live.verts.contains(&0));
    }
}
