//! The EXPAND method (§B.3): hash-table neighbourhood squaring with
//! live/dormant bookkeeping.
//!
//! Protocol (steps numbered as in the paper):
//!
//! 1. every ongoing vertex starts *live*;
//! 2. vertices are hashed onto blocks by `h_B`; a vertex that does not win
//!    its block alone is **fully dormant** (it owns no table);
//! 3. every live vertex hashes itself and, per graph arc `(v, w)` with `v`
//!    live, its neighbour `w` into `H(v)`; arcs with a non-live tail mark
//!    their head dormant;
//! 4. any hash that collided marks the table's owner dormant;
//! 5. repeat (until no table gains a new entry): every owner `u` copies
//!    `H(v)` for all `v ∈ H(u)` into `H(u)` — after `i` clean rounds
//!    `H(u) = B(u, 2^i)` (Lemma B.7) — and dormancy propagates through
//!    table membership; collisions again mark owners dormant.
//!
//! The first-dormant-round of every vertex is recorded (`fdr`), because
//! Theorem 2's TREE-LINK replays liveness per round; Theorem 1 only needs
//! "dormant at the end" (`fdr != NULL`).
//!
//! **Live-work scheduling.** Every charged step iterates the caller's
//! [`LiveSet`]: the block lottery, liveness recording, and table seeding
//! run one processor per *ongoing* vertex (`live.verts`), the per-arc
//! inserts and collision checks one per *live* arc (`live.arcs`), and the
//! squaring rounds one per occupied-block cell pair (`owned` — already
//! live-sized). The per-vertex `fdr` and step-3 liveness flag arrays are
//! still `n` cells so runtime vertex ids index them directly, but in the
//! default configuration they are **generation-stamped**
//! ([`ExpandScratch`], allocated once per driver run): the per-phase
//! "re-fill with NULL" is a generation bump — O(1) host work, zero
//! simulated time, and no O(n) memset per phase. The clear-based legacy
//! path (`Theorem1Params::expand_stamps = false`) re-allocates and
//! memsets per phase exactly as before; both paths are equivalent — see
//! [`PhaseCells`] and the pinned equivalence tests.

use crate::live::LiveSet;
use crate::state::CcState;
use pram_kit::ops::Flag;
use pram_kit::PairwiseHash;
use pram_sim::{Ctx, Handle, Pram, Stamped, NULL};

/// First-dormant-round encoding: fully dormant (lost the block lottery).
pub const FDR_FULLY: u64 = 0;

/// A per-vertex phase-state array handed to EXPAND's charged steps:
/// either a plain handle pre-filled with a stale value once per phase
/// (the clear-based legacy path), or a generation-stamped block whose
/// per-phase refill is a stamp-generation bump (the default). A read of
/// a stamped cell whose stamp is stale returns the stale value, so the
/// two representations expose identical cell *semantics*; they differ
/// only in charged operation counts (a stamped read costs 1–2 reads, a
/// stamped write 2 writes). Neither representation adds or removes a
/// synchronous step, so the per-step coin streams are identical — runs
/// with the two representations produce bit-identical results under the
/// pid-only PRIORITY write policies and the same component partition
/// under the seeded-arbitrary policy (pinned by this module's tests and
/// the `live_work` proptests).
#[derive(Clone, Copy, Debug)]
pub struct PhaseCells {
    repr: CellsRepr,
    stale: u64,
}

#[derive(Clone, Copy, Debug)]
enum CellsRepr {
    Plain(Handle),
    Stamped(Stamped),
}

impl PhaseCells {
    fn plain(h: Handle, stale: u64) -> Self {
        PhaseCells {
            repr: CellsRepr::Plain(h),
            stale,
        }
    }

    fn stamped(s: Stamped, stale: u64) -> Self {
        PhaseCells {
            repr: CellsRepr::Stamped(s),
            stale,
        }
    }

    /// Charged read of cell `i` (stale stamped cells read as the array's
    /// stale value).
    #[inline]
    pub fn read(self, ctx: &mut Ctx<'_>, i: usize) -> u64 {
        match self.repr {
            CellsRepr::Plain(h) => ctx.read(h, i),
            CellsRepr::Stamped(s) => ctx.read_stamped(s, i, self.stale),
        }
    }

    /// Charged write of cell `i`.
    #[inline]
    pub fn write(self, ctx: &mut Ctx<'_>, i: usize, val: u64) {
        match self.repr {
            CellsRepr::Plain(h) => ctx.write(h, i, val),
            CellsRepr::Stamped(s) => ctx.write_stamped(s, i, val),
        }
    }

    /// Host (uncharged) read of cell `i` — controller bookkeeping.
    pub fn host_get(self, pram: &Pram, i: usize) -> u64 {
        match self.repr {
            CellsRepr::Plain(h) => pram.get(h, i),
            CellsRepr::Stamped(s) => pram.get_stamped(s, i, self.stale),
        }
    }

    /// Host (uncharged) snapshot of every cell — tests and
    /// instrumentation.
    pub fn host_vec(self, pram: &Pram) -> Vec<u64> {
        match self.repr {
            CellsRepr::Plain(h) => pram.read_vec(h),
            CellsRepr::Stamped(s) => {
                let len = s.values.len();
                (0..len)
                    .map(|i| pram.get_stamped(s, i, self.stale))
                    .collect()
            }
        }
    }

    /// Free the backing store if it is per-phase (plain); stamped blocks
    /// are owned by the driver's [`ExpandScratch`] and outlive the phase.
    fn free_per_phase(self, pram: &mut Pram) {
        if let CellsRepr::Plain(h) = self.repr {
            pram.free(h);
        }
    }
}

/// Driver-lifetime scratch backing EXPAND's per-vertex phase arrays
/// (`fdr` and the step-3 liveness flags) as generation-stamped blocks:
/// allocated once per run, after which each phase's "refill with
/// NULL / 0" is a stamp-generation bump ([`Pram::host_stamped_fill`])
/// instead of an O(n) memset. Enabled by default through
/// [`crate::theorem1::Theorem1Params::expand_stamps`]; pass `None` to
/// [`expand`] for the clear-based legacy path.
pub struct ExpandScratch {
    fdr: Stamped,
    live3: Stamped,
}

impl ExpandScratch {
    /// Allocate stamped blocks for `n` vertices.
    pub fn new(pram: &mut Pram, n: usize) -> Self {
        ExpandScratch {
            fdr: pram.alloc_stamped(n),
            live3: pram.alloc_stamped(n),
        }
    }

    /// Release the blocks.
    pub fn free(self, pram: &mut Pram) {
        pram.free_stamped(self.fdr);
        pram.free_stamped(self.live3);
    }
}

/// Parameters of one EXPAND invocation.
#[derive(Clone, Copy, Debug)]
pub struct ExpandParams {
    /// Hash-table size `K` (power of two) — the paper's `δ^{1/3}`.
    pub table_size: usize,
    /// Number of blocks for `h_B` (power of two) — the paper's `m/b^{12}`,
    /// i.e. `ñ · K`.
    pub nblocks: usize,
    /// Keep a snapshot of all tables after every round (Theorem 2 needs
    /// `H_j(u)` for the TREE-LINK replay).
    pub snapshot: bool,
    /// Cap on step-(5) rounds (safety; `log₂ d + O(1)` suffice).
    pub round_cap: u64,
}

/// The state EXPAND leaves behind for VOTE / LINK / TREE-LINK.
pub struct Expansion {
    /// Table size `K`.
    pub k: usize,
    /// Number of blocks.
    pub nblocks: usize,
    /// All tables, `nblocks × K` cells; `H(u)` is the row of `u`'s block.
    pub tables: Handle,
    /// Block owner per block (`NULL` = unowned).
    pub owner: Handle,
    /// First-dormant-round per vertex: `NULL` = never dormant (live),
    /// `FDR_FULLY` = no block, `i + 1` = became dormant in round `i`.
    /// Plain or generation-stamped per the caller's scratch choice.
    pub fdr: PhaseCells,
    /// The vertex→block hash.
    pub hb: PairwiseHash,
    /// The vertex→cell hash.
    pub hv: PairwiseHash,
    /// Host list of `(block, owner)` pairs (controller bookkeeping).
    pub owned: Vec<(u64, u64)>,
    /// Step-(5) rounds executed (the `O(log d)` inner loop; E11).
    pub rounds: u64,
    /// Per-round table snapshots (`snapshots[j]` = tables in round `j`),
    /// present only when requested.
    pub snapshots: Vec<Handle>,
}

impl Expansion {
    /// Address of cell `i` of `H` for block `blk` within `tables`.
    #[inline]
    pub fn cell(&self, blk: u64, i: u64) -> usize {
        blk as usize * self.k + i as usize
    }

    /// Release everything (driver-owned stamped scratch is untouched).
    pub fn free(self, pram: &mut Pram) {
        pram.free(self.tables);
        pram.free(self.owner);
        self.fdr.free_per_phase(pram);
        for s in self.snapshots {
            pram.free(s);
        }
    }
}

/// Run EXPAND on the current graph (the live arcs of `st`, scheduled over
/// `live`); see module docs. With `Some(scratch)` the per-vertex phase
/// arrays are the driver's generation-stamped blocks (refilled here by a
/// stamp bump); with `None` they are allocated and memset per phase.
pub fn expand(
    pram: &mut Pram,
    st: &CcState,
    params: &ExpandParams,
    seed: u64,
    live: &LiveSet,
    scratch: Option<&mut ExpandScratch>,
) -> Expansion {
    let n = st.n;
    let k = params.table_size;
    let nblocks = params.nblocks;
    assert!(k.is_power_of_two() && nblocks.is_power_of_two());
    let (eu, ev) = (st.eu, st.ev);
    let hb = PairwiseHash::new(seed ^ 0xB10C_B10C, nblocks as u64);
    let hv = PairwiseHash::new(seed ^ 0x7AB1_E7AB, k as u64);

    let tables = pram.alloc_filled(nblocks * k, NULL);
    let owner = pram.alloc_filled(nblocks, NULL);
    let (fdr, live3) = match scratch {
        Some(s) => {
            pram.host_stamped_fill(&mut s.fdr);
            pram.host_stamped_fill(&mut s.live3);
            (
                PhaseCells::stamped(s.fdr, NULL),
                PhaseCells::stamped(s.live3, 0),
            )
        }
        None => (
            PhaseCells::plain(pram.alloc_filled(n, NULL), NULL),
            PhaseCells::plain(pram.alloc_filled(n, 0), 0),
        ),
    };

    // (There is no ongoing-flag pass: `live.verts` *is* the set of
    // non-loop-arc endpoints — Definition B.1 via Lemma B.2 — and every
    // consumer iterates it directly.)

    // Step 2: block lottery.
    pram.step_over(&live.verts, move |_, &v, ctx| {
        ctx.write(owner, hb.eval(v as u64) as usize, v as u64);
    });
    pram.step_over(&live.verts, move |_, &v, ctx| {
        if ctx.read(owner, hb.eval(v as u64) as usize) != v as u64 {
            fdr.write(ctx, v as usize, FDR_FULLY);
        }
    });
    // Record step-3 liveness (the paper's "live before Step (3)").
    pram.step_over(&live.verts, move |_, &v, ctx| {
        if fdr.read(ctx, v as usize) == NULL {
            live3.write(ctx, v as usize, 1);
        }
    });

    // Step 3: seed the tables. Self-insert...
    pram.step_over(&live.verts, move |_, &v, ctx| {
        let v = v as u64;
        if live3.read(ctx, v as usize) == 1 {
            let blk = hb.eval(v);
            ctx.write(tables, blk as usize * k + hv.eval(v) as usize, v);
        }
    });
    // ...and per-arc inserts; arcs with a non-live tail mark their head
    // dormant (round 0).
    pram.step_over(&live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b {
            return;
        }
        if live3.read(ctx, a as usize) == 1 {
            let blk = hb.eval(a);
            ctx.write(tables, blk as usize * k + hv.eval(b) as usize, b);
        } else if fdr.read(ctx, b as usize) == NULL {
            fdr.write(ctx, b as usize, 1);
        }
    });

    // Step 4: collision detection for every hash done in step 3.
    pram.step_over(&live.verts, move |_, &v, ctx| {
        let v = v as u64;
        if live3.read(ctx, v as usize) == 1 {
            let blk = hb.eval(v);
            if ctx.read(tables, blk as usize * k + hv.eval(v) as usize) != v {
                fdr.write(ctx, v as usize, 1);
            }
        }
    });
    pram.step_over(&live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b || live3.read(ctx, a as usize) != 1 {
            return;
        }
        let blk = hb.eval(a);
        if ctx.read(tables, blk as usize * k + hv.eval(b) as usize) != b {
            fdr.write(ctx, a as usize, 1);
        }
    });

    // Host list of owned blocks (controller bookkeeping; frozen from here).
    let owned: Vec<(u64, u64)> = pram
        .view(owner)
        .iter()
        .enumerate()
        .filter_map(|(blk, u)| (u != NULL).then_some((blk as u64, u)))
        .collect();

    let mut snapshots = Vec::new();
    let snap = |pram: &mut Pram, snapshots: &mut Vec<Handle>| {
        if params.snapshot {
            let copy = pram.alloc(nblocks * k);
            pram.host_copy(tables, copy);
            pram.charge(nblocks * k, 1); // the copy is a real parallel step
            snapshots.push(copy);
        }
    };
    snap(pram, &mut snapshots); // H_0

    // Step 5: squaring rounds, double-buffered exactly as the paper
    // prescribes ("storing the old tables for all vertices while hashing
    // new items into the new table"): reads come from the frozen previous
    // round, writes and collision checks hit the current table. The
    // progress flag covers both new table occupancy *and* new dormancy, so
    // the loop only exits once dormancy has fully propagated — this is
    // what makes VOTE's live case ("live ⇒ table = whole component")
    // deterministic at loop exit.
    let progress = Flag::new(pram);
    let old = pram.alloc(nblocks * k);
    let mut rounds = 0;
    loop {
        if rounds >= params.round_cap {
            break;
        }
        let round_mark = rounds + 2; // fdr encoding for "dormant in round i"
        progress.clear(pram);
        pram.host_copy(tables, old);
        // The double-buffer copy is a real step.
        pram.charge(nblocks * k, 1);
        // (5a) propagate dormancy + rehash H(v) for v ∈ H(u) into H(u).
        pram.step(owned.len() * k * k, |pp, ctx| {
            let idx = (pp as usize) / (k * k);
            let rem = (pp as usize) % (k * k);
            let (p, q) = (rem / k, rem % k);
            let (blk, u) = owned[idx];
            let v = ctx.read(old, blk as usize * k + p);
            if v == NULL {
                return;
            }
            if q == 0 && fdr.read(ctx, v as usize) != NULL && fdr.read(ctx, u as usize) == NULL {
                fdr.write(ctx, u as usize, round_mark);
                progress.raise(ctx);
            }
            // H(v) exists only if v owns its block.
            let blkv = hb.eval(v);
            if ctx.read(owner, blkv as usize) != v {
                return;
            }
            let w = ctx.read(old, blkv as usize * k + q);
            if w == NULL {
                return;
            }
            let dst = blk as usize * k + hv.eval(w) as usize;
            if ctx.read(tables, dst) == NULL {
                progress.raise(ctx);
            }
            ctx.write(tables, dst, w);
        });
        // (5b) collision detection for exactly the hashes done in (5a):
        // the sources are re-derived from the same frozen buffer.
        pram.step(owned.len() * k * k, |pp, ctx| {
            let idx = (pp as usize) / (k * k);
            let rem = (pp as usize) % (k * k);
            let (p, q) = (rem / k, rem % k);
            let (blk, u) = owned[idx];
            let v = ctx.read(old, blk as usize * k + p);
            if v == NULL {
                return;
            }
            let blkv = hb.eval(v);
            if ctx.read(owner, blkv as usize) != v {
                return;
            }
            let w = ctx.read(old, blkv as usize * k + q);
            if w == NULL {
                return;
            }
            if ctx.read(tables, blk as usize * k + hv.eval(w) as usize) != w
                && fdr.read(ctx, u as usize) == NULL
            {
                fdr.write(ctx, u as usize, round_mark);
                progress.raise(ctx);
            }
        });
        rounds += 1;
        snap(pram, &mut snapshots); // H_rounds
        if !progress.read(pram) {
            break;
        }
    }
    pram.free(old);
    progress.free(pram);
    live3.free_per_phase(pram);

    Expansion {
        k,
        nblocks,
        tables,
        owner,
        fdr,
        hb,
        hv,
        owned,
        rounds,
        snapshots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use pram_sim::WritePolicy;
    use std::collections::HashSet;

    fn setup(g: &cc_graph::Graph, k: usize, seed: u64) -> (Pram, CcState, Expansion) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let st = CcState::init(&mut pram, g);
        let live = LiveSet::full(&mut pram, &st);
        let params = ExpandParams {
            table_size: k,
            nblocks: (4 * g.n()).next_power_of_two(),
            snapshot: false,
            round_cap: 24,
        };
        let e = expand(&mut pram, &st, &params, seed, &live, None);
        (pram, st, e)
    }

    /// Host view of H(u) for an owner u.
    fn table_of(pram: &Pram, e: &Expansion, u: u64) -> HashSet<u64> {
        let blk = e.hb.eval(u);
        assert_eq!(pram.get(e.owner, blk as usize), u);
        (0..e.k)
            .map(|i| pram.get(e.tables, blk as usize * e.k + i))
            .filter(|&x| x != NULL)
            .collect()
    }

    #[test]
    fn live_vertices_learn_their_whole_component() {
        // Big tables, tiny components: everyone should stay live and learn
        // the full component (Lemma B.7 extreme).
        let g = gen::union_all(&[gen::path(6), gen::cycle(5)]);
        let (pram, _st, e) = setup(&g, 64, 3);
        let fdr = e.fdr.host_vec(&pram);
        for u in 0..g.n() as u64 {
            if fdr[u as usize] != NULL {
                continue; // unlucky block loser; allowed
            }
            let t = table_of(&pram, &e, u);
            let comp: HashSet<u64> = if u < 6 {
                (0..6).collect()
            } else {
                (6..11).collect()
            };
            assert_eq!(t, comp, "vertex {u}");
        }
    }

    #[test]
    fn rounds_scale_with_diameter() {
        let short = setup(&gen::complete(12), 64, 5).2.rounds;
        let long = setup(&gen::path(200), 512, 5).2.rounds;
        assert!(long > short, "short={short} long={long}");
        // log2(200) ≈ 7.6 — a couple of extra rounds for the final no-op.
        assert!(long <= 12, "long={long}");
    }

    #[test]
    fn tiny_tables_force_dormancy_in_big_component() {
        // K = 4 but the component has 40 vertices: collisions are
        // inevitable, so plenty of vertices must be dormant — and dormancy
        // must propagate (every live survivor has a full view, which is
        // impossible at K=4 < 40, so in fact *all* become dormant).
        let g = gen::cycle(40);
        let (pram, _st, e) = setup(&g, 4, 7);
        let fdr = e.fdr.host_vec(&pram);
        let dormant = fdr.iter().filter(|&&x| x != NULL).count();
        assert_eq!(dormant, 40, "all of the 40-cycle must go dormant at K=4");
    }

    #[test]
    fn fdr_records_first_round_monotonically() {
        let g = gen::path(100);
        let (pram, _st, e) = setup(&g, 8, 11);
        let fdr = e.fdr.host_vec(&pram);
        for (v, &x) in fdr.iter().enumerate() {
            assert!(
                x == NULL || x <= e.rounds + 1,
                "vertex {v}: fdr {x} beyond executed rounds {}",
                e.rounds
            );
        }
    }

    #[test]
    fn snapshots_are_monotone_in_occupancy() {
        let g = gen::path(40);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(5));
        let st = CcState::init(&mut pram, &g);
        let live = LiveSet::full(&mut pram, &st);
        let params = ExpandParams {
            table_size: 64,
            nblocks: (4 * g.n()).next_power_of_two(),
            snapshot: true,
            round_cap: 24,
        };
        let e = expand(&mut pram, &st, &params, 5, &live, None);
        assert_eq!(e.snapshots.len() as u64, e.rounds + 1);
        for w in e.snapshots.windows(2) {
            let prev = pram.read_vec(w[0]);
            let next = pram.read_vec(w[1]);
            let p = prev.iter().filter(|&&x| x != NULL).count();
            let n2 = next.iter().filter(|&&x| x != NULL).count();
            assert!(n2 >= p, "occupancy shrank between rounds");
        }
    }

    #[test]
    fn stamped_and_clear_paths_produce_identical_phase_state() {
        // Stamps only change how cells are stored, not the step sequence,
        // so under a pid-only priority policy (address-independent write
        // resolution) the recorded fdr must match cell for cell.
        let g = gen::gnm(300, 900, 13);
        for policy in [WritePolicy::PriorityMin, WritePolicy::PriorityMax] {
            for seed in [1u64, 9, 42] {
                let run = |stamped: bool| {
                    let mut pram = Pram::new(policy);
                    let st = CcState::init(&mut pram, &g);
                    let live = LiveSet::full(&mut pram, &st);
                    let params = ExpandParams {
                        table_size: 8,
                        nblocks: (4 * g.n()).next_power_of_two(),
                        snapshot: false,
                        round_cap: 24,
                    };
                    let mut scratch = stamped.then(|| ExpandScratch::new(&mut pram, st.n));
                    let e = expand(&mut pram, &st, &params, seed, &live, scratch.as_mut());
                    (e.fdr.host_vec(&pram), e.rounds)
                };
                assert_eq!(run(true), run(false), "policy {policy:?} seed {seed}");
            }
        }
    }

    #[test]
    fn stamped_scratch_is_reusable_across_phases() {
        // The whole point: one allocation, N phases. A tiny-table phase
        // marks all of a 12-cycle dormant; a big-table phase on the *same*
        // scratch must nonetheless start from a logically fresh fdr — if
        // the refill leaked stale dormancy, no seed could ever produce a
        // fully live second phase (stale marks suppress table seeding),
        // whereas with a fresh fdr a collision-free seed exists quickly.
        let g = gen::cycle(12);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
        let st = CcState::init(&mut pram, &g);
        let live = LiveSet::full(&mut pram, &st);
        let mut scratch = ExpandScratch::new(&mut pram, st.n);
        let phase = |pram: &mut Pram, scratch: &mut ExpandScratch, k: usize, seed: u64| {
            let params = ExpandParams {
                table_size: k,
                nblocks: 512,
                snapshot: false,
                round_cap: 24,
            };
            let e = expand(pram, &st, &params, seed, &live, Some(scratch));
            let dormant = e.fdr.host_vec(pram).iter().filter(|&&x| x != NULL).count();
            e.free(pram);
            dormant
        };
        let mut fully_live_refill = false;
        for seed in 0..200 {
            // K=4 < 12: a live exit would need the whole cycle in a
            // 4-cell table, so every seed marks all 12 dormant.
            assert_eq!(phase(&mut pram, &mut scratch, 4, seed), 12);
            if phase(&mut pram, &mut scratch, 64, seed) == 0 {
                fully_live_refill = true;
                break;
            }
        }
        assert!(
            fully_live_refill,
            "no refilled phase ever came up fully live — stale stamps leaking"
        );
        scratch.free(&mut pram);
    }

    #[test]
    fn non_ongoing_vertices_stay_out() {
        // Only endpoints of non-loop arcs are ongoing: the live set — the
        // list every EXPAND step iterates — covers exactly the vertices
        // with real edges (all of them here), and contracting a vertex's
        // arcs to loops removes it.
        let g = gen::union_all(&[gen::path(5), gen::path(3)]);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(9));
        let st = CcState::init(&mut pram, &g);
        let mut live = LiveSet::full(&mut pram, &st);
        assert_eq!(live.verts.len(), g.n()); // all have real edges here
                                             // Contract vertex 0's arcs to loops: it leaves the ongoing set.
        let eu = pram.read_vec(st.eu);
        let ev = pram.read_vec(st.ev);
        for i in 0..st.arcs {
            if eu[i] == 0 || ev[i] == 0 {
                pram.set(st.eu, i, 1);
                pram.set(st.ev, i, 1);
            }
        }
        live.refresh(&mut pram, &st);
        assert!(!live.verts.contains(&0));
    }
}
