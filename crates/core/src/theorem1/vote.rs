//! The VOTE method (§B.4) and the table-driven LINK.
//!
//! * Live vertices (never dormant) hold their entire component in their
//!   table, so the component minimum is elected deterministically and the
//!   whole component finishes this phase.
//! * Dormant vertices flip a leader coin with probability `p_lead`
//!   (paper: `b^{-2/3}`); a dormant non-leader with a leader in its table
//!   hooks onto it, which is what drives the `n' → n'/poly(δ)` per-phase
//!   contraction (Lemma B.13 + the §B.4 counting).

use crate::live::LiveSet;
use crate::state::CcState;
use crate::theorem1::expand::Expansion;
use pram_sim::{Handle, Pram, NULL};

/// Run VOTE: fill `leader` (1 = leader) for all ongoing vertices.
///
/// Charged over the live set: only ongoing vertices' leader cells are
/// initialized and coin-flipped (stale cells of vertices that left the
/// live set are never read — LINK and TREE-LINK only consult leaders of
/// live-arc endpoints and table members, which are ongoing).
pub fn vote(
    pram: &mut Pram,
    _st: &CcState,
    e: &Expansion,
    live: &LiveSet,
    leader: Handle,
    p_lead: f64,
    seed: u64,
) {
    let fdr = e.fdr;
    // Initialize u.l := 1 for ongoing vertices.
    pram.step_over(&live.verts, move |_, &u, ctx| {
        ctx.write(leader, u as usize, 1);
    });
    // Case 2 — dormant: leader with probability p_lead.
    pram.step_over(&live.verts, move |_, &u, ctx| {
        if fdr.read(ctx, u as usize) != NULL {
            let l = ctx.coin(seed ^ 0xD0_12_34, p_lead);
            ctx.write(leader, u as usize, if l { 1 } else { 0 });
        }
    });
    // Case 1 — live: u is a leader iff it is the minimum of H(u).
    let (tables, k) = (e.tables, e.k);
    let owned = &e.owned;
    pram.step(owned.len() * k, |pp, ctx| {
        let idx = (pp as usize) / k;
        let p = (pp as usize) % k;
        let (blk, u) = owned[idx];
        if fdr.read(ctx, u as usize) != NULL {
            return;
        }
        let v = ctx.read(tables, blk as usize * k + p);
        if v != NULL && v < u {
            ctx.write(leader, u as usize, 0);
        }
    });
}

/// The LINK: every non-leader hooks onto a leader found in its table
/// (ARBITRARY pick among leaders). Leaders never move, so the labeled
/// digraph stays a forest of flat trees.
pub fn link_step(pram: &mut Pram, st: &CcState, e: &Expansion, leader: Handle) {
    let (tables, k, parent) = (e.tables, e.k, st.parent);
    let owned = &e.owned;
    pram.step(owned.len() * k, |pp, ctx| {
        let idx = (pp as usize) / k;
        let p = (pp as usize) % k;
        let (blk, v) = owned[idx];
        if ctx.read(leader, v as usize) != 0 {
            return;
        }
        let w = ctx.read(tables, blk as usize * k + p);
        if w != NULL && w != v && ctx.read(leader, w as usize) == 1 {
            ctx.write(parent, v as usize, w);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem1::expand::{expand, ExpandParams};
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    fn setup(g: &cc_graph::Graph, k: usize, seed: u64) -> (Pram, CcState, Expansion, LiveSet) {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let st = CcState::init(&mut pram, g);
        let live = LiveSet::full(&mut pram, &st);
        let params = ExpandParams {
            table_size: k,
            nblocks: (8 * g.n()).next_power_of_two(),
            snapshot: false,
            round_cap: 24,
        };
        let e = expand(&mut pram, &st, &params, seed, &live, None);
        (pram, st, e, live)
    }

    /// Find a seed where every vertex survives the block lottery and no
    /// hash collides (exists quickly at these sizes).
    fn fully_live_setup(g: &cc_graph::Graph, k: usize) -> (Pram, CcState, Expansion, LiveSet) {
        for seed in 0..200 {
            let (pram, st, e, live) = setup(g, k, seed);
            if e.fdr.host_vec(&pram).iter().all(|&x| x == NULL) {
                return (pram, st, e, live);
            }
            // machine dropped whole; no need to free handles individually
        }
        panic!("no fully-live seed found in 200 tries — hashing is broken");
    }

    #[test]
    fn live_component_elects_exactly_its_minimum() {
        let g = gen::union_all(&[gen::cycle(7), gen::path(5)]);
        let (mut pram, st, e, live) = fully_live_setup(&g, 64);
        let leader = pram.alloc(st.n);
        vote(&mut pram, &st, &e, &live, leader, 0.3, 9);
        let l = pram.read_vec(leader);
        assert_eq!(l[0], 1, "component minimum 0 must be leader");
        assert_eq!(l[7], 1, "component minimum 7 must be leader");
        for v in [1, 2, 3, 4, 5, 6, 8, 9, 10, 11] {
            assert_eq!(l[v], 0, "vertex {v} must not be leader");
        }
    }

    #[test]
    fn live_link_finishes_component_in_one_phase() {
        let g = gen::cycle(9);
        let (mut pram, st, e, live) = fully_live_setup(&g, 64);
        let leader = pram.alloc(st.n);
        vote(&mut pram, &st, &e, &live, leader, 0.3, 3);
        link_step(&mut pram, &st, &e, leader);
        let parents = pram.read_vec(st.parent);
        // All non-minimum vertices point at 0.
        assert_eq!(parents[0], 0);
        for (v, &p) in parents.iter().enumerate().skip(1) {
            assert_eq!(p, 0, "vertex {v}");
        }
    }

    #[test]
    fn dormant_leader_rate_tracks_probability() {
        // Tiny tables force a fully dormant big cycle; the leader rate
        // should be near p_lead.
        let g = gen::cycle(4000);
        let (mut pram, st, e, live) = setup(&g, 4, 23);
        let fdr = e.fdr.host_vec(&pram);
        let dormant = fdr.iter().filter(|&&x| x != NULL).count();
        assert!(dormant > 3000, "expected mostly dormant, got {dormant}");
        let leader = pram.alloc(st.n);
        vote(&mut pram, &st, &e, &live, leader, 0.25, 7);
        let l = pram.read_vec(leader);
        let leaders = (0..4000).filter(|&v| fdr[v] != NULL && l[v] == 1).count();
        let rate = leaders as f64 / dormant as f64;
        assert!((0.2..0.3).contains(&rate), "leader rate {rate}");
    }

    #[test]
    fn links_never_point_to_non_leaders() {
        let g = gen::gnm(500, 1500, 3);
        let (mut pram, st, e, live) = setup(&g, 8, 31);
        let leader = pram.alloc(st.n);
        vote(&mut pram, &st, &e, &live, leader, 0.3, 5);
        link_step(&mut pram, &st, &e, leader);
        let parents = pram.read_vec(st.parent);
        let l = pram.read_vec(leader);
        for v in 0..st.n {
            if parents[v] != v as u64 {
                assert_eq!(l[parents[v] as usize], 1, "vertex {v} linked to non-leader");
            }
        }
    }
}
