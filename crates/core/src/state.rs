//! Shared algorithm state: the labeled digraph (§2.1) plus the arc lists.
//!
//! Every algorithm in this crate operates on a [`CcState`]:
//!
//! * `parent` — the label array `v.p`; the labeled digraph has arcs
//!   `(v, v.p)` and must always be a set of rooted trees (only self-loop
//!   cycles), which [`crate::verify::forest_heights`] asserts.
//! * `eu` / `ev` — the 2m directed arcs of the *current* graph (original
//!   edges, altered over time). One simulated processor per arc, exactly as
//!   the paper assigns them.

use cc_graph::Graph;
use pram_sim::{Handle, Pram};

/// Labeled-digraph state on the machine.
pub struct CcState {
    /// Number of vertices.
    pub n: usize,
    /// Number of directed arcs in `eu`/`ev` (2m; the handles may be 1 cell
    /// longer when the graph has no edges, holding a harmless loop arc).
    pub arcs: usize,
    /// Parent array (`n` cells): `parent[v] = v.p`.
    pub parent: Handle,
    /// Arc tails.
    pub eu: Handle,
    /// Arc heads.
    pub ev: Handle,
}

impl CcState {
    /// Initialize from a graph: every vertex self-labeled, arcs in both
    /// directions. (Setup is host-side and not charged, matching the
    /// paper's assumption that the input sits in memory with one processor
    /// per edge and per vertex.)
    pub fn init(pram: &mut Pram, g: &Graph) -> Self {
        let n = g.n();
        assert!(n >= 1, "empty vertex set");
        let parent = pram.alloc(n);
        for v in 0..n {
            pram.set(parent, v, v as u64);
        }
        let arcs = 2 * g.m();
        let alloc_arcs = arcs.max(1);
        let eu = pram.alloc(alloc_arcs);
        let ev = pram.alloc(alloc_arcs);
        let mut i = 0;
        for &(u, v) in g.edges() {
            pram.set(eu, i, u as u64);
            pram.set(ev, i, v as u64);
            pram.set(eu, i + 1, v as u64);
            pram.set(ev, i + 1, u as u64);
            i += 2;
        }
        if arcs == 0 {
            // Dummy loop arc so handles are non-empty; loops are ignored by
            // every algorithm.
            pram.set(eu, 0, 0);
            pram.set(ev, 0, 0);
        }
        CcState {
            n,
            arcs: alloc_arcs,
            parent,
            eu,
            ev,
        }
    }

    /// Read the component labeling (assumes flat trees: label = parent).
    pub fn labels(&self, pram: &Pram) -> Vec<u32> {
        pram.view(self.parent).iter().map(|p| p as u32).collect()
    }

    /// Read the labeling after host-side root chasing (valid even when
    /// trees are not flat; used by verifiers and by safety-capped exits).
    pub fn labels_rooted(&self, pram: &Pram) -> Vec<u32> {
        let parent = pram.view(self.parent);
        let n = self.n;
        let mut out = vec![u32::MAX; n];
        for v in 0..n {
            if out[v] != u32::MAX {
                continue;
            }
            // Chase to the root, then write it back along the path.
            let mut path = vec![v];
            let mut x = parent.get(v) as usize;
            while parent.get(x) as usize != x && out[x] == u32::MAX {
                path.push(x);
                x = parent.get(x) as usize;
            }
            let root = if out[x] != u32::MAX {
                out[x]
            } else {
                parent.get(x) as u32
            };
            for &p in &path {
                out[p] = root;
            }
        }
        out
    }

    /// Host count of roots (`v.p == v`). Controller bookkeeping, free.
    pub fn host_count_roots(&self, pram: &Pram) -> usize {
        pram.view(self.parent)
            .iter()
            .enumerate()
            .filter(|&(v, p)| p == v as u64)
            .count()
    }

    /// Host count of *ongoing* vertices: endpoints of non-loop arcs
    /// (Definition B.1 via Lemma B.2). Used for reporting and by the
    /// COMBINING-mode density estimate; the ARBITRARY-mode drivers use the
    /// §B.5 `ñ` rule instead.
    pub fn host_count_ongoing(&self, pram: &Pram) -> usize {
        let eu = pram.view(self.eu);
        let ev = pram.view(self.ev);
        let mut flag = vec![false; self.n];
        for i in 0..self.arcs {
            let (u, v) = (eu.get(i), ev.get(i));
            if u != v {
                flag[u as usize] = true;
                flag[v as usize] = true;
            }
        }
        flag.into_iter().filter(|&b| b).count()
    }

    /// Release all handles.
    pub fn free(self, pram: &mut Pram) {
        pram.free(self.parent);
        pram.free(self.eu);
        pram.free(self.ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    #[test]
    fn init_self_labels_and_arcs() {
        let g = gen::path(4);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let st = CcState::init(&mut pram, &g);
        assert_eq!(st.arcs, 6);
        assert_eq!(pram.read_vec(st.parent), vec![0, 1, 2, 3]);
        let eu = pram.read_vec(st.eu);
        let ev = pram.read_vec(st.ev);
        // Both directions of (0,1) present.
        let pairs: Vec<(u64, u64)> = eu.into_iter().zip(ev).collect();
        assert!(pairs.contains(&(0, 1)) && pairs.contains(&(1, 0)));
    }

    #[test]
    fn empty_graph_gets_dummy_loop() {
        let g = cc_graph::GraphBuilder::new(3).build();
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let st = CcState::init(&mut pram, &g);
        assert_eq!(st.arcs, 1);
        assert_eq!(pram.get(st.eu, 0), pram.get(st.ev, 0));
    }

    #[test]
    fn labels_rooted_chases_chains() {
        let g = gen::path(5);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let st = CcState::init(&mut pram, &g);
        // Build a chain 4 -> 3 -> 2 -> 1 -> 0 by hand.
        for v in 1..5 {
            pram.set(st.parent, v, v as u64 - 1);
        }
        assert_eq!(st.labels_rooted(&pram), vec![0; 5]);
    }
}
