//! The **Vanilla algorithm** (§B.1) — Reif '84 random mating in the
//! paper's framework:
//!
//! ```text
//! repeat { RANDOM-VOTE; LINK; SHORTCUT; ALTER } until no non-loop edge
//! ```
//!
//! Each phase is O(1) simulated steps; `O(log n)` phases finish whp
//! (Lemma B.3 / Corollary B.4 give per-phase ongoing-vertex decay `≤ 7/8`).
//! Used standalone as the randomized `O(log n)` baseline and as the
//! `PREPARE` subroutine of Theorems 1–3.
//!
//! **Live-work scheduling.** Every charged step iterates the caller's
//! [`LiveSet`] (coin flips over the ongoing vertices, LINK over the live
//! arcs, SHORTCUT over the ongoing vertices, ALTER over the live arcs), so
//! a phase costs O(live), not O(n + m) — vertices whose arcs have all
//! become loops stop paying. The per-phase `LiveSet::refresh` is the
//! charged Lemma-D.2 compaction, reported under
//! [`RoundMetrics::compaction_work`]. Vertices that leave the live set may
//! keep stale (non-flat) parents; the final labeling chases roots host-side
//! (`labels_rooted`), which is controller bookkeeping, exactly as before.

use crate::live::LiveSet;
use crate::metrics::{RoundMetrics, RunReport, StopReason};
use crate::state::CcState;
use crate::verify;
use cc_graph::Graph;
use pram_kit::ops::{alter_over, shortcut_over};
use pram_sim::{Handle, Pram};

/// One Vanilla phase over existing state, scheduled over `live`. `leader`
/// is an `n`-cell scratch array owned by the caller (reused across
/// phases; only live vertices' cells are written and read).
pub fn vanilla_phase(pram: &mut Pram, st: &CcState, live: &LiveSet, leader: Handle, seed: u64) {
    let (parent, eu, ev) = (st.parent, st.eu, st.ev);

    // RANDOM-VOTE: coin per ongoing vertex.
    pram.step_over(&live.verts, move |_, &u, ctx| {
        let l = ctx.coin(seed ^ 0x52_56, 0.5);
        ctx.write(leader, u as usize, l as u64);
    });

    // LINK: for each live arc (v, w): if v.l = 0 and w.l = 1, update v.p
    // to w. (Endpoints are roots at phase start — Lemma B.2.)
    pram.step_over(&live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let v = ctx.read(eu, i);
        let w = ctx.read(ev, i);
        if v == w {
            return;
        }
        if ctx.read(leader, v as usize) == 0 && ctx.read(leader, w as usize) == 1 {
            ctx.write(parent, v as usize, w);
        }
    });

    shortcut_over(pram, parent, &live.verts);
    alter_over(pram, eu, ev, parent, &live.arcs);
}

/// Run Vanilla to completion on `g` and report.
pub fn vanilla(pram: &mut Pram, g: &Graph, seed: u64) -> RunReport {
    let st = CcState::init(pram, g);
    let leader = pram.alloc(st.n);
    // The one O(m) pass; every later refresh scans live lists only.
    let mut live = LiveSet::full(pram, &st);
    let cap = phase_cap(st.n);
    let mut per_round = Vec::new();
    let mut stop = StopReason::RoundCap;
    let mut phase = 0;
    while phase < cap {
        phase += 1;
        let step_work0 = pram.stats().work;
        vanilla_phase(pram, &st, &live, leader, seed.wrapping_add(phase));
        let step_work = pram.stats().work - step_work0;
        let compaction0 = pram.stats().work;
        live.refresh(pram, &st);
        per_round.push(RoundMetrics {
            round: phase,
            roots: live.roots.len(),
            ongoing: live.verts.len(),
            work: step_work,
            compaction_work: pram.stats().work - compaction0,
            live_arcs: live.arcs.len(),
            ..Default::default()
        });
        if live.is_solved() {
            stop = StopReason::Converged;
            break;
        }
    }
    debug_assert!(
        verify::forest_heights(&pram.read_vec(st.parent)).is_ok(),
        "Vanilla produced a cyclic labeled digraph"
    );
    let labels = st.labels_rooted(pram);
    let stats = pram.stats();
    pram.free(leader);
    st.free(pram);
    RunReport {
        labels,
        rounds: phase,
        prepare_rounds: 0,
        stop,
        stats,
        per_round,
    }
}

/// Safety cap: `O(log n)` phases finish whp; allow a generous multiple.
pub(crate) fn phase_cap(n: usize) -> u64 {
    32 + 6 * (n.max(2) as f64).log2().ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_labels;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    fn run(g: &Graph, policy: WritePolicy, seed: u64) -> RunReport {
        let mut pram = Pram::new(policy);
        vanilla(&mut pram, g, seed)
    }

    #[test]
    fn vanilla_correct_on_shapes() {
        for g in [
            gen::path(50),
            gen::cycle(33),
            gen::star(40),
            gen::complete(16),
            gen::union_all(&[gen::path(10), gen::cycle(7), gen::star(9)]),
        ] {
            let report = run(&g, WritePolicy::ArbitrarySeeded(7), 3);
            assert_eq!(report.stop, StopReason::Converged);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn vanilla_correct_under_all_policies() {
        let g = gen::gnm(200, 400, 5);
        for policy in [
            WritePolicy::ArbitrarySeeded(1),
            WritePolicy::PriorityMin,
            WritePolicy::PriorityMax,
            WritePolicy::Racy,
        ] {
            let report = run(&g, policy, 11);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn vanilla_phases_logarithmic() {
        let g = gen::gnm(2000, 4000, 2);
        let report = run(&g, WritePolicy::ArbitrarySeeded(5), 9);
        assert_eq!(report.stop, StopReason::Converged);
        // log2(2000) ≈ 11; random mating needs ~2-4x that.
        assert!(report.rounds <= 60, "rounds = {}", report.rounds);
    }

    #[test]
    fn ongoing_count_decays() {
        let g = gen::gnm(1000, 3000, 8);
        let report = run(&g, WritePolicy::ArbitrarySeeded(2), 4);
        let first = report.per_round.first().unwrap().ongoing;
        let mid = report.per_round[report.per_round.len() / 2].ongoing;
        assert!(mid < first, "no decay: {first} -> {mid}");
        assert_eq!(report.per_round.last().unwrap().ongoing, 0);
    }

    #[test]
    fn per_phase_work_tracks_live_not_input() {
        // Live-work pin: once the live subproblem has collapsed, a phase
        // must cost far less than the first (O(n + m)-per-phase scheduling
        // costs the same every phase).
        let g = gen::gnm(4000, 8000, 3);
        let report = run(&g, WritePolicy::ArbitrarySeeded(11), 13);
        let pr = &report.per_round;
        assert!(pr.len() >= 3, "expected a multi-phase run");
        let first = pr[0].work;
        let last = pr.last().unwrap().work;
        assert!(
            last * 10 <= first,
            "late phase still pays near-O(n+m): first {first}, last {last}"
        );
        // The compaction bookkeeping is charged and visible.
        assert!(pr[0].compaction_work > 0);
    }

    #[test]
    fn vanilla_on_edgeless_graph_is_instant() {
        let g = cc_graph::GraphBuilder::new(5).build();
        let report = run(&g, WritePolicy::ArbitrarySeeded(1), 1);
        assert_eq!(report.rounds, 1);
        check_labels(&g, &report.labels).unwrap();
    }

    #[test]
    fn deterministic_under_seeded_policy() {
        let g = gen::gnm(300, 500, 1);
        let a = run(&g, WritePolicy::ArbitrarySeeded(42), 7);
        let b = run(&g, WritePolicy::ArbitrarySeeded(42), 7);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.rounds, b.rounds);
    }
}
