//! The **Vanilla algorithm** (§B.1) — Reif '84 random mating in the
//! paper's framework:
//!
//! ```text
//! repeat { RANDOM-VOTE; LINK; SHORTCUT; ALTER } until no non-loop edge
//! ```
//!
//! Each phase is O(1) simulated steps; `O(log n)` phases finish whp
//! (Lemma B.3 / Corollary B.4 give per-phase ongoing-vertex decay `≤ 7/8`).
//! Used standalone as the randomized `O(log n)` baseline and as the
//! `PREPARE` subroutine of Theorems 1–3.

use crate::metrics::{RoundMetrics, RunReport, StopReason};
use crate::state::CcState;
use crate::verify;
use cc_graph::Graph;
use pram_kit::ops::{alter, any_nonloop_arc, shortcut};
use pram_sim::{Handle, Pram};

/// One Vanilla phase over existing state. `leader` is an `n`-cell scratch
/// array owned by the caller (reused across phases).
pub fn vanilla_phase(pram: &mut Pram, st: &CcState, leader: Handle, seed: u64) {
    let n = st.n;
    let (parent, eu, ev) = (st.parent, st.eu, st.ev);

    // RANDOM-VOTE: coin per vertex.
    pram.step(n, move |u, ctx| {
        let l = ctx.coin(seed ^ 0x52_56, 0.5);
        ctx.write(leader, u as usize, l as u64);
    });

    // LINK: for each graph arc (v, w): if v.l = 0 and w.l = 1, update v.p
    // to w. (Endpoints are roots at phase start — Lemma B.2.)
    pram.step(st.arcs, move |i, ctx| {
        let i = i as usize;
        let v = ctx.read(eu, i);
        let w = ctx.read(ev, i);
        if v == w {
            return;
        }
        if ctx.read(leader, v as usize) == 0 && ctx.read(leader, w as usize) == 1 {
            ctx.write(parent, v as usize, w);
        }
    });

    shortcut(pram, parent);
    alter(pram, eu, ev, parent);
}

/// Run Vanilla to completion on `g` and report.
pub fn vanilla(pram: &mut Pram, g: &Graph, seed: u64) -> RunReport {
    let st = CcState::init(pram, g);
    let leader = pram.alloc(st.n);
    let cap = phase_cap(st.n);
    let mut per_round = Vec::new();
    let mut stop = StopReason::RoundCap;
    let mut phase = 0;
    while phase < cap {
        phase += 1;
        vanilla_phase(pram, &st, leader, seed.wrapping_add(phase));
        per_round.push(RoundMetrics {
            round: phase,
            roots: st.host_count_roots(pram),
            ongoing: st.host_count_ongoing(pram),
            ..Default::default()
        });
        if !any_nonloop_arc(pram, st.eu, st.ev) {
            stop = StopReason::Converged;
            break;
        }
    }
    debug_assert!(
        verify::forest_heights(pram.slice(st.parent)).is_ok(),
        "Vanilla produced a cyclic labeled digraph"
    );
    let labels = st.labels_rooted(pram);
    let stats = pram.stats();
    pram.free(leader);
    st.free(pram);
    RunReport {
        labels,
        rounds: phase,
        prepare_rounds: 0,
        stop,
        stats,
        per_round,
    }
}

/// Safety cap: `O(log n)` phases finish whp; allow a generous multiple.
pub(crate) fn phase_cap(n: usize) -> u64 {
    32 + 6 * (n.max(2) as f64).log2().ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_labels;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    fn run(g: &Graph, policy: WritePolicy, seed: u64) -> RunReport {
        let mut pram = Pram::new(policy);
        vanilla(&mut pram, g, seed)
    }

    #[test]
    fn vanilla_correct_on_shapes() {
        for g in [
            gen::path(50),
            gen::cycle(33),
            gen::star(40),
            gen::complete(16),
            gen::union_all(&[gen::path(10), gen::cycle(7), gen::star(9)]),
        ] {
            let report = run(&g, WritePolicy::ArbitrarySeeded(7), 3);
            assert_eq!(report.stop, StopReason::Converged);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn vanilla_correct_under_all_policies() {
        let g = gen::gnm(200, 400, 5);
        for policy in [
            WritePolicy::ArbitrarySeeded(1),
            WritePolicy::PriorityMin,
            WritePolicy::PriorityMax,
            WritePolicy::Racy,
        ] {
            let report = run(&g, policy, 11);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn vanilla_phases_logarithmic() {
        let g = gen::gnm(2000, 4000, 2);
        let report = run(&g, WritePolicy::ArbitrarySeeded(5), 9);
        assert_eq!(report.stop, StopReason::Converged);
        // log2(2000) ≈ 11; random mating needs ~2-4x that.
        assert!(report.rounds <= 60, "rounds = {}", report.rounds);
    }

    #[test]
    fn ongoing_count_decays() {
        let g = gen::gnm(1000, 3000, 8);
        let report = run(&g, WritePolicy::ArbitrarySeeded(2), 4);
        let first = report.per_round.first().unwrap().ongoing;
        let mid = report.per_round[report.per_round.len() / 2].ongoing;
        assert!(mid < first, "no decay: {first} -> {mid}");
        assert_eq!(report.per_round.last().unwrap().ongoing, 0);
    }

    #[test]
    fn vanilla_on_edgeless_graph_is_instant() {
        let g = cc_graph::GraphBuilder::new(5).build();
        let report = run(&g, WritePolicy::ArbitrarySeeded(1), 1);
        assert_eq!(report.rounds, 1);
        check_labels(&g, &report.labels).unwrap();
    }

    #[test]
    fn deterministic_under_seeded_policy() {
        let g = gen::gnm(300, 500, 1);
        let a = run(&g, WritePolicy::ArbitrarySeeded(42), 7);
        let b = run(&g, WritePolicy::ArbitrarySeeded(42), 7);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.rounds, b.rounds);
    }
}
