//! MAXLINK (§3.1/§D.1): every vertex re-hooks onto the highest-level
//! parent in its closed neighbourhood, twice per invocation.
//!
//! Implementation follows §3.3: every edge-holder (arc processor or table
//! cell) writes the neighbour's parent into a level-indexed candidate array
//! of the target vertex (ARBITRARY win per level cell), then each vertex
//! picks the highest occupied level in one charged step (the paper finds
//! it in O(1) with `log³ n` processors doing pairwise comparisons; the
//! scan over `L_max + 1 = O(log log n)` cells is charged 1 and shows up in
//! the `max_ops_per_proc` audit).
//!
//! Live-work scheduling: the invocation operates on the caller's compacted
//! live index — arc/table candidate writes and the selection scan iterate
//! the live arcs / live table cells / live vertices only, so an invocation
//! costs O(live), not O(n + m).
//!
//! **Generation-stamped candidates (default).** Candidate cells are
//! allocated *per invocation* at `live_verts × (L_max + 1)` — each live
//! vertex's row is its position in the live vertex list (`vert_slot`) —
//! and each cell carries a generation stamp: a cell is occupied in the
//! selection scan iff its stamp equals the current iteration's generation.
//! The stamp check substitutes for the NULL sentinel, so neither an O(n)
//! array nor a per-iteration clear step exists; stale cells (earlier
//! iterations, or rows recycled from an earlier invocation's allocation)
//! fail the stamp check instead of being overwritten with NULL. Writers
//! whose target is not in the live vertex list skip (`NO_SLOT`), exactly
//! mirroring the clear-based path's write-to-a-never-read-cell.
//!
//! **Equivalence with the clear-based path.** Per logical candidate cell,
//! both paths have the same writer set (same index lists, same processor
//! ids, same values) and the same reader. Under resolution rules that
//! depend only on the processor id (PRIORITY-MIN/MAX) the committed
//! winners — hence all parent updates — are *identical*, which
//! `stamped_matches_clear_exactly_under_priority_policies` pins. Under
//! `ArbitrarySeeded`, the winner hash also covers the cell's address, and
//! the two layouts place logical cells at different addresses — the two
//! paths are then two different (equally legal) ARBITRARY machines, so
//! equivalence is at the partition level (pinned by the driver-level
//! proptest in `tests/live_work.rs` across dedup cadences).
//!
//! Tie handling: the update fires only when the best candidate's level
//! *strictly* exceeds the current parent's — preferring the incumbent
//! among equal-level candidates is a legal ARBITRARY choice and keeps the
//! break condition's "no parent changed" test from flapping between tied
//! parents. (An explicit self-candidate write would land exactly at the
//! incumbent's level and can never be read by the strict scan, so none is
//! issued or charged.)
//!
//! Invariant preserved (Lemma 3.2/D.4): a new parent always has level
//! strictly above the old parent's (hence above the vertex's), so parent
//! chains strictly increase in level and no cycle can form.

use crate::state::CcState;
use pram_kit::ops::Flag;
use pram_sim::{Handle, Pram, NULL};

/// "Not live" marker in the `vert_slot` map — the one sentinel shared by
/// every live index (see [`crate::live`]).
pub(crate) use crate::live::NO_SLOT;

/// Shared context for a MAXLINK invocation.
pub(crate) struct MaxlinkCtx<'a> {
    /// Candidate array. Stamped mode: `live_verts.len() × (lmax + 1)`
    /// cells, row = slot in `live_verts`. Clear mode: `n × (lmax + 1)`
    /// cells, row = vertex id.
    pub cand: Handle,
    /// Generation stamps, same shape as `cand` — `Some` selects the
    /// stamped path, `None` the clear-based legacy path.
    pub cstamp: Option<Handle>,
    /// vertex → row in `cand` (stamped mode only; ignored by clear mode).
    pub vert_slot: &'a [u32],
    /// Level array.
    pub level: Handle,
    /// Max level (array stride is `max_level + 1`).
    pub lmax: usize,
    /// Compacted live-arc index (non-loop arcs).
    pub live_arcs: &'a [u32],
    /// Endpoints of live arcs and live table edges — the only vertices
    /// that can receive a candidate this invocation.
    pub live_verts: &'a [u32],
    /// Live persistent-table edge index: one entry per live cell, `(x, cell)`.
    pub table_cells: &'a [(u32, u32)],
    /// Per-vertex persistent table offsets (NULL = none).
    pub eoff: Handle,
    /// The table heap.
    pub heap: Handle,
}

/// One MAXLINK iteration; raises `changed` if any parent moved. `gen` is
/// the iteration's generation stamp (≥ 1; unused by the clear path).
pub(crate) fn maxlink_iter(
    pram: &mut Pram,
    st: &CcState,
    mx: &MaxlinkCtx,
    changed: &Flag,
    gen: u64,
) {
    let stride = mx.lmax + 1;
    let (cand, level, eoff, heap) = (mx.cand, mx.level, mx.eoff, mx.heap);
    let cstamp = mx.cstamp;
    let slot = mx.vert_slot;
    let parent = st.parent;
    let (eu, ev) = (st.eu, st.ev);

    // Clear-based path only: NULL the candidate cells of live vertices
    // (one processor per cell). The stamped path needs no clear — that is
    // its point.
    let lv = mx.live_verts;
    if cstamp.is_none() {
        pram.step(lv.len() * stride, move |i, ctx| {
            let i = i as usize;
            let v = lv[i / stride] as usize;
            ctx.write(cand, v * stride + i % stride, NULL);
        });
    }

    // A candidate write: `pb` proposed for `target` at `pb`'s level.
    // Stamped mode maps the target through the slot map (a `NO_SLOT` miss
    // mirrors the clear path's write to a cell no selection scan reads)
    // and stamps the cell; all stampers write the same `gen`, so any
    // ARBITRARY winner leaves the cell occupied.
    let propose = move |ctx: &mut pram_sim::Ctx, target: u64, pb: u64, lpb: usize| {
        let row = match cstamp {
            Some(_) => match slot[target as usize] {
                NO_SLOT => return,
                s => s as usize,
            },
            None => target as usize,
        };
        ctx.write(cand, row * stride + lpb, pb);
        if let Some(stamp) = cstamp {
            ctx.write(stamp, row * stride + lpb, gen);
        }
    };

    // Arc candidates: for live arc (a, b), b's parent is a candidate for a.
    pram.step_over(mx.live_arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b {
            return;
        }
        let pb = ctx.read(parent, b as usize);
        let lpb = ctx.read(level, pb as usize) as usize;
        propose(ctx, a, pb, lpb);
    });

    // Table-edge candidates, both directions per live cell.
    pram.step_over(mx.table_cells, move |_, &(x, c), ctx| {
        let off = ctx.read(eoff, x as usize);
        if off == NULL {
            return;
        }
        let w = ctx.read(heap, off as usize + c as usize);
        if w == NULL || w == x as u64 {
            return;
        }
        let pw = ctx.read(parent, w as usize);
        let lpw = ctx.read(level, pw as usize) as usize;
        propose(ctx, x as u64, pw, lpw);
        let px = ctx.read(parent, x as usize);
        let lpx = ctx.read(level, px as usize) as usize;
        propose(ctx, w, px, lpx);
    });

    // Selection: highest occupied level wins; update on strict improvement
    // over the current parent's level. Charged one step (see module docs);
    // the scan is L_max+1 local reads (2× in stamped mode, stamp + value),
    // visible in the audit counter. In stamped mode the processor index
    // *is* the vertex's row.
    pram.step_over(lv, |p, &v, ctx| {
        let row = match cstamp {
            Some(_) => p as usize,
            None => v as usize,
        };
        let pv = ctx.read(parent, v as usize);
        let lp = ctx.read(level, pv as usize) as usize;
        for l in (lp + 1..stride).rev() {
            let occupied = match cstamp {
                Some(stamp) => ctx.read(stamp, row * stride + l) == gen,
                None => ctx.read(cand, row * stride + l) != NULL,
            };
            if occupied {
                let u = ctx.read(cand, row * stride + l);
                ctx.write(parent, v as usize, u);
                changed.raise(ctx);
                return;
            }
        }
    });
}

/// Full MAXLINK: `iters` iterations (the paper uses 2). Generations count
/// up from 1 — the caller's per-invocation stamp array starts zeroed, so
/// generation 0 can never look occupied.
pub(crate) fn maxlink(pram: &mut Pram, st: &CcState, mx: &MaxlinkCtx, changed: &Flag, iters: u32) {
    for it in 0..iters {
        maxlink_iter(pram, st, mx, changed, it as u64 + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    /// Build a machine with a path graph and hand-set levels.
    fn setup(levels: &[u64]) -> (Pram, CcState, Handle, Handle) {
        let g = gen::path(levels.len());
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(5));
        let st = CcState::init(&mut pram, &g);
        let level = pram.alloc(levels.len());
        for (v, &l) in levels.iter().enumerate() {
            pram.set(level, v, l);
        }
        let lmax = 8;
        let cand = pram.alloc(levels.len() * (lmax + 1));
        (pram, st, level, cand)
    }

    fn run_iter(pram: &mut Pram, st: &CcState, level: Handle, cand: Handle) -> bool {
        let eoff = pram.alloc_filled(st.n, NULL);
        let changed = Flag::new(pram);
        let heap = pram.alloc_filled(1, NULL);
        let live_arcs: Vec<u32> = (0..st.arcs as u32).collect();
        let live_verts: Vec<u32> = (0..st.n as u32).collect();
        let mx = MaxlinkCtx {
            cand,
            cstamp: None,
            vert_slot: &[],
            level,
            lmax: 8,
            live_arcs: &live_arcs,
            live_verts: &live_verts,
            table_cells: &[],
            eoff,
            heap,
        };
        maxlink_iter(pram, st, &mx, &changed, 1);
        let r = changed.read(pram);
        changed.free(pram);
        pram.free(eoff);
        pram.free(heap);
        r
    }

    #[test]
    fn hooks_toward_highest_level_neighbor_parent() {
        // Path 0-1-2; levels: 1, 1, 3. Vertices 0: neighbors {1}: parent 1
        // level 1 — no move. Vertex 1: neighbor 2 has parent 2 at level 3 >
        // own parent's level 1 → hook onto 2.
        let (mut pram, st, level, cand) = setup(&[1, 1, 3]);
        assert!(run_iter(&mut pram, &st, level, cand));
        let p = pram.read_vec(st.parent);
        assert_eq!(p, vec![0, 2, 2]);
    }

    #[test]
    fn no_change_on_equal_levels() {
        let (mut pram, st, level, cand) = setup(&[2, 2, 2, 2]);
        assert!(!run_iter(&mut pram, &st, level, cand));
        assert_eq!(pram.read_vec(st.parent), vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_iterations_reach_distance_two() {
        // Path 0-1-2 with level(2)=5: after one iteration 1 hooks on 2;
        // after the second, 0 sees neighbor 1 whose parent is 2 (level 5)
        // and hooks onto 2 as well — the "distance 2" effect MAXLINK
        // exists for (Lemma 3.7 applied twice).
        let (mut pram, st, level, cand) = setup(&[1, 1, 5]);
        run_iter(&mut pram, &st, level, cand);
        run_iter(&mut pram, &st, level, cand);
        let p = pram.read_vec(st.parent);
        assert_eq!(p, vec![2, 2, 2]);
    }

    #[test]
    fn restricting_to_live_arcs_matches_full_iteration() {
        // Arcs past the live prefix are loops after an ALTER; feeding only
        // the live prefix must give the same hooks as feeding everything
        // (loops contribute no candidates either way).
        let (mut pram, st, level, cand) = setup(&[1, 1, 4, 1]);
        // Make arcs of vertex 3 loops by hand.
        let eu = pram.read_vec(st.eu);
        let ev = pram.read_vec(st.ev);
        let mut live: Vec<u32> = Vec::new();
        for i in 0..st.arcs {
            if eu[i] != ev[i] && eu[i] != 3 && ev[i] != 3 {
                live.push(i as u32);
            } else {
                pram.set(st.eu, i, 0);
                pram.set(st.ev, i, 0);
            }
        }
        let eoff = pram.alloc_filled(st.n, NULL);
        let changed = Flag::new(&mut pram);
        let heap = pram.alloc_filled(1, NULL);
        let live_verts: Vec<u32> = vec![0, 1, 2];
        let mx = MaxlinkCtx {
            cand,
            cstamp: None,
            vert_slot: &[],
            level,
            lmax: 8,
            live_arcs: &live,
            live_verts: &live_verts,
            table_cells: &[],
            eoff,
            heap,
        };
        maxlink_iter(&mut pram, &st, &mx, &changed, 1);
        let p = pram.read_vec(st.parent);
        assert_eq!(p, vec![0, 2, 2, 3]);
    }

    #[test]
    fn levels_strictly_increase_along_new_chains() {
        // Random levels on a grid; after MAXLINK, every non-root's parent
        // has strictly higher level (Lemma 3.2 / D.4).
        let g = gen::grid(5, 5);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(9));
        let st = CcState::init(&mut pram, &g);
        let level = pram.alloc(st.n);
        for v in 0..st.n {
            pram.set(level, v, (v as u64 * 7 + 3) % 5);
        }
        let lmax = 8;
        let cand = pram.alloc(st.n * (lmax + 1));
        run_iter(&mut pram, &st, level, cand);
        run_iter(&mut pram, &st, level, cand);
        let p = pram.read_vec(st.parent);
        let l = pram.read_vec(level);
        crate::verify::forest_heights(&p).expect("cycle created by MAXLINK");
        for v in 0..st.n {
            if p[v] != v as u64 {
                assert!(
                    l[p[v] as usize] > l[v],
                    "non-root {v} level {} parent {} level {}",
                    l[v],
                    p[v],
                    l[p[v] as usize]
                );
            }
        }
    }

    /// Run a full MAXLINK invocation in one mode and return the parents.
    fn run_mode(
        policy: WritePolicy,
        levels: &[u64],
        stamped: bool,
        live_verts: &[u32],
        iters: u32,
    ) -> Vec<u64> {
        let g = gen::gnm(levels.len(), levels.len() * 3, 7);
        let mut pram = Pram::new(policy);
        let st = CcState::init(&mut pram, &g);
        let level = pram.alloc(levels.len());
        for (v, &l) in levels.iter().enumerate() {
            pram.set(level, v, l);
        }
        let lmax = 8;
        let stride = lmax + 1;
        let live_arcs: Vec<u32> = (0..st.arcs as u32).collect();
        let eoff = pram.alloc_filled(st.n, NULL);
        let heap = pram.alloc_filled(1, NULL);
        let changed = Flag::new(&mut pram);
        let mut vert_slot = vec![NO_SLOT; st.n];
        for (i, &v) in live_verts.iter().enumerate() {
            vert_slot[v as usize] = i as u32;
        }
        let (cand, cstamp) = if stamped {
            let sz = (live_verts.len() * stride).max(1);
            (pram.alloc(sz), Some(pram.alloc(sz)))
        } else {
            (pram.alloc_filled(st.n * stride, NULL), None)
        };
        let mx = MaxlinkCtx {
            cand,
            cstamp,
            vert_slot: &vert_slot,
            level,
            lmax,
            live_arcs: &live_arcs,
            live_verts,
            table_cells: &[],
            eoff,
            heap,
        };
        maxlink(&mut pram, &st, &mx, &changed, iters);
        changed.free(&mut pram);
        pram.read_vec(st.parent)
    }

    #[test]
    fn stamped_matches_clear_exactly_under_priority_policies() {
        // The pinned-label equivalence proof: identical writer sets per
        // logical candidate cell + address-independent write resolution ⇒
        // identical committed winners ⇒ identical parents, bit for bit.
        for n in [8usize, 23, 57, 96] {
            let levels: Vec<u64> = (0..n as u64).map(|v| (v * 13 + 5) % 6).collect();
            let live_verts: Vec<u32> = (0..n as u32).collect();
            for policy in [WritePolicy::PriorityMin, WritePolicy::PriorityMax] {
                for iters in [1u32, 2] {
                    let a = run_mode(policy, &levels, false, &live_verts, iters);
                    let b = run_mode(policy, &levels, true, &live_verts, iters);
                    assert_eq!(a, b, "n={n} policy={policy:?} iters={iters}");
                }
            }
        }
    }

    #[test]
    fn stamped_skips_targets_outside_live_verts() {
        // A target missing from the slot map must be skipped (the clear
        // path writes a never-read cell there) — no panic, no hook.
        let levels = vec![1, 1, 4, 1, 1, 1, 1, 1];
        let live_verts: Vec<u32> = vec![0, 1, 2]; // rest are NO_SLOT
        let p = run_mode(WritePolicy::PriorityMin, &levels, true, &live_verts, 2);
        for (v, &pv) in p.iter().enumerate().skip(3) {
            assert_eq!(pv, v as u64, "non-live vertex {v} moved");
        }
    }

    #[test]
    fn stale_generations_are_invisible() {
        // Two iterations share one allocation; iteration 2's selection must
        // not resurrect iteration 1's candidates. A path 0-1-2 where only
        // the first iteration's arc list proposes anything for vertex 0:
        // feed iteration 2 an empty arc list by making the arcs loops
        // mid-way is awkward at this level, so instead check the stamp
        // mechanics directly: after a full 2-iteration run the result obeys
        // Lemma 3.2 (strictly increasing levels), which a stale-candidate
        // resurrection (hooking onto a since-relabeled parent at a now-wrong
        // level) would violate with high probability across seeds.
        for seed in 0..20u64 {
            let n = 40;
            let levels: Vec<u64> = (0..n as u64).map(|v| (v * 7 + seed) % 5).collect();
            let live_verts: Vec<u32> = (0..n as u32).collect();
            let p = run_mode(
                WritePolicy::ArbitrarySeeded(seed),
                &levels,
                true,
                &live_verts,
                2,
            );
            crate::verify::forest_heights(&p).expect("cycle created by stamped MAXLINK");
        }
    }
}
