//! MAXLINK (§3.1/§D.1): every vertex re-hooks onto the highest-level
//! parent in its closed neighbourhood, twice per invocation.
//!
//! Implementation follows §3.3: every edge-holder (arc processor or table
//! cell) writes the neighbour's parent into a level-indexed candidate array
//! of the target vertex (ARBITRARY win per level cell), then each vertex
//! picks the highest occupied level in one charged step (the paper finds
//! it in O(1) with `log³ n` processors doing pairwise comparisons; the
//! scan over `L_max + 1 = O(log log n)` cells is charged 1 and shows up in
//! the `max_ops_per_proc` audit).
//!
//! Tie handling: a vertex's own parent is always a candidate (`v ∈ N(v)`),
//! and the update fires only when the best candidate's level *strictly*
//! exceeds the current parent's — preferring the incumbent among
//! equal-level candidates is a legal ARBITRARY choice and keeps the break
//! condition's "no parent changed" test from flapping between tied
//! parents.
//!
//! Invariant preserved (Lemma 3.2/D.4): a new parent always has level
//! strictly above the old parent's (hence above the vertex's), so parent
//! chains strictly increase in level and no cycle can form.

use crate::state::CcState;
use pram_kit::ops::Flag;
use pram_sim::{Handle, Pram, NULL};

/// Shared context for a MAXLINK invocation.
pub(crate) struct MaxlinkCtx<'a> {
    /// Candidate array, `n × (max_level + 1)` cells.
    pub cand: Handle,
    /// Level array.
    pub level: Handle,
    /// Max level (array stride is `max_level + 1`).
    pub lmax: usize,
    /// Persistent-table edge index: one entry per table cell, `(x, cell)`.
    pub table_cells: &'a [(u32, u32)],
    /// Per-vertex persistent table offsets (NULL = none).
    pub eoff: Handle,
    /// The table heap.
    pub heap: Handle,
}

/// One MAXLINK iteration; raises `changed` if any parent moved.
pub(crate) fn maxlink_iter(pram: &mut Pram, st: &CcState, mx: &MaxlinkCtx, changed: &Flag) {
    let n = st.n;
    let stride = mx.lmax + 1;
    let (cand, level, eoff, heap) = (mx.cand, mx.level, mx.eoff, mx.heap);
    let parent = st.parent;
    let (eu, ev) = (st.eu, st.ev);

    // Clear candidates.
    pram.fill_step(cand, NULL);

    // Self-candidate: v's own parent (v ∈ N(v)).
    pram.step(n, move |v, ctx| {
        let p = ctx.read(parent, v as usize);
        let lp = ctx.read(level, p as usize) as usize;
        ctx.write(cand, v as usize * stride + lp, p);
    });

    // Arc candidates: for arc (a, b), b's parent is a candidate for a.
    pram.step(st.arcs, move |i, ctx| {
        let i = i as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b {
            return;
        }
        let pb = ctx.read(parent, b as usize);
        let lpb = ctx.read(level, pb as usize) as usize;
        ctx.write(cand, a as usize * stride + lpb, pb);
    });

    // Table-edge candidates, both directions per cell.
    let table_cells = mx.table_cells;
    pram.step(table_cells.len(), move |i, ctx| {
        let (x, c) = table_cells[i as usize];
        let off = ctx.read(eoff, x as usize);
        if off == NULL {
            return;
        }
        let w = ctx.read(heap, off as usize + c as usize);
        if w == NULL || w == x as u64 {
            return;
        }
        let pw = ctx.read(parent, w as usize);
        let lpw = ctx.read(level, pw as usize) as usize;
        ctx.write(cand, x as usize * stride + lpw, pw);
        let px = ctx.read(parent, x as usize);
        let lpx = ctx.read(level, px as usize) as usize;
        ctx.write(cand, w as usize * stride + lpx, px);
    });

    // Selection: highest occupied level wins; update on strict improvement
    // over the current parent's level. Charged one step (see module docs);
    // the scan is L_max+1 local reads, visible in the audit counter.
    pram.step(n, |v, ctx| {
        let p = ctx.read(parent, v as usize);
        let lp = ctx.read(level, p as usize) as usize;
        for l in (lp + 1..stride).rev() {
            let u = ctx.read(cand, v as usize * stride + l);
            if u != NULL {
                ctx.write(parent, v as usize, u);
                changed.raise(ctx);
                return;
            }
        }
    });
}

/// Full MAXLINK: `iters` iterations (the paper uses 2).
pub(crate) fn maxlink(pram: &mut Pram, st: &CcState, mx: &MaxlinkCtx, changed: &Flag, iters: u32) {
    for _ in 0..iters {
        maxlink_iter(pram, st, mx, changed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    /// Build a machine with a path graph and hand-set levels.
    fn setup(levels: &[u64]) -> (Pram, CcState, Handle, Handle) {
        let g = gen::path(levels.len());
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(5));
        let st = CcState::init(&mut pram, &g);
        let level = pram.alloc(levels.len());
        for (v, &l) in levels.iter().enumerate() {
            pram.set(level, v, l);
        }
        let lmax = 8;
        let cand = pram.alloc(levels.len() * (lmax + 1));
        (pram, st, level, cand)
    }

    fn run_iter(pram: &mut Pram, st: &CcState, level: Handle, cand: Handle) -> bool {
        let eoff = pram.alloc_filled(st.n, NULL);
        let changed = Flag::new(pram);
        let heap = pram.alloc_filled(1, NULL);
        let mx = MaxlinkCtx {
            cand,
            level,
            lmax: 8,
            table_cells: &[],
            eoff,
            heap,
        };
        maxlink_iter(pram, st, &mx, &changed);
        let r = changed.read(pram);
        changed.free(pram);
        pram.free(eoff);
        pram.free(heap);
        r
    }

    #[test]
    fn hooks_toward_highest_level_neighbor_parent() {
        // Path 0-1-2; levels: 1, 1, 3. Vertices 0: neighbors {1}: parent 1
        // level 1 — no move. Vertex 1: neighbor 2 has parent 2 at level 3 >
        // own parent's level 1 → hook onto 2.
        let (mut pram, st, level, cand) = setup(&[1, 1, 3]);
        assert!(run_iter(&mut pram, &st, level, cand));
        let p = pram.read_vec(st.parent);
        assert_eq!(p, vec![0, 2, 2]);
    }

    #[test]
    fn no_change_on_equal_levels() {
        let (mut pram, st, level, cand) = setup(&[2, 2, 2, 2]);
        assert!(!run_iter(&mut pram, &st, level, cand));
        assert_eq!(pram.read_vec(st.parent), vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_iterations_reach_distance_two() {
        // Path 0-1-2 with level(2)=5: after one iteration 1 hooks on 2;
        // after the second, 0 sees neighbor 1 whose parent is 2 (level 5)
        // and hooks onto 2 as well — the "distance 2" effect MAXLINK
        // exists for (Lemma 3.7 applied twice).
        let (mut pram, st, level, cand) = setup(&[1, 1, 5]);
        run_iter(&mut pram, &st, level, cand);
        run_iter(&mut pram, &st, level, cand);
        let p = pram.read_vec(st.parent);
        assert_eq!(p, vec![2, 2, 2]);
    }

    #[test]
    fn levels_strictly_increase_along_new_chains() {
        // Random levels on a grid; after MAXLINK, every non-root's parent
        // has strictly higher level (Lemma 3.2 / D.4).
        let g = gen::grid(5, 5);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(9));
        let st = CcState::init(&mut pram, &g);
        let level = pram.alloc(st.n);
        for v in 0..st.n {
            pram.set(level, v, (v as u64 * 7 + 3) % 5);
        }
        let lmax = 8;
        let cand = pram.alloc(st.n * (lmax + 1));
        run_iter(&mut pram, &st, level, cand);
        run_iter(&mut pram, &st, level, cand);
        let p = pram.read_vec(st.parent);
        let l = pram.read_vec(level);
        crate::verify::forest_heights(&p).expect("cycle created by MAXLINK");
        for v in 0..st.n {
            if p[v] != v as u64 {
                assert!(
                    l[p[v] as usize] > l[v],
                    "non-root {v} level {} parent {} level {}",
                    l[v],
                    p[v],
                    l[p[v] as usize]
                );
            }
        }
    }
}
