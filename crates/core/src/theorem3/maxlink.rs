//! MAXLINK (§3.1/§D.1): every vertex re-hooks onto the highest-level
//! parent in its closed neighbourhood, twice per invocation.
//!
//! Implementation follows §3.3: every edge-holder (arc processor or table
//! cell) writes the neighbour's parent into a level-indexed candidate array
//! of the target vertex (ARBITRARY win per level cell), then each vertex
//! picks the highest occupied level in one charged step (the paper finds
//! it in O(1) with `log³ n` processors doing pairwise comparisons; the
//! scan over `L_max + 1 = O(log log n)` cells is charged 1 and shows up in
//! the `max_ops_per_proc` audit).
//!
//! Live-work scheduling: the invocation operates on the caller's compacted
//! live index — candidate clearing, arc/table candidate writes, and the
//! selection scan all iterate the live arcs / live table cells / live
//! vertices only, so an invocation costs O(live), not O(n + m). Vertices
//! outside the live set can keep stale candidate cells from earlier
//! rounds: they are never read, because selection visits live vertices
//! only and every vertex *in* the live set has its cells cleared first
//! (the live set shrinks monotonically between invocations — arcs only
//! ever become loops, and table edges only die or move to parents that
//! the live index already contains).
//!
//! Tie handling: the update fires only when the best candidate's level
//! *strictly* exceeds the current parent's — preferring the incumbent
//! among equal-level candidates is a legal ARBITRARY choice and keeps the
//! break condition's "no parent changed" test from flapping between tied
//! parents. (An explicit self-candidate write would land exactly at the
//! incumbent's level and can never be read by the strict scan, so none is
//! issued or charged.)
//!
//! Invariant preserved (Lemma 3.2/D.4): a new parent always has level
//! strictly above the old parent's (hence above the vertex's), so parent
//! chains strictly increase in level and no cycle can form.

use crate::state::CcState;
use pram_kit::ops::Flag;
use pram_sim::{Handle, Pram, NULL};

/// Shared context for a MAXLINK invocation.
pub(crate) struct MaxlinkCtx<'a> {
    /// Candidate array, `n × (max_level + 1)` cells.
    pub cand: Handle,
    /// Level array.
    pub level: Handle,
    /// Max level (array stride is `max_level + 1`).
    pub lmax: usize,
    /// Compacted live-arc index (non-loop arcs).
    pub live_arcs: &'a [u32],
    /// Endpoints of live arcs and live table edges — the only vertices
    /// that can receive a candidate this invocation.
    pub live_verts: &'a [u32],
    /// Live persistent-table edge index: one entry per live cell, `(x, cell)`.
    pub table_cells: &'a [(u32, u32)],
    /// Per-vertex persistent table offsets (NULL = none).
    pub eoff: Handle,
    /// The table heap.
    pub heap: Handle,
}

/// One MAXLINK iteration; raises `changed` if any parent moved.
pub(crate) fn maxlink_iter(pram: &mut Pram, st: &CcState, mx: &MaxlinkCtx, changed: &Flag) {
    let stride = mx.lmax + 1;
    let (cand, level, eoff, heap) = (mx.cand, mx.level, mx.eoff, mx.heap);
    let parent = st.parent;
    let (eu, ev) = (st.eu, st.ev);

    // Clear the candidate cells of live vertices (one processor per cell).
    let lv = mx.live_verts;
    pram.step(lv.len() * stride, move |i, ctx| {
        let i = i as usize;
        let v = lv[i / stride] as usize;
        ctx.write(cand, v * stride + i % stride, NULL);
    });

    // Arc candidates: for live arc (a, b), b's parent is a candidate for a.
    pram.step_over(mx.live_arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b {
            return;
        }
        let pb = ctx.read(parent, b as usize);
        let lpb = ctx.read(level, pb as usize) as usize;
        ctx.write(cand, a as usize * stride + lpb, pb);
    });

    // Table-edge candidates, both directions per live cell.
    pram.step_over(mx.table_cells, move |_, &(x, c), ctx| {
        let off = ctx.read(eoff, x as usize);
        if off == NULL {
            return;
        }
        let w = ctx.read(heap, off as usize + c as usize);
        if w == NULL || w == x as u64 {
            return;
        }
        let pw = ctx.read(parent, w as usize);
        let lpw = ctx.read(level, pw as usize) as usize;
        ctx.write(cand, x as usize * stride + lpw, pw);
        let px = ctx.read(parent, x as usize);
        let lpx = ctx.read(level, px as usize) as usize;
        ctx.write(cand, w as usize * stride + lpx, px);
    });

    // Selection: highest occupied level wins; update on strict improvement
    // over the current parent's level. Charged one step (see module docs);
    // the scan is L_max+1 local reads, visible in the audit counter.
    pram.step_over(lv, |_, &v, ctx| {
        let p = ctx.read(parent, v as usize);
        let lp = ctx.read(level, p as usize) as usize;
        for l in (lp + 1..stride).rev() {
            let u = ctx.read(cand, v as usize * stride + l);
            if u != NULL {
                ctx.write(parent, v as usize, u);
                changed.raise(ctx);
                return;
            }
        }
    });
}

/// Full MAXLINK: `iters` iterations (the paper uses 2).
pub(crate) fn maxlink(pram: &mut Pram, st: &CcState, mx: &MaxlinkCtx, changed: &Flag, iters: u32) {
    for _ in 0..iters {
        maxlink_iter(pram, st, mx, changed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    /// Build a machine with a path graph and hand-set levels.
    fn setup(levels: &[u64]) -> (Pram, CcState, Handle, Handle) {
        let g = gen::path(levels.len());
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(5));
        let st = CcState::init(&mut pram, &g);
        let level = pram.alloc(levels.len());
        for (v, &l) in levels.iter().enumerate() {
            pram.set(level, v, l);
        }
        let lmax = 8;
        let cand = pram.alloc(levels.len() * (lmax + 1));
        (pram, st, level, cand)
    }

    fn run_iter(pram: &mut Pram, st: &CcState, level: Handle, cand: Handle) -> bool {
        let eoff = pram.alloc_filled(st.n, NULL);
        let changed = Flag::new(pram);
        let heap = pram.alloc_filled(1, NULL);
        let live_arcs: Vec<u32> = (0..st.arcs as u32).collect();
        let live_verts: Vec<u32> = (0..st.n as u32).collect();
        let mx = MaxlinkCtx {
            cand,
            level,
            lmax: 8,
            live_arcs: &live_arcs,
            live_verts: &live_verts,
            table_cells: &[],
            eoff,
            heap,
        };
        maxlink_iter(pram, st, &mx, &changed);
        let r = changed.read(pram);
        changed.free(pram);
        pram.free(eoff);
        pram.free(heap);
        r
    }

    #[test]
    fn hooks_toward_highest_level_neighbor_parent() {
        // Path 0-1-2; levels: 1, 1, 3. Vertices 0: neighbors {1}: parent 1
        // level 1 — no move. Vertex 1: neighbor 2 has parent 2 at level 3 >
        // own parent's level 1 → hook onto 2.
        let (mut pram, st, level, cand) = setup(&[1, 1, 3]);
        assert!(run_iter(&mut pram, &st, level, cand));
        let p = pram.read_vec(st.parent);
        assert_eq!(p, vec![0, 2, 2]);
    }

    #[test]
    fn no_change_on_equal_levels() {
        let (mut pram, st, level, cand) = setup(&[2, 2, 2, 2]);
        assert!(!run_iter(&mut pram, &st, level, cand));
        assert_eq!(pram.read_vec(st.parent), vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_iterations_reach_distance_two() {
        // Path 0-1-2 with level(2)=5: after one iteration 1 hooks on 2;
        // after the second, 0 sees neighbor 1 whose parent is 2 (level 5)
        // and hooks onto 2 as well — the "distance 2" effect MAXLINK
        // exists for (Lemma 3.7 applied twice).
        let (mut pram, st, level, cand) = setup(&[1, 1, 5]);
        run_iter(&mut pram, &st, level, cand);
        run_iter(&mut pram, &st, level, cand);
        let p = pram.read_vec(st.parent);
        assert_eq!(p, vec![2, 2, 2]);
    }

    #[test]
    fn restricting_to_live_arcs_matches_full_iteration() {
        // Arcs past the live prefix are loops after an ALTER; feeding only
        // the live prefix must give the same hooks as feeding everything
        // (loops contribute no candidates either way).
        let (mut pram, st, level, cand) = setup(&[1, 1, 4, 1]);
        // Make arcs of vertex 3 loops by hand.
        let eu = pram.read_vec(st.eu);
        let ev = pram.read_vec(st.ev);
        let mut live: Vec<u32> = Vec::new();
        for i in 0..st.arcs {
            if eu[i] != ev[i] && eu[i] != 3 && ev[i] != 3 {
                live.push(i as u32);
            } else {
                pram.set(st.eu, i, 0);
                pram.set(st.ev, i, 0);
            }
        }
        let eoff = pram.alloc_filled(st.n, NULL);
        let changed = Flag::new(&mut pram);
        let heap = pram.alloc_filled(1, NULL);
        let live_verts: Vec<u32> = vec![0, 1, 2];
        let mx = MaxlinkCtx {
            cand,
            level,
            lmax: 8,
            live_arcs: &live,
            live_verts: &live_verts,
            table_cells: &[],
            eoff,
            heap,
        };
        maxlink_iter(&mut pram, &st, &mx, &changed);
        let p = pram.read_vec(st.parent);
        assert_eq!(p, vec![0, 2, 2, 3]);
    }

    #[test]
    fn levels_strictly_increase_along_new_chains() {
        // Random levels on a grid; after MAXLINK, every non-root's parent
        // has strictly higher level (Lemma 3.2 / D.4).
        let g = gen::grid(5, 5);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(9));
        let st = CcState::init(&mut pram, &g);
        let level = pram.alloc(st.n);
        for v in 0..st.n {
            pram.set(level, v, (v as u64 * 7 + 3) % 5);
        }
        let lmax = 8;
        let cand = pram.alloc(st.n * (lmax + 1));
        run_iter(&mut pram, &st, level, cand);
        run_iter(&mut pram, &st, level, cand);
        let p = pram.read_vec(st.parent);
        let l = pram.read_vec(level);
        crate::verify::forest_heights(&p).expect("cycle created by MAXLINK");
        for v in 0..st.n {
            if p[v] != v as u64 {
                assert!(
                    l[p[v] as usize] > l[v],
                    "non-root {v} level {} parent {} level {}",
                    l[v],
                    p[v],
                    l[p[v] as usize]
                );
            }
        }
    }
}
