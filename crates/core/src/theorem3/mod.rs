//! **Theorem 3** — Faster Connected Components in
//! `O(log d + log log_{m/n} n)` (§3 / §D of the paper):
//!
//! ```text
//! COMPACT;
//! repeat { EXPAND-MAXLINK } until diameter ≤ 1 and all trees flat;
//! run the Theorem-1 algorithm on the remaining graph.
//! ```
//!
//! * `COMPACT` (§D): Vanilla phases shrink the ongoing-vertex count, then
//!   approximate compaction renames the survivors so every one of them can
//!   own a level-1 block of size `b₁` (Assumption 3.1).
//! * Each round runs Steps (1)–(8) of [`round`] (EXPAND-MAXLINK): MAXLINK
//!   toward higher levels, random and collision-triggered level raises,
//!   same-budget table hashing, and table squaring. The level/budget
//!   machinery (`b_ℓ = b₁^{κ^{ℓ-1}}`, non-roots frozen — Lemma 3.2/D.4) is
//!   what turns the multiplicative `log d · log log n` of Theorem 1 into
//!   the additive `log d + log log n`.
//! * The break condition is the O(1) test of §3.3: no parent/level change
//!   and transitively-closed tables; when it fires the root graph has
//!   diameter ≤ 1 and the Theorem-1 postprocess finishes in
//!   `O(log log_{m/n} n)`.
//!
//! The driver's output is verified against ground truth in every test; a
//! safety round cap (counted by E6, never silently ignored) falls through
//! to the always-correct postprocess.

mod maxlink;
mod round;
mod tables;

use crate::metrics::{RoundMetrics, RunReport, StopReason};
use crate::state::CcState;
use crate::theorem1::{self, Theorem1Params};
use crate::vanilla::vanilla_phase;
use crate::verify;
use cc_graph::Graph;
use pram_kit::compaction::{compact, CompactionMode};
use pram_kit::ops::{alter, shortcut_until_flat};
use pram_sim::{Pram, NULL};
use round::{expand_maxlink_round, FasterState, LiveIndex, RoundScratch};
use tables::TableHeap;

/// Tunable parameters (paper values in brackets; see crate docs on
/// parameter substitution).
#[derive(Clone, Debug)]
pub struct FasterParams {
    /// Initial budget `b₁` (power of four; 0 = auto from post-COMPACT
    /// density) [paper: `max(m/n, log^c n)/log² n`, `c = 200`].
    pub b1: u64,
    /// Budget growth exponent: `b_{ℓ+1} = b_ℓ^κ` [paper: κ = 1.01; default
    /// 1.5 — fast enough for double-exponential progress at laptop scale,
    /// gentle enough that a root's block never jumps from "small" straight
    /// to the `~n²` ceiling, which is what keeps per-round work near `O(m)`
    /// (E9). κ = 2 and 4 are exercised by the E10 ablation].
    pub kappa: f64,
    /// Budget ceiling (0 = auto) [paper: implicitly `poly(n)`].
    pub max_budget: u64,
    /// Step-2 sampling probability `min(sample_cap, sample_coeff /
    /// b^sample_exp)` [paper: `10 log n / b^{0.1}`].
    pub sample_coeff: f64,
    /// Exponent in the sampling probability [paper: 0.1].
    pub sample_exp: f64,
    /// Cap on the sampling probability.
    pub sample_cap: f64,
    /// Disable Step 2 entirely (E10 ablation).
    pub enable_sampling: bool,
    /// MAXLINK iterations per invocation [paper: 2] (E10 ablation).
    pub maxlink_iters: u32,
    /// Density PREPARE inside COMPACT must reach (0 disables the Vanilla
    /// prefix) [paper: `log^c n`].
    pub compact_delta0: f64,
    /// Round cap (0 = auto); hitting it is recorded, never hidden.
    pub round_cap: u64,
    /// Live-work scheduling: every `dedup_every` rounds the compacted
    /// live-arc index is also deduplicated by endpoint pair (ALTER maps
    /// many arcs onto the same root pair as components merge), so
    /// simulated steps pay for *distinct* live arcs. 0 disables dedup;
    /// loop filtering always runs. Purely a work/wall-clock knob — labels
    /// are unaffected (duplicate arcs write identical candidates).
    pub dedup_every: u64,
    /// Parameters of the Theorem-1 postprocess.
    pub postprocess: Theorem1Params,
}

impl Default for FasterParams {
    fn default() -> Self {
        FasterParams {
            b1: 0,
            kappa: 1.5,
            max_budget: 0,
            sample_coeff: 1.0,
            sample_exp: 0.3,
            sample_cap: 0.15,
            enable_sampling: true,
            maxlink_iters: 2,
            compact_delta0: 4.0,
            round_cap: 0,
            dedup_every: 4,
            postprocess: Theorem1Params::default(),
        }
    }
}

/// Round a value up to a power of four.
fn pow4_at_least(x: u64) -> u64 {
    let mut b = 4u64;
    while b < x {
        b <<= 2;
    }
    b
}

impl FasterParams {
    /// The budget schedule `budgets[ℓ]` (powers of four), `budgets[0] = 0`.
    fn budget_schedule(&self, n: usize, m: usize, ongoing: usize) -> Vec<u64> {
        let b1 = if self.b1 > 0 {
            pow4_at_least(self.b1)
        } else {
            let density = (m.max(1) as u64 / ongoing.max(1) as u64).clamp(16, 256);
            pow4_at_least(density)
        };
        let max_budget = if self.max_budget > 0 {
            pow4_at_least(self.max_budget)
        } else {
            // Budget ceiling: the paper's design needs the top-level table
            // `√b_L` to hold a whole component's root set (Lemma 3.19 gives
            // `b_L ≥ n⁴`; here `b_L ≈ 4n²`, i.e. tables of ~2n cells),
            // otherwise the §3.3 break condition can never fire on stubborn
            // inputs. A hard memory lid of 4M words bounds the footprint on
            // big inputs; if it ever binds the run falls through to the
            // always-correct postprocess (counted by E6).
            let cap = (4 * (n as u64) * (n as u64)).min(1 << 22);
            pow4_at_least(cap.max(4 * b1))
        };
        let mut budgets = vec![0, b1];
        loop {
            let last = *budgets.last().unwrap();
            if last >= max_budget {
                break;
            }
            let next = pow4_at_least((last as f64).powf(self.kappa).min(max_budget as f64) as u64)
                .min(max_budget)
                .max(last << 2); // strictly increasing even for κ near 1
            budgets.push(next);
        }
        budgets
    }
}

/// Full report of a Theorem-3 run.
#[derive(Clone, Debug)]
pub struct FasterReport {
    /// Main-loop report; `run.rounds` counts EXPAND-MAXLINK rounds and
    /// `run.labels` is the final verified labeling.
    pub run: RunReport,
    /// The Theorem-1 postprocess report (labels empty).
    pub post: RunReport,
    /// Retry rounds the initial approximate compaction needed.
    pub compaction_rounds: u64,
    /// Peak table-heap words over the run — the E4 measurement.
    pub table_peak_words: u64,
}

/// Run Theorem 3's Faster Connected Components on `g`.
pub fn faster_cc(pram: &mut Pram, g: &Graph, seed: u64, params: &FasterParams) -> FasterReport {
    let st = CcState::init(pram, g);
    let n = st.n;
    let m = g.m();
    let mut per_round = Vec::new();

    // ------------------------------------------------------------ COMPACT
    // Vanilla prefix until the density target (the paper's PREPARE inside
    // COMPACT), then approximate compaction renames the ongoing vertices
    // (providing the distinct ids of Assumption 3.1).
    let leader = pram.alloc(n);
    let mut prepare_rounds = 0;
    let prep_cap = 4 + 2 * ((n.max(4) as f64).log2().log2().ceil() as u64);
    while params.compact_delta0 > 0.0 && prepare_rounds < prep_cap {
        let ongoing = st.host_count_ongoing(pram);
        if ongoing == 0 || (m as f64) / (ongoing as f64) >= params.compact_delta0 {
            break;
        }
        prepare_rounds += 1;
        vanilla_phase(pram, &st, leader, seed ^ 0xC0_4AC7 ^ prepare_rounds);
    }
    pram.free(leader);

    let ongoing_now = st.host_count_ongoing(pram);
    let compaction_rounds = {
        // Rename ongoing vertices via approximate compaction (Lemma D.3).
        let active = pram.alloc_filled(n, 0);
        let eu = st.eu;
        let ev = st.ev;
        pram.step(st.arcs, |i, ctx| {
            let i = i as usize;
            let a = ctx.read(eu, i);
            let b = ctx.read(ev, i);
            if a != b {
                ctx.write(active, a as usize, 1);
                ctx.write(active, b as usize, 1);
            }
        });
        let res = compact(pram, active, seed ^ 0xC0317AC7, CompactionMode::ChargedO1)
            .expect("approximate compaction failed");
        let rounds = res.rounds;
        res.free(pram);
        pram.free(active);
        rounds
    };

    // ---------------------------------------------------- state init
    let budgets = params.budget_schedule(n, m, ongoing_now.max(1));
    let lmax = budgets.len() - 1;
    let b1 = budgets[1];
    let level = pram.alloc_filled(n, 0);
    let budget = pram.alloc_filled(n, 0);
    {
        let eu = st.eu;
        let ev = st.ev;
        // Assumption 3.1: every ongoing vertex starts at level 1 with a
        // b₁-sized block.
        pram.step(st.arcs, move |i, ctx| {
            let i = i as usize;
            let a = ctx.read(eu, i);
            let b = ctx.read(ev, i);
            if a != b {
                ctx.write(level, a as usize, 1);
                ctx.write(level, b as usize, 1);
                ctx.write(budget, a as usize, b1);
                ctx.write(budget, b as usize, b1);
            }
        });
    }
    let heap = TableHeap::new(pram, (4 * m).max(1024));
    let mut fs = FasterState {
        st,
        level,
        budget,
        eoff: pram.alloc_filled(n, NULL),
        t3off: pram.alloc_filled(n, NULL),
        t5off: pram.alloc_filled(n, NULL),
        dormant: pram.alloc_filled(n, 0),
        raised2: pram.alloc_filled(n, 0),
        cand: pram.alloc_filled(n * (lmax + 1), NULL),
        heap,
        lmax,
        budgets,
        host_tbl: vec![None; n],
        live: LiveIndex::new(n),
        scratch: RoundScratch::new(n),
    };
    // Seed the live-work index: the one O(m) pass; every per-round refresh
    // scans only the surviving lists.
    fs.live
        .init_from_arcs(pram, &fs.st, params.dedup_every > 0, seed ^ 0x11FE_11FE);
    fs.live.max_level_seen = if fs.live.verts.is_empty() { 0 } else { 1 };

    // ------------------------------------------------- EXPAND-MAXLINK loop
    let round_cap = if params.round_cap > 0 {
        params.round_cap
    } else {
        48 + 4 * (n.max(2) as f64).log2().ceil() as u64
    };
    let mut stop = StopReason::RoundCap;
    let mut rounds = 0;
    while rounds < round_cap {
        rounds += 1;
        let work_before = pram.stats().work;
        let outcome = expand_maxlink_round(pram, &mut fs, params, seed, rounds);
        per_round.push(RoundMetrics {
            round: rounds,
            roots: fs.st.host_count_roots(pram),
            ongoing: outcome.ongoing,
            max_level: outcome.max_level,
            dormant: outcome.dormant,
            table_words: outcome.table_live,
            work: pram.stats().work - work_before,
            live_arcs: outcome.live_arcs,
            ..Default::default()
        });
        #[cfg(any(test, feature = "strict"))]
        assert_invariants(pram, &fs);
        if !outcome.changed && !outcome.ii_violated {
            stop = StopReason::Converged;
            break;
        }
    }

    // ------------------------------------------------------- postprocess
    // Flatten, move edges to roots, then hand the remaining graph (arcs +
    // added table edges) to the Theorem-1 algorithm.
    shortcut_until_flat(pram, fs.st.parent);
    alter(pram, fs.st.eu, fs.st.ev, fs.st.parent);

    let (eu2, ev2, arcs2, added_edges) = materialize_remaining_graph(pram, &fs);
    let post_state = CcState {
        n,
        arcs: arcs2,
        parent: fs.st.parent,
        eu: eu2,
        ev: ev2,
    };
    let post = theorem1::connected_components_on_state(
        pram,
        &post_state,
        seed ^ 0x9057_9057,
        &params.postprocess,
        (arcs2 / 2).max(1),
    );

    debug_assert!(
        verify::forest_heights(pram.slice(post_state.parent)).is_ok(),
        "Theorem 3 produced a cyclic labeled digraph"
    );
    let labels = post_state.labels_rooted(pram);
    let stats = pram.stats();
    let table_peak_words = fs.heap.peak_words() as u64;

    // Tear down. `post_state.parent` aliases `fs.st.parent` (handles are
    // plain (base, len) pairs), so the parent array is freed exactly once.
    let _ = added_edges;
    let (p, e1, e2) = (fs.st.parent, fs.st.eu, fs.st.ev);
    fs.free(pram); // levels/budgets/flags/heap; does not touch CcState handles
    pram.free(e1);
    pram.free(e2);
    pram.free(p);
    pram.free(eu2);
    pram.free(ev2);

    FasterReport {
        run: RunReport {
            labels,
            rounds,
            prepare_rounds,
            stop,
            stats,
            per_round,
        },
        post,
        compaction_rounds,
        table_peak_words,
    }
}

/// Copy arcs + added table edges into fresh arc arrays for the
/// postprocess (one parallel copy step).
fn materialize_remaining_graph(
    pram: &mut Pram,
    fs: &FasterState,
) -> (pram_sim::Handle, pram_sim::Handle, usize, usize) {
    let eu_host = pram.read_vec(fs.st.eu);
    let ev_host = pram.read_vec(fs.st.ev);
    let parents = pram.read_vec(fs.st.parent);
    let heap_handle = fs.heap.handle();
    let mut pairs: Vec<(u64, u64)> = eu_host.into_iter().zip(ev_host).collect();
    let mut added = 0;
    for (v, t) in fs.host_tbl.iter().enumerate() {
        if let Some((off, sqb)) = t {
            for c in 0..*sqb as usize {
                let w = pram.get(heap_handle, *off as usize + c);
                if w != NULL && w != v as u64 {
                    // Edges live on current parents after the final ALTER.
                    let a = parents[v];
                    let b = parents[w as usize];
                    pairs.push((a, b));
                    pairs.push((b, a));
                    added += 2;
                }
            }
        }
    }
    let arcs2 = pairs.len().max(1);
    let eu2 = pram.alloc_filled(arcs2, 0);
    let ev2 = pram.alloc_filled(arcs2, 0);
    for (i, (a, b)) in pairs.iter().enumerate() {
        pram.set(eu2, i, *a);
        pram.set(ev2, i, *b);
    }
    pram.charge(arcs2, 1); // the materialization copy is one parallel step
    (eu2, ev2, arcs2, added)
}

/// Lemma 3.2 / D.4 and digraph sanity, asserted per round in tests and
/// under the `strict` feature.
#[cfg(any(test, feature = "strict"))]
fn assert_invariants(pram: &Pram, fs: &FasterState) {
    let parents = pram.slice(fs.st.parent);
    let levels = pram.slice(fs.level);
    verify::forest_heights(parents).expect("labeled digraph contains a cycle");
    for (v, (&p, &l)) in parents.iter().zip(levels).enumerate() {
        // §D.1: vertices of components finished during COMPACT (parent
        // level 0) are ignored — their trees are inert.
        if p != v as u64 && levels[p as usize] > 0 {
            assert!(
                levels[p as usize] > l,
                "Lemma 3.2 violated: non-root {v} level {l} parent {p} level {}",
                levels[p as usize]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_labels;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    fn run(g: &Graph, seed: u64, params: &FasterParams) -> FasterReport {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        faster_cc(&mut pram, g, seed, params)
    }

    #[test]
    fn correct_on_basic_shapes() {
        let params = FasterParams::default();
        for g in [
            gen::path(50),
            gen::cycle(33),
            gen::star(40),
            gen::complete(16),
            gen::grid(6, 8),
            gen::union_all(&[gen::path(11), gen::cycle(8), gen::complete(5)]),
        ] {
            let report = run(&g, 7, &params);
            check_labels(&g, &report.run.labels)
                .unwrap_or_else(|e| panic!("graph n={} m={}: {e}", g.n(), g.m()));
        }
    }

    #[test]
    fn correct_on_random_graphs_multiple_seeds() {
        let params = FasterParams::default();
        for seed in 0..5 {
            let g = gen::gnm(300, 1200, seed);
            let report = run(&g, seed * 17 + 3, &params);
            check_labels(&g, &report.run.labels).unwrap();
        }
    }

    #[test]
    fn correct_under_all_policies() {
        let g = gen::gnm(250, 900, 5);
        let params = FasterParams::default();
        for policy in [
            WritePolicy::ArbitrarySeeded(11),
            WritePolicy::PriorityMin,
            WritePolicy::PriorityMax,
            WritePolicy::Racy,
        ] {
            let mut pram = Pram::new(policy);
            let report = faster_cc(&mut pram, &g, 13, &params);
            check_labels(&g, &report.run.labels).unwrap();
        }
    }

    #[test]
    fn converges_and_rounds_scale_with_log_diameter() {
        let params = FasterParams::default();
        let short = run(&gen::clique_chain(4, 8), 3, &params);
        let long = run(&gen::clique_chain(128, 4), 3, &params);
        check_labels(&gen::clique_chain(4, 8), &short.run.labels).unwrap();
        check_labels(&gen::clique_chain(128, 4), &long.run.labels).unwrap();
        assert_eq!(short.run.stop, StopReason::Converged);
        assert!(
            long.run.rounds > short.run.rounds,
            "short={} long={}",
            short.run.rounds,
            long.run.rounds
        );
        // log2(diam≈380) ≈ 8.6; generous constant.
        assert!(long.run.rounds <= 60, "rounds={}", long.run.rounds);
    }

    #[test]
    fn multi_component_mixture() {
        let g = gen::union_all(&[
            gen::gnm(150, 450, 2),
            gen::path(40),
            gen::star(25),
            gen::binary_tree(31),
        ]);
        let report = run(&g, 29, &FasterParams::default());
        check_labels(&g, &report.run.labels).unwrap();
    }

    #[test]
    fn levels_stay_below_schedule_and_budgets_track() {
        let g = gen::gnm(400, 1600, 9);
        let report = run(&g, 31, &FasterParams::default());
        check_labels(&g, &report.run.labels).unwrap();
        let max_level = report.run.max_level();
        assert!(max_level >= 1);
        // L_max for n=400: schedule 16,256,65536,... capped — small.
        assert!(max_level <= 8, "max level {max_level}");
    }

    #[test]
    fn table_space_stays_linear() {
        let g = gen::gnm(500, 2000, 4);
        let report = run(&g, 37, &FasterParams::default());
        check_labels(&g, &report.run.labels).unwrap();
        let ratio = report.table_peak_words as f64 / (2000.0);
        assert!(ratio < 32.0, "table peak / m = {ratio}");
    }

    #[test]
    fn ablation_no_sampling_still_correct() {
        let params = FasterParams {
            enable_sampling: false,
            ..Default::default()
        };
        let g = gen::gnm(200, 700, 6);
        let report = run(&g, 41, &params);
        check_labels(&g, &report.run.labels).unwrap();
    }

    #[test]
    fn ablation_single_maxlink_iteration_still_correct() {
        let params = FasterParams {
            maxlink_iters: 1,
            ..Default::default()
        };
        let g = gen::gnm(200, 700, 8);
        let report = run(&g, 43, &params);
        check_labels(&g, &report.run.labels).unwrap();
    }

    #[test]
    fn edgeless_and_tiny_graphs() {
        let params = FasterParams::default();
        let g0 = cc_graph::GraphBuilder::new(5).build();
        let report = run(&g0, 1, &params);
        check_labels(&g0, &report.run.labels).unwrap();
        let g1 = gen::path(2);
        let report = run(&g1, 1, &params);
        check_labels(&g1, &report.run.labels).unwrap();
    }

    #[test]
    fn deterministic_under_seeded_policy() {
        let g = gen::gnm(300, 1000, 2);
        let params = FasterParams::default();
        let a = run(&g, 55, &params);
        let b = run(&g, 55, &params);
        assert_eq!(a.run.labels, b.run.labels);
        assert_eq!(a.run.rounds, b.run.rounds);
    }

    #[test]
    fn budget_schedule_properties() {
        let params = FasterParams::default();
        let budgets = params.budget_schedule(10_000, 40_000, 5_000);
        assert_eq!(budgets[0], 0);
        for w in budgets[1..].windows(2) {
            assert!(w[1] > w[0], "schedule not strictly increasing: {budgets:?}");
            assert!(w[1] >= w[0] << 2, "growth below 4x: {budgets:?}");
        }
        for &b in &budgets[1..] {
            assert!(
                b.is_power_of_two() && b.trailing_zeros() % 2 == 0,
                "budget {b} is not a power of four"
            );
        }
        // The paper's L = O(log log n): the schedule is short.
        assert!(budgets.len() <= 12, "schedule too long: {budgets:?}");
    }

    #[test]
    fn budget_schedule_respects_overrides() {
        let params = FasterParams {
            b1: 64,
            max_budget: 4096,
            kappa: 2.0,
            ..Default::default()
        };
        let budgets = params.budget_schedule(1000, 4000, 500);
        assert_eq!(budgets[1], 64);
        assert_eq!(*budgets.last().unwrap(), 4096);
    }

    #[test]
    fn crew_checked_run_reports_conflicts() {
        // The algorithm leans on concurrent writes; under the CREW checker
        // it must still be correct *and* must report conflicts (i.e. it is
        // not secretly an EREW algorithm — §1's lower-bound discussion).
        let g = gen::gnm(200, 800, 3);
        let mut pram = Pram::new(WritePolicy::CrewChecked(7));
        let report = faster_cc(&mut pram, &g, 7, &FasterParams::default());
        check_labels(&g, &report.run.labels).unwrap();
        assert!(
            report.run.stats.write_conflicts > 0,
            "expected concurrent writes on a CRCW algorithm"
        );
    }
}
