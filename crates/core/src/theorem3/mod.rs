//! **Theorem 3** — Faster Connected Components in
//! `O(log d + log log_{m/n} n)` (§3 / §D of the paper):
//!
//! ```text
//! COMPACT;
//! repeat { EXPAND-MAXLINK } until diameter ≤ 1 and all trees flat;
//! run the Theorem-1 algorithm on the remaining graph.
//! ```
//!
//! * `COMPACT` (§D): Vanilla phases shrink the ongoing-vertex count, then
//!   approximate compaction renames the survivors so every one of them can
//!   own a level-1 block of size `b₁` (Assumption 3.1).
//! * Each round runs Steps (1)–(8) of `round` (EXPAND-MAXLINK): MAXLINK
//!   toward higher levels, random and collision-triggered level raises,
//!   same-budget table hashing, and table squaring. The level/budget
//!   machinery (`b_ℓ = b₁^{κ^{ℓ-1}}`, non-roots frozen — Lemma 3.2/D.4) is
//!   what turns the multiplicative `log d · log log n` of Theorem 1 into
//!   the additive `log d + log log n`.
//! * The break condition is the O(1) test of §3.3: no parent/level change
//!   and transitively-closed tables; when it fires the root graph has
//!   diameter ≤ 1 and the Theorem-1 postprocess finishes in
//!   `O(log log_{m/n} n)`.
//!
//! The driver's output is verified against ground truth in every test; a
//! safety round cap (counted by E6, never silently ignored) falls through
//! to the always-correct postprocess.

mod maxlink;
mod round;
mod tables;

use crate::live::LiveSet;
use crate::metrics::{RoundMetrics, RunReport, StopReason};
use crate::state::CcState;
use crate::theorem1::{self, Theorem1Params};
use crate::vanilla::vanilla_phase;
use crate::verify;
use cc_graph::Graph;
use pram_kit::compaction::{compact, CompactionMode};
use pram_kit::ops::{alter_over, shortcut_until_flat_over};
use pram_sim::{Pram, NULL};
use round::{expand_maxlink_round, FasterState, LiveIndex, RoundScratch};
use std::collections::HashMap;
use tables::TableHeap;

/// Tunable parameters (paper values in brackets; see crate docs on
/// parameter substitution).
#[derive(Clone, Debug)]
pub struct FasterParams {
    /// Initial budget `b₁` (power of four; 0 = auto from post-COMPACT
    /// density) [paper: `max(m/n, log^c n)/log² n`, `c = 200`].
    pub b1: u64,
    /// Budget growth exponent: `b_{ℓ+1} = b_ℓ^κ` [paper: κ = 1.01; default
    /// 1.5 — fast enough for double-exponential progress at laptop scale,
    /// gentle enough that a root's block never jumps from "small" straight
    /// to the `~n²` ceiling, which is what keeps per-round work near `O(m)`
    /// (E9). κ = 2 and 4 are exercised by the E10 ablation].
    pub kappa: f64,
    /// Budget ceiling (0 = auto) [paper: implicitly `poly(n)`].
    pub max_budget: u64,
    /// Step-2 sampling probability `min(sample_cap, sample_coeff /
    /// b^sample_exp)` [paper: `10 log n / b^{0.1}`].
    pub sample_coeff: f64,
    /// Exponent in the sampling probability [paper: 0.1].
    pub sample_exp: f64,
    /// Cap on the sampling probability.
    pub sample_cap: f64,
    /// Disable Step 2 entirely (E10 ablation).
    pub enable_sampling: bool,
    /// MAXLINK iterations per invocation [paper: 2] (E10 ablation).
    pub maxlink_iters: u32,
    /// Density PREPARE inside COMPACT must reach (0 disables the Vanilla
    /// prefix) [paper: `log^c n`].
    pub compact_delta0: f64,
    /// Round cap (0 = auto); hitting it is recorded, never hidden.
    pub round_cap: u64,
    /// Live-work scheduling: every `dedup_every` rounds the compacted
    /// live-arc index is also deduplicated by endpoint pair (ALTER maps
    /// many arcs onto the same root pair as components merge), so
    /// simulated steps pay for *distinct* live arcs. 0 disables dedup;
    /// loop filtering always runs. Purely a work/wall-clock knob — labels
    /// are unaffected (duplicate arcs write identical candidates).
    pub dedup_every: u64,
    /// Generation-stamped MAXLINK candidate cells (default true): the
    /// candidate array is allocated per invocation at
    /// `live_verts × (L_max + 1)` cells and a stamp check substitutes for
    /// the NULL sentinel, so neither the O(n)-cell array nor the
    /// per-iteration clear step exists. `false` selects the clear-based
    /// legacy path (kept for the pinned equivalence proof — see
    /// `maxlink`'s module docs; under processor-priority write policies
    /// the two paths produce bit-identical parents, and the partitions
    /// match on every machine).
    pub maxlink_stamps: bool,
    /// Parameters of the Theorem-1 postprocess.
    pub postprocess: Theorem1Params,
}

impl Default for FasterParams {
    fn default() -> Self {
        FasterParams {
            b1: 0,
            kappa: 1.5,
            max_budget: 0,
            sample_coeff: 1.0,
            sample_exp: 0.3,
            sample_cap: 0.15,
            enable_sampling: true,
            maxlink_iters: 2,
            compact_delta0: 4.0,
            round_cap: 0,
            dedup_every: 4,
            maxlink_stamps: true,
            postprocess: Theorem1Params::default(),
        }
    }
}

/// Round a value up to a power of four.
fn pow4_at_least(x: u64) -> u64 {
    let mut b = 4u64;
    while b < x {
        b <<= 2;
    }
    b
}

impl FasterParams {
    /// The budget schedule `budgets[ℓ]` (powers of four), `budgets[0] = 0`.
    fn budget_schedule(&self, n: usize, m: usize, ongoing: usize) -> Vec<u64> {
        let b1 = if self.b1 > 0 {
            pow4_at_least(self.b1)
        } else {
            let density = (m.max(1) as u64 / ongoing.max(1) as u64).clamp(16, 256);
            pow4_at_least(density)
        };
        let max_budget = if self.max_budget > 0 {
            pow4_at_least(self.max_budget)
        } else {
            // Budget ceiling: the paper's design needs the top-level table
            // `√b_L` to hold a whole component's root set (Lemma 3.19 gives
            // `b_L ≥ n⁴`; here `b_L ≈ 4n²`, i.e. tables of ~2n cells),
            // otherwise the §3.3 break condition can never fire on stubborn
            // inputs. A hard memory lid of 4M words bounds the footprint on
            // big inputs; if it ever binds the run falls through to the
            // always-correct postprocess (counted by E6).
            let cap = (4 * (n as u64) * (n as u64)).min(1 << 22);
            pow4_at_least(cap.max(4 * b1))
        };
        let mut budgets = vec![0, b1];
        loop {
            let last = *budgets.last().unwrap();
            if last >= max_budget {
                break;
            }
            let next = pow4_at_least((last as f64).powf(self.kappa).min(max_budget as f64) as u64)
                .min(max_budget)
                .max(last << 2); // strictly increasing even for κ near 1
            budgets.push(next);
        }
        budgets
    }
}

/// Full report of a Theorem-3 run.
#[derive(Clone, Debug)]
pub struct FasterReport {
    /// Main-loop report; `run.rounds` counts EXPAND-MAXLINK rounds and
    /// `run.labels` is the final verified labeling.
    pub run: RunReport,
    /// The Theorem-1 postprocess report (labels empty).
    pub post: RunReport,
    /// Retry rounds the initial approximate compaction needed.
    pub compaction_rounds: u64,
    /// Peak table-heap words over the run — the E4 measurement.
    pub table_peak_words: u64,
    /// Charged work of the whole postprocess (frontier flatten, final
    /// ALTER, remaining-graph materialization/rename, and the Theorem-1
    /// run on the renamed subproblem). With the postprocess folded onto
    /// the live lists this is o(n + m) once the frontier has shrunk — the
    /// regression guard in `tests/live_work.rs` pins it.
    pub post_work: u64,
}

/// Reusable host-side buffers for repeated [`faster_cc_with`] runs: the
/// live-work index, the per-round scratch, and the persistent-table
/// mirror survive between runs with their capacity intact, so a bench rep
/// (or a service resolving many queries) re-fills warm vectors instead of
/// re-growing them from nothing. Pairs with [`Pram::reset_for_run`] on the
/// machine side; a fresh workspace behaves exactly like none at all.
#[derive(Default)]
pub struct FasterWorkspace {
    live: Option<LiveIndex>,
    scratch: Option<RoundScratch>,
    host_tbl: Option<Vec<Option<(u64, u32)>>>,
}

impl FasterWorkspace {
    /// An empty workspace (first run allocates, later runs reuse).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Run Theorem 3's Faster Connected Components on `g`.
pub fn faster_cc(pram: &mut Pram, g: &Graph, seed: u64, params: &FasterParams) -> FasterReport {
    let mut ws = FasterWorkspace::new();
    faster_cc_with(pram, g, seed, params, &mut ws)
}

/// [`faster_cc`] with caller-owned reusable buffers (see
/// [`FasterWorkspace`]). Buffer reuse is capacity-only: results and
/// charged costs are identical to a fresh-workspace run.
pub fn faster_cc_with(
    pram: &mut Pram,
    g: &Graph,
    seed: u64,
    params: &FasterParams,
    ws: &mut FasterWorkspace,
) -> FasterReport {
    let st = CcState::init(pram, g);
    let n = st.n;
    let m = g.m();
    let mut per_round = Vec::new();

    // ------------------------------------------------------------ COMPACT
    // Vanilla prefix until the density target (the paper's PREPARE inside
    // COMPACT), then approximate compaction renames the ongoing vertices
    // (providing the distinct ids of Assumption 3.1). The prefix runs on a
    // LiveSet so its phases and its ongoing counts are charged at live
    // sizes (the previous host count was an O(n + m) scan per phase).
    let leader = pram.alloc(n);
    let mut prefix_live = LiveSet::full(pram, &st);
    let mut prepare_rounds = 0;
    let prep_cap = 4 + 2 * ((n.max(4) as f64).log2().log2().ceil() as u64);
    while params.compact_delta0 > 0.0 && prepare_rounds < prep_cap {
        let ongoing = prefix_live.verts.len();
        if ongoing == 0 || (m as f64) / (ongoing as f64) >= params.compact_delta0 {
            break;
        }
        prepare_rounds += 1;
        vanilla_phase(
            pram,
            &st,
            &prefix_live,
            leader,
            seed ^ 0xC0_4AC7 ^ prepare_rounds,
        );
        prefix_live.refresh(pram, &st);
    }
    pram.free(leader);

    let ongoing_now = prefix_live.verts.len();
    drop(prefix_live);
    let compaction_rounds = {
        // Rename ongoing vertices via approximate compaction (Lemma D.3).
        let active = pram.alloc_filled(n, 0);
        let eu = st.eu;
        let ev = st.ev;
        pram.step(st.arcs, |i, ctx| {
            let i = i as usize;
            let a = ctx.read(eu, i);
            let b = ctx.read(ev, i);
            if a != b {
                ctx.write(active, a as usize, 1);
                ctx.write(active, b as usize, 1);
            }
        });
        let res = compact(pram, active, seed ^ 0xC0317AC7, CompactionMode::ChargedO1)
            .expect("approximate compaction failed");
        let rounds = res.rounds;
        res.free(pram);
        pram.free(active);
        rounds
    };

    // ---------------------------------------------------- state init
    let budgets = params.budget_schedule(n, m, ongoing_now.max(1));
    let lmax = budgets.len() - 1;
    let b1 = budgets[1];
    let level = pram.alloc_filled(n, 0);
    let budget = pram.alloc_filled(n, 0);
    {
        let eu = st.eu;
        let ev = st.ev;
        // Assumption 3.1: every ongoing vertex starts at level 1 with a
        // b₁-sized block.
        pram.step(st.arcs, move |i, ctx| {
            let i = i as usize;
            let a = ctx.read(eu, i);
            let b = ctx.read(ev, i);
            if a != b {
                ctx.write(level, a as usize, 1);
                ctx.write(level, b as usize, 1);
                ctx.write(budget, a as usize, b1);
                ctx.write(budget, b as usize, b1);
            }
        });
    }
    let heap = TableHeap::new(pram, (4 * m).max(1024));
    let mut fs = FasterState {
        st,
        level,
        budget,
        eoff: pram.alloc_filled(n, NULL),
        t3off: pram.alloc_filled(n, NULL),
        t5off: pram.alloc_filled(n, NULL),
        dormant: pram.alloc_filled(n, 0),
        raised2: pram.alloc_filled(n, 0),
        // The n-cell candidate array exists only on the clear-based legacy
        // path; the stamped default allocates live-sized pairs per
        // invocation.
        cand: (!params.maxlink_stamps).then(|| pram.alloc_filled(n * (lmax + 1), NULL)),
        heap,
        lmax,
        budgets,
        host_tbl: {
            // Reuse the workspace mirror when present: clear + resize
            // rewrites the same backing store instead of reallocating.
            let mut tbl = ws.host_tbl.take().unwrap_or_default();
            tbl.clear();
            tbl.resize(n, None);
            tbl
        },
        live: match ws.live.take() {
            Some(mut live) => {
                live.reset_for(n);
                live
            }
            None => LiveIndex::new(n),
        },
        scratch: match ws.scratch.take() {
            Some(mut scratch) => {
                scratch.reset_for(n);
                scratch
            }
            None => RoundScratch::new(n),
        },
    };
    // Seed the live-work index: the one O(m) pass; every per-round refresh
    // scans only the surviving lists.
    fs.live
        .init_from_arcs(pram, &fs.st, params.dedup_every > 0, seed ^ 0x11FE_11FE);
    fs.live.max_level_seen = if fs.live.verts.is_empty() { 0 } else { 1 };

    // ------------------------------------------------- EXPAND-MAXLINK loop
    let round_cap = if params.round_cap > 0 {
        params.round_cap
    } else {
        48 + 4 * (n.max(2) as f64).log2().ceil() as u64
    };
    let mut stop = StopReason::RoundCap;
    let mut rounds = 0;
    while rounds < round_cap {
        rounds += 1;
        let work_before = pram.stats().work;
        let outcome = expand_maxlink_round(pram, &mut fs, params, seed, rounds);
        let round_work = pram.stats().work - work_before;
        per_round.push(RoundMetrics {
            round: rounds,
            // Ongoing roots from the live index — the previous full-parent
            // host scan was the last per-round O(n) term.
            roots: fs.live.roots.len(),
            ongoing: outcome.ongoing,
            max_level: outcome.max_level,
            dormant: outcome.dormant,
            table_words: outcome.table_live,
            work: round_work - outcome.compaction_work,
            compaction_work: outcome.compaction_work,
            live_arcs: outcome.live_arcs,
            ..Default::default()
        });
        #[cfg(any(test, feature = "strict"))]
        assert_invariants(pram, &fs);
        if !outcome.changed && !outcome.ii_violated {
            stop = StopReason::Converged;
            break;
        }
    }

    // ------------------------------------------------------- postprocess
    // Folded into the final round's compacted state (the ROADMAP
    // "postprocess cost" item): flattening, the final ALTER, and the
    // remaining-graph materialization all run over the live lists, so
    // post-convergence work is charged at the surviving frontier — o(n+m)
    // once the main loop has shrunk it — never as full n/m sweeps.
    // Finished vertices keep stale (possibly non-flat) parents; the final
    // labeling chases roots host-side (`labels_rooted`), which is
    // controller bookkeeping exactly like the paper's output convention.
    let post_work0 = pram.stats().work;
    shortcut_until_flat_over(pram, fs.st.parent, &fs.live.verts);
    alter_over(pram, fs.st.eu, fs.st.ev, fs.st.parent, &fs.live.arcs);
    let post = postprocess_remaining(pram, &fs, seed, params);
    let post_work = pram.stats().work - post_work0;

    debug_assert!(
        verify::forest_heights(&pram.read_vec(fs.st.parent)).is_ok(),
        "Theorem 3 produced a cyclic labeled digraph"
    );
    let labels = fs.st.labels_rooted(pram);
    let stats = pram.stats();
    let table_peak_words = fs.heap.peak_words() as u64;

    // Tear down; the host-side buffers go back to the workspace.
    let (p, e1, e2) = (fs.st.parent, fs.st.eu, fs.st.ev);
    let (live, scratch, host_tbl) = fs.free(pram); // machine handles freed; CcState untouched
    ws.live = Some(live);
    ws.scratch = Some(scratch);
    ws.host_tbl = Some(host_tbl);
    pram.free(e1);
    pram.free(e2);
    pram.free(p);

    FasterReport {
        run: RunReport {
            labels,
            rounds,
            prepare_rounds,
            stop,
            stats,
            per_round,
        },
        post,
        compaction_rounds,
        table_peak_words,
        post_work,
    }
}

/// The Theorem-1 postprocess over the *remaining* graph, materialized from
/// the live lists instead of full-array sweeps.
///
/// The remaining connectivity lives entirely in the live arcs (dropped
/// arcs were loops or duplicates when dropped, and stay so — ALTER maps
/// loops to loops and duplicates to duplicates) and the live table cells
/// (dropped cells had NULL/self values or endpoints that already shared a
/// parent, i.e. were already connected). Both lists sit on roots after the
/// frontier flatten + ALTER above, so the root graph they induce is
/// renamed onto `[0, k)` (the Lemma-D.2 rename, charged at the root
/// count), solved by Theorem 1 on a k-vertex state, and linked back with
/// one charged step: each remaining root hooks onto its component's
/// representative root. An empty frontier skips all of it.
fn postprocess_remaining(
    pram: &mut Pram,
    fs: &FasterState,
    seed: u64,
    params: &FasterParams,
) -> RunReport {
    // Host mirror of the compacted remaining graph (charged below as the
    // materialization copy).
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    {
        let eu = pram.view(fs.st.eu);
        let ev = pram.view(fs.st.ev);
        for &i in &fs.live.arcs {
            let (a, b) = (eu.get(i as usize), ev.get(i as usize));
            if a != b {
                pairs.push((a, b));
            }
        }
    }
    {
        let eo = pram.view(fs.eoff);
        let hw = pram.view(fs.heap.handle());
        let parents = pram.view(fs.st.parent);
        for &(x, c) in &fs.live.table_cells {
            let off = eo.get(x as usize);
            if off == NULL {
                continue;
            }
            let w = hw.get(off as usize + c as usize);
            if w == NULL || w == x as u64 {
                continue;
            }
            let (a, b) = (parents.get(x as usize), parents.get(w as usize));
            if a != b {
                pairs.push((a, b));
                pairs.push((b, a));
            }
        }
    }
    if pairs.is_empty() {
        // Fully converged: nothing remains; the postprocess is free.
        return RunReport {
            labels: Vec::new(),
            rounds: 0,
            prepare_rounds: 0,
            stop: StopReason::Converged,
            stats: pram.stats(),
            per_round: Vec::new(),
        };
    }

    // Rename the remaining roots onto [0, k) — approximate compaction
    // (Lemma D.2), charged at the root count; the map is deterministic
    // first-seen order. Then deduplicate the renamed pairs (one charged
    // hashing pass, the same discipline as the round dedup): thousands of
    // live table cells can name the same root pair, and without this the
    // postprocess would re-iterate every duplicate in every Theorem-1
    // phase — the dedup is what keeps the whole postprocess an
    // O(frontier) emission plus a solve on the (tiny) distinct root graph.
    let mut rep_of: HashMap<u64, u32> = HashMap::with_capacity(pairs.len());
    let mut reps: Vec<u64> = Vec::new();
    let mut rename = |v: u64, reps: &mut Vec<u64>| -> u64 {
        *rep_of.entry(v).or_insert_with(|| {
            reps.push(v);
            (reps.len() - 1) as u32
        }) as u64
    };
    let n2 = {
        let mut renamed = Vec::with_capacity(pairs.len());
        for &(a, b) in &pairs {
            renamed.push((rename(a, &mut reps), rename(b, &mut reps)));
        }
        pairs = renamed;
        reps.len()
    };
    pram.charge(n2, 4); // the rename
    pram.charge(pairs.len(), 1); // the materialization copy
    {
        let emitted = pairs.len();
        let mut set = pram_kit::PairSet::with_capacity(seed ^ 0xDED0_9057, pairs.len());
        pairs.retain(|&(a, b)| set.insert(a, b));
        pram.charge(emitted, 2); // the dedup hashing pass
    }

    let sub_parent = pram.alloc(n2);
    for v in 0..n2 {
        pram.set(sub_parent, v, v as u64);
    }
    let eu2 = pram.alloc(pairs.len());
    let ev2 = pram.alloc(pairs.len());
    for (i, &(a, b)) in pairs.iter().enumerate() {
        pram.set(eu2, i, a);
        pram.set(ev2, i, b);
    }
    let post_state = CcState {
        n: n2,
        arcs: pairs.len(),
        parent: sub_parent,
        eu: eu2,
        ev: ev2,
    };
    let post = theorem1::connected_components_on_state(
        pram,
        &post_state,
        seed ^ 0x9057_9057,
        &params.postprocess,
        (pairs.len() / 2).max(1),
    );

    // Link every remaining root to its component's representative (one
    // charged step over the k renamed roots). Representatives stay their
    // own roots, so the labeled digraph remains a forest.
    let sub_labels = post_state.labels_rooted(pram);
    {
        let parent = fs.st.parent;
        let reps_ref: &[u64] = &reps;
        let labels_ref: &[u32] = &sub_labels;
        pram.step(n2, move |p, ctx| {
            let i = p as usize;
            let r = labels_ref[i] as usize;
            if r != i {
                ctx.write(parent, reps_ref[i] as usize, reps_ref[r]);
            }
        });
    }
    pram.free(sub_parent);
    pram.free(eu2);
    pram.free(ev2);
    post
}

/// Lemma 3.2 / D.4 and digraph sanity, asserted per round in tests and
/// under the `strict` feature.
#[cfg(any(test, feature = "strict"))]
fn assert_invariants(pram: &Pram, fs: &FasterState) {
    let parents = pram.read_vec(fs.st.parent);
    let levels = pram.read_vec(fs.level);
    verify::forest_heights(&parents).expect("labeled digraph contains a cycle");
    for (v, (&p, &l)) in parents.iter().zip(&levels).enumerate() {
        // §D.1: vertices of components finished during COMPACT (parent
        // level 0) are ignored — their trees are inert.
        if p != v as u64 && levels[p as usize] > 0 {
            assert!(
                levels[p as usize] > l,
                "Lemma 3.2 violated: non-root {v} level {l} parent {p} level {}",
                levels[p as usize]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_labels;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    fn run(g: &Graph, seed: u64, params: &FasterParams) -> FasterReport {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        faster_cc(&mut pram, g, seed, params)
    }

    #[test]
    fn correct_on_basic_shapes() {
        let params = FasterParams::default();
        for g in [
            gen::path(50),
            gen::cycle(33),
            gen::star(40),
            gen::complete(16),
            gen::grid(6, 8),
            gen::union_all(&[gen::path(11), gen::cycle(8), gen::complete(5)]),
        ] {
            let report = run(&g, 7, &params);
            check_labels(&g, &report.run.labels)
                .unwrap_or_else(|e| panic!("graph n={} m={}: {e}", g.n(), g.m()));
        }
    }

    #[test]
    fn correct_on_random_graphs_multiple_seeds() {
        let params = FasterParams::default();
        for seed in 0..5 {
            let g = gen::gnm(300, 1200, seed);
            let report = run(&g, seed * 17 + 3, &params);
            check_labels(&g, &report.run.labels).unwrap();
        }
    }

    #[test]
    fn workspace_and_machine_reuse_replay_bit_identically() {
        // One machine + one workspace across reps must equal fresh
        // machine/workspace runs — the bench-loop reuse contract.
        let params = FasterParams::default();
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(21));
        let mut ws = FasterWorkspace::new();
        let mut reused = Vec::new();
        for seed in 0..3u64 {
            // Different graphs per rep to exercise size-changing resets.
            let g = gen::gnm(200 + 40 * seed as usize, 800, seed);
            pram.reset_for_run();
            let rep = faster_cc_with(&mut pram, &g, seed, &params, &mut ws);
            reused.push((rep.run.labels, rep.run.rounds, rep.run.stats));
        }
        for seed in 0..3u64 {
            let g = gen::gnm(200 + 40 * seed as usize, 800, seed);
            let mut fresh = Pram::new(WritePolicy::ArbitrarySeeded(21));
            let rep = faster_cc(&mut fresh, &g, seed, &params);
            let (labels, rounds, stats) = &reused[seed as usize];
            assert_eq!(&rep.run.labels, labels);
            assert_eq!(rep.run.rounds, *rounds);
            assert_eq!(&rep.run.stats, stats);
        }
    }

    #[test]
    fn correct_under_all_policies() {
        let g = gen::gnm(250, 900, 5);
        let params = FasterParams::default();
        for policy in [
            WritePolicy::ArbitrarySeeded(11),
            WritePolicy::PriorityMin,
            WritePolicy::PriorityMax,
            WritePolicy::Racy,
        ] {
            let mut pram = Pram::new(policy);
            let report = faster_cc(&mut pram, &g, 13, &params);
            check_labels(&g, &report.run.labels).unwrap();
        }
    }

    #[test]
    fn converges_and_rounds_scale_with_log_diameter() {
        let params = FasterParams::default();
        let short = run(&gen::clique_chain(4, 8), 3, &params);
        let long = run(&gen::clique_chain(128, 4), 3, &params);
        check_labels(&gen::clique_chain(4, 8), &short.run.labels).unwrap();
        check_labels(&gen::clique_chain(128, 4), &long.run.labels).unwrap();
        assert_eq!(short.run.stop, StopReason::Converged);
        assert!(
            long.run.rounds > short.run.rounds,
            "short={} long={}",
            short.run.rounds,
            long.run.rounds
        );
        // log2(diam≈380) ≈ 8.6; generous constant.
        assert!(long.run.rounds <= 60, "rounds={}", long.run.rounds);
    }

    #[test]
    fn multi_component_mixture() {
        let g = gen::union_all(&[
            gen::gnm(150, 450, 2),
            gen::path(40),
            gen::star(25),
            gen::binary_tree(31),
        ]);
        let report = run(&g, 29, &FasterParams::default());
        check_labels(&g, &report.run.labels).unwrap();
    }

    #[test]
    fn levels_stay_below_schedule_and_budgets_track() {
        let g = gen::gnm(400, 1600, 9);
        let report = run(&g, 31, &FasterParams::default());
        check_labels(&g, &report.run.labels).unwrap();
        let max_level = report.run.max_level();
        assert!(max_level >= 1);
        // L_max for n=400: schedule 16,256,65536,... capped — small.
        assert!(max_level <= 8, "max level {max_level}");
    }

    #[test]
    fn table_space_stays_linear() {
        let g = gen::gnm(500, 2000, 4);
        let report = run(&g, 37, &FasterParams::default());
        check_labels(&g, &report.run.labels).unwrap();
        let ratio = report.table_peak_words as f64 / (2000.0);
        assert!(ratio < 32.0, "table peak / m = {ratio}");
    }

    #[test]
    fn ablation_no_sampling_still_correct() {
        let params = FasterParams {
            enable_sampling: false,
            ..Default::default()
        };
        let g = gen::gnm(200, 700, 6);
        let report = run(&g, 41, &params);
        check_labels(&g, &report.run.labels).unwrap();
    }

    #[test]
    fn ablation_single_maxlink_iteration_still_correct() {
        let params = FasterParams {
            maxlink_iters: 1,
            ..Default::default()
        };
        let g = gen::gnm(200, 700, 8);
        let report = run(&g, 43, &params);
        check_labels(&g, &report.run.labels).unwrap();
    }

    #[test]
    fn edgeless_and_tiny_graphs() {
        let params = FasterParams::default();
        let g0 = cc_graph::GraphBuilder::new(5).build();
        let report = run(&g0, 1, &params);
        check_labels(&g0, &report.run.labels).unwrap();
        let g1 = gen::path(2);
        let report = run(&g1, 1, &params);
        check_labels(&g1, &report.run.labels).unwrap();
    }

    #[test]
    fn deterministic_under_seeded_policy() {
        let g = gen::gnm(300, 1000, 2);
        let params = FasterParams::default();
        let a = run(&g, 55, &params);
        let b = run(&g, 55, &params);
        assert_eq!(a.run.labels, b.run.labels);
        assert_eq!(a.run.rounds, b.run.rounds);
    }

    #[test]
    fn budget_schedule_properties() {
        let params = FasterParams::default();
        let budgets = params.budget_schedule(10_000, 40_000, 5_000);
        assert_eq!(budgets[0], 0);
        for w in budgets[1..].windows(2) {
            assert!(w[1] > w[0], "schedule not strictly increasing: {budgets:?}");
            assert!(w[1] >= w[0] << 2, "growth below 4x: {budgets:?}");
        }
        for &b in &budgets[1..] {
            assert!(
                b.is_power_of_two() && b.trailing_zeros() % 2 == 0,
                "budget {b} is not a power of four"
            );
        }
        // The paper's L = O(log log n): the schedule is short.
        assert!(budgets.len() <= 12, "schedule too long: {budgets:?}");
    }

    #[test]
    fn budget_schedule_respects_overrides() {
        let params = FasterParams {
            b1: 64,
            max_budget: 4096,
            kappa: 2.0,
            ..Default::default()
        };
        let budgets = params.budget_schedule(1000, 4000, 500);
        assert_eq!(budgets[1], 64);
        assert_eq!(*budgets.last().unwrap(), 4096);
    }

    #[test]
    fn crew_checked_run_reports_conflicts() {
        // The algorithm leans on concurrent writes; under the CREW checker
        // it must still be correct *and* must report conflicts (i.e. it is
        // not secretly an EREW algorithm — §1's lower-bound discussion).
        let g = gen::gnm(200, 800, 3);
        let mut pram = Pram::new(WritePolicy::CrewChecked(7));
        let report = faster_cc(&mut pram, &g, 7, &FasterParams::default());
        check_labels(&g, &report.run.labels).unwrap();
        assert!(
            report.run.stats.write_conflicts > 0,
            "expected concurrent writes on a CRCW algorithm"
        );
    }
}
