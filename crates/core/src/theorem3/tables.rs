//! The table heap: one shared-memory pool holding every vertex's block
//! tables, addressed by *offsets* stored in per-vertex shared arrays.
//!
//! The paper's processor/space story (§3.3 step 8, §3.4) allocates a block
//! of size `b_ℓ(v)` per root from per-(round, level) zones, with
//! approximate compaction handing out distinct indices. Simulated
//! processors must be able to find `H(w)` for a *runtime* vertex `w`, so
//! blocks live in a single growable heap handle and a shared array maps
//! vertex → offset — exactly the zone + index scheme, flattened.
//!
//! Size-class free lists make the live-word count (and its peak, E4's
//! measurement) track the paper's `O(m)` space argument: freed blocks are
//! reused, and the only overhead is power-of-two rounding.

use pram_sim::{Handle, Pram, NULL};

/// Growable table pool with size-class reuse and live/peak accounting.
pub(crate) struct TableHeap {
    heap: Handle,
    cap: usize,
    brk: usize,
    free: Vec<Vec<u64>>, // offsets per power-of-two class
    live: usize,
    peak: usize,
}

const MAX_CLASS: usize = 40;

#[inline]
fn class_of(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

impl TableHeap {
    pub(crate) fn new(pram: &mut Pram, initial_cap: usize) -> Self {
        let cap = initial_cap.next_power_of_two().max(1024);
        let heap = pram.alloc_filled(cap, NULL);
        TableHeap {
            heap,
            cap,
            brk: 0,
            free: (0..=MAX_CLASS).map(|_| Vec::new()).collect(),
            live: 0,
            peak: 0,
        }
    }

    /// The handle simulated steps index with heap-relative offsets.
    #[inline]
    pub(crate) fn handle(&self) -> Handle {
        self.heap
    }

    /// Allocate `len` cells, NULL-filled; returns the offset.
    pub(crate) fn alloc(&mut self, pram: &mut Pram, len: usize) -> u64 {
        assert!(len > 0);
        let class = class_of(len);
        let size = 1usize << class;
        let off = if let Some(off) = self.free[class].pop() {
            off
        } else {
            if self.brk + size > self.cap {
                self.grow(pram, self.brk + size);
            }
            let off = self.brk as u64;
            self.brk += size;
            off
        };
        // NULL-fill the block (fresh heap memory is already NULL; reused
        // blocks need clearing) — one memset, not a store per call.
        pram.host_fill_range(self.heap, off as usize, size, NULL);
        self.live += size;
        self.peak = self.peak.max(self.live);
        off
    }

    /// Return a block to its size class.
    pub(crate) fn dealloc(&mut self, off: u64, len: usize) {
        let class = class_of(len);
        self.free[class].push(off);
        self.live -= 1usize << class;
    }

    /// Live cells (counting rounding) — the E4 measurement.
    pub(crate) fn live_words(&self) -> usize {
        self.live
    }

    /// Peak of [`TableHeap::live_words`].
    pub(crate) fn peak_words(&self) -> usize {
        self.peak
    }

    fn grow(&mut self, pram: &mut Pram, need: usize) {
        let new_cap = need.next_power_of_two().max(self.cap * 2);
        let new_heap = pram.alloc_filled(new_cap, NULL);
        pram.host_copy(self.heap, new_heap);
        pram.free(self.heap);
        self.heap = new_heap;
        self.cap = new_cap;
    }

    /// Release the whole pool.
    pub(crate) fn free_all(self, pram: &mut Pram) {
        pram.free(self.heap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_sim::WritePolicy;

    #[test]
    fn alloc_free_reuse_and_accounting() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let mut heap = TableHeap::new(&mut pram, 64);
        let a = heap.alloc(&mut pram, 16);
        let b = heap.alloc(&mut pram, 16);
        assert_ne!(a, b);
        assert_eq!(heap.live_words(), 32);
        heap.dealloc(a, 16);
        assert_eq!(heap.live_words(), 16);
        let c = heap.alloc(&mut pram, 10); // class 16; reuses a
        assert_eq!(c, a);
        assert_eq!(heap.peak_words(), 32);
        heap.free_all(&mut pram);
    }

    #[test]
    fn reused_blocks_are_null_filled() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let mut heap = TableHeap::new(&mut pram, 64);
        let a = heap.alloc(&mut pram, 8);
        for i in 0..8 {
            pram.set(heap.handle(), a as usize + i, 7);
        }
        heap.dealloc(a, 8);
        let b = heap.alloc(&mut pram, 8);
        assert_eq!(b, a);
        for i in 0..8 {
            assert_eq!(pram.get(heap.handle(), b as usize + i), NULL);
        }
        heap.free_all(&mut pram);
    }

    #[test]
    fn grow_preserves_contents_and_offsets() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let mut heap = TableHeap::new(&mut pram, 8); // min-clamped to 1024
        let a = heap.alloc(&mut pram, 512);
        pram.set(heap.handle(), a as usize + 3, 99);
        // Force growth beyond 1024.
        let _b = heap.alloc(&mut pram, 2048);
        assert_eq!(pram.get(heap.handle(), a as usize + 3), 99);
        heap.free_all(&mut pram);
    }
}
