//! One round of EXPAND-MAXLINK (§3.1/§D.1, Steps (1)–(8)), scheduled over
//! the *live* subproblem.
//!
//! Per-round dataflow (table lifetimes):
//!
//! ```text
//!   persistent tables (added edges of prev round, per vertex)
//!     │ Step 1: MAXLINK over live arcs+tables; ALTER live arcs+tables
//!     │ compact: refresh the live index (arcs/cells/verts/roots)
//!     │ Step 2: random level raises on ongoing roots
//!     │ alloc:  every ongoing root gets work tables H3,H5 of √b cells
//!     │ Step 3: H3(v) ← same-budget neighbour roots (arcs + table edges)
//!     │ Step 4: collision ⇒ dormant; dormant table-members ⇒ dormant
//!     │ Step 5: H5(v) ← ∪ H3(w), w ∈ H3(v)  (squaring; collision ⇒ dormant)
//!     │ swap:   persistent ← H5 (old persistent and H3 freed)
//!     │ Step 6: MAXLINK; SHORTCUT; ALTER (live arcs + new tables)
//!     │ Step 7: dormant roots that didn't raise in Step 2 raise now
//!     │ Step 8: roots get budget b_{ℓ(v)} (compaction-charged)
//!     │ compact: refresh the live index for the next round
//!     ▼
//!   persistent tables (added edges for next round)
//! ```
//!
//! **Live-work scheduling.** The paper's rounds cost O(live) work because
//! COMPACT / approximate compaction (Lemma D.2) re-indexes the surviving
//! subproblem every round; a naive simulation that hands one processor to
//! every original vertex and arc instead pays O(n + m) per round even when
//! almost everything is finished. The [`LiveIndex`] is the controller-side
//! equivalent of that compaction: a compacted list of non-loop arcs
//! (periodically deduplicated by hashing), of live persistent-table cells,
//! of their endpoint vertices, and of the ongoing roots. Every simulated
//! step in this file iterates one of those lists, so both the charged work
//! and the host wall-clock of a round scale with the live subproblem.
//! Rebuilding the index is host bookkeeping that scans only the previous
//! live lists — O(live), never O(n + m) — and is deterministic, which
//! keeps runs reproducible and thread-count invariant.
//!
//! Finished vertices keep stale parents until the driver's final
//! `shortcut_until_flat`; the per-round SHORTCUT jumps live vertices only,
//! so the break condition fires as soon as the *live* root graph has
//! settled (the always-correct Theorem-1 postprocess handles the rest).
//!
//! The break condition (§3.3) is evaluated from two flags filled here:
//! `changed` (any live parent or level moved — Steps 1/2/6/7) and
//! `ii_violated` (Step 5 found a pair at distance 2 not already in the
//! table).

use crate::live::{
    charge_endpoint_collection, compact_live_arcs, compact_live_roots, extend_endpoints,
    reset_endpoints,
};
use crate::state::CcState;
use crate::theorem3::maxlink::{maxlink, MaxlinkCtx, NO_SLOT as NO_VSLOT};
use crate::theorem3::tables::TableHeap;
use crate::theorem3::FasterParams;
use pram_kit::ops::{alter_over, shortcut_flagged_over, Flag};
use pram_kit::{compact_over, PairSet, PairwiseHash};
use pram_sim::{Handle, Pram, NULL};

/// Square root of a power-of-four budget.
#[inline]
pub(crate) fn sqb_of(b: u64) -> u64 {
    debug_assert!(b.is_power_of_two() && b.trailing_zeros().is_multiple_of(2));
    1 << (b.trailing_zeros() / 2)
}

/// "No slot" marker for [`RoundScratch::builder_slot`].
const NO_SLOT: u32 = u32::MAX;

/// The compacted live-work index — the controller-side stand-in for the
/// paper's per-round approximate compaction (Lemma D.2). All lists are
/// rebuilt by [`LiveIndex::compact`] from the previous live lists, in
/// deterministic (first-seen) order.
///
/// The rebuild itself runs on charged `pram_kit` primitives: arc, cell,
/// and root filtering go through [`pram_kit::compact_over`] (a predicate
/// step plus the Lemma-D.2 placement charge, all at the previous live
/// count), and endpoint collection is charged as one emission step over
/// the surviving arcs/cells plus a Lemma-D.2 dedup/rename over the
/// endpoints — so the controller's compaction cost is *visible in
/// `Stats`* (reported per round as `compaction_work`) instead of being
/// free host bookkeeping. The host vectors are the controller's mirror of
/// the compacted arrays those primitives produce.
pub(crate) struct LiveIndex {
    /// Indices of arcs that were non-loops (and, when dedup ran, the first
    /// of each duplicate group) at the last compaction.
    pub arcs: Vec<u32>,
    /// Live persistent-table cells `(owner, cell)`: value `w` non-NULL,
    /// non-self, and `parent[x] != parent[w]` at the last compaction.
    ///
    /// The parent test is what kills "zombie" cells of finished subtrees:
    /// once both endpoints share a parent the cell can only ever write a
    /// MAXLINK candidate at exactly the incumbent parent's level (never
    /// read by the strict selection scan), contributes nothing to Steps
    /// 3/4 (one endpoint is a non-root), and materializes as a self-loop —
    /// and since parents never leave their component, the condition is
    /// permanent. Dropping such cells is therefore exactly
    /// behaviour-preserving, and it is what lets the live vertex set (and
    /// with it the MAXLINK clear/selection cost) actually shrink to the
    /// ongoing frontier.
    pub table_cells: Vec<(u32, u32)>,
    /// Endpoints of live arcs and live table edges, deduplicated.
    pub verts: Vec<u32>,
    /// How many of `verts` came from arcs (the Lemma-B.2 "ongoing vertex"
    /// count reported by per-round metrics).
    pub arc_verts: usize,
    /// `verts` that are their own parent — the ongoing roots driving
    /// Steps 2/8 and the builder scan.
    pub roots: Vec<u32>,
    /// Running maximum level (levels never decrease, and only ongoing
    /// roots raise, so scanning `roots` per round keeps this exact).
    pub max_level_seen: u64,
    /// vertex → slot in `verts` (`NO_VSLOT` = not live). Doubles as the
    /// membership map during endpoint dedup and as the candidate-row index
    /// of the generation-stamped MAXLINK.
    slot: Vec<u32>,
}

impl LiveIndex {
    pub(crate) fn new(n: usize) -> Self {
        LiveIndex {
            arcs: Vec::new(),
            table_cells: Vec::new(),
            verts: Vec::new(),
            arc_verts: 0,
            roots: Vec::new(),
            max_level_seen: 0,
            slot: vec![NO_VSLOT; n],
        }
    }

    /// The vertex → candidate-row map of the stamped MAXLINK.
    pub(crate) fn vert_slot(&self) -> &[u32] {
        &self.slot
    }

    /// Clear for a fresh run over `n` vertices, keeping every list's
    /// capacity. Slot entries are cleared through the current `verts`
    /// (the invariant `slot[v] != NO_VSLOT ⟺ v ∈ verts` makes that exact),
    /// so the reset costs O(live), not O(n) — unless the vertex count
    /// changed, which forces a fresh map.
    pub(crate) fn reset_for(&mut self, n: usize) {
        if self.slot.len() == n {
            for &v in &self.verts {
                self.slot[v as usize] = NO_VSLOT;
            }
        } else {
            self.slot.clear();
            self.slot.resize(n, NO_VSLOT);
        }
        self.arcs.clear();
        self.table_cells.clear();
        self.verts.clear();
        self.arc_verts = 0;
        self.roots.clear();
        self.max_level_seen = 0;
    }

    /// Seed the index from the full arc array (driver start-up; the only
    /// O(m) pass — every later rebuild scans live lists only). `dedup`
    /// follows the caller's `dedup_every` setting so "0 disables dedup"
    /// holds from the first round on.
    pub(crate) fn init_from_arcs(
        &mut self,
        pram: &mut Pram,
        st: &CcState,
        dedup: bool,
        dedup_seed: u64,
    ) {
        self.arcs = (0..st.arcs as u32).collect();
        self.rebuild(pram, st, None, dedup, dedup_seed);
    }

    /// Refresh every list from machine state: drop arcs that became loops
    /// (optionally deduplicating surviving arcs by endpoint pair), drop
    /// table cells that became NULL/self, recollect endpoints and roots.
    pub(crate) fn compact(
        &mut self,
        pram: &mut Pram,
        st: &CcState,
        eoff: Handle,
        heap: Handle,
        dedup: bool,
        dedup_seed: u64,
    ) {
        self.rebuild(pram, st, Some((eoff, heap)), dedup, dedup_seed);
    }

    fn rebuild(
        &mut self,
        pram: &mut Pram,
        st: &CcState,
        tables: Option<(Handle, Handle)>,
        dedup: bool,
        dedup_seed: u64,
    ) {
        let parent = st.parent;

        // Live arcs: charged compaction (predicate = non-loop; the helper
        // shared with `LiveSet`), then the optional endpoint-pair dedup —
        // the paper's hashing pass, charged at the surviving count (each
        // survivor reads the hash function's two words and probes once).
        let mut kept = compact_live_arcs(pram, st, &self.arcs);
        if dedup {
            let survivors = kept.len();
            {
                let eu_h = pram.view(st.eu);
                let ev_h = pram.view(st.ev);
                let mut set = PairSet::with_capacity(dedup_seed, kept.len());
                kept.retain(|&i| set.insert(eu_h.get(i as usize), ev_h.get(i as usize)));
            }
            pram.charge(survivors, 2);
        }
        self.arcs = kept;

        // Live table cells: charged compaction. The predicate's reads are
        // real counted memory traffic (offset, cell value, both parents).
        if let Some((eoff, heap)) = tables {
            self.table_cells = compact_over(pram, &self.table_cells, move |_, &(x, c), ctx| {
                let off = ctx.read(eoff, x as usize);
                if off == NULL {
                    return false;
                }
                let w = ctx.read(heap, off as usize + c as usize);
                w != NULL
                    && w != x as u64
                    && ctx.read(parent, x as usize) != ctx.read(parent, w as usize)
            });
        } else {
            self.table_cells.clear();
        }

        // Endpoint collection via the shared helpers (one definition of
        // the slot-map invariant `slot[verts[i]] == i`, which the stamped
        // MAXLINK's candidate-row addressing relies on): arcs first, then
        // the live table edges, charged as one emission step over the
        // sources plus the Lemma-D.2 dedup/rename of the endpoints.
        reset_endpoints(&mut self.slot, &mut self.verts);
        {
            let eu_h = pram.view(st.eu);
            let ev_h = pram.view(st.ev);
            extend_endpoints(
                &mut self.slot,
                &mut self.verts,
                self.arcs
                    .iter()
                    .map(|&i| (eu_h.get(i as usize), ev_h.get(i as usize))),
            );
        }
        self.arc_verts = self.verts.len();
        if let Some((eoff, heap)) = tables {
            let eo = pram.view(eoff);
            let hw = pram.view(heap);
            extend_endpoints(
                &mut self.slot,
                &mut self.verts,
                self.table_cells
                    .iter()
                    .map(|&(x, c)| (x as u64, hw.get(eo.get(x as usize) as usize + c as usize))),
            );
        }
        charge_endpoint_collection(
            pram,
            self.arcs.len() + self.table_cells.len(),
            self.verts.len(),
        );

        // Ongoing roots: charged compaction over the endpoints (shared
        // helper again — one charge model for every live index).
        self.roots = compact_live_roots(pram, st, &self.verts);
    }
}

/// One work-table owner this round: `(vertex, √b, H3 offset, H5 offset)`.
#[derive(Clone, Copy)]
pub(crate) struct Builder {
    pub v: u32,
    pub sqb: u32,
    pub o3: u64,
    pub o5: u64,
}

/// Per-round scratch buffers, reused across rounds with capacity
/// carry-over so the steady state allocates nothing.
pub(crate) struct RoundScratch {
    /// Ongoing roots with budget ≥ 4 that own work tables this round.
    pub builders: Vec<Builder>,
    /// Occupied H3 cells `(owner, cell)`, grouped by builder.
    pub h3_occ: Vec<(u32, u32)>,
    /// Per-builder `[start, end)` range into `h3_occ`.
    pub occ_range: Vec<(u32, u32)>,
    /// Step-5 work items `(owner, p-cell, q-cell)` over occupied cells —
    /// the compacted form of the paper's `√b × √b` processor grid.
    pub s5_index: Vec<(u32, u32, u32)>,
    /// vertex → index into `builders` (`NO_SLOT` = not a builder);
    /// entries are reset at the end of every round.
    pub builder_slot: Vec<u32>,
}

impl RoundScratch {
    pub(crate) fn new(n: usize) -> Self {
        RoundScratch {
            builders: Vec::new(),
            h3_occ: Vec::new(),
            occ_range: Vec::new(),
            s5_index: Vec::new(),
            builder_slot: vec![NO_SLOT; n],
        }
    }

    /// Clear for a fresh run over `n` vertices, keeping capacity.
    /// `builder_slot` is already all-`NO_SLOT` between rounds (reset in
    /// every round's cleanup), so only a size change forces a rebuild.
    pub(crate) fn reset_for(&mut self, n: usize) {
        if self.builder_slot.len() != n {
            self.builder_slot.clear();
            self.builder_slot.resize(n, NO_SLOT);
        }
        self.builders.clear();
        self.h3_occ.clear();
        self.occ_range.clear();
        self.s5_index.clear();
    }
}

/// All run-long machine state of the Theorem-3 driver.
pub(crate) struct FasterState {
    pub st: CcState,
    /// Level array (`ℓ(v)`; 0 = never-ongoing or pre-COMPACT non-root).
    pub level: Handle,
    /// Budget array (`b(v)`; block size owned; 0 = none).
    pub budget: Handle,
    /// Persistent ("added edges") table offset per vertex (NULL = none).
    pub eoff: Handle,
    /// Work-table offsets for the current round (NULL when not building).
    pub t3off: Handle,
    /// Second work table (Step 5 target).
    pub t5off: Handle,
    /// Dormant flags (builder entries only; reset per round).
    pub dormant: Handle,
    /// "Raised level in Step 2" flags (ongoing-root entries only; reset
    /// per round).
    pub raised2: Handle,
    /// MAXLINK candidate array (`n × (lmax+1)`) — clear-based legacy path
    /// only; the default generation-stamped path allocates live-sized
    /// candidate/stamp pairs per invocation instead (see
    /// [`crate::theorem3::maxlink`]).
    pub cand: Option<Handle>,
    /// The table heap.
    pub heap: TableHeap,
    /// Maximum level (budget schedule length - 1).
    pub lmax: usize,
    /// `budgets[ℓ]` = block size at level `ℓ` (powers of four).
    pub budgets: Vec<u64>,
    /// Host mirror of persistent tables: `(offset, √b)` per vertex.
    pub host_tbl: Vec<Option<(u64, u32)>>,
    /// The compacted live-work index.
    pub live: LiveIndex,
    /// Reused per-round scratch.
    pub scratch: RoundScratch,
}

impl FasterState {
    /// Release everything (except the `CcState`, which the driver owns),
    /// handing back the reusable host-side buffers so a workspace-driven
    /// caller can carry their capacity into the next run.
    pub(crate) fn free(self, pram: &mut Pram) -> ReusableBufs {
        pram.free(self.level);
        pram.free(self.budget);
        pram.free(self.eoff);
        pram.free(self.t3off);
        pram.free(self.t5off);
        pram.free(self.dormant);
        pram.free(self.raised2);
        if let Some(cand) = self.cand {
            pram.free(cand);
        }
        self.heap.free_all(pram);
        (self.live, self.scratch, self.host_tbl)
    }
}

/// The host-side buffers [`FasterState::free`] hands back for reuse:
/// live-work index, round scratch, and the persistent-table mirror.
pub(crate) type ReusableBufs = (LiveIndex, RoundScratch, Vec<Option<(u64, u32)>>);

/// Per-round outcome for the break test and metrics.
pub(crate) struct RoundOutcome {
    pub changed: bool,
    pub ii_violated: bool,
    pub dormant: u64,
    pub max_level: u64,
    pub table_live: u64,
    /// Ongoing vertices (arc endpoints) at the end of the round.
    pub ongoing: usize,
    /// Live arcs at the end of the round.
    pub live_arcs: usize,
    /// Work charged by the round's two live-index compactions (the
    /// Lemma-D.2 rebuilds) — reported distinctly from step work.
    pub compaction_work: u64,
}

/// Run one MAXLINK invocation over the current live index, in the mode
/// `params` selects: generation-stamped (live-sized per-invocation
/// candidate/stamp allocation, no clear step) or the clear-based legacy
/// path (persistent `n × (lmax+1)` array, per-iteration clear).
fn run_maxlink(pram: &mut Pram, fs: &FasterState, params: &FasterParams, changed: &Flag) {
    let stride = fs.lmax + 1;
    let (cand, cstamp) = match fs.cand {
        Some(cand) => (cand, None),
        None => {
            let sz = (fs.live.verts.len() * stride).max(1);
            // Zero-filled: stamp 0 never equals a generation (≥ 1), so
            // recycled arena blocks cannot leak stale candidates.
            (pram.alloc(sz), Some(pram.alloc(sz)))
        }
    };
    let mx = MaxlinkCtx {
        cand,
        cstamp,
        vert_slot: fs.live.vert_slot(),
        level: fs.level,
        lmax: fs.lmax,
        live_arcs: &fs.live.arcs,
        live_verts: &fs.live.verts,
        table_cells: &fs.live.table_cells,
        eoff: fs.eoff,
        heap: fs.heap.handle(),
    };
    maxlink(pram, &fs.st, &mx, changed, params.maxlink_iters);
    if let Some(stamp) = cstamp {
        pram.free(cand);
        pram.free(stamp);
    }
}

/// Execute one EXPAND-MAXLINK round.
pub(crate) fn expand_maxlink_round(
    pram: &mut Pram,
    fs: &mut FasterState,
    params: &FasterParams,
    seed: u64,
    round: u64,
) -> RoundOutcome {
    let round_seed = seed ^ round.wrapping_mul(0xA076_1D64_78BD_642F);
    let hv = PairwiseHash::new(round_seed ^ 0x7AB1_E000, 1 << 30);
    let dedup = params.dedup_every > 0 && round.is_multiple_of(params.dedup_every);
    let changed = Flag::new(pram);
    let ii_flag = Flag::new(pram);
    let mut compaction_work = 0u64;

    let (parent, eu, ev) = (fs.st.parent, fs.st.eu, fs.st.ev);
    let (level, budget) = (fs.level, fs.budget);
    let (eoff, t3off, t5off) = (fs.eoff, fs.t3off, fs.t5off);
    let (dormant, raised2) = (fs.dormant, fs.raised2);
    let heap = fs.heap.handle();

    // ---- Step 1: MAXLINK; ALTER (live arcs and live tables).
    run_maxlink(pram, fs, params, &changed);
    alter_over(pram, eu, ev, parent, &fs.live.arcs);
    alter_tables(pram, &fs.live.table_cells, eoff, heap, parent);

    // ---- Compact: the mid-round live-index refresh every later step
    // schedules over (the Lemma-D.2 role; see module docs). Its charged
    // work is tallied separately for the `compaction_work` metric.
    let cw0 = pram.stats().work;
    fs.live
        .compact(pram, &fs.st, eoff, heap, dedup, round_seed ^ 0xDED0_B001);
    compaction_work += pram.stats().work - cw0;

    // ---- Step 2: random level raises on ongoing roots.
    if params.enable_sampling {
        let (coeff, exp, cap) = (params.sample_coeff, params.sample_exp, params.sample_cap);
        let lmax = fs.lmax as u64;
        pram.step_over(&fs.live.roots, move |_, &v, ctx| {
            let v = v as usize;
            if ctx.read(parent, v) != v as u64 {
                return;
            }
            let l = ctx.read(level, v);
            if l >= lmax {
                return;
            }
            let b = ctx.read(budget, v).max(4) as f64;
            let p_up = (coeff / b.powf(exp)).min(cap);
            if ctx.coin(0x5A_3B ^ seed, p_up) {
                ctx.write(level, v, l + 1);
                ctx.write(raised2, v, 1);
                changed.raise(ctx);
            }
        });
    }

    // ---- Work-table allocation for every ongoing root (the processor
    // blocks of Assumption 3.1 / Step 8). Charged at the builder count:
    // the paper hands out these blocks through approximate compaction of
    // the ongoing roots (Lemma D.2), so the round pays for live roots,
    // not for all n vertices.
    //
    // Roots already at the top of the budget schedule are *frozen*: a
    // MAXLINK hook needs a strictly higher-level parent, which cannot
    // exist above `lmax`, so their squaring can never cause another link —
    // it only re-derives the §3.3 closure certificate, at Θ(cluster³)
    // work per round once a stuck top-level cluster has densified. The
    // schedule's budget ceiling already forfeits that certificate on
    // stubborn inputs (see `budget_schedule`: the run then falls through
    // to the always-correct postprocess), so freezing changes no label,
    // only when the break fires. Their persistent tables stay live for
    // MAXLINK candidates, lower-level neighbours, and the postprocess.
    fs.scratch.builders.clear();
    {
        let buds = pram.view(budget);
        let lvls = pram.view(level);
        let lmax = fs.lmax as u64;
        for &v in &fs.live.roots {
            let b = buds.get(v as usize);
            if b >= 4 && lvls.get(v as usize) < lmax {
                fs.scratch.builders.push(Builder {
                    v,
                    sqb: sqb_of(b) as u32,
                    o3: 0,
                    o5: 0,
                });
            }
        }
    }
    for b in &mut fs.scratch.builders {
        b.o3 = fs.heap.alloc(pram, b.sqb as usize);
        b.o5 = fs.heap.alloc(pram, b.sqb as usize);
    }
    for &Builder { v, o3, o5, .. } in &fs.scratch.builders {
        pram.set(t3off, v as usize, o3);
        pram.set(t5off, v as usize, o5);
    }
    pram.charge(fs.scratch.builders.len(), 4);
    let heap = fs.heap.handle(); // may have grown

    // ---- Step 3: H3(v) ← same-budget root neighbours.
    pram.step_over(&fs.scratch.builders, move |_, b, ctx| {
        let v = b.v as u64;
        let o3 = ctx.read(t3off, b.v as usize);
        if o3 == NULL {
            return;
        }
        let sqb = sqb_of(ctx.read(budget, b.v as usize));
        ctx.write(heap, o3 as usize + hv.eval_range(v, sqb) as usize, v);
    });
    pram.step_over(&fs.live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b {
            return;
        }
        step3_insert(ctx, a, b, parent, budget, t3off, heap, &hv);
    });
    pram.step_over(&fs.live.table_cells, move |_, &(x, c), ctx| {
        let off = ctx.read(eoff, x as usize);
        if off == NULL {
            return;
        }
        let w = ctx.read(heap, off as usize + c as usize);
        if w == NULL || w == x as u64 {
            return;
        }
        step3_insert(ctx, x as u64, w, parent, budget, t3off, heap, &hv);
        step3_insert(ctx, w, x as u64, parent, budget, t3off, heap, &hv);
    });

    // ---- Host scan of the freshly-built H3 tables: occupied cells per
    // builder, plus the Step-5 work items over occupied pairs. This is the
    // controller's compacted view of the `√b × √b` processor grids the
    // paper allocates per block — empty cells hold no simulated work, so
    // they are neither executed nor charged. Roots whose H3 holds nothing
    // but themselves are skipped entirely (they would square to {v}; this
    // also keeps their persistent table empty rather than self-pointing).
    {
        let hw = pram.view(heap);
        let sc = &mut fs.scratch;
        sc.h3_occ.clear();
        sc.occ_range.clear();
        for (bi, b) in sc.builders.iter().enumerate() {
            let start = sc.h3_occ.len() as u32;
            for c in 0..b.sqb {
                if hw.get(b.o3 as usize + c as usize) != NULL {
                    sc.h3_occ.push((b.v, c));
                }
            }
            sc.occ_range.push((start, sc.h3_occ.len() as u32));
            sc.builder_slot[b.v as usize] = bi as u32;
        }
        sc.s5_index.clear();
        for (bi, b) in sc.builders.iter().enumerate() {
            let (s, e) = sc.occ_range[bi];
            let occ = &sc.h3_occ[s as usize..e as usize];
            if !occ
                .iter()
                .any(|&(_, c)| hw.get(b.o3 as usize + c as usize) != b.v as u64)
            {
                continue; // H3(v) = {v}: squaring is a no-op, skip unpaid
            }
            for &(_, p) in occ {
                let w = hw.get(b.o3 as usize + p as usize);
                let wi = sc.builder_slot[w as usize];
                if wi == NO_SLOT {
                    continue; // w lost its table race / is not a builder
                }
                let (ws, we) = sc.occ_range[wi as usize];
                for &(_, q) in &sc.h3_occ[ws as usize..we as usize] {
                    sc.s5_index.push((b.v, p, q));
                }
            }
        }
    }

    // ---- Step 4: collision ⇒ dormant; dormant members ⇒ dormant owner.
    pram.step_over(&fs.scratch.builders, move |_, b, ctx| {
        let v = b.v as u64;
        let o3 = ctx.read(t3off, b.v as usize);
        if o3 == NULL {
            return;
        }
        let sqb = sqb_of(ctx.read(budget, b.v as usize));
        if ctx.read(heap, o3 as usize + hv.eval_range(v, sqb) as usize) != v {
            ctx.write(dormant, b.v as usize, 1);
        }
    });
    pram.step_over(&fs.live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b {
            return;
        }
        step4_verify(ctx, a, b, parent, budget, t3off, heap, &hv, dormant);
    });
    pram.step_over(&fs.live.table_cells, move |_, &(x, c), ctx| {
        let off = ctx.read(eoff, x as usize);
        if off == NULL {
            return;
        }
        let w = ctx.read(heap, off as usize + c as usize);
        if w == NULL || w == x as u64 {
            return;
        }
        step4_verify(ctx, x as u64, w, parent, budget, t3off, heap, &hv, dormant);
        step4_verify(ctx, w, x as u64, parent, budget, t3off, heap, &hv, dormant);
    });
    // Dormancy propagation through table membership (Step 4 sentence 2) —
    // one processor per *occupied* H3 cell.
    pram.step_over(&fs.scratch.h3_occ, move |_, &(v, c), ctx| {
        let o3 = ctx.read(t3off, v as usize);
        let w = ctx.read(heap, o3 as usize + c as usize);
        if w != NULL && ctx.read(dormant, w as usize) == 1 {
            ctx.write(dormant, v as usize, 1);
        }
    });

    // ---- Step 5: squaring H5(v) ← ∪_{w ∈ H3(v)} H3(w), over the
    // compacted occupied-pair items.
    pram.step_over(&fs.scratch.s5_index, move |_, &(v, p, q), ctx| {
        let sqb = sqb_of(ctx.read(budget, v as usize));
        let o3 = ctx.read(t3off, v as usize);
        let w = ctx.read(heap, o3 as usize + p as usize);
        if w == NULL {
            return;
        }
        let o3w = ctx.read(t3off, w as usize);
        if o3w == NULL {
            return;
        }
        let u = ctx.read(heap, o3w as usize + q as usize);
        if u == NULL {
            return;
        }
        let slot = hv.eval_range(u, sqb) as usize;
        // Break-condition (ii): was u already present in H3(v)?
        if ctx.read(heap, o3 as usize + slot) != u {
            ii_flag.raise(ctx);
        }
        let o5 = ctx.read(t5off, v as usize);
        ctx.write(heap, o5 as usize + slot, u);
    });
    pram.step_over(&fs.scratch.s5_index, move |_, &(v, p, q), ctx| {
        let sqb = sqb_of(ctx.read(budget, v as usize));
        let o3 = ctx.read(t3off, v as usize);
        let w = ctx.read(heap, o3 as usize + p as usize);
        if w == NULL {
            return;
        }
        let o3w = ctx.read(t3off, w as usize);
        if o3w == NULL {
            return;
        }
        let u = ctx.read(heap, o3w as usize + q as usize);
        if u == NULL {
            return;
        }
        let o5 = ctx.read(t5off, v as usize);
        if ctx.read(heap, o5 as usize + hv.eval_range(u, sqb) as usize) != u {
            ctx.write(dormant, v as usize, 1);
        }
    });

    // ---- Swap: persistent ← H5; free H3 and old persistent blocks; the
    // work-table offsets are reset so `t3off`/`t5off` stay all-NULL
    // between rounds.
    for &Builder { v, sqb, o3, o5 } in &fs.scratch.builders {
        let v = v as usize;
        if let Some((old_off, old_sqb)) = fs.host_tbl[v] {
            fs.heap.dealloc(old_off, old_sqb as usize);
        }
        fs.heap.dealloc(o3, sqb as usize);
        fs.host_tbl[v] = Some((o5, sqb));
        pram.set(eoff, v, o5);
        pram.set(t3off, v, NULL);
        pram.set(t5off, v, NULL);
    }
    // Live table cells: builders' old entries died with the swap; the new
    // H5 tables contribute their occupied non-self cells.
    {
        let hw = pram.view(heap);
        let slot = &fs.scratch.builder_slot;
        fs.live
            .table_cells
            .retain(|&(x, _)| slot[x as usize] == NO_SLOT);
        for b in &fs.scratch.builders {
            for c in 0..b.sqb {
                let w = hw.get(b.o5 as usize + c as usize);
                if w != NULL && w != b.v as u64 {
                    fs.live.table_cells.push((b.v, c));
                }
            }
        }
    }
    for b in &fs.scratch.builders {
        fs.scratch.builder_slot[b.v as usize] = NO_SLOT;
    }
    pram.charge(fs.scratch.builders.len(), 1); // table-pointer swap, one step

    // ---- Step 6: MAXLINK; SHORTCUT; ALTER (live arcs + new tables).
    // `live.verts` still covers every possible candidate target: new table
    // entries name roots that already were live-table/arc endpoints (a
    // target missing from the slot map is skipped, mirroring the clear
    // path's never-read cell).
    run_maxlink(pram, fs, params, &changed);
    shortcut_flagged_over(pram, parent, &fs.live.verts, &changed);
    alter_over(pram, eu, ev, parent, &fs.live.arcs);
    alter_tables(pram, &fs.live.table_cells, eoff, heap, parent);

    // ---- Step 7: dormant roots that did not raise in Step 2 raise now.
    {
        let lmax = fs.lmax as u64;
        pram.step_over(&fs.scratch.builders, move |_, b, ctx| {
            let v = b.v as usize;
            if ctx.read(dormant, v) == 1
                && ctx.read(raised2, v) == 0
                && ctx.read(parent, v) == v as u64
            {
                let l = ctx.read(level, v);
                if l < lmax {
                    ctx.write(level, v, l + 1);
                    changed.raise(ctx);
                }
            }
        });
    }

    // ---- Step 8: roots get the budget of their level (zones +
    // approximate compaction; charged at the ongoing-root count per
    // Lemma D.2).
    {
        let budgets: &[u64] = &fs.budgets;
        pram.step_over(&fs.live.roots, move |_, &v, ctx| {
            let v = v as usize;
            if ctx.read(parent, v) == v as u64 {
                let l = ctx.read(level, v) as usize;
                let b = budgets[l.min(budgets.len() - 1)];
                if b > 0 && ctx.read(budget, v) != b {
                    ctx.write(budget, v, b);
                }
            }
        });
        pram.charge(fs.live.roots.len(), 4);
    }

    // ---- Outcome metrics, from the live index instead of full-n scans.
    let dormant_count = {
        let d = pram.view(dormant);
        fs.scratch
            .builders
            .iter()
            .filter(|b| d.get(b.v as usize) == 1)
            .count() as u64
    };
    {
        let lv = pram.view(level);
        for &v in &fs.live.roots {
            fs.live.max_level_seen = fs.live.max_level_seen.max(lv.get(v as usize));
        }
    }

    // ---- Cleanup: clear this round's flag writes (dormant ⊆ builders,
    // raised2 ⊆ ongoing roots), charged at the live counts.
    pram.step_over(&fs.scratch.builders, move |_, b, ctx| {
        ctx.write(dormant, b.v as usize, 0);
    });
    pram.step_over(&fs.live.roots, move |_, &v, ctx| {
        ctx.write(raised2, v as usize, 0);
    });

    // ---- Compact for the next round (Step 6's ALTER moved arcs/cells).
    let cw1 = pram.stats().work;
    fs.live
        .compact(pram, &fs.st, eoff, heap, dedup, round_seed ^ 0xDED0_B002);
    compaction_work += pram.stats().work - cw1;

    let outcome = RoundOutcome {
        changed: changed.read(pram),
        ii_violated: ii_flag.read(pram),
        dormant: dormant_count,
        max_level: fs.live.max_level_seen,
        table_live: fs.heap.live_words() as u64,
        ongoing: fs.live.arc_verts,
        live_arcs: fs.live.arcs.len(),
        compaction_work,
    };
    changed.free(pram);
    ii_flag.free(pram);
    outcome
}

/// ALTER on live persistent table entries: replace each stored endpoint by
/// its parent (one processor per live cell).
fn alter_tables(pram: &mut Pram, cells: &[(u32, u32)], eoff: Handle, heap: Handle, parent: Handle) {
    pram.step_over(cells, move |_, &(x, c), ctx| {
        let off = ctx.read(eoff, x as usize);
        if off == NULL {
            return;
        }
        let w = ctx.read(heap, off as usize + c as usize);
        if w == NULL {
            return;
        }
        let pw = ctx.read(parent, w as usize);
        if pw != w {
            ctx.write(heap, off as usize + c as usize, pw);
        }
    });
}

/// Step 3 insert: hash root-neighbour `b` into `H3(a)` when both are roots
/// of equal budget and `a` has a work table.
#[allow(clippy::too_many_arguments)]
#[inline]
fn step3_insert(
    ctx: &mut pram_sim::Ctx,
    a: u64,
    b: u64,
    parent: Handle,
    budget: Handle,
    t3off: Handle,
    heap: Handle,
    hv: &PairwiseHash,
) {
    let o3 = ctx.read(t3off, a as usize);
    if o3 == NULL {
        return;
    }
    if ctx.read(parent, b as usize) != b {
        return;
    }
    let ba = ctx.read(budget, a as usize);
    if ctx.read(budget, b as usize) != ba {
        return;
    }
    let sqb = sqb_of(ba);
    ctx.write(heap, o3 as usize + hv.eval_range(b, sqb) as usize, b);
}

/// Step 4 verify: the write of [`step3_insert`] either stuck or its owner
/// goes dormant.
#[allow(clippy::too_many_arguments)]
#[inline]
fn step4_verify(
    ctx: &mut pram_sim::Ctx,
    a: u64,
    b: u64,
    parent: Handle,
    budget: Handle,
    t3off: Handle,
    heap: Handle,
    hv: &PairwiseHash,
    dormant: Handle,
) {
    let o3 = ctx.read(t3off, a as usize);
    if o3 == NULL {
        return;
    }
    if ctx.read(parent, b as usize) != b {
        return;
    }
    let ba = ctx.read(budget, a as usize);
    if ctx.read(budget, b as usize) != ba {
        return;
    }
    let sqb = sqb_of(ba);
    if ctx.read(heap, o3 as usize + hv.eval_range(b, sqb) as usize) != b {
        ctx.write(dormant, a as usize, 1);
    }
}
