//! One round of EXPAND-MAXLINK (§3.1/§D.1, Steps (1)–(8)).
//!
//! Per-round dataflow (table lifetimes):
//!
//! ```text
//!   persistent tables (added edges of prev round, per vertex)
//!     │ Step 1: MAXLINK over arcs+tables; ALTER arcs+tables
//!     │ Step 2: random level raises on ongoing roots
//!     │ alloc:  every ongoing root gets work tables H3,H5 of √b cells
//!     │ Step 3: H3(v) ← same-budget neighbour roots (arcs + table edges)
//!     │ Step 4: collision ⇒ dormant; dormant table-members ⇒ dormant
//!     │ Step 5: H5(v) ← ∪ H3(w), w ∈ H3(v)  (squaring; collision ⇒ dormant)
//!     │ swap:   persistent ← H5 (old persistent and H3 freed)
//!     │ Step 6: MAXLINK; SHORTCUT; ALTER (arcs + new tables)
//!     │ Step 7: dormant roots that didn't raise in Step 2 raise now
//!     │ Step 8: roots get budget b_{ℓ(v)} (compaction-charged)
//!     ▼
//!   persistent tables (added edges for next round)
//! ```
//!
//! The break condition (§3.3) is evaluated from two flags filled here:
//! `changed` (any parent or level moved — Steps 1/2/6/7) and `ii_violated`
//! (Step 5 found a pair at distance 2 not already in the table).

use crate::state::CcState;
use crate::theorem3::maxlink::{maxlink, MaxlinkCtx};
use crate::theorem3::tables::TableHeap;
use crate::theorem3::FasterParams;
use pram_kit::ops::{alter, shortcut_flagged, Flag};
use pram_kit::PairwiseHash;
use pram_sim::{Handle, Pram, NULL};

/// Square root of a power-of-four budget.
#[inline]
pub(crate) fn sqb_of(b: u64) -> u64 {
    debug_assert!(b.is_power_of_two() && b.trailing_zeros().is_multiple_of(2));
    1 << (b.trailing_zeros() / 2)
}

/// All run-long machine state of the Theorem-3 driver.
pub(crate) struct FasterState {
    pub st: CcState,
    /// Level array (`ℓ(v)`; 0 = never-ongoing or pre-COMPACT non-root).
    pub level: Handle,
    /// Budget array (`b(v)`; block size owned; 0 = none).
    pub budget: Handle,
    /// Persistent ("added edges") table offset per vertex (NULL = none).
    pub eoff: Handle,
    /// Work-table offsets for the current round (NULL when not building).
    pub t3off: Handle,
    /// Second work table (Step 5 target).
    pub t5off: Handle,
    /// Dormant flags (cleared per round).
    pub dormant: Handle,
    /// "Raised level in Step 2" flags (cleared per round).
    pub raised2: Handle,
    /// Ongoing flags (recomputed per round).
    pub ongoing: Handle,
    /// MAXLINK candidate array (`n × (lmax+1)`).
    pub cand: Handle,
    /// The table heap.
    pub heap: TableHeap,
    /// Maximum level (budget schedule length - 1).
    pub lmax: usize,
    /// `budgets[ℓ]` = block size at level `ℓ` (powers of four).
    pub budgets: Vec<u64>,
    /// Host mirror of persistent tables: `(offset, √b)` per vertex.
    pub host_tbl: Vec<Option<(u64, u32)>>,
    /// Flat index of persistent table cells, rebuilt after swaps.
    pub table_cells: Vec<(u32, u32)>,
}

impl FasterState {
    /// Rebuild the flat (vertex, cell) index of persistent tables.
    pub(crate) fn rebuild_table_cells(&mut self) {
        self.table_cells.clear();
        for (v, t) in self.host_tbl.iter().enumerate() {
            if let Some((_, sqb)) = t {
                for c in 0..*sqb {
                    self.table_cells.push((v as u32, c));
                }
            }
        }
    }

    /// Release everything (except the `CcState`, which the driver owns).
    pub(crate) fn free(self, pram: &mut Pram) {
        pram.free(self.level);
        pram.free(self.budget);
        pram.free(self.eoff);
        pram.free(self.t3off);
        pram.free(self.t5off);
        pram.free(self.dormant);
        pram.free(self.raised2);
        pram.free(self.ongoing);
        pram.free(self.cand);
        self.heap.free_all(pram);
    }
}

/// Per-round outcome for the break test and metrics.
pub(crate) struct RoundOutcome {
    pub changed: bool,
    pub ii_violated: bool,
    pub dormant: u64,
    pub max_level: u64,
    pub table_live: u64,
}

/// Execute one EXPAND-MAXLINK round.
pub(crate) fn expand_maxlink_round(
    pram: &mut Pram,
    fs: &mut FasterState,
    params: &FasterParams,
    seed: u64,
    round: u64,
) -> RoundOutcome {
    let n = fs.st.n;
    let round_seed = seed ^ round.wrapping_mul(0xA076_1D64_78BD_642F);
    let hv = PairwiseHash::new(round_seed ^ 0x7AB1_E000, 1 << 30);
    let changed = Flag::new(pram);
    let ii_flag = Flag::new(pram);

    let (parent, eu, ev) = (fs.st.parent, fs.st.eu, fs.st.ev);
    let (level, budget) = (fs.level, fs.budget);
    let (eoff, t3off, t5off) = (fs.eoff, fs.t3off, fs.t5off);
    let (dormant, raised2, ongoing) = (fs.dormant, fs.raised2, fs.ongoing);
    let heap = fs.heap.handle();

    // ---- Step 0 (bookkeeping): ongoing flags over arcs + table edges.
    pram.fill_step(ongoing, 0);
    pram.step(fs.st.arcs, |i, ctx| {
        let i = i as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a != b {
            ctx.write(ongoing, a as usize, 1);
            ctx.write(ongoing, b as usize, 1);
        }
    });
    {
        let cells = &fs.table_cells;
        pram.step(cells.len(), |i, ctx| {
            let (x, c) = cells[i as usize];
            let off = ctx.read(eoff, x as usize);
            if off == NULL {
                return;
            }
            let w = ctx.read(heap, off as usize + c as usize);
            if w != NULL && w != x as u64 {
                ctx.write(ongoing, x as usize, 1);
                ctx.write(ongoing, w as usize, 1);
            }
        });
    }

    // ---- Step 1: MAXLINK; ALTER (arcs and tables).
    {
        let mx = MaxlinkCtx {
            cand: fs.cand,
            level,
            lmax: fs.lmax,
            table_cells: &fs.table_cells,
            eoff,
            heap,
        };
        maxlink(pram, &fs.st, &mx, &changed, params.maxlink_iters);
    }
    alter(pram, eu, ev, parent);
    alter_tables(pram, &fs.table_cells, eoff, heap, parent);

    // ---- Step 2: random level raises on ongoing roots.
    pram.fill_step(raised2, 0);
    pram.fill_step(dormant, 0);
    if params.enable_sampling {
        let (coeff, exp, cap) = (params.sample_coeff, params.sample_exp, params.sample_cap);
        let lmax = fs.lmax as u64;
        pram.step(n, move |v, ctx| {
            if ctx.read(ongoing, v as usize) != 1 || ctx.read(parent, v as usize) != v {
                return;
            }
            let l = ctx.read(level, v as usize);
            if l >= lmax {
                return;
            }
            let b = ctx.read(budget, v as usize).max(4) as f64;
            let p_up = (coeff / b.powf(exp)).min(cap);
            if ctx.coin(0x5A_3B ^ seed, p_up) {
                ctx.write(level, v as usize, l + 1);
                ctx.write(raised2, v as usize, 1);
                changed.raise(ctx);
            }
        });
    }

    // ---- Work-table allocation for every ongoing root (the processor
    // blocks of Assumption 3.1 / Step 8; compaction-charged per Lemma D.2).
    pram.host_fill(t3off, NULL);
    pram.host_fill(t5off, NULL);
    let mut builders: Vec<(u32, u32)> = Vec::new(); // (vertex, √b)
    {
        let parents = pram.read_vec(parent);
        let ongo = pram.read_vec(ongoing);
        let buds = pram.read_vec(budget);
        for v in 0..n {
            if ongo[v] == 1 && parents[v] == v as u64 && buds[v] >= 4 {
                let sqb = sqb_of(buds[v]) as u32;
                builders.push((v as u32, sqb));
            }
        }
    }
    for &(v, sqb) in &builders {
        let o3 = fs.heap.alloc(pram, sqb as usize);
        let o5 = fs.heap.alloc(pram, sqb as usize);
        pram.set(t3off, v as usize, o3);
        pram.set(t5off, v as usize, o5);
    }
    pram.charge(n, 4);
    let heap = fs.heap.handle(); // may have grown

    // ---- Step 3: H3(v) ← same-budget root neighbours.
    pram.step(n, |v, ctx| {
        let o3 = ctx.read(t3off, v as usize);
        if o3 == NULL {
            return;
        }
        let sqb = sqb_of(ctx.read(budget, v as usize));
        ctx.write(heap, o3 as usize + hv.eval_range(v, sqb) as usize, v);
    });
    pram.step(fs.st.arcs, |i, ctx| {
        let i = i as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b {
            return;
        }
        step3_insert(ctx, a, b, parent, budget, t3off, heap, &hv);
    });
    {
        let cells = &fs.table_cells;
        pram.step(cells.len(), |i, ctx| {
            let (x, c) = cells[i as usize];
            let off = ctx.read(eoff, x as usize);
            if off == NULL {
                return;
            }
            let w = ctx.read(heap, off as usize + c as usize);
            if w == NULL || w == x as u64 {
                return;
            }
            step3_insert(ctx, x as u64, w, parent, budget, t3off, heap, &hv);
            step3_insert(ctx, w, x as u64, parent, budget, t3off, heap, &hv);
        });
    }

    // ---- Step 4: collision ⇒ dormant; dormant members ⇒ dormant owner.
    pram.step(n, |v, ctx| {
        let o3 = ctx.read(t3off, v as usize);
        if o3 == NULL {
            return;
        }
        let sqb = sqb_of(ctx.read(budget, v as usize));
        if ctx.read(heap, o3 as usize + hv.eval_range(v, sqb) as usize) != v {
            ctx.write(dormant, v as usize, 1);
        }
    });
    pram.step(fs.st.arcs, |i, ctx| {
        let i = i as usize;
        let a = ctx.read(eu, i);
        let b = ctx.read(ev, i);
        if a == b {
            return;
        }
        step4_verify(ctx, a, b, parent, budget, t3off, heap, &hv, dormant);
    });
    {
        let cells = &fs.table_cells;
        pram.step(cells.len(), |i, ctx| {
            let (x, c) = cells[i as usize];
            let off = ctx.read(eoff, x as usize);
            if off == NULL {
                return;
            }
            let w = ctx.read(heap, off as usize + c as usize);
            if w == NULL || w == x as u64 {
                return;
            }
            step4_verify(ctx, x as u64, w, parent, budget, t3off, heap, &hv, dormant);
            step4_verify(ctx, w, x as u64, parent, budget, t3off, heap, &hv, dormant);
        });
    }
    // Dormancy propagation through table membership (Step 4 sentence 2).
    {
        let h3_cells: Vec<(u32, u32)> = builders
            .iter()
            .flat_map(|&(v, sqb)| (0..sqb).map(move |c| (v, c)))
            .collect();
        pram.step(h3_cells.len(), |i, ctx| {
            let (v, c) = h3_cells[i as usize];
            let o3 = ctx.read(t3off, v as usize);
            let w = ctx.read(heap, o3 as usize + c as usize);
            if w != NULL && ctx.read(dormant, w as usize) == 1 {
                ctx.write(dormant, v as usize, 1);
            }
        });
    }

    // ---- Step 5: squaring H5(v) ← ∪_{w ∈ H3(v)} H3(w).
    // Roots whose H3 holds nothing but themselves (typical right after a
    // level raise: no same-budget neighbours yet) would square to {v};
    // their b(v) processors do no useful work, so they are skipped and
    // neither charged nor executed. This keeps the measured per-round work
    // near O(m) (E9) without changing any table content.
    let squarers: Vec<(u32, u32)> = {
        let heap_words = pram.slice(heap);
        let t3 = pram.slice(t3off);
        builders
            .iter()
            .copied()
            .filter(|&(v, sqb)| {
                let o3 = t3[v as usize];
                o3 != NULL
                    && (0..sqb as usize).any(|c| {
                        let w = heap_words[o3 as usize + c];
                        w != NULL && w != v as u64
                    })
            })
            .collect()
    };
    let s5_index: Vec<(u32, u32)> = squarers
        .iter()
        .flat_map(|&(v, sqb)| (0..sqb * sqb).map(move |i| (v, i)))
        .collect();
    pram.step(s5_index.len(), |i, ctx| {
        let (v, within) = s5_index[i as usize];
        let sqb = sqb_of(ctx.read(budget, v as usize));
        let (p, q) = (within as u64 / sqb, within as u64 % sqb);
        let o3 = ctx.read(t3off, v as usize);
        let w = ctx.read(heap, o3 as usize + p as usize);
        if w == NULL {
            return;
        }
        let o3w = ctx.read(t3off, w as usize);
        if o3w == NULL {
            return;
        }
        let u = ctx.read(heap, o3w as usize + q as usize);
        if u == NULL {
            return;
        }
        let slot = hv.eval_range(u, sqb) as usize;
        // Break-condition (ii): was u already present in H3(v)?
        if ctx.read(heap, o3 as usize + slot) != u {
            ii_flag.raise(ctx);
        }
        let o5 = ctx.read(t5off, v as usize);
        ctx.write(heap, o5 as usize + slot, u);
    });
    pram.step(s5_index.len(), |i, ctx| {
        let (v, within) = s5_index[i as usize];
        let sqb = sqb_of(ctx.read(budget, v as usize));
        let (p, q) = (within as u64 / sqb, within as u64 % sqb);
        let o3 = ctx.read(t3off, v as usize);
        let w = ctx.read(heap, o3 as usize + p as usize);
        if w == NULL {
            return;
        }
        let o3w = ctx.read(t3off, w as usize);
        if o3w == NULL {
            return;
        }
        let u = ctx.read(heap, o3w as usize + q as usize);
        if u == NULL {
            return;
        }
        let o5 = ctx.read(t5off, v as usize);
        if ctx.read(heap, o5 as usize + hv.eval_range(u, sqb) as usize) != u {
            ctx.write(dormant, v as usize, 1);
        }
    });

    // ---- Swap: persistent ← H5; free H3 and old persistent blocks.
    for &(v, sqb) in &builders {
        let v = v as usize;
        if let Some((old_off, old_sqb)) = fs.host_tbl[v] {
            fs.heap.dealloc(old_off, old_sqb as usize);
        }
        let o3 = pram.get(t3off, v);
        let o5 = pram.get(t5off, v);
        fs.heap.dealloc(o3, sqb as usize);
        fs.host_tbl[v] = Some((o5, sqb));
        pram.set(eoff, v, o5);
    }
    fs.rebuild_table_cells();
    pram.charge(n, 1); // table-pointer swap is one parallel step

    // ---- Step 6: MAXLINK; SHORTCUT; ALTER (arcs + new tables).
    {
        let mx = MaxlinkCtx {
            cand: fs.cand,
            level,
            lmax: fs.lmax,
            table_cells: &fs.table_cells,
            eoff,
            heap,
        };
        maxlink(pram, &fs.st, &mx, &changed, params.maxlink_iters);
    }
    shortcut_flagged(pram, parent, &changed);
    alter(pram, eu, ev, parent);
    alter_tables(pram, &fs.table_cells, eoff, heap, parent);

    // ---- Step 7: dormant roots that did not raise in Step 2 raise now.
    {
        let lmax = fs.lmax as u64;
        pram.step(n, |v, ctx| {
            if ctx.read(dormant, v as usize) == 1
                && ctx.read(raised2, v as usize) == 0
                && ctx.read(parent, v as usize) == v
            {
                let l = ctx.read(level, v as usize);
                if l < lmax {
                    ctx.write(level, v as usize, l + 1);
                    changed.raise(ctx);
                }
            }
        });
    }

    // ---- Step 8: roots get the budget of their level (zones +
    // approximate compaction; charged per Lemma D.2).
    {
        let budgets = fs.budgets.clone();
        pram.step(n, move |v, ctx| {
            if ctx.read(parent, v as usize) == v {
                let l = ctx.read(level, v as usize) as usize;
                let b = budgets[l.min(budgets.len() - 1)];
                if b > 0 && ctx.read(budget, v as usize) != b {
                    ctx.write(budget, v as usize, b);
                }
            }
        });
        pram.charge(n, 4);
    }

    let outcome = RoundOutcome {
        changed: changed.read(pram),
        ii_violated: ii_flag.read(pram),
        dormant: pram.slice(dormant).iter().filter(|&&x| x == 1).count() as u64,
        max_level: pram.slice(level).iter().copied().max().unwrap_or(0),
        table_live: fs.heap.live_words() as u64,
    };
    changed.free(pram);
    ii_flag.free(pram);
    outcome
}

/// ALTER on persistent table entries: replace each stored endpoint by its
/// parent (one processor per cell).
fn alter_tables(pram: &mut Pram, cells: &[(u32, u32)], eoff: Handle, heap: Handle, parent: Handle) {
    pram.step(cells.len(), |i, ctx| {
        let (x, c) = cells[i as usize];
        let off = ctx.read(eoff, x as usize);
        if off == NULL {
            return;
        }
        let w = ctx.read(heap, off as usize + c as usize);
        if w == NULL {
            return;
        }
        let pw = ctx.read(parent, w as usize);
        if pw != w {
            ctx.write(heap, off as usize + c as usize, pw);
        }
    });
}

/// Step 3 insert: hash root-neighbour `b` into `H3(a)` when both are roots
/// of equal budget and `a` has a work table.
#[allow(clippy::too_many_arguments)]
#[inline]
fn step3_insert(
    ctx: &mut pram_sim::Ctx,
    a: u64,
    b: u64,
    parent: Handle,
    budget: Handle,
    t3off: Handle,
    heap: Handle,
    hv: &PairwiseHash,
) {
    let o3 = ctx.read(t3off, a as usize);
    if o3 == NULL {
        return;
    }
    if ctx.read(parent, b as usize) != b {
        return;
    }
    let ba = ctx.read(budget, a as usize);
    if ctx.read(budget, b as usize) != ba {
        return;
    }
    let sqb = sqb_of(ba);
    ctx.write(heap, o3 as usize + hv.eval_range(b, sqb) as usize, b);
}

/// Step 4 verify: the write of [`step3_insert`] either stuck or its owner
/// goes dormant.
#[allow(clippy::too_many_arguments)]
#[inline]
fn step4_verify(
    ctx: &mut pram_sim::Ctx,
    a: u64,
    b: u64,
    parent: Handle,
    budget: Handle,
    t3off: Handle,
    heap: Handle,
    hv: &PairwiseHash,
    dormant: Handle,
) {
    let o3 = ctx.read(t3off, a as usize);
    if o3 == NULL {
        return;
    }
    if ctx.read(parent, b as usize) != b {
        return;
    }
    let ba = ctx.read(budget, a as usize);
    if ctx.read(budget, b as usize) != ba {
        return;
    }
    let sqb = sqb_of(ba);
    if ctx.read(heap, o3 as usize + hv.eval_range(b, sqb) as usize) != b {
        ctx.write(dormant, a as usize, 1);
    }
}
