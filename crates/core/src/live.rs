//! The shared live-work index for the phase-structured drivers
//! (Vanilla, Theorem 1, Theorem 2).
//!
//! The paper's phases cost O(live) work because approximate compaction
//! (Lemma D.2) re-indexes the surviving subproblem between phases; a naive
//! simulation that hands a processor to every original vertex and arc pays
//! O(n + m) per phase even when almost everything is finished. A
//! [`LiveSet`] is the controller-side equivalent of that compaction for
//! the simple `{VOTE; LINK; SHORTCUT; ALTER}`-shaped drivers: a compacted
//! list of non-loop arcs, of their endpoint vertices ("ongoing" vertices,
//! Definition B.1 via Lemma B.2), and of the ongoing roots. Every charged
//! step in those drivers iterates one of these lists through
//! [`pram_sim::Pram::step_over`].
//!
//! Refreshing the set is itself charged: the arc and root lists go through
//! [`pram_kit::compact_over`] (1 predicate step + the Lemma-D.2 placement
//! charge, at the live count), and the endpoint collection is charged as
//! one emission step over the surviving arcs plus a Lemma-D.2 dedup/rename
//! over the endpoints. The host vectors are the controller's mirror of the
//! compacted arrays those primitives produce; they are rebuilt in
//! deterministic first-seen order, so runs stay reproducible and
//! thread-count invariant.
//!
//! (The Theorem-3 driver has its own richer index — `theorem3::LiveIndex`
//! — which additionally tracks live persistent-table cells; it follows the
//! same charging discipline.)

use crate::state::CcState;
use pram_kit::compact_over;
use pram_sim::Pram;

/// "Not live" marker for the vertex → slot map.
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Charged compaction of a live-arc list: keep the non-loops. One shared
/// definition for every driver (the Theorem-3 `LiveIndex` layers its
/// dedup on top of this) so the Lemma-D.2 accounting cannot diverge
/// between them.
pub(crate) fn compact_live_arcs(pram: &mut Pram, st: &CcState, arcs: &[u32]) -> Vec<u32> {
    let (eu, ev) = (st.eu, st.ev);
    compact_over(pram, arcs, move |_, &i, ctx| {
        ctx.read(eu, i as usize) != ctx.read(ev, i as usize)
    })
}

/// Charge for a host-mirrored endpoint collection: one emission step over
/// the `sources` edge-holders (each writes its two endpoints) plus the
/// Lemma-D.2 dedup/rename over the `endpoints` collected. Shared by every
/// live index so the charge model lives in exactly one place.
pub(crate) fn charge_endpoint_collection(pram: &mut Pram, sources: usize, endpoints: usize) {
    pram.charge(2 * sources, 1);
    pram.charge(endpoints, 4);
}

/// Clear the slot marks of the previous vertex list (O(prev live)) and
/// empty it, ready for [`extend_endpoints`].
pub(crate) fn reset_endpoints(slot: &mut [u32], verts: &mut Vec<u32>) {
    for &v in verts.iter() {
        slot[v as usize] = NO_SLOT;
    }
    verts.clear();
}

/// Append the endpoints `pairs` yields in first-seen order, maintaining
/// the invariant `slot[verts[i]] == i` — the one definition of the slot
/// map that both live indexes (and through the Theorem-3 one, the
/// generation-stamped MAXLINK's candidate-row addressing) depend on.
pub(crate) fn extend_endpoints(
    slot: &mut [u32],
    verts: &mut Vec<u32>,
    pairs: impl IntoIterator<Item = (u64, u64)>,
) {
    for (a, b) in pairs {
        for v in [a, b] {
            if slot[v as usize] == NO_SLOT {
                slot[v as usize] = verts.len() as u32;
                verts.push(v as u32);
            }
        }
    }
}

/// Charged compaction of the ongoing roots out of the live vertex list.
pub(crate) fn compact_live_roots(pram: &mut Pram, st: &CcState, verts: &[u32]) -> Vec<u32> {
    let parent = st.parent;
    compact_over(pram, verts, move |_, &v, ctx| {
        ctx.read(parent, v as usize) == v as u64
    })
}

/// The compacted live subproblem: non-loop arcs, their endpoints, and the
/// ongoing roots. See the module docs for the charging discipline.
pub struct LiveSet {
    /// Indices of arcs that were non-loops at the last refresh.
    pub arcs: Vec<u32>,
    /// Endpoints of the live arcs, deduplicated (the ongoing vertices).
    pub verts: Vec<u32>,
    /// `verts` that are their own parent — the ongoing roots.
    pub roots: Vec<u32>,
    /// vertex → slot in `verts` (`NO_SLOT` = not live). Doubles as the
    /// membership map during endpoint dedup.
    slot: Vec<u32>,
}

impl LiveSet {
    /// An empty set over `n` vertices (no arcs live yet).
    pub fn new(n: usize) -> Self {
        LiveSet {
            arcs: Vec::new(),
            verts: Vec::new(),
            roots: Vec::new(),
            slot: vec![NO_SLOT; n],
        }
    }

    /// Seed from the full arc array and refresh — the one O(m) pass; every
    /// later [`LiveSet::refresh`] scans the surviving lists only.
    pub fn full(pram: &mut Pram, st: &CcState) -> Self {
        let mut s = Self::new(st.n);
        s.arcs = (0..st.arcs as u32).collect();
        s.refresh(pram, st);
        s
    }

    /// Refresh every list from machine state: drop arcs that became loops,
    /// recollect endpoints, and re-derive the ongoing roots — all charged
    /// at the previous live size (see module docs).
    pub fn refresh(&mut self, pram: &mut Pram, st: &CcState) {
        self.arcs = compact_live_arcs(pram, st, &self.arcs);

        // Endpoint collection over the surviving arcs (shared helpers —
        // one definition of the slot-map invariant).
        reset_endpoints(&mut self.slot, &mut self.verts);
        {
            let eu_h = pram.view(st.eu);
            let ev_h = pram.view(st.ev);
            extend_endpoints(
                &mut self.slot,
                &mut self.verts,
                self.arcs
                    .iter()
                    .map(|&i| (eu_h.get(i as usize), ev_h.get(i as usize))),
            );
        }
        charge_endpoint_collection(pram, self.arcs.len(), self.verts.len());
        self.roots = compact_live_roots(pram, st, &self.verts);
    }

    /// No live arc left — the driver's termination test, free to read
    /// (the refresh already paid for the underlying flag-OR).
    pub fn is_solved(&self) -> bool {
        self.arcs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use pram_sim::{Pram, WritePolicy};

    #[test]
    fn full_set_covers_all_nonloop_arcs_and_endpoints() {
        let g = gen::union_all(&[gen::path(5), gen::star(4)]);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let st = CcState::init(&mut pram, &g);
        let live = LiveSet::full(&mut pram, &st);
        assert_eq!(live.arcs.len(), st.arcs);
        assert_eq!(live.verts.len(), g.n());
        assert_eq!(live.roots.len(), g.n()); // identity parents
    }

    #[test]
    fn refresh_drops_loops_and_tracks_roots() {
        let g = gen::path(4); // arcs (0,1),(1,0),(1,2),(2,1),(2,3),(3,2)
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let st = CcState::init(&mut pram, &g);
        let mut live = LiveSet::full(&mut pram, &st);
        // Contract 0-1: parent[1]=0, arcs of (0,1) become loops.
        pram.set(st.parent, 1, 0);
        pram.set(st.eu, 0, 0);
        pram.set(st.ev, 0, 0);
        pram.set(st.eu, 1, 0);
        pram.set(st.ev, 1, 0);
        live.refresh(&mut pram, &st);
        assert_eq!(live.arcs, vec![2, 3, 4, 5]);
        // Endpoints of the survivors; 0 is no longer an endpoint.
        assert_eq!(live.verts, vec![1, 2, 3]);
        assert_eq!(live.roots, vec![2, 3]); // 1 is not a root anymore
        assert!(!live.is_solved());
    }

    #[test]
    fn refresh_work_tracks_live_size() {
        let g = gen::path(100);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let st = CcState::init(&mut pram, &g);
        let mut live = LiveSet::full(&mut pram, &st);
        // Kill all arcs but the first pair.
        for i in 2..st.arcs {
            pram.set(st.eu, i, 0);
            pram.set(st.ev, i, 0);
        }
        live.refresh(&mut pram, &st);
        assert_eq!(live.arcs.len(), 2);
        pram.reset_stats();
        live.refresh(&mut pram, &st);
        // Charged at the live size (2 arcs, 2 verts, 2 roots), far below
        // O(n + m).
        assert!(
            pram.stats().work < 100,
            "refresh work {} not live-sized",
            pram.stats().work
        );
    }

    #[test]
    fn edgeless_graph_solves_immediately() {
        let g = cc_graph::GraphBuilder::new(3).build();
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let st = CcState::init(&mut pram, &g);
        let live = LiveSet::full(&mut pram, &st);
        assert!(live.is_solved()); // the dummy loop arc is dropped
        assert!(live.verts.is_empty());
    }
}
