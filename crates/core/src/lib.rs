//! # `logdiam-cc` — the paper's algorithms on a simulated CRCW PRAM
//!
//! Implements, on the [`pram_sim`] machine:
//!
//! * [`vanilla`] — Reif '84 random-mate, the paper's **Vanilla algorithm**
//!   (§B.1): `{RANDOM-VOTE; LINK; SHORTCUT; ALTER}` per phase, `O(log n)`
//!   phases whp. Used standalone as a baseline and inside `PREPARE`.
//! * [`theorem1`] — **Connected Components** (§B, Theorem 1):
//!   `PREPARE; {EXPAND; VOTE; LINK; SHORTCUT; ALTER}` —
//!   `O(log d · log log_{m/n} n)` time. The hash-table expansion of §B.3
//!   and the vote of §B.4 are implemented step-for-step, including the
//!   live/dormant machinery and the §B.5 `ñ` update rule that removes the
//!   COMBINING-PRAM assumption.
//! * [`theorem2`] — **Spanning Forest** (§C, Theorem 2): the extended
//!   expansion that snapshots per-round tables, TREE-LINK with `(α, β)`
//!   distance labels, and forest-edge marking on original arcs.
//! * [`theorem3`] — **Faster Connected Components** (§3/§D, Theorem 3):
//!   `COMPACT; {EXPAND-MAXLINK}; Theorem-1 postprocess` —
//!   `O(log d + log log_{m/n} n)` time, with levels, budgets, MAXLINK and
//!   the collision-triggered level increases.
//! * [`baselines`] — Awerbuch–Shiloach '87 (deterministic `O(log n)`),
//!   Liu–Tarjan '19-style label propagation, plus Vanilla above; the
//!   `O(log n)` yardsticks for experiment E7.
//! * [`verify`] — validators for component labelings (against sequential
//!   ground truth) and spanning forests.
//!
//! All algorithms run on *any* [`pram_sim::WritePolicy`] — tests exercise
//! seeded-arbitrary, both priority orders, and racy commits, since a correct
//! ARBITRARY CRCW algorithm must tolerate every resolution.
//!
//! ## Parameter substitutions
//!
//! The paper fixes constants for its union bounds (`c = 200`,
//! `b_{ℓ+1} = b_ℓ^{1.01}`, `b = δ^{1/18}`, sampling `10 log n / b^{0.1}`)
//! that only bind at astronomically large `n`. Every such constant is a
//! field of [`theorem1::Theorem1Params`] / [`theorem3::FasterParams`] with
//! laptop-scale defaults; the mechanisms (collision ⇒ dormant ⇒ level-up,
//! random level sampling, MAXLINK toward higher levels, budget
//! double-exponentiation) are untouched. DESIGN.md §1.1 tabulates the
//! substitutions; experiment E10 ablates them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod live;
pub mod metrics;
pub mod state;
pub mod theorem1;
pub mod theorem2;
pub mod theorem3;
pub mod vanilla;
pub mod verify;

pub use state::CcState;
