//! Per-run measurement records consumed by the experiment harness.

use pram_sim::Stats;

/// Why an iterative algorithm stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The paper's break condition held.
    Converged,
    /// The safety round cap was hit; the run then falls through to the
    /// always-correct postprocess, so the *output* is still verified —
    /// only the round count is censored. Counted by experiment E6.
    RoundCap,
}

/// One round / phase snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundMetrics {
    /// Round (Theorem 3) or phase (Theorem 1 / Vanilla) index, 1-based.
    pub round: u64,
    /// Roots in the labeled digraph at the end of the round.
    pub roots: usize,
    /// Roots that still have an incident non-loop edge ("ongoing").
    pub ongoing: usize,
    /// Maximum level (Theorem 3) — 0 where not applicable.
    pub max_level: u64,
    /// Vertices marked dormant this round (each dormancy is caused by a
    /// hash collision, a lost block lottery, or propagation from one).
    pub dormant: u64,
    /// Live table words allocated at the end of the round.
    pub table_words: u64,
    /// Expansion inner rounds executed this phase (Theorem 1/2; the
    /// `O(log d)` loop of §B.3 Step 5).
    pub expand_rounds: u64,
    /// Charged work (Σ active processors × charge) executed during this
    /// round, *excluding* the controller's compaction work (reported
    /// separately below) — the live-work regression guard reads this to
    /// verify that per-round step cost tracks the live subproblem, not
    /// O(n + m).
    pub work: u64,
    /// Charged work of the round's live-index compaction (the Lemma-D.2
    /// rebuild: arc/table-cell filtering, endpoint dedup, root
    /// re-derivation). Kept distinct from `work` so the scheduler's own
    /// bookkeeping cost is visible instead of being folded into step work.
    pub compaction_work: u64,
    /// Live (non-loop, post-dedup) arcs at the end of the round (Theorem 3
    /// live-work scheduling) — 0 where not applicable.
    pub live_arcs: usize,
}

impl StopReason {
    /// Stable lowercase name used in telemetry (`docs/obs-schema.md`).
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::RoundCap => "round_cap",
        }
    }
}

impl RoundMetrics {
    /// This round as one structured telemetry event named `round` — one
    /// field per [`RoundMetrics`] field, ready for JSON-lines output or a
    /// registry's event ring. Bridges are post-run (reports are built
    /// first, exported after), so telemetry adds nothing to the charged
    /// simulated work.
    pub fn to_event(&self) -> logdiam_obs::Event {
        logdiam_obs::Event::new("round")
            .with("round", self.round)
            .with("roots", self.roots)
            .with("ongoing", self.ongoing)
            .with("max_level", self.max_level)
            .with("dormant", self.dormant)
            .with("table_words", self.table_words)
            .with("expand_rounds", self.expand_rounds)
            .with("work", self.work)
            .with("compaction_work", self.compaction_work)
            .with("live_arcs", self.live_arcs)
    }
}

/// Full report of one algorithm run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Component label per vertex.
    pub labels: Vec<u32>,
    /// Outer rounds / phases executed.
    pub rounds: u64,
    /// PREPARE phases (Theorem 1/2) or COMPACT phases (Theorem 3).
    pub prepare_rounds: u64,
    /// Why the main loop stopped.
    pub stop: StopReason,
    /// Machine accounting for the run.
    pub stats: Stats,
    /// Per-round snapshots.
    pub per_round: Vec<RoundMetrics>,
}

impl RunReport {
    /// Highest level any vertex reached (Theorem 3).
    pub fn max_level(&self) -> u64 {
        self.per_round
            .iter()
            .map(|r| r.max_level)
            .max()
            .unwrap_or(0)
    }

    /// Total expansion inner rounds (Theorem 1/2).
    pub fn total_expand_rounds(&self) -> u64 {
        self.per_round.iter().map(|r| r.expand_rounds).sum()
    }

    /// Peak table words over the run.
    pub fn peak_table_words(&self) -> u64 {
        self.per_round
            .iter()
            .map(|r| r.table_words)
            .max()
            .unwrap_or(0)
    }

    /// Summary event named `run_report`: the aggregate fields (rounds,
    /// stop reason, peaks) plus the machine stats, flattened.
    pub fn to_event(&self) -> logdiam_obs::Event {
        logdiam_obs::Event::new("run_report")
            .with("rounds", self.rounds)
            .with("prepare_rounds", self.prepare_rounds)
            .with("stop", self.stop.as_str())
            .with("max_level", self.max_level())
            .with("total_expand_rounds", self.total_expand_rounds())
            .with("peak_table_words", self.peak_table_words())
            .with("sim_steps", self.stats.steps)
            .with("sim_work", self.stats.work)
            .with("sim_max_procs", self.stats.max_procs)
            .with("sim_peak_words", self.stats.peak_words)
            .with("host_threads", self.stats.host_threads)
    }

    /// Export the whole run into `registry`: aggregate gauges (prefixed
    /// `run_`), the machine stats ([`Stats::record_into`] under `sim_`),
    /// a `run_report` summary event, and one `round` event per recorded
    /// round. Post-run and read-only — it cannot perturb the run it
    /// describes.
    pub fn record_into(&self, registry: &logdiam_obs::Registry) {
        let reg = registry;
        reg.gauge("run_rounds").set(self.rounds as i64);
        reg.gauge("run_prepare_rounds")
            .set(self.prepare_rounds as i64);
        reg.gauge("run_max_level").set(self.max_level() as i64);
        reg.gauge("run_peak_table_words")
            .set(self.peak_table_words() as i64);
        reg.counter("runs_total").inc();
        if self.stop == StopReason::RoundCap {
            reg.counter("round_cap_hits_total").inc();
        }
        self.stats.record_into(reg, "sim");
        for r in &self.per_round {
            reg.event(r.to_event());
        }
        reg.event(self.to_event());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates() {
        let report = RunReport {
            labels: vec![],
            rounds: 2,
            prepare_rounds: 0,
            stop: StopReason::Converged,
            stats: Stats::default(),
            per_round: vec![
                RoundMetrics {
                    round: 1,
                    max_level: 2,
                    expand_rounds: 3,
                    table_words: 10,
                    ..Default::default()
                },
                RoundMetrics {
                    round: 2,
                    max_level: 3,
                    expand_rounds: 4,
                    table_words: 7,
                    ..Default::default()
                },
            ],
        };
        assert_eq!(report.max_level(), 3);
        assert_eq!(report.total_expand_rounds(), 7);
        assert_eq!(report.peak_table_words(), 10);

        let reg = logdiam_obs::Registry::new();
        report.record_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["run_rounds"], 2);
        assert_eq!(snap.gauges["run_max_level"], 3);
        assert_eq!(snap.counters["runs_total"], 1);
        assert!(!snap.counters.contains_key("round_cap_hits_total"));
        let events = reg.drain_events();
        // One event per round plus the run_report summary.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "round");
        assert_eq!(events[2].name, "run_report");
        assert_eq!(
            events[2].field("stop"),
            Some(&logdiam_obs::Value::Str("converged".into()))
        );
        assert!(events[0].to_json_line().contains("\"expand_rounds\":3"));
    }
}
