//! **Theorem 2** — Spanning Forest in `O(log d · log log_{m/n} n)` (§C):
//!
//! ```text
//! FOREST-PREPARE;
//! repeat { EXPAND; VOTE; TREE-LINK; TREE-SHORTCUT; ALTER } until no non-loop edge
//! ```
//!
//! The connected-components EXPAND adds edges that are not input edges, so
//! its LINK cannot be recorded in a forest. Theorem 2 therefore:
//!
//! * snapshots the expansion tables per round (`H_j`),
//! * replays them in `treelink` to compute exact distances `β` to the
//!   nearest leader, and
//! * links only along *current graph arcs* `(v, w)` with `β(v) = β(w)+1`,
//!   marking each used arc's **original** input edge (`ê.f := 1`) — every
//!   arc processor carries its original edge identity through all ALTERs.
//!
//! `FOREST-PREPARE` is **Vanilla-SF** (§C.1): random mating whose links
//! also happen along current arcs and are recorded the same way.
//!
//! Outputs are validated by [`crate::verify::check_spanning_forest`]:
//! acyclic, one tree per component, every edge an input edge.
//!
//! **Live-work scheduling.** Like Theorem 1, the driver maintains a
//! [`LiveSet`] and schedules every charged step (Vanilla-SF, EXPAND, VOTE,
//! TREE-LINK, TREE-SHORTCUT, ALTER, the COMBINING ongoing count) over its
//! lists, so a phase costs O(live); the per-phase refresh is charged under
//! [`RoundMetrics::compaction_work`]. TREE-SHORTCUT flattens the live
//! frontier only — vertices that left the live set keep stale parents
//! until the host-side root chase of the final labeling, which cannot
//! change which original edges joined the forest.

mod treelink;

use crate::live::LiveSet;
use crate::metrics::{RoundMetrics, RunReport, StopReason};
use crate::state::CcState;
use crate::theorem1::{
    expand, live_count_ongoing, vote, DensityMode, ExpandParams, ExpandScratch, Theorem1Params,
};
use crate::vanilla::phase_cap;
use crate::verify;
use cc_graph::Graph;
use pram_kit::ops::{alter_over, shortcut_until_flat_over};
use pram_sim::{Handle, Pram, NULL};
use treelink::{tree_link, TreeLink};

/// Report of a spanning-forest run.
#[derive(Clone, Debug)]
pub struct ForestReport {
    /// Indices into `g.edges()` of the forest edges.
    pub forest_edges: Vec<usize>,
    /// Component labels (forest roots).
    pub labels: Vec<u32>,
    /// Run metrics (rounds = main-loop phases).
    pub run: RunReport,
    /// Largest *live* parent-chain length observed right after a
    /// TREE-LINK (Lemma C.8: ≤ d). Measured from the live vertices — the
    /// chains the phase just built — since frozen vertices' stale chains
    /// are bookkeeping the lemma does not bound (see the measurement site
    /// in [`spanning_forest`]).
    pub max_height_observed: u32,
}

/// One Vanilla-SF phase (§C.1): RANDOM-VOTE; MARK-EDGE; LINK; SHORTCUT;
/// ALTER, with forest marking on original arcs — all scheduled over the
/// live set. `vearc` cells are cleared per phase for live vertices only;
/// stale cells of departed vertices are never read (the LINK step iterates
/// the live list).
fn vanilla_sf_phase(
    pram: &mut Pram,
    st: &CcState,
    live: &LiveSet,
    leader: Handle,
    vearc: Handle,
    forest: Handle,
    seed: u64,
) {
    let (parent, eu, ev) = (st.parent, st.eu, st.ev);
    pram.step_over(&live.verts, move |_, &u, ctx| {
        let l = ctx.coin(seed ^ 0x52_56_53, 0.5);
        ctx.write(leader, u as usize, l as u64);
        ctx.write(vearc, u as usize, NULL);
    });
    // MARK-EDGE: remember which arc causes the link.
    pram.step_over(&live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let v = ctx.read(eu, i);
        let w = ctx.read(ev, i);
        if v == w {
            return;
        }
        if ctx.read(leader, v as usize) == 0 && ctx.read(leader, w as usize) == 1 {
            ctx.write(vearc, v as usize, ai as u64);
        }
    });
    // LINK along the remembered arc; mark its original edge.
    pram.step_over(&live.verts, move |_, &u, ctx| {
        let i = ctx.read(vearc, u as usize);
        if i == NULL {
            return;
        }
        let w = ctx.read(ev, i as usize);
        ctx.write(parent, u as usize, w);
        ctx.write(forest, i as usize, 1);
    });
    pram_kit::ops::shortcut_over(pram, parent, &live.verts);
    alter_over(pram, eu, ev, parent, &live.arcs);
}

/// Run Theorem 2's Spanning Forest algorithm on `g`.
pub fn spanning_forest(
    pram: &mut Pram,
    g: &Graph,
    seed: u64,
    params: &Theorem1Params,
) -> ForestReport {
    let st = CcState::init(pram, g);
    let n = st.n;
    let m_eff = g.m().max(1) as f64;
    let forest = pram.alloc_filled(st.arcs, 0);
    let leader = pram.alloc(n);
    let vearc = pram.alloc_filled(n, NULL);
    let mut per_round = Vec::new();
    let mut max_height_observed = 0u32;
    // The one O(m) pass; every later refresh scans live lists only.
    let mut live = LiveSet::full(pram, &st);

    // -------------------------------------------------- FOREST-PREPARE
    let mut ntilde = n as f64;
    let mut prepare_rounds = 0;
    let prepare_cap = phase_cap(n);
    let mut solved = live.is_solved();
    while !solved && m_eff / ntilde < params.delta0 && prepare_rounds < prepare_cap {
        prepare_rounds += 1;
        vanilla_sf_phase(
            pram,
            &st,
            &live,
            leader,
            vearc,
            forest,
            seed.wrapping_add(prepare_rounds),
        );
        live.refresh(pram, &st);
        if live.is_solved() {
            solved = true;
            break;
        }
        ntilde = match params.density {
            DensityMode::Combining => live_count_ongoing(pram, &live).max(1) as f64,
            DensityMode::NTildeRule => ntilde * 0.95,
        };
    }

    // ------------------------------------------------------- main loop
    // Driver-lifetime stamped scratch for EXPAND's per-vertex arrays (see
    // Theorem 1): one allocation, per-phase refill by generation bump.
    let mut scratch = params.expand_stamps.then(|| ExpandScratch::new(pram, n));
    let max_phases = if params.max_phases > 0 {
        params.max_phases
    } else {
        phase_cap(n)
    };
    let mut stop = if solved {
        StopReason::Converged
    } else {
        StopReason::RoundCap
    };
    let mut phase = 0;
    while !solved && phase < max_phases {
        phase += 1;
        let phase_seed = seed ^ phase.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5F;
        let step_work0 = pram.stats().work;
        let delta = (m_eff / ntilde).max(1.0);
        let k = params.table_size(delta);
        let nblocks = ((2.0 * ntilde) as usize)
            .max(live.arcs.len() / 2 / (k * k))
            .max(8)
            .next_power_of_two();
        let exp_params = ExpandParams {
            table_size: k,
            nblocks,
            snapshot: true, // TREE-LINK replays the rounds
            round_cap: (n.max(2) as f64).log2().ceil() as u64 + 6,
        };
        let expansion = expand(pram, &st, &exp_params, phase_seed, &live, scratch.as_mut());
        vote(
            pram,
            &st,
            &expansion,
            &live,
            leader,
            params.leader_prob(k),
            phase_seed,
        );
        let tl = TreeLink::new(pram, n, nblocks * k);
        tree_link(pram, &st, &expansion, &tl, &live, leader, forest);
        // Lemma C.8 measurement: heights after TREE-LINK, before
        // flattening, must stay ≤ d. Measured over the *live* chains: the
        // per-phase TREE-SHORTCUT no longer flattens vertices that left
        // the live set, so their stale frozen chains grow by a hop
        // whenever their old root re-links — a bookkeeping artifact the
        // lemma does not bound (the final labeling chases them
        // host-side). The chains TREE-LINK just built run through live
        // vertices only, which is exactly the lemma's quantity; cycles
        // from a bad link would sit on those chains and are caught here.
        // Charged as the PRAM would run it (see live_chain_height).
        let h = live_chain_height(pram, st.parent, &live.verts);
        max_height_observed = max_height_observed.max(h);
        shortcut_until_flat_over(pram, st.parent, &live.verts); // TREE-SHORTCUT
        alter_over(pram, st.eu, st.ev, st.parent, &live.arcs);

        let expand_rounds = expansion.rounds;
        let table_words = (expansion.nblocks * expansion.k * expansion.snapshots.len()) as u64;
        tl.free(pram);
        expansion.free(pram);
        let step_work = pram.stats().work - step_work0;

        let compaction0 = pram.stats().work;
        live.refresh(pram, &st);
        per_round.push(RoundMetrics {
            round: phase,
            roots: live.roots.len(),
            ongoing: live.verts.len(),
            expand_rounds,
            table_words,
            work: step_work,
            compaction_work: pram.stats().work - compaction0,
            live_arcs: live.arcs.len(),
            ..Default::default()
        });

        if live.is_solved() {
            stop = StopReason::Converged;
            solved = true;
            break;
        }
        ntilde = match params.density {
            DensityMode::Combining => live_count_ongoing(pram, &live).max(1) as f64,
            DensityMode::NTildeRule => (ntilde / params.reduction(k)).max(1.0),
        };
    }

    // Fallback: finish with Vanilla-SF (always correct, still marks the
    // forest properly).
    if !solved {
        let cap = phase_cap(n);
        let mut extra = 0;
        while !live.is_solved() && extra < cap {
            extra += 1;
            vanilla_sf_phase(
                pram,
                &st,
                &live,
                leader,
                vearc,
                forest,
                seed ^ 0x00FA_115F ^ extra,
            );
            live.refresh(pram, &st);
        }
    }

    // ------------------------------------------------------- extraction
    // Arcs were laid out as (2e, 2e+1) per input edge e by CcState::init.
    let flags = pram.read_vec(forest);
    let mut forest_edges: Vec<usize> = Vec::new();
    for e in 0..g.m() {
        if flags[2 * e] != 0 || flags[2 * e + 1] != 0 {
            forest_edges.push(e);
        }
    }
    // Whole-array acyclicity audit: an O(n) host walk, so it runs only in
    // tests and under the `strict` feature — the per-phase cycle guard is
    // the charged live-chain walk above.
    if cfg!(any(test, feature = "strict")) {
        assert!(
            verify::forest_heights(&pram.read_vec(st.parent)).is_ok(),
            "Theorem 2 produced a cyclic labeled digraph"
        );
    }
    if let Some(s) = scratch {
        s.free(pram);
    }
    let labels = st.labels_rooted(pram);
    let stats = pram.stats();
    pram.free(forest);
    pram.free(leader);
    pram.free(vearc);
    st.free(pram);

    ForestReport {
        forest_edges,
        labels,
        run: RunReport {
            labels: Vec::new(),
            rounds: phase,
            prepare_rounds,
            stop,
            stats,
            per_round,
        },
        max_height_observed,
    }
}

/// Maximum parent-chain length from any of the listed vertices. Panics if
/// a chain exceeds `n` hops — a cycle, which only a bad TREE-LINK could
/// create (frozen vertices never get new parents).
///
/// Charged as the PRAM would run it: one processor per live vertex, each
/// chasing its chain one hop per synchronous step until every chain hits
/// its root — `|live| · max_height` work, `max_height` time. This is the
/// Lemma C.8 measurement, so its cost scales with the live chains it
/// measures, never with `n`.
fn live_chain_height(pram: &mut Pram, parent: Handle, verts: &[u32]) -> u32 {
    let max_h = {
        let parent = pram.view(parent);
        let mut max_h = 0u32;
        for &v in verts {
            let mut x = v as u64;
            let mut h = 0u32;
            while parent.get(x as usize) != x {
                x = parent.get(x as usize);
                h += 1;
                assert!(h as usize <= parent.len(), "TREE-LINK created a cycle");
            }
            max_h = max_h.max(h);
        }
        max_h
    };
    pram.charge(verts.len(), u64::from(max_h.max(1)));
    max_h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_spanning_forest;
    use cc_graph::gen;
    use cc_graph::seq::max_component_diameter_exact;
    use pram_sim::WritePolicy;

    fn run(g: &Graph, seed: u64) -> ForestReport {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        spanning_forest(&mut pram, g, seed, &Theorem1Params::default())
    }

    #[test]
    fn valid_forest_on_basic_shapes() {
        for g in [
            gen::path(40),
            gen::cycle(25),
            gen::star(30),
            gen::complete(12),
            gen::grid(5, 7),
            gen::union_all(&[gen::path(9), gen::cycle(7), gen::complete(5)]),
        ] {
            let report = run(&g, 5);
            check_spanning_forest(&g, &report.forest_edges)
                .unwrap_or_else(|e| panic!("graph n={} m={}: {e}", g.n(), g.m()));
        }
    }

    #[test]
    fn valid_forest_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::gnm(250, 900, seed);
            let report = run(&g, seed * 13 + 1);
            check_spanning_forest(&g, &report.forest_edges).unwrap();
            crate::verify::check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn valid_under_all_policies() {
        let g = gen::gnm(200, 700, 9);
        for policy in [
            WritePolicy::ArbitrarySeeded(4),
            WritePolicy::PriorityMin,
            WritePolicy::PriorityMax,
            WritePolicy::Racy,
        ] {
            let mut pram = Pram::new(policy);
            let report = spanning_forest(&mut pram, &g, 11, &Theorem1Params::default());
            check_spanning_forest(&g, &report.forest_edges).unwrap();
        }
    }

    #[test]
    fn tree_heights_bounded_by_diameter() {
        // Lemma C.8: heights after TREE-LINK ≤ d (+1 slack for the
        // height-0 convention).
        let g = gen::grid(6, 10);
        let d = max_component_diameter_exact(&g);
        let report = run(&g, 17);
        check_spanning_forest(&g, &report.forest_edges).unwrap();
        assert!(
            report.max_height_observed <= d + 1,
            "height {} exceeds diameter {d}",
            report.max_height_observed
        );
    }

    #[test]
    fn tree_heights_bounded_across_seeds_with_stale_frozen_chains() {
        // Regression: with the live-restricted TREE-SHORTCUT, vertices
        // that leave the live set keep stale chains that grow as their
        // old roots re-link; the Lemma C.8 measurement must not include
        // them. delta0 = 0 forces a multi-phase main loop on a
        // low-diameter graph, the shape that made the whole-array
        // measurement overshoot d on most seeds.
        let params = Theorem1Params {
            delta0: 0.0,
            ..Default::default()
        };
        for seed in 0..8 {
            let g = gen::gnm(400, 2000, seed);
            let d = max_component_diameter_exact(&g);
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let report = spanning_forest(&mut pram, &g, seed, &params);
            check_spanning_forest(&g, &report.forest_edges).unwrap();
            assert!(
                report.max_height_observed <= d + 1,
                "seed {seed}: live-chain height {} exceeds diameter {d}",
                report.max_height_observed
            );
        }
    }

    #[test]
    fn multi_component_forest_has_one_tree_per_component() {
        let g = gen::union_all(&[gen::cycle(10), gen::path(7), gen::star(6), gen::complete(5)]);
        let report = run(&g, 23);
        check_spanning_forest(&g, &report.forest_edges).unwrap();
        // n - #components = forest size; 4 components here.
        assert_eq!(report.forest_edges.len(), g.n() - 4);
    }

    #[test]
    fn deterministic_under_seeded_policy() {
        let g = gen::gnm(150, 400, 3);
        let a = run(&g, 77);
        let b = run(&g, 77);
        assert_eq!(a.forest_edges, b.forest_edges);
    }

    #[test]
    fn edgeless_graph_empty_forest() {
        let g = cc_graph::GraphBuilder::new(6).build();
        let report = run(&g, 1);
        assert!(report.forest_edges.is_empty());
        check_spanning_forest(&g, &report.forest_edges).unwrap();
    }

    #[test]
    fn ntilde_rule_also_valid() {
        let g = gen::gnm(200, 800, 6);
        let params = Theorem1Params {
            density: DensityMode::NTildeRule,
            ..Default::default()
        };
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(8));
        let report = spanning_forest(&mut pram, &g, 19, &params);
        check_spanning_forest(&g, &report.forest_edges).unwrap();
    }
}
