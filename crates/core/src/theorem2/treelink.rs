//! TREE-LINK (§C.3): turn one phase's expansion into *direct links along
//! input edges*, so the links can be recorded as spanning-forest edges.
//!
//! For every vertex `u` the method computes:
//!
//! * `α(u)` — the largest radius such that `B(u, α)` contains no hash
//!   collision, no leader, and no fully-dormant vertex. It is assembled
//!   from the per-round expansion snapshots `H_j` by binary radix descent
//!   (`j = T → 0`): extending `Q(u) = B(u, α)` by `2^j` succeeds exactly
//!   when every current member was still live in round `j` and the
//!   extension stays collision- and leader-free (Lemma C.4).
//! * `β(u)` — `0` for leaders, `α(u) + 1` when a *leader-neighbour* is in
//!   `Q(u)`; by Lemma C.5 this equals the exact distance to the nearest
//!   leader.
//!
//! Every current arc `(v, w)` with `β(v) = β(w) + 1` is then a legal
//! shortest-path-tree link (Lemma C.6): `v.p := w` and the arc's
//! *original* edge joins the forest. β strictly decreases along links, so
//! no cycle can ever form, and tree heights stay ≤ d (Lemma C.8).

use crate::live::LiveSet;
use crate::state::CcState;
use crate::theorem1::Expansion;
use pram_sim::{Handle, Pram, NULL};

/// Per-phase TREE-LINK scratch (caller allocates once per phase).
pub(crate) struct TreeLink {
    pub alpha: Handle,
    pub beta: Handle,
    pub gate: Handle,
    pub fail: Handle,
    pub lnbr: Handle,
    /// Chosen incoming arc per vertex (`NULL` = none).
    pub vearc: Handle,
    pub qtab: Handle,
    pub qprime: Handle,
}

impl TreeLink {
    pub(crate) fn new(pram: &mut Pram, n: usize, table_cells: usize) -> Self {
        TreeLink {
            alpha: pram.alloc_filled(n, NULL),
            beta: pram.alloc_filled(n, NULL),
            gate: pram.alloc_filled(n, 0),
            fail: pram.alloc_filled(n, 0),
            lnbr: pram.alloc_filled(n, 0),
            vearc: pram.alloc_filled(n, NULL),
            qtab: pram.alloc_filled(table_cells, NULL),
            qprime: pram.alloc_filled(table_cells, NULL),
        }
    }

    pub(crate) fn free(self, pram: &mut Pram) {
        pram.free(self.alpha);
        pram.free(self.beta);
        pram.free(self.gate);
        pram.free(self.fail);
        pram.free(self.lnbr);
        pram.free(self.vearc);
        pram.free(self.qtab);
        pram.free(self.qprime);
    }
}

/// Run TREE-LINK for one phase, scheduled over `live`. Writes parent links
/// and sets `forest[arc] = 1` for the chosen arcs. `leader` comes from
/// VOTE. Per-vertex steps iterate the ongoing vertices, per-arc steps the
/// live arcs; the per-block-cell steps iterate `owned`, which is already
/// live-sized.
#[allow(clippy::too_many_arguments)]
pub(crate) fn tree_link(
    pram: &mut Pram,
    st: &CcState,
    e: &Expansion,
    tl: &TreeLink,
    live: &LiveSet,
    leader: Handle,
    forest: Handle,
) {
    let k = e.k;
    let (fdr, tables_owner, hb, hv) = (e.fdr, e.owner, e.hb, e.hv);
    let owned = &e.owned;
    let (alpha, beta, gate, fail) = (tl.alpha, tl.beta, tl.gate, tl.fail);
    let (lnbr, vearc, qtab, qprime) = (tl.lnbr, tl.vearc, tl.qtab, tl.qprime);
    let (parent, eu, ev) = (st.parent, st.eu, st.ev);

    // Step 1: initialise α and Q for non-leader block owners.
    pram.step_over(&live.verts, move |_, &u, ctx| {
        let u = u as u64;
        if ctx.read(leader, u as usize) == 1 {
            return; // α stays NONE (leaders)
        }
        let blk = hb.eval(u);
        if ctx.read(tables_owner, blk as usize) != u {
            return; // fully dormant: no block, α stays NONE
        }
        ctx.write(alpha, u as usize, 0);
        ctx.write(qtab, blk as usize * k + hv.eval(u) as usize, u);
    });

    // Step 2: radix descent over the expansion rounds.
    let t = e.rounds;
    for j in (0..=t).rev() {
        let snap = e.snapshots[j as usize];
        // Gate: u participates iff α ≥ 0 and every v ∈ Q(u) was live in
        // round j (fdr encoding: live in round j ⟺ fdr ≥ j + 2).
        pram.step_over(&live.verts, move |_, &u, ctx| {
            let g = ctx.read(alpha, u as usize) != NULL;
            ctx.write(gate, u as usize, g as u64);
            ctx.write(fail, u as usize, 0);
        });
        pram.step(owned.len() * k, |pp, ctx| {
            let idx = (pp as usize) / k;
            let p = (pp as usize) % k;
            let (blk, u) = owned[idx];
            let v = ctx.read(qtab, blk as usize * k + p);
            if v != NULL && fdr.read(ctx, v as usize) < j + 2 {
                ctx.write(gate, u as usize, 0);
            }
        });
        pram.fill_step(qprime, NULL);
        // (b) Q'(u) ← ∪_{v ∈ Q(u)} H_j(v).
        pram.step(owned.len() * k * k, |pp, ctx| {
            let idx = (pp as usize) / (k * k);
            let rem = (pp as usize) % (k * k);
            let (p, q) = (rem / k, rem % k);
            let (blk, u) = owned[idx];
            if ctx.read(gate, u as usize) != 1 {
                return;
            }
            let v = ctx.read(qtab, blk as usize * k + p);
            if v == NULL {
                return;
            }
            let blkv = hb.eval(v);
            let w = ctx.read(snap, blkv as usize * k + q);
            if w == NULL {
                return;
            }
            ctx.write(qprime, blk as usize * k + hv.eval(w) as usize, w);
        });
        // (c) collision check...
        pram.step(owned.len() * k * k, |pp, ctx| {
            let idx = (pp as usize) / (k * k);
            let rem = (pp as usize) % (k * k);
            let (p, q) = (rem / k, rem % k);
            let (blk, u) = owned[idx];
            if ctx.read(gate, u as usize) != 1 {
                return;
            }
            let v = ctx.read(qtab, blk as usize * k + p);
            if v == NULL {
                return;
            }
            let blkv = hb.eval(v);
            let w = ctx.read(snap, blkv as usize * k + q);
            if w == NULL {
                return;
            }
            if ctx.read(qprime, blk as usize * k + hv.eval(w) as usize) != w {
                ctx.write(fail, u as usize, 1);
            }
        });
        // ...and leader check.
        pram.step(owned.len() * k, |pp, ctx| {
            let idx = (pp as usize) / k;
            let i = (pp as usize) % k;
            let (blk, u) = owned[idx];
            if ctx.read(gate, u as usize) != 1 {
                return;
            }
            let w = ctx.read(qprime, blk as usize * k + i);
            if w != NULL && ctx.read(leader, w as usize) == 1 {
                ctx.write(fail, u as usize, 1);
            }
        });
        // Commit: Q := Q', α += 2^j.
        pram.step(owned.len() * k, |pp, ctx| {
            let idx = (pp as usize) / k;
            let i = (pp as usize) % k;
            let (blk, u) = owned[idx];
            if ctx.read(gate, u as usize) != 1 || ctx.read(fail, u as usize) != 0 {
                return;
            }
            let w = ctx.read(qprime, blk as usize * k + i);
            ctx.write(qtab, blk as usize * k + i, w);
            if i == 0 {
                let a = ctx.read(alpha, u as usize);
                ctx.write(alpha, u as usize, a + (1 << j));
            }
        });
    }

    // Step 3: leader-neighbour marking over current live arcs (unlisted
    // arcs are loops, which marked nothing before either).
    pram.step_over(&live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let v = ctx.read(eu, i);
        let w = ctx.read(ev, i);
        if v != w && ctx.read(leader, v as usize) == 1 {
            ctx.write(lnbr, w as usize, 1);
        }
    });

    // Step 4: β labels.
    pram.step_over(&live.verts, move |_, &u, ctx| {
        if ctx.read(leader, u as usize) == 1 {
            ctx.write(beta, u as usize, 0);
        }
    });
    pram.step(owned.len() * k, |pp, ctx| {
        let idx = (pp as usize) / k;
        let i = (pp as usize) % k;
        let (blk, u) = owned[idx];
        if ctx.read(leader, u as usize) == 1 {
            return;
        }
        let a = ctx.read(alpha, u as usize);
        if a == NULL {
            return;
        }
        let w = ctx.read(qtab, blk as usize * k + i);
        if w != NULL && ctx.read(lnbr, w as usize) == 1 {
            ctx.write(beta, u as usize, a + 1);
        }
    });

    // Step 5: choose an arc with β(v) = β(w) + 1 per vertex.
    pram.step_over(&live.arcs, move |_, &ai, ctx| {
        let i = ai as usize;
        let v = ctx.read(eu, i);
        let w = ctx.read(ev, i);
        if v == w {
            return;
        }
        let bv = ctx.read(beta, v as usize);
        let bw = ctx.read(beta, w as usize);
        if bv != NULL && bw != NULL && bv == bw + 1 {
            ctx.write(vearc, v as usize, ai as u64);
        }
    });

    // Step 6: link along the chosen arc and mark the original edge.
    pram.step_over(&live.verts, move |_, &u, ctx| {
        let i = ctx.read(vearc, u as usize);
        if i == NULL {
            return;
        }
        let w = ctx.read(ev, i as usize);
        ctx.write(parent, u as usize, w);
        ctx.write(forest, i as usize, 1);
    });
}
