//! Awerbuch–Shiloach '87: the deterministic `O(log n)` ARBITRARY CRCW
//! connectivity algorithm (the streamlined Shiloach–Vishkin '82).
//!
//! Per iteration:
//! 1. star test; **conditional hook**: a star hooks onto a neighbouring
//!    tree with a *smaller* root label (monotone — no cycles);
//! 2. star test again; **stagnant hook**: a tree that is still a star
//!    hooks onto *any* neighbouring tree. Two stagnant stars are never
//!    adjacent (the larger of an adjacent pair was hooked in step 1), so
//!    this cannot create a cycle either;
//! 3. SHORTCUT.
//!
//! Runs on the original (un-ALTERed) edges; terminates when an iteration
//! changes nothing. `O(log n)` iterations (heights shrink by a constant
//! factor per iteration).

use crate::metrics::{RoundMetrics, RunReport, StopReason};
use crate::state::CcState;
use cc_graph::Graph;
use pram_kit::ops::Flag;
use pram_sim::{Handle, Pram};

/// Star test (standard O(1) three-step subroutine): afterwards
/// `star[v] = 1` iff `v`'s tree is flat.
fn star_test(pram: &mut Pram, parent: Handle, star: Handle) {
    let n = parent.len();
    pram.fill_step(star, 1);
    pram.step(n, move |v, ctx| {
        let p = ctx.read(parent, v as usize);
        let gp = ctx.read(parent, p as usize);
        if p != gp {
            ctx.write(star, v as usize, 0);
            ctx.write(star, gp as usize, 0);
        }
    });
    pram.step(n, move |v, ctx| {
        let p = ctx.read(parent, v as usize);
        if ctx.read(star, p as usize) == 0 {
            ctx.write(star, v as usize, 0);
        }
    });
}

/// Run Awerbuch–Shiloach on `g`.
pub fn awerbuch_shiloach(pram: &mut Pram, g: &Graph) -> RunReport {
    let st = CcState::init(pram, g);
    let (parent, eu, ev) = (st.parent, st.eu, st.ev);
    let star = pram.alloc(st.n);
    let changed = Flag::new(pram);

    let cap = 32 + 6 * (st.n.max(2) as f64).log2().ceil() as u64;
    let mut per_round = Vec::new();
    let mut stop = StopReason::RoundCap;
    let mut iter = 0;
    while iter < cap {
        iter += 1;
        changed.clear(pram);

        // (1) Conditional hook: stars onto smaller neighbouring labels.
        star_test(pram, parent, star);
        pram.step(st.arcs, |i, ctx| {
            let i = i as usize;
            let u = ctx.read(eu, i);
            let v = ctx.read(ev, i);
            if u == v {
                return;
            }
            if ctx.read(star, u as usize) == 1 {
                let pu = ctx.read(parent, u as usize);
                let pv = ctx.read(parent, v as usize);
                if pv < pu {
                    ctx.write(parent, pu as usize, pv);
                    changed.raise(ctx);
                }
            }
        });

        // (2) Stagnant hook: still-star trees onto any different tree.
        star_test(pram, parent, star);
        pram.step(st.arcs, |i, ctx| {
            let i = i as usize;
            let u = ctx.read(eu, i);
            let v = ctx.read(ev, i);
            if u == v {
                return;
            }
            if ctx.read(star, u as usize) == 1 {
                let pu = ctx.read(parent, u as usize);
                let pv = ctx.read(parent, v as usize);
                if pv != pu {
                    ctx.write(parent, pu as usize, pv);
                    changed.raise(ctx);
                }
            }
        });

        // (3) SHORTCUT (flag changes so termination is detected).
        pram.step(st.n, |v, ctx| {
            let p = ctx.read(parent, v as usize);
            let gp = ctx.read(parent, p as usize);
            if gp != p {
                ctx.write(parent, v as usize, gp);
                changed.raise(ctx);
            }
        });

        per_round.push(RoundMetrics {
            round: iter,
            roots: st.host_count_roots(pram),
            ..Default::default()
        });
        if !changed.read(pram) {
            stop = StopReason::Converged;
            break;
        }
    }

    debug_assert!(
        crate::verify::forest_heights(&pram.read_vec(parent)).is_ok(),
        "Awerbuch-Shiloach produced a cycle"
    );
    let labels = st.labels_rooted(pram);
    let stats = pram.stats();
    pram.free(star);
    changed.free(pram);
    st.free(pram);
    RunReport {
        labels,
        rounds: iter,
        prepare_rounds: 0,
        stop,
        stats,
        per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_labels;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    #[test]
    fn correct_on_shapes() {
        for g in [
            gen::path(64),
            gen::cycle(31),
            gen::star(50),
            gen::grid(8, 9),
            gen::union_all(&[gen::path(9), gen::complete(7), gen::star(12)]),
            gen::binary_tree(63),
        ] {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
            let report = awerbuch_shiloach(&mut pram, &g);
            assert_eq!(report.stop, StopReason::Converged);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn correct_under_all_policies() {
        let g = gen::gnm(300, 600, 4);
        for policy in [
            WritePolicy::ArbitrarySeeded(9),
            WritePolicy::PriorityMin,
            WritePolicy::PriorityMax,
            WritePolicy::Racy,
        ] {
            let mut pram = Pram::new(policy);
            let report = awerbuch_shiloach(&mut pram, &g);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn rounds_are_logarithmic_even_on_low_diameter() {
        // The point of E7: AS takes Θ(log n) rounds on a star-of-paths even
        // though the diameter is tiny.
        let small = gen::gnm(256, 1024, 1);
        let big = gen::gnm(8192, 32768, 1);
        let mut p1 = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let mut p2 = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let r_small = awerbuch_shiloach(&mut p1, &small);
        let r_big = awerbuch_shiloach(&mut p2, &big);
        check_labels(&small, &r_small.labels).unwrap();
        check_labels(&big, &r_big.labels).unwrap();
        assert!(r_big.rounds >= r_small.rounds);
    }

    #[test]
    fn path_takes_log_rounds() {
        let g = gen::path(1 << 10);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(2));
        let report = awerbuch_shiloach(&mut pram, &g);
        check_labels(&g, &report.labels).unwrap();
        assert!(report.rounds <= 25, "rounds = {}", report.rounds);
    }
}
