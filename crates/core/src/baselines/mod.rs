//! Classic `O(log n)` PRAM connectivity baselines.
//!
//! The paper's positioning (§1) is that Shiloach–Vishkin-style algorithms
//! take `Θ(log n)` rounds regardless of the diameter; experiment E7 runs
//! these against the Theorem-3 algorithm across a diameter sweep to show
//! the crossover. [`crate::vanilla`] (Reif '84) is the third baseline.

pub mod awerbuch_shiloach;
pub mod labelprop;

pub use awerbuch_shiloach::awerbuch_shiloach;
pub use labelprop::labelprop;
