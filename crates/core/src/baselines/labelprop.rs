//! Liu–Tarjan '19-style label propagation: the "simple concurrent
//! algorithm" family the paper cites as the practical `O(log n)` approach
//! on COMBINING/ARBITRARY CRCW machines.
//!
//! Per phase: **minimum-parent link** (every vertex adopts the smallest
//! parent among its neighbours' parents if smaller than its own), then
//! SHORTCUT, then ALTER. Parent values only decrease and every adopted
//! parent is strictly smaller than the adopter's current parent, so the
//! labeled digraph stays acyclic for free.
//!
//! Note the min-link uses a COMBINING (min) write; on an ARBITRARY machine
//! it would be emulated with the paper's level-array trick. We run it as a
//! combining step and charge 1 — this only *helps* the baseline, making
//! E7's comparison conservative.

use crate::metrics::{RoundMetrics, RunReport, StopReason};
use crate::state::CcState;
use cc_graph::Graph;
use pram_kit::ops::{alter, any_nonloop_arc, shortcut};
use pram_sim::{CombineOp, Pram};

/// Run min-label propagation on `g`.
pub fn labelprop(pram: &mut Pram, g: &Graph) -> RunReport {
    let st = CcState::init(pram, g);
    let (parent, eu, ev) = (st.parent, st.eu, st.ev);
    let cap = 64 + 8 * (st.n.max(2) as f64).log2().ceil() as u64;

    let mut per_round = Vec::new();
    let mut stop = StopReason::RoundCap;
    let mut phase = 0;
    while phase < cap {
        phase += 1;
        // Min-parent link over arcs (v, w): parent[v] becomes the smallest
        // neighbouring parent that beats the incumbent. Only strictly
        // smaller values are written, so the combined minimum is always an
        // improvement and the digraph stays acyclic.
        pram.step_combine(st.arcs, CombineOp::Min, |i, ctx| {
            let i = i as usize;
            let v = ctx.read(eu, i);
            let w = ctx.read(ev, i);
            if v == w {
                return;
            }
            let pv = ctx.read(parent, v as usize);
            let pw = ctx.read(parent, w as usize);
            if pw < pv {
                ctx.write(parent, v as usize, pw);
            }
        });
        shortcut(pram, parent);
        alter(pram, eu, ev, parent);
        per_round.push(RoundMetrics {
            round: phase,
            roots: st.host_count_roots(pram),
            ongoing: st.host_count_ongoing(pram),
            ..Default::default()
        });
        if !any_nonloop_arc(pram, st.eu, st.ev) {
            stop = StopReason::Converged;
            break;
        }
    }

    debug_assert!(
        crate::verify::forest_heights(&pram.read_vec(parent)).is_ok(),
        "label propagation produced a cycle"
    );
    let labels = st.labels_rooted(pram);
    let stats = pram.stats();
    st.free(pram);
    RunReport {
        labels,
        rounds: phase,
        prepare_rounds: 0,
        stop,
        stats,
        per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_labels;
    use cc_graph::gen;
    use pram_sim::WritePolicy;

    #[test]
    fn correct_on_shapes() {
        for g in [
            gen::path(40),
            gen::cycle(25),
            gen::grid(6, 6),
            gen::union_all(&[gen::star(8), gen::path(12), gen::complete(5)]),
        ] {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(6));
            let report = labelprop(&mut pram, &g);
            assert_eq!(report.stop, StopReason::Converged);
            check_labels(&g, &report.labels).unwrap();
        }
    }

    #[test]
    fn labels_are_component_minima() {
        let g = gen::union_all(&[gen::cycle(5), gen::path(4)]);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(2));
        let report = labelprop(&mut pram, &g);
        assert_eq!(&report.labels[0..5], &[0; 5]);
        assert_eq!(&report.labels[5..9], &[5; 4]);
    }

    #[test]
    fn converges_fast_on_low_diameter() {
        let g = gen::gnm(2000, 12000, 3);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(4));
        let report = labelprop(&mut pram, &g);
        check_labels(&g, &report.labels).unwrap();
        assert!(report.rounds <= 20, "rounds = {}", report.rounds);
    }

    #[test]
    fn correct_on_long_path() {
        let g = gen::path(512);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(8));
        let report = labelprop(&mut pram, &g);
        check_labels(&g, &report.labels).unwrap();
    }
}
