//! Validators: component labelings against sequential ground truth,
//! labeled-digraph sanity (rooted trees only), and spanning forests.

use cc_graph::seq::{components, same_partition, Dsu};
use cc_graph::Graph;

/// Check a component labeling against BFS/DSU ground truth.
///
/// The labeling may use any representative per component (the paper only
/// requires `v.p = w.p ⟺ same component`); comparison is partition-based.
pub fn check_labels(g: &Graph, labels: &[u32]) -> Result<(), String> {
    if labels.len() != g.n() {
        return Err(format!(
            "label vector has length {} for {} vertices",
            labels.len(),
            g.n()
        ));
    }
    let truth = components(g);
    if same_partition(labels, &truth) {
        Ok(())
    } else {
        // Identify one witness for the error message.
        for &(u, v) in g.edges() {
            if labels[u as usize] != labels[v as usize] {
                return Err(format!(
                    "edge ({u},{v}) crosses labels {} vs {}",
                    labels[u as usize], labels[v as usize]
                ));
            }
        }
        Err("labeling merges vertices from different components".into())
    }
}

/// Assert the parent array is a forest of rooted trees (the §2.1 invariant:
/// the only cycles are self-loops) and return per-vertex heights
/// (root = 0). Errors on any non-trivial cycle.
pub fn forest_heights(parent: &[u64]) -> Result<Vec<u32>, String> {
    let n = parent.len();
    let mut height = vec![u32::MAX; n];
    for start in 0..n {
        if height[start] != u32::MAX {
            continue;
        }
        // Walk to a root or a known vertex, collecting the path.
        let mut path = Vec::new();
        let mut v = start;
        loop {
            let p = parent[v] as usize;
            if p >= n {
                return Err(format!("parent[{v}] = {p} out of range"));
            }
            if p == v || height[p] != u32::MAX {
                let base = if p == v { 0 } else { height[p] + 1 };
                height[v] = base;
                let mut h = base;
                for &u in path.iter().rev() {
                    h += 1;
                    height[u] = h;
                }
                break;
            }
            if path.contains(&v) {
                return Err(format!("cycle through vertex {v}"));
            }
            path.push(v);
            v = p;
        }
    }
    Ok(height)
}

/// Maximum tree height of a parent array (0 = all flat).
pub fn max_height(parent: &[u64]) -> u32 {
    forest_heights(parent)
        .expect("parent array contains a cycle")
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// Whether `next` only *coarsens* the partition of `prev` (no group is
/// ever split): the paper's **monotonicity** property (§2.1), which holds
/// for the Theorem-1/2 algorithms and Vanilla, but deliberately *not* for
/// the middle stage of Theorem 3 (parent links may move subtrees between
/// trees).
pub fn partition_coarsens(prev: &[u32], next: &[u32]) -> bool {
    assert_eq!(prev.len(), next.len());
    // Every prev-group must map into a single next-group.
    let mut rep: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for v in 0..prev.len() {
        match rep.entry(prev[v]) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(next[v]);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != next[v] {
                    return false;
                }
            }
        }
    }
    true
}

/// Validate a spanning forest given as a set of edge indices into
/// `g.edges()`:
///
/// 1. every selected edge is an input edge (by construction of the index),
/// 2. the selected edges are acyclic,
/// 3. they span: `#edges = n - #components`, so together with (2) each
///    component carries a spanning tree.
pub fn check_spanning_forest(g: &Graph, forest_edges: &[usize]) -> Result<(), String> {
    let mut dsu = Dsu::new(g.n());
    let mut seen = vec![false; g.m()];
    for &i in forest_edges {
        if i >= g.m() {
            return Err(format!("edge index {i} out of range"));
        }
        if seen[i] {
            return Err(format!("edge index {i} selected twice"));
        }
        seen[i] = true;
        let (u, v) = g.edges()[i];
        if !dsu.union(u, v) {
            return Err(format!("edge ({u},{v}) closes a cycle in the forest"));
        }
    }
    let truth = components(g);
    let mut distinct = truth.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let expect = g.n() - distinct.len();
    if forest_edges.len() != expect {
        return Err(format!(
            "forest has {} edges, expected n - #components = {}",
            forest_edges.len(),
            expect
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;

    #[test]
    fn check_labels_accepts_truth_and_relabelings() {
        let g = gen::union_all(&[gen::path(4), gen::cycle(3)]);
        let truth = components(&g);
        assert!(check_labels(&g, &truth).is_ok());
        // Different representatives, same partition.
        let relabeled: Vec<u32> = truth.iter().map(|&l| l + 100).collect();
        assert!(check_labels(&g, &relabeled).is_ok());
    }

    #[test]
    fn check_labels_rejects_split_and_merge() {
        let g = gen::path(4);
        assert!(check_labels(&g, &[0, 0, 1, 1]).is_err()); // split
        let g2 = gen::union_all(&[gen::path(2), gen::path(2)]);
        assert!(check_labels(&g2, &[0, 0, 0, 0]).is_err()); // merge
    }

    #[test]
    fn forest_heights_on_chain_and_cycle() {
        // 0 <- 1 <- 2 (chain), 3 self-root
        let h = forest_heights(&[0, 0, 1, 3]).unwrap();
        assert_eq!(h, vec![0, 1, 2, 0]);
        // 2-cycle
        assert!(forest_heights(&[1, 0]).is_err());
    }

    #[test]
    fn max_height_of_flat_tree_is_one() {
        // Root has height 0, direct children height 1.
        assert_eq!(max_height(&[0, 0, 0]), 1);
        assert_eq!(max_height(&[0, 1, 2]), 0); // all singleton roots
    }

    #[test]
    fn coarsening_detection() {
        // {0,1},{2},{3} -> {0,1,2},{3}: coarsens.
        assert!(partition_coarsens(&[0, 0, 2, 3], &[0, 0, 0, 3]));
        // identical: coarsens (trivially).
        assert!(partition_coarsens(&[0, 0, 2, 3], &[5, 5, 6, 7]));
        // {0,1} split apart: not monotone.
        assert!(!partition_coarsens(&[0, 0, 2, 3], &[0, 1, 2, 3]));
        // subtree moved: {0,1},{2,3} -> {0,2},{1,3}: not monotone.
        assert!(!partition_coarsens(&[0, 0, 2, 2], &[0, 1, 0, 1]));
    }

    #[test]
    fn spanning_forest_validation() {
        // cycle(4) edges: (0,1),(1,2),(2,3),(0,3).
        let g = gen::cycle(4);
        // Any 3 of the 4 edges form a spanning tree.
        assert!(check_spanning_forest(&g, &[0, 1, 2]).is_ok());
        // All 4 close a cycle.
        assert!(check_spanning_forest(&g, &[0, 1, 2, 3]).is_err());
        // Too few edges: not spanning.
        assert!(check_spanning_forest(&g, &[0, 1]).is_err());
        // Duplicate index.
        assert!(check_spanning_forest(&g, &[0, 0, 1]).is_err());
    }
}
