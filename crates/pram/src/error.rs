//! Typed errors for the simulator's host-facing API.

/// Errors the machine can report to host code.
///
/// Most simulator misuse (out-of-bounds cell access, zero-length
/// allocations) stays a panic — those are driver bugs. Arena exhaustion is
/// different: it is a *capacity* condition a scale-sweeping driver may want
/// to detect and react to (shrink the input, switch representation), so it
/// gets a typed error via [`crate::Pram::try_alloc`]. The panicking
/// allocation paths format this same error, so the 2^32-word limit is
/// always named in the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PramError {
    /// An allocation would push the arena past its word-address space.
    ///
    /// [`crate::Handle`] stores `u32` base addresses, so the arena is hard
    /// capped at 2^32 words; allocation past that limit fails loudly here
    /// instead of wrapping addresses.
    ArenaExhausted {
        /// Rounded block size (words) the failing allocation needed.
        requested: usize,
        /// Words already handed out (after size-class rounding).
        live: usize,
        /// The arena capacity in words (2^32 unless narrowed for tests).
        limit: usize,
    },
}

impl std::fmt::Display for PramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            PramError::ArenaExhausted {
                requested,
                live,
                limit,
            } => write!(
                f,
                "arena exhausted: allocation of {requested} words does not fit \
                 ({live} words live, limit {limit}); the word address space is \
                 capped at 2^32 words because Handle addresses are u32"
            ),
        }
    }
}

impl std::error::Error for PramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_address_space_limit() {
        let e = PramError::ArenaExhausted {
            requested: 8,
            live: 4,
            limit: 12,
        };
        let s = e.to_string();
        assert!(s.contains("2^32"), "{s}");
        assert!(s.contains("8 words"), "{s}");
    }
}
