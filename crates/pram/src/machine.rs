//! The PRAM machine: synchronous step execution and commit.

use std::sync::{Arc, Mutex};

use rayon::prelude::*;

use crate::ctx::{Ctx, CtxOut, RecLayout, ShardBuf};
use crate::mem::{narrow_encode, Arena, CellWidth, CellsPtr, Handle, MemView, WideTable};
use crate::mem::{NARROW_ESC, NARROW_NULL, NULL};
use crate::resolve::{hashed_prio, CombineOp, Resolution, WritePolicy};
use crate::splitmix64;
use crate::stats::Stats;
use crate::PramError;

/// Base processor count below which a step always runs on the calling
/// thread. The actual cutover scales with the pool size (see
/// [`par_threshold`]). Purely a host-side performance knob — simulated
/// semantics are identical.
const PAR_THRESHOLD_BASE: usize = 4096;

/// Processor count above which a step is split across the rayon pool.
///
/// With one pool thread the parallel path is pure overhead (chunk
/// bookkeeping without concurrency), so it is disabled outright; with more
/// threads the cutover grows with the pool so that each worker gets enough
/// processors per chunk to amortize the dispatch.
fn par_threshold(threads: usize) -> usize {
    if threads <= 1 {
        usize::MAX
    } else {
        PAR_THRESHOLD_BASE.max(1024 * threads)
    }
}

/// A simulated CRCW PRAM.
///
/// See the crate docs for the model. Host code (the "controller") drives the
/// machine by allocating memory, running synchronous [`Pram::step`]s, and
/// inspecting memory between steps; only steps are charged simulated time.
pub struct Pram {
    mem: Arena,
    policy: WritePolicy,
    resolution: Resolution,
    layout: RecLayout,
    stats: Stats,
    step_id: u32,
    seed: u64,
    shard_count: u32,
    par_threshold: usize,
    /// Recycled per-`Ctx` shard buffer sets (emptied, capacity kept), so
    /// steady-state steps allocate no write buffers at all. A `Mutex`
    /// because pool workers draw from it inside `run_procs`.
    spare_bufs: Mutex<Vec<Vec<ShardBuf>>>,
    /// Optional observability sink: arena occupancy gauges and
    /// [`Pram::reset_for_run`] events are recorded here when attached.
    obs: Option<Arc<logdiam_obs::Registry>>,
}

impl Pram {
    /// Create a machine with the given write-resolution policy and
    /// full-width (8-byte) cells.
    pub fn new(policy: WritePolicy) -> Self {
        Self::with_width(policy, CellWidth::W64)
    }

    /// Create a machine with an explicit cell width (see [`CellWidth`]).
    ///
    /// `W32` halves the dominant per-word storage for drivers whose values
    /// fit 32 bits (any `u64` still round-trips via the escape table); the
    /// committed image is bit-identical to a `W64` machine's for the same
    /// program, policy and seed — width is a host-memory knob only.
    pub fn with_width(policy: WritePolicy, width: CellWidth) -> Self {
        let threads = rayon::current_num_threads();
        // Sharding the commit by address only pays for itself across real
        // threads; scale shards with the pool (a few per thread so commit
        // chunks stay balanced), bounded to keep per-Ctx overhead small.
        let shard_count = (threads.next_power_of_two() as u32 * 4).clamp(8, 256);
        let seed = match policy {
            WritePolicy::ArbitrarySeeded(s) | WritePolicy::CrewChecked(s) => s,
            _ => 0x5EED_0BAD_CAFE_F00D,
        };
        let layout = if width == CellWidth::W32 && !policy.needs_prio_sidecar() {
            RecLayout::Narrow
        } else {
            RecLayout::Wide
        };
        Pram {
            mem: Arena::new(width, policy.needs_prio_sidecar()),
            policy,
            resolution: policy.resolution(),
            layout,
            stats: Stats {
                host_threads: threads as u64,
                ..Stats::default()
            },
            step_id: 0,
            seed,
            shard_count,
            par_threshold: par_threshold(threads),
            spare_bufs: Mutex::new(Vec::new()),
            obs: None,
        }
    }

    /// The machine's write-resolution policy.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// The machine's cell width.
    pub fn width(&self) -> CellWidth {
        self.mem.width()
    }

    /// Resource accounting so far (space fields refreshed on read).
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.live_words = self.mem.live_words() as u64;
        s.peak_words = self.mem.peak_words() as u64;
        s
    }

    /// Actual heap bytes behind the arena's per-word arrays (cells,
    /// stamps, and the priority sidecar if the policy needs one) — the
    /// measured bytes-per-word footprint: ≤ 12·words full-width for
    /// non-priority policies, ≤ 8·words narrow.
    pub fn arena_backing_bytes(&self) -> usize {
        self.mem.backing_bytes()
    }

    /// Attach an observability registry: records the `sim_*` stats gauges
    /// now and on every [`Pram::reset_for_run`] (which also emits a
    /// `run_reset` event). See `docs/obs-schema.md`.
    pub fn set_obs_registry(&mut self, registry: Arc<logdiam_obs::Registry>) {
        self.stats().record_into(&registry, "sim");
        self.obs = Some(registry);
    }

    /// Reset time/work/traffic counters (space high-water and the recorded
    /// host thread count are kept).
    pub fn reset_stats(&mut self) {
        self.stats = Stats {
            host_threads: self.stats.host_threads,
            ..Stats::default()
        };
    }

    /// Reset the machine for a fresh driver run while keeping every
    /// backing buffer: cell/stamp/priority capacity, size-class free-list
    /// vectors, and the recycled per-step write buffers all survive, so a
    /// bench rep re-grows into already-mapped memory instead of paying
    /// page faults again.
    ///
    /// After the reset the machine is observationally identical to a
    /// newly constructed one — same allocation addresses, same step ids,
    /// and therefore (for the seeded policies) bit-identical write
    /// resolution. With an attached registry ([`Pram::set_obs_registry`])
    /// this emits a `run_reset` event carrying the finished run's
    /// occupancy and refreshes the `sim_*` gauges.
    pub fn reset_for_run(&mut self) {
        let live = self.mem.live_words() as u64;
        let peak = self.mem.peak_words() as u64;
        let backing = self.mem.backing_bytes() as u64;
        self.mem.reset_keep_capacity();
        self.step_id = 0;
        self.reset_stats();
        if let Some(reg) = &self.obs {
            reg.event(
                logdiam_obs::Event::new("run_reset")
                    .with("live_words", live)
                    .with("peak_words", peak)
                    .with("backing_bytes", backing),
            );
            self.stats().record_into(reg, "sim");
        }
    }

    /// Record a pure model charge of `steps` time units on `nprocs`
    /// processors without executing anything.
    ///
    /// Used by primitives that run extra bookkeeping steps at charge 0 and
    /// then account the cost the paper proves for them (e.g. approximate
    /// compaction's O(1)-time `n log n`-processor mode, Lemma D.2). Unlike
    /// executed steps, charges have no processor-count cap.
    pub fn charge(&mut self, nprocs: usize, steps: u64) {
        self.stats.record_step(nprocs as u64, steps);
    }

    // ----------------------------------------------------------------- memory

    /// Allocate a block of `len` words filled with `fill`.
    pub fn alloc_filled(&mut self, len: usize, fill: u64) -> Handle {
        self.mem.alloc(len, fill)
    }

    /// Allocate a zero-filled block of `len` words.
    pub fn alloc(&mut self, len: usize) -> Handle {
        self.mem.alloc(len, 0)
    }

    /// Fallible allocation: like [`Pram::alloc`] but surfaces arena
    /// exhaustion (the 2^32-word address-space cap) as a typed error
    /// instead of panicking.
    pub fn try_alloc(&mut self, len: usize) -> Result<Handle, PramError> {
        self.mem.try_alloc(len, 0)
    }

    /// Return a block to the arena (it may be reused by later allocations).
    pub fn free(&mut self, h: Handle) {
        self.mem.dealloc(h);
    }

    /// Host read of one cell (not charged as simulated time).
    #[inline]
    pub fn get(&self, h: Handle, i: usize) -> u64 {
        self.mem.load(h.addr(i) as usize)
    }

    /// Host write of one cell (setup only; not charged).
    #[inline]
    pub fn set(&mut self, h: Handle, i: usize, v: u64) {
        self.mem.store(h.addr(i) as usize, v);
    }

    /// Host view of a whole block, valid at either cell width (narrow
    /// cells decode transparently). The width-agnostic replacement for
    /// [`Pram::slice`].
    pub fn view(&self, h: Handle) -> MemView<'_> {
        MemView::new(self.mem.cells_ref(), h.base as usize, h.len as usize)
    }

    /// Host `&[u64]` view of a whole block.
    ///
    /// Only available at [`CellWidth::W64`] (panics on a narrow machine —
    /// narrow cells have no contiguous `u64` representation); host code
    /// that must work at any width uses [`Pram::view`].
    pub fn slice(&self, h: Handle) -> &[u64] {
        self.mem.words_u64(h.base as usize, h.len as usize)
    }

    /// Copy a block out (host side).
    pub fn read_vec(&self, h: Handle) -> Vec<u64> {
        self.view(h).to_vec()
    }

    /// Host bulk fill (setup only; not charged). For a charged parallel
    /// fill use [`Pram::fill_step`].
    pub fn host_fill(&mut self, h: Handle, v: u64) {
        self.mem.fill_words(h.base as usize, h.len as usize, v);
    }

    /// Host bulk fill of `len` cells starting at cell `start` (setup only;
    /// not charged). The block-heap allocators use this instead of
    /// per-cell [`Pram::set`] loops so clearing a table costs a memset,
    /// not a call per word.
    pub fn host_fill_range(&mut self, h: Handle, start: usize, len: usize, v: u64) {
        assert!(start + len <= h.len(), "host_fill_range out of bounds");
        self.mem.fill_words(h.addr(start) as usize, len, v);
    }

    /// Allocate a generation-stamped block of `len` cells, logically
    /// filled with a caller-chosen stale sentinel (see [`Stamped`]).
    ///
    /// The stamp cells start at 0 and the generation at 1, so nothing is
    /// ever spuriously fresh. Both blocks are plain arena memory — two
    /// words per logical cell.
    pub fn alloc_stamped(&mut self, len: usize) -> Stamped {
        Stamped {
            values: self.mem.alloc(len, 0),
            stamps: self.mem.alloc(len, 0),
            gen: 1,
        }
    }

    /// Host-side *stamped* bulk fill: logically reset every cell of `s` to
    /// its stale sentinel by advancing the generation — O(1) host work and
    /// zero simulated time, where [`Pram::host_fill`]/[`Pram::host_fill_range`]
    /// memset O(len) words. This is what lets per-phase flag arrays sized
    /// at `n` be "cleared" each phase without any O(n) pass, host or
    /// simulated (the MAXLINK candidate stamps of `logdiam-cc` follow the
    /// same discipline).
    pub fn host_stamped_fill(&mut self, s: &mut Stamped) {
        s.gen = s.gen.checked_add(1).expect("stamp generation overflow");
    }

    /// Host read of one stamped cell: the written value if fresh this
    /// generation, else `stale` (not charged, like [`Pram::get`]).
    #[inline]
    pub fn get_stamped(&self, s: Stamped, i: usize, stale: u64) -> u64 {
        if self.get(s.stamps, i) == s.gen {
            self.get(s.values, i)
        } else {
            stale
        }
    }

    /// Return a stamped block's value and stamp blocks to the arena.
    pub fn free_stamped(&mut self, s: Stamped) {
        self.mem.dealloc(s.values);
        self.mem.dealloc(s.stamps);
    }

    /// Host copy of `src` into the front of `dst` (`src.len() ≤ dst.len()`).
    /// Setup/bookkeeping only — callers that model a PRAM copy must charge a
    /// step themselves.
    pub fn host_copy(&mut self, src: Handle, dst: Handle) {
        assert!(src.len() <= dst.len(), "host_copy: dst too small");
        self.mem
            .copy_words(src.base as usize, dst.base as usize, src.len as usize);
    }

    /// Charged parallel fill: one step with `h.len()` processors.
    pub fn fill_step(&mut self, h: Handle, v: u64) {
        self.step(h.len(), move |p, ctx| {
            ctx.write(h, p as usize, v);
        });
    }

    // ------------------------------------------------------------------ steps

    /// Execute one synchronous parallel step with `nprocs` processors.
    ///
    /// Each processor `p ∈ [0, nprocs)` runs `f(p, ctx)`; reads see the
    /// pre-step memory, writes are resolved per the machine policy and
    /// committed at the end. Charged as 1 unit of simulated time.
    pub fn step<F>(&mut self, nprocs: usize, f: F)
    where
        F: Fn(u64, &mut Ctx) + Send + Sync,
    {
        self.step_charged(nprocs, 1, f)
    }

    /// Execute one synchronous parallel step with one processor per element
    /// of a *compacted index slice* — the entry point live-work schedulers
    /// use so that per-step cost (both charged and host wall-clock) scales
    /// with the surviving work items, not with the full arrays the items
    /// index into, while staying on the same (possibly chunked-parallel)
    /// dispatch path as [`Pram::step`].
    ///
    /// Processor `p ∈ [0, items.len())` runs `f(p, &items[p], ctx)`. Note
    /// that `p` — the position in the compacted slice, not the item value —
    /// is the processor id seen by write resolution and [`Ctx::rand`]; a
    /// deterministic host-built slice therefore yields runs that are
    /// reproducible and thread-count invariant exactly like plain steps.
    ///
    /// # Example
    ///
    /// ```
    /// use pram_sim::{Pram, WritePolicy};
    ///
    /// let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
    /// let out = pram.alloc(10);
    /// // One processor per *live* item — the step charges 3 processors,
    /// // not the 10 cells the items index into.
    /// let live: Vec<usize> = vec![2, 5, 7];
    /// pram.step_over(&live, |_p, &i, ctx| ctx.write(out, i, 1));
    /// assert_eq!(pram.read_vec(out).iter().sum::<u64>(), 3);
    /// assert_eq!(pram.stats().max_procs, 3);
    /// ```
    pub fn step_over<T, F>(&mut self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(u64, &T, &mut Ctx) + Send + Sync,
    {
        self.step(items.len(), move |p, ctx| f(p, &items[p as usize], ctx));
    }

    /// Like [`Pram::step`] but charged `charge` units of simulated time.
    ///
    /// Used where the paper proves an O(1)- or O(k)-time bound that relies
    /// on processor slack the simulator does not spend host time emulating
    /// (DESIGN.md §1.2). The per-processor op audit still reports the real
    /// op count.
    ///
    /// An *executed* step is capped at 2^32 processors (write records
    /// carry the processor id as `u32` for priority resolution; executing
    /// more closures than that is infeasible anyway). Model larger
    /// processor counts with [`Pram::charge`].
    pub fn step_charged<F>(&mut self, nprocs: usize, charge: u64, f: F)
    where
        F: Fn(u64, &mut Ctx) + Send + Sync,
    {
        self.stats.record_step(nprocs as u64, charge);
        if nprocs == 0 {
            return;
        }
        self.step_id += 1;
        let outs = self.run_procs(nprocs, &f);
        self.commit(&outs);
        self.retire(outs);
    }

    /// Execute one synchronous COMBINING CRCW step: concurrent writes to a
    /// cell leave `op` applied over *all written values* in the cell.
    pub fn step_combine<F>(&mut self, nprocs: usize, op: CombineOp, f: F)
    where
        F: Fn(u64, &mut Ctx) + Send + Sync,
    {
        self.stats.record_step(nprocs as u64, 1);
        if nprocs == 0 {
            return;
        }
        self.step_id += 1;
        let outs = self.run_procs(nprocs, &f);
        self.commit_combine(&outs, op);
        self.retire(outs);
    }

    fn run_procs<F>(&mut self, nprocs: usize, f: &F) -> Vec<CtxOut>
    where
        F: Fn(u64, &mut Ctx) + Send + Sync,
    {
        assert!(
            nprocs <= u32::MAX as usize,
            "executed steps are capped at 2^32 processors (see Pram::step_charged)"
        );
        let mem_ref = self.mem.cells_ref();
        let layout = self.layout;
        let shard_count = self.shard_count;
        let step_seed = splitmix64(self.seed ^ (self.step_id as u64) << 17);
        let spare_bufs = &self.spare_bufs;
        // Per-worker contexts draw their shard buffers from the recycle
        // pool (filled back by `retire`) so capacity carries across steps.
        let fresh_ctx = || {
            let bufs = spare_bufs
                .lock()
                .unwrap()
                .pop()
                .unwrap_or_else(|| (0..shard_count).map(|_| layout.empty_shard()).collect());
            Ctx::new_in(mem_ref, shard_count, step_seed, bufs)
        };

        if nprocs < self.par_threshold {
            let mut ctx = fresh_ctx();
            for p in 0..nprocs as u64 {
                ctx.begin_proc(p);
                f(p, &mut ctx);
                ctx.end_proc();
            }
            vec![ctx.finish()]
        } else {
            (0..nprocs as u64)
                .into_par_iter()
                .fold(fresh_ctx, |mut ctx, p| {
                    ctx.begin_proc(p);
                    f(p, &mut ctx);
                    ctx.end_proc();
                    ctx
                })
                .map(Ctx::finish)
                .collect()
        }
    }

    /// Post-commit bookkeeping, one pass over the step's outputs: merge the
    /// per-worker counters into [`Stats`] and recycle the (emptied) shard
    /// buffers for the next step.
    fn retire(&mut self, outs: Vec<CtxOut>) {
        let mut spare = self.spare_bufs.lock().unwrap();
        for out in outs {
            self.stats.reads += out.reads;
            self.stats.writes += out.writes;
            self.stats.max_ops_per_proc = self.stats.max_ops_per_proc.max(out.max_ops as u64);
            let mut bufs = out.shards;
            for shard in &mut bufs {
                shard.clear();
            }
            spare.push(bufs);
        }
    }

    fn commit(&mut self, outs: &[CtxOut]) {
        let step = self.step_id;
        let res = self.resolution;
        let count_conflicts = self.policy.counts_conflicts();
        let shards = self.shard_count as usize;
        let (cells, stamp, prio) = self.mem.commit_ptrs();
        let mem = ShardedMem {
            cells,
            stamp,
            prio,
            wide: &self.mem.wide,
        };
        let conflicts: u64 = (0..shards)
            .into_par_iter()
            .map(|s| {
                let mut conflicts = 0;
                // SAFETY (applies to every commit_one below): writes are
                // sharded by `addr & (shards-1)`, so each address is
                // touched by exactly one shard iteration; the parallel
                // iterations access disjoint cells.
                for out in outs {
                    match &out.shards[s] {
                        ShardBuf::Wide(recs) => {
                            for rec in recs {
                                if unsafe { mem.commit_one(step, rec.addr, rec.aux, rec.val, res) }
                                {
                                    conflicts += 1;
                                }
                            }
                        }
                        ShardBuf::Narrow { recs, wide } => {
                            let mut cur = 0usize;
                            for rec in recs {
                                let val = narrow_rec_val(rec.val, wide, &mut cur);
                                if unsafe { mem.commit_one(step, rec.addr, 0, val, res) } {
                                    conflicts += 1;
                                }
                            }
                        }
                    }
                }
                conflicts
            })
            .sum();
        if count_conflicts {
            self.stats.write_conflicts += conflicts;
        }
    }

    fn commit_combine(&mut self, outs: &[CtxOut], op: CombineOp) {
        let step = self.step_id;
        let shards = self.shard_count as usize;
        let (cells, stamp, prio) = self.mem.commit_ptrs();
        let mem = ShardedMem {
            cells,
            stamp,
            prio,
            wide: &self.mem.wide,
        };
        (0..shards).into_par_iter().for_each(|s| {
            for out in outs {
                // SAFETY: as in `commit` — shards partition addresses.
                match &out.shards[s] {
                    ShardBuf::Wide(recs) => {
                        for rec in recs {
                            unsafe { mem.combine_one(step, rec.addr, rec.val, op) };
                        }
                    }
                    ShardBuf::Narrow { recs, wide } => {
                        let mut cur = 0usize;
                        for rec in recs {
                            let val = narrow_rec_val(rec.val, wide, &mut cur);
                            unsafe { mem.combine_one(step, rec.addr, val, op) };
                        }
                    }
                }
            }
        });
    }
}

/// Decode one narrow record's value, consuming the shard's escape list in
/// push order (see `NarrowRec`).
#[inline]
fn narrow_rec_val(enc: u32, wide: &[u64], cur: &mut usize) -> u64 {
    match enc {
        NARROW_ESC => {
            let v = wide[*cur];
            *cur += 1;
            v
        }
        NARROW_NULL => NULL,
        x => x as u64,
    }
}

/// A generation-stamped block: `len` logical cells backed by a value
/// block and a parallel stamp block plus a current generation.
///
/// A cell is *fresh* when its stamp equals the current generation; stale
/// cells read as a caller-chosen sentinel. Advancing the generation
/// ([`Pram::host_stamped_fill`]) is therefore a logical O(1) re-fill of
/// the whole block — the replacement for per-phase O(len) memsets on
/// arrays indexed by full-range vertex ids whose live subset is much
/// smaller. Writes pay 2 simulated writes (value + stamp, same step) and
/// reads up to 2 simulated reads; concurrent writers are resolved per
/// cell by the machine policy exactly as for plain cells (every writer
/// stores the same stamp, so the stamp cell is conflict-free in value).
///
/// The struct is `Copy` — step closures capture the generation *at step
/// construction*, which is the intended snapshot semantics.
#[derive(Clone, Copy, Debug)]
pub struct Stamped {
    /// Value cells.
    pub values: Handle,
    /// Stamp cells (same length as `values`).
    pub stamps: Handle,
    /// Current generation (stamps equal to this are fresh); counts from 1
    /// so zeroed stamp blocks start fully stale.
    pub gen: u64,
}

/// Raw-pointer view of the arena used by the sharded parallel commit.
///
/// Methods take `&self` so that commit closures capture the whole struct
/// (keeping the `Sync` reasoning in one place) rather than the raw-pointer
/// fields individually.
struct ShardedMem<'a> {
    cells: CellsPtr,
    stamp: *mut u32,
    /// Null unless the policy needs the processor-priority sidecar.
    prio: *mut u64,
    wide: &'a WideTable,
}

impl ShardedMem<'_> {
    /// Decode the committed value at `a`.
    ///
    /// # Safety
    /// `a` in bounds; no concurrent access to the cell (see commit).
    #[inline]
    unsafe fn load(&self, a: usize) -> u64 {
        match self.cells {
            CellsPtr::W64(p) => unsafe { *p.add(a) },
            CellsPtr::W32(p) => match unsafe { *p.add(a) } {
                NARROW_NULL => NULL,
                NARROW_ESC => self.wide.get(a as u32),
                x => x as u64,
            },
        }
    }

    /// Store `v` at `a` (encoding for narrow cells).
    ///
    /// # Safety
    /// As for [`ShardedMem::load`].
    #[inline]
    unsafe fn store(&self, a: usize, v: u64) {
        match self.cells {
            CellsPtr::W64(p) => unsafe { *p.add(a) = v },
            CellsPtr::W32(p) => match narrow_encode(v) {
                Some(x) => unsafe { *p.add(a) = x },
                None => {
                    self.wide.set(a as u32, v);
                    unsafe { *p.add(a) = NARROW_ESC };
                }
            },
        }
    }

    /// Apply one buffered write under the machine's resolution rule.
    /// Returns true when the cell had already been written in this step
    /// (a CREW conflict).
    ///
    /// # Safety
    /// Caller must guarantee `addr` is in bounds and no other thread is
    /// concurrently accessing that cell (the sharded commit partitions
    /// addresses across threads).
    unsafe fn commit_one(
        &self,
        step: u32,
        addr: u32,
        proc: u32,
        val: u64,
        res: Resolution,
    ) -> bool {
        let a = addr as usize;
        unsafe {
            if *self.stamp.add(a) != step {
                *self.stamp.add(a) = step;
                if matches!(res, Resolution::ProcMin | Resolution::ProcMax) {
                    *self.prio.add(a) = proc as u64;
                }
                self.store(a, val);
                false
            } else {
                match res {
                    Resolution::Racy => self.store(a, val),
                    Resolution::Hashed(seed) => {
                        let cur = self.load(a);
                        let (pn, pc) = (hashed_prio(seed, addr, val), hashed_prio(seed, addr, cur));
                        if pn > pc || (pn == pc && val > cur) {
                            self.store(a, val);
                        }
                    }
                    Resolution::ProcMin => {
                        let incumbent = *self.prio.add(a);
                        let p = proc as u64;
                        if p < incumbent || (p == incumbent && val > self.load(a)) {
                            *self.prio.add(a) = p;
                            self.store(a, val);
                        }
                    }
                    Resolution::ProcMax => {
                        let incumbent = *self.prio.add(a);
                        let p = proc as u64;
                        if p > incumbent || (p == incumbent && val > self.load(a)) {
                            *self.prio.add(a) = p;
                            self.store(a, val);
                        }
                    }
                }
                true
            }
        }
    }

    /// Apply one buffered write under a combining operator.
    ///
    /// # Safety
    /// As for [`ShardedMem::commit_one`].
    unsafe fn combine_one(&self, step: u32, addr: u32, val: u64, op: CombineOp) {
        let a = addr as usize;
        unsafe {
            if *self.stamp.add(a) != step {
                *self.stamp.add(a) = step;
                self.store(a, val);
            } else {
                let cur = self.load(a);
                self.store(a, op.apply(cur, val));
            }
        }
    }
}

// SAFETY: the commit loops partition addresses by shard (addr & mask), so no
// two threads access the same cell; the wide table is internally
// mutex-striped.
unsafe impl Sync for ShardedMem<'_> {}
unsafe impl Send for ShardedMem<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NULL;

    #[test]
    fn reads_see_pre_step_memory() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let xs = pram.alloc_filled(4, 5);
        // Every processor increments its left neighbour's cell; since reads
        // see the old image, the result is old[left]+1 everywhere, not a
        // cascade.
        pram.step(4, |p, ctx| {
            let i = p as usize;
            let left = (i + 3) % 4;
            let v = ctx.read(xs, left);
            ctx.write(xs, i, v + 1);
        });
        assert_eq!(pram.read_vec(xs), vec![6, 6, 6, 6]);
    }

    #[test]
    fn seeded_arbitrary_is_reproducible() {
        let run = |seed| {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let xs = pram.alloc_filled(1, NULL);
            pram.step(10_000, |p, ctx| {
                ctx.write(xs, 0, p);
            });
            pram.get(xs, 0)
        };
        assert_eq!(run(7), run(7));
        // Different seeds should (almost surely) pick different winners.
        let distinct = (0..16).map(run).collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn priority_policies_pick_extremes() {
        for (policy, expect) in [
            (WritePolicy::PriorityMin, 0u64),
            (WritePolicy::PriorityMax, 9_999),
        ] {
            let mut pram = Pram::new(policy);
            let xs = pram.alloc(1);
            pram.step(10_000, |p, ctx| {
                ctx.write(xs, 0, p);
            });
            assert_eq!(pram.get(xs, 0), expect);
        }
    }

    #[test]
    fn racy_policy_commits_some_writer() {
        let mut pram = Pram::new(WritePolicy::Racy);
        let xs = pram.alloc_filled(1, NULL);
        pram.step(50_000, |p, ctx| {
            ctx.write(xs, 0, p);
        });
        assert!(pram.get(xs, 0) < 50_000);
    }

    #[test]
    fn combine_sum_counts_writers() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
        let c = pram.alloc_filled(1, 99);
        pram.step_combine(12_345, CombineOp::Sum, |_, ctx| {
            ctx.write(c, 0, 1);
        });
        // Previous content (99) does not participate.
        assert_eq!(pram.get(c, 0), 12_345);
    }

    #[test]
    fn combine_min_max_or() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
        let c = pram.alloc_filled(3, 0);
        pram.step_combine(100, CombineOp::Min, |p, ctx| {
            ctx.write(c, 0, 1000 - p);
        });
        pram.step_combine(100, CombineOp::Max, |p, ctx| {
            ctx.write(c, 1, p);
        });
        pram.step_combine(64, CombineOp::Or, |p, ctx| {
            ctx.write(c, 2, 1 << (p % 8));
        });
        assert_eq!(pram.get(c, 0), 901);
        assert_eq!(pram.get(c, 1), 99);
        assert_eq!(pram.get(c, 2), 0xFF);
    }

    #[test]
    fn stats_account_time_work_and_space() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let xs = pram.alloc(1000);
        pram.step(1000, |p, ctx| {
            ctx.write(xs, p as usize, p);
        });
        pram.step_charged(10, 3, |p, ctx| {
            let _ = ctx.read(xs, p as usize);
        });
        let s = pram.stats();
        assert_eq!(s.steps, 4);
        assert_eq!(s.step_calls, 2);
        assert_eq!(s.work, 1000 + 30);
        assert_eq!(s.max_procs, 1000);
        assert_eq!(s.writes, 1000);
        assert_eq!(s.reads, 10);
        assert_eq!(s.peak_words, 1024); // size-class rounding
        pram.free(xs);
        assert_eq!(pram.stats().live_words, 0);
        assert_eq!(pram.stats().peak_words, 1024);
    }

    #[test]
    fn fill_step_is_charged() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let xs = pram.alloc_filled(8, 0);
        pram.fill_step(xs, 42);
        assert_eq!(pram.read_vec(xs), vec![42; 8]);
        assert_eq!(pram.stats().steps, 1);
    }

    #[test]
    fn stamped_fill_is_a_logical_refill() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(2));
        let mut s = pram.alloc_stamped(8);
        // Fresh allocation: everything stale.
        for i in 0..8 {
            assert_eq!(pram.get_stamped(s, i, NULL), NULL);
        }
        pram.step(4, move |p, ctx| {
            ctx.write_stamped(s, p as usize, 100 + p);
        });
        assert_eq!(pram.get_stamped(s, 2, NULL), 102);
        assert_eq!(pram.get_stamped(s, 7, NULL), NULL);
        // Reads through a step context honour staleness too.
        let probe = pram.alloc(8);
        pram.step(8, move |p, ctx| {
            let v = ctx.read_stamped(s, p as usize, 7777);
            ctx.write(probe, p as usize, v);
        });
        assert_eq!(pram.get(probe, 1), 101);
        assert_eq!(pram.get(probe, 5), 7777);
        // O(1) refill: old values become invisible without any pass.
        pram.host_stamped_fill(&mut s);
        for i in 0..8 {
            assert_eq!(pram.get_stamped(s, i, NULL), NULL);
        }
        // Rewrite after the refill is visible again.
        pram.step(1, move |_, ctx| ctx.write_stamped(s, 3, 9));
        assert_eq!(pram.get_stamped(s, 3, NULL), 9);
        pram.free_stamped(s);
        assert_eq!(pram.stats().live_words, 8);
    }

    #[test]
    fn large_parallel_step_matches_sequential_semantics() {
        // Same program under the parallel path (big nprocs) and a
        // semantically equivalent host-side loop.
        let n = 100_000usize;
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(11));
        let xs = pram.alloc(n);
        let ys = pram.alloc(n);
        pram.step(n, |p, ctx| {
            ctx.write(xs, p as usize, p * 2);
        });
        pram.step(n, |p, ctx| {
            let v = ctx.read(xs, p as usize);
            ctx.write(ys, (p as usize + 1) % n, v + 1);
        });
        let ys = pram.read_vec(ys);
        for p in 0..n {
            assert_eq!(ys[(p + 1) % n], (p as u64) * 2 + 1);
        }
    }

    #[test]
    fn step_over_runs_one_proc_per_item_and_charges_item_count() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
        let xs = pram.alloc_filled(16, 0);
        // A compacted index set touching a sparse subset of cells.
        let idx: Vec<u32> = vec![1, 5, 11];
        pram.step_over(&idx, |p, &i, ctx| {
            ctx.write(xs, i as usize, 100 + p);
        });
        let v = pram.read_vec(xs);
        assert_eq!(v[1], 100);
        assert_eq!(v[5], 101);
        assert_eq!(v[11], 102);
        assert_eq!(v[0], 0);
        let s = pram.stats();
        // Charged at the live-item count, not the full array length.
        assert_eq!(s.steps, 1);
        assert_eq!(s.work, 3);
        assert_eq!(s.max_procs, 3);
    }

    #[test]
    fn step_over_empty_slice_is_free() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
        let empty: Vec<u32> = Vec::new();
        pram.step_over(&empty, |_, &_i, _ctx| unreachable!());
        assert_eq!(pram.stats().work, 0);
    }

    #[test]
    fn step_over_matches_step_semantics_on_large_slices() {
        // Above the parallel threshold the chunked pool path must produce
        // the same committed image as an equivalent plain step.
        let n = 50_000usize;
        let run = |over: bool| {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(9));
            let xs = pram.alloc(n);
            if over {
                let idx: Vec<u32> = (0..n as u32).collect();
                pram.step_over(&idx, |p, &i, ctx| {
                    ctx.write(xs, i as usize, p * 3);
                });
            } else {
                pram.step(n, |p, ctx| {
                    ctx.write(xs, p as usize, p * 3);
                });
            }
            pram.read_vec(xs)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn max_ops_audit_reports_heaviest_processor() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let xs = pram.alloc(64);
        pram.step(8, |p, ctx| {
            for i in 0..=p as usize {
                let _ = ctx.read(xs, i);
            }
        });
        assert_eq!(pram.stats().max_ops_per_proc, 8);
    }

    #[test]
    fn crew_checker_counts_conflicts() {
        let mut pram = Pram::new(WritePolicy::CrewChecked(5));
        let xs = pram.alloc(4);
        // Exclusive writes: no conflicts.
        pram.step(4, |p, ctx| ctx.write(xs, p as usize, p));
        assert_eq!(pram.stats().write_conflicts, 0);
        // 10 writers to one cell: 9 conflicting writes.
        pram.step(10, |_, ctx| ctx.write(xs, 0, 7));
        assert_eq!(pram.stats().write_conflicts, 9);
        // Output is still a legal ARBITRARY result.
        assert_eq!(pram.get(xs, 0), 7);
    }

    #[test]
    fn crew_checked_matches_seeded_arbitrary_outcome() {
        let run = |policy| {
            let mut pram = Pram::new(policy);
            let xs = pram.alloc_filled(8, 0);
            pram.step(1000, |p, ctx| ctx.write(xs, (p % 8) as usize, p));
            pram.read_vec(xs)
        };
        assert_eq!(
            run(WritePolicy::ArbitrarySeeded(42)),
            run(WritePolicy::CrewChecked(42))
        );
    }

    #[test]
    fn arena_reuse_after_free_bounds_peak() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        for _ in 0..100 {
            let h = pram.alloc(1 << 10);
            pram.free(h);
        }
        assert_eq!(pram.stats().peak_words, 1 << 10);
    }

    /// A mixed program touching every representability class (small
    /// values, NULL, >32-bit values, combining steps, stamped blocks),
    /// used by the width-equivalence tests below.
    fn mixed_program(pram: &mut Pram) -> Vec<u64> {
        let n = 4096usize;
        let xs = pram.alloc_filled(n, NULL);
        let ys = pram.alloc(n);
        pram.step(4 * n, |p, ctx| {
            let i = (p as usize * 7) % n;
            let v = if p.is_multiple_of(97) {
                (1u64 << 40) + p // escapes narrow cells
            } else {
                p
            };
            ctx.write(xs, i, v);
        });
        pram.step(n, |p, ctx| {
            let i = p as usize;
            let v = ctx.read(xs, i);
            ctx.write(ys, i, if v == NULL { 0 } else { v.rotate_left(9) });
        });
        pram.step_combine(2 * n, CombineOp::Sum, |p, ctx| {
            ctx.write(ys, (p as usize) % 17, 1);
        });
        let mut s = pram.alloc_stamped(n);
        pram.step(n / 2, move |p, ctx| {
            ctx.write_stamped(s, p as usize * 2, p + (1 << 33));
        });
        let mut out = pram.read_vec(xs);
        out.extend(pram.read_vec(ys));
        for i in 0..n {
            out.push(pram.get_stamped(s, i, NULL));
        }
        pram.host_stamped_fill(&mut s);
        out.push(pram.get_stamped(s, 0, 7));
        pram.free_stamped(s);
        pram.free(xs);
        pram.free(ys);
        out
    }

    #[test]
    fn narrow_cells_match_full_width_bit_for_bit() {
        for policy in [
            WritePolicy::ArbitrarySeeded(42),
            WritePolicy::Racy,
            WritePolicy::CrewChecked(11),
        ] {
            let mut wide = Pram::with_width(policy, CellWidth::W64);
            let mut narrow = Pram::with_width(policy, CellWidth::W32);
            // Racy is only deterministic single-threaded, but these step
            // sizes stay under the parallel threshold either way.
            assert_eq!(
                mixed_program(&mut wide),
                mixed_program(&mut narrow),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn narrow_cells_match_full_width_for_priority_policies() {
        for policy in [WritePolicy::PriorityMin, WritePolicy::PriorityMax] {
            let mut wide = Pram::with_width(policy, CellWidth::W64);
            let mut narrow = Pram::with_width(policy, CellWidth::W32);
            assert_eq!(
                mixed_program(&mut wide),
                mixed_program(&mut narrow),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn reset_for_run_replays_bit_identically_without_regrowth() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(77));
        let first = mixed_program(&mut pram);
        let stats_first = pram.stats();
        let backing = pram.arena_backing_bytes();
        pram.reset_for_run();
        assert_eq!(pram.stats().live_words, 0);
        assert_eq!(pram.stats().peak_words, 0);
        // Backing capacity survives the reset — that is the point.
        assert_eq!(pram.arena_backing_bytes(), backing);
        let second = mixed_program(&mut pram);
        assert_eq!(first, second);
        let stats_second = pram.stats();
        assert_eq!(stats_first, stats_second);
        // And no new backing was mapped on the replay.
        assert_eq!(pram.arena_backing_bytes(), backing);
    }

    #[test]
    fn footprint_is_at_most_12_bytes_per_word_for_default_policy() {
        // The PR-10 acceptance bound: cells (8) + stamp (4), and no prio
        // sidecar, for non-priority policies at full width.
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        let words = 1usize << 18;
        let h = pram.alloc(words);
        let per_word = pram.arena_backing_bytes() as f64 / pram.stats().live_words as f64;
        assert!(per_word <= 12.0, "bytes/word = {per_word}");
        pram.free(h);

        // Narrow cells: 4 + 4.
        let mut pram = Pram::with_width(WritePolicy::ArbitrarySeeded(1), CellWidth::W32);
        let _ = pram.alloc(words);
        let per_word = pram.arena_backing_bytes() as f64 / pram.stats().live_words as f64;
        assert!(per_word <= 8.0, "narrow bytes/word = {per_word}");

        // Priority policies pay for the sidecar (8 + 4 + 8).
        let mut pram = Pram::new(WritePolicy::PriorityMax);
        let _ = pram.alloc(words);
        let per_word = pram.arena_backing_bytes() as f64 / pram.stats().live_words as f64;
        assert!(
            per_word > 12.0 && per_word <= 20.0,
            "prio bytes/word = {per_word}"
        );
    }

    #[test]
    fn try_alloc_surfaces_exhaustion() {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(1));
        assert!(pram.try_alloc(64).is_ok());
        // The real 2^32 cap cannot be hit in a unit test without 32 GiB;
        // the boundary itself is pinned in `mem::tests` with a narrowed
        // cap. Here: the error type is part of the public API.
        let r: Result<Handle, PramError> = pram.try_alloc(1 << 20);
        assert!(r.is_ok());
    }

    #[test]
    fn run_reset_event_and_gauges_reach_the_registry() {
        let reg = Arc::new(logdiam_obs::Registry::new());
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(5));
        pram.set_obs_registry(reg.clone());
        let h = pram.alloc(100);
        pram.fill_step(h, 3);
        pram.reset_for_run();
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["sim_live_words"], 0);
        assert_eq!(snap.gauges["sim_peak_words"], 0);
        let events = reg.drain_events();
        let reset = events
            .iter()
            .find(|e| e.name == "run_reset")
            .expect("run_reset event");
        assert_eq!(
            reset.field("peak_words"),
            Some(&logdiam_obs::Value::U64(112))
        );
        assert_eq!(
            reset.field("live_words"),
            Some(&logdiam_obs::Value::U64(112))
        );
    }
}
