//! Shared-memory arena with size-class reuse and space accounting.
//!
//! The paper's algorithms repeatedly allocate *blocks* (of size `b_ℓ`,
//! always rounded here to a power of two) and the analysis bounds the total
//! space by `O(m)`. To make that measurable, allocation goes through an
//! arena that (a) rounds requests to power-of-two size classes, (b) reuses
//! freed blocks, and (c) tracks the live-word count and its high-water mark.

/// The canonical "empty cell" sentinel.
///
/// Vertex ids, parent pointers and table cells use `NULL` for "no value".
/// It is `u64::MAX`, which no vertex id or packed value ever equals.
pub const NULL: u64 = u64::MAX;

/// A handle to a contiguous block of shared-memory words.
///
/// Handles are plain `(base, len)` pairs; they are `Copy` and can be stored
/// in host-side structures freely. All accesses are bounds-checked against
/// the handle's length, so an algorithm cannot silently read a neighbouring
/// allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Handle {
    pub(crate) base: u32,
    pub(crate) len: u32,
}

impl Handle {
    /// Number of words in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-block `[off, off+len)` of this block.
    ///
    /// Panics if the range does not fit. Used to carve a vertex's block into
    /// its `√b` tables of size `√b` (paper §3.1 "Level and budget").
    #[inline]
    pub fn sub(&self, off: usize, len: usize) -> Handle {
        assert!(
            off + len <= self.len as usize,
            "sub-block [{off}, {}) out of bounds for block of len {}",
            off + len,
            self.len
        );
        Handle {
            base: self.base + off as u32,
            len: len as u32,
        }
    }

    /// The absolute word address of cell `i` (bounds-checked).
    #[inline]
    pub(crate) fn addr(&self, i: usize) -> u32 {
        assert!(
            i < self.len as usize,
            "index {i} out of bounds for block of len {}",
            self.len
        );
        self.base + i as u32
    }
}

/// Size-class arena backing the shared memory.
pub(crate) struct Arena {
    /// The memory words themselves.
    pub(crate) words: Vec<u64>,
    /// Per-word stamp: the id of the last step that wrote the cell. Used by
    /// the commit phase to detect "first write of this step" without
    /// clearing any per-step structure.
    pub(crate) stamp: Vec<u32>,
    /// Per-word priority of the winning write in the current step
    /// (only meaningful where `stamp == current step`).
    pub(crate) prio: Vec<u64>,
    /// Free lists indexed by size class (block length = `1 << class`).
    free: Vec<Vec<u32>>,
    /// Currently live words (counting size-class rounding).
    live: usize,
    /// High-water mark of `live`.
    peak: usize,
}

const MAX_CLASS: usize = 40;

#[inline]
fn class_of(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

impl Arena {
    pub(crate) fn new() -> Self {
        Arena {
            words: Vec::new(),
            stamp: Vec::new(),
            prio: Vec::new(),
            free: (0..=MAX_CLASS).map(|_| Vec::new()).collect(),
            live: 0,
            peak: 0,
        }
    }

    /// Allocate a block of at least `len` words, filled with `fill`.
    pub(crate) fn alloc(&mut self, len: usize, fill: u64) -> Handle {
        assert!(len > 0, "zero-length allocation");
        let class = class_of(len);
        assert!(class <= MAX_CLASS, "allocation of {len} words too large");
        let size = 1usize << class;
        let base = if let Some(base) = self.free[class].pop() {
            self.words[base as usize..base as usize + size].fill(fill);
            base
        } else {
            let base = self.words.len();
            assert!(base + size <= u32::MAX as usize, "arena exceeds 2^32 words");
            self.words.resize(base + size, fill);
            self.stamp.resize(base + size, 0);
            self.prio.resize(base + size, 0);
            base as u32
        };
        self.live += size;
        self.peak = self.peak.max(self.live);
        Handle {
            base,
            len: len as u32,
        }
    }

    /// Return a block to its size-class free list.
    pub(crate) fn dealloc(&mut self, h: Handle) {
        if h.len == 0 {
            return;
        }
        let class = class_of(h.len as usize);
        self.free[class].push(h.base);
        self.live -= 1usize << class;
    }

    #[inline]
    pub(crate) fn live_words(&self) -> usize {
        self.live
    }

    #[inline]
    pub(crate) fn peak_words(&self) -> usize {
        self.peak
    }

    #[cfg(test)]
    pub(crate) fn capacity_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_size_class_and_reuses() {
        let mut a = Arena::new();
        let h1 = a.alloc(5, 0); // class 3 => 8 words
        assert_eq!(a.live_words(), 8);
        let h2 = a.alloc(8, 0);
        assert_eq!(a.live_words(), 16);
        a.dealloc(h1);
        assert_eq!(a.live_words(), 8);
        let h3 = a.alloc(6, 7); // should reuse h1's slot
        assert_eq!(h3.base, h1.base);
        assert_eq!(a.live_words(), 16);
        assert_eq!(a.peak_words(), 16);
        // Reused block is re-filled.
        for i in 0..6 {
            assert_eq!(a.words[h3.base as usize + i], 7);
        }
        let _ = h2;
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut a = Arena::new();
        let hs: Vec<_> = (0..10).map(|_| a.alloc(16, 0)).collect();
        assert_eq!(a.peak_words(), 160);
        for h in hs {
            a.dealloc(h);
        }
        assert_eq!(a.live_words(), 0);
        assert_eq!(a.peak_words(), 160);
        let _ = a.alloc(16, 0);
        // No growth: reused freed block.
        assert_eq!(a.capacity_words(), 160);
    }

    #[test]
    fn sub_blocks_are_bounds_checked() {
        let mut a = Arena::new();
        let h = a.alloc(16, 0);
        let t = h.sub(4, 4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.addr(0), h.base + 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sub_block_overflow_panics() {
        let mut a = Arena::new();
        let h = a.alloc(16, 0);
        let _ = h.sub(10, 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn handle_index_out_of_bounds_panics() {
        let mut a = Arena::new();
        let h = a.alloc(4, 0);
        let _ = h.addr(4);
    }
}
