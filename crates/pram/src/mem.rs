//! Shared-memory arena with size-class reuse, space accounting, and a
//! selectable cell width.
//!
//! The paper's algorithms repeatedly allocate *blocks* (of size `b_ℓ`)
//! and the analysis bounds the total space by `O(m)`. To make that
//! measurable, allocation goes through an arena that (a) rounds requests
//! to size classes, (b) reuses freed blocks, and (c) tracks the live-word
//! count and its high-water mark.
//!
//! # Memory image
//!
//! Per simulated word the arena stores:
//!
//! * the cell itself — 8 bytes under [`CellWidth::W64`], 4 bytes under
//!   [`CellWidth::W32`] (values that do not fit a narrow cell escape to a
//!   striped side table, see below);
//! * a 4-byte *stamp* (id of the last step that wrote the cell), which is
//!   how the commit phase detects "first write of this step" without
//!   clearing any per-step structure;
//! * and — **only when the write policy resolves by processor id**
//!   (`PriorityMin`/`PriorityMax`) — an 8-byte priority sidecar. The
//!   default `ArbitrarySeeded`/`CrewChecked` policies recompute the
//!   winning priority from the *stored value* at commit time (the
//!   priority is a hash of `(seed, addr, value)`), so they never pay for
//!   this array.
//!
//! That makes the footprint 12 bytes/word for the default policy at full
//! width, and 8 bytes/word narrow — down from the historical 20.
//!
//! # Narrow cells
//!
//! Under [`CellWidth::W32`] a cell holds `u32`; two encodings are
//! reserved: `0xFFFF_FFFF` represents [`NULL`] (`u64::MAX`), and
//! `0xFFFF_FFFE` marks an *escaped* cell whose actual 64-bit value lives
//! in a mutex-striped side table keyed by address. Any `u64` value is
//! therefore representable at any width — narrow mode is purely a
//! memory/performance choice, never a semantic one — but drivers should
//! pick `W32` only when almost all stored values fit 32 bits (vertex ids,
//! parents, offsets and generation stamps all do for `n < 2^31`).
//!
//! # Size classes
//!
//! Block sizes of ≤ 16 words round to powers of two; larger requests
//! round up to a quarter-power-of-two granule (`{4,5,6,7} · 2^k`), so the
//! worst-case rounding waste is 25% instead of the ~100% a pure
//! power-of-two ladder can hit. This matters at the top of the address
//! space: the arena is capped at 2^32 words (`Handle` addresses are
//! `u32`, see [`crate::PramError::ArenaExhausted`]), and `n = 1e8` runs
//! only fit under the finer rounding.

use std::collections::HashMap;
use std::sync::Mutex;

/// The canonical "empty cell" sentinel.
///
/// Vertex ids, parent pointers and table cells use `NULL` for "no value".
/// It is `u64::MAX`, which no vertex id or packed value ever equals.
pub const NULL: u64 = u64::MAX;

/// Cell representation of a machine's shared memory (chosen at
/// [`crate::Pram::with_width`]; the plain constructor defaults to `W64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellWidth {
    /// 8-byte cells: every value is stored directly.
    W64,
    /// 4-byte cells with an escape table for values that need 64 bits
    /// (see the module docs). Right when the driver's working values —
    /// vertex ids, parents, offsets — fit `u32`.
    W32,
}

impl CellWidth {
    /// The natural width for a driver whose ordinary (non-`NULL`) values
    /// are bounded by `max_value`: `W32` when they all fit a narrow cell
    /// directly, else `W64`. Purely advisory — either width is always
    /// correct.
    pub fn for_max_value(max_value: u64) -> CellWidth {
        if max_value < NARROW_ESC as u64 {
            CellWidth::W32
        } else {
            CellWidth::W64
        }
    }

    /// Bytes of backing store per simulated word for the cell itself
    /// (excludes the stamp and any priority sidecar).
    pub fn cell_bytes(self) -> usize {
        match self {
            CellWidth::W64 => 8,
            CellWidth::W32 => 4,
        }
    }
}

/// Narrow encoding of [`NULL`].
pub(crate) const NARROW_NULL: u32 = u32::MAX;
/// Narrow marker for "value lives in the wide side table".
pub(crate) const NARROW_ESC: u32 = u32::MAX - 1;

/// Encode a value for a narrow cell: `Some(cell)` when it is directly
/// representable, `None` when it must escape to the wide table.
#[inline]
pub(crate) fn narrow_encode(v: u64) -> Option<u32> {
    if v == NULL {
        Some(NARROW_NULL)
    } else if v < NARROW_ESC as u64 {
        Some(v as u32)
    } else {
        None
    }
}

/// Side table for escaped narrow-cell values, striped by address so the
/// sharded commit (which partitions addresses) almost never contends.
///
/// Entries are only meaningful while the owning cell still carries the
/// [`NARROW_ESC`] marker; a cell overwritten with a directly-representable
/// value simply orphans its entry (bounded by the number of escaped
/// writes ever performed, which for the intended drivers is ~0).
pub(crate) struct WideTable {
    stripes: Box<[Mutex<HashMap<u32, u64>>]>,
}

const WIDE_STRIPES: usize = 64;

impl WideTable {
    pub(crate) fn new() -> Self {
        WideTable {
            stripes: (0..WIDE_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    #[inline]
    fn stripe(&self, addr: u32) -> &Mutex<HashMap<u32, u64>> {
        &self.stripes[(addr as usize) & (WIDE_STRIPES - 1)]
    }

    /// The 64-bit value behind an escaped cell. Panics if the entry is
    /// missing — that would mean a cell carries the escape marker without
    /// a matching store, i.e. an arena bug.
    #[inline]
    pub(crate) fn get(&self, addr: u32) -> u64 {
        *self
            .stripe(addr)
            .lock()
            .unwrap()
            .get(&addr)
            .expect("escaped cell has no wide-table entry")
    }

    #[inline]
    pub(crate) fn set(&self, addr: u32, v: u64) {
        self.stripe(addr).lock().unwrap().insert(addr, v);
    }

    fn clear(&self) {
        for s in self.stripes.iter() {
            s.lock().unwrap().clear();
        }
    }

    fn entries(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

/// Read-only view of the cell store, shared with step contexts while a
/// step runs (reads see the frozen pre-step image).
#[derive(Clone, Copy)]
pub(crate) enum CellsRef<'a> {
    W64(&'a [u64]),
    W32 {
        cells: &'a [u32],
        wide: &'a WideTable,
    },
}

impl CellsRef<'_> {
    /// Decode the word at absolute address `a`.
    #[inline]
    pub(crate) fn get(self, a: usize) -> u64 {
        match self {
            CellsRef::W64(w) => w[a],
            CellsRef::W32 { cells, wide } => match cells[a] {
                NARROW_NULL => NULL,
                NARROW_ESC => wide.get(a as u32),
                x => x as u64,
            },
        }
    }
}

/// Host-side read view of one block, valid at either cell width.
///
/// The width-agnostic replacement for borrowing a raw `&[u64]`: every
/// controller-side scan in the drivers goes through `get`/`iter`, which
/// decode narrow cells transparently. Obtained from [`crate::Pram::view`].
#[derive(Clone, Copy)]
pub struct MemView<'a> {
    cells: CellsRef<'a>,
    base: usize,
    len: usize,
}

impl<'a> MemView<'a> {
    pub(crate) fn new(cells: CellsRef<'a>, base: usize, len: usize) -> Self {
        MemView { cells, base, len }
    }

    /// Number of words in the viewed block.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the viewed block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value of cell `i` (bounds-checked against the block).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        assert!(
            i < self.len,
            "index {i} out of bounds for view of len {}",
            self.len
        );
        self.cells.get(self.base + i)
    }

    /// Iterate the block's values in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.cells.get(self.base + i))
    }

    /// Copy the block out as a `Vec<u64>`.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }
}

/// A handle to a contiguous block of shared-memory words.
///
/// Handles are plain `(base, len)` pairs; they are `Copy` and can be stored
/// in host-side structures freely. All accesses are bounds-checked against
/// the handle's length, so an algorithm cannot silently read a neighbouring
/// allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Handle {
    pub(crate) base: u32,
    pub(crate) len: u32,
}

impl Handle {
    /// Number of words in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-block `[off, off+len)` of this block.
    ///
    /// Panics if the range does not fit. Used to carve a vertex's block into
    /// its `√b` tables of size `√b` (paper §3.1 "Level and budget").
    #[inline]
    pub fn sub(&self, off: usize, len: usize) -> Handle {
        assert!(
            off + len <= self.len as usize,
            "sub-block [{off}, {}) out of bounds for block of len {}",
            off + len,
            self.len
        );
        Handle {
            base: self.base + off as u32,
            len: len as u32,
        }
    }

    /// The absolute word address of cell `i` (bounds-checked).
    #[inline]
    pub(crate) fn addr(&self, i: usize) -> u32 {
        assert!(
            i < self.len as usize,
            "index {i} out of bounds for block of len {}",
            self.len
        );
        self.base + i as u32
    }
}

/// Mutable raw pointer to the cell store, for the sharded parallel
/// commit (addresses are partitioned across threads by the caller).
#[derive(Clone, Copy)]
pub(crate) enum CellsPtr {
    W64(*mut u64),
    W32(*mut u32),
}

/// Backing store of the cells at the machine's width.
pub(crate) enum Cells {
    W64(Vec<u64>),
    W32(Vec<u32>),
}

impl Cells {
    fn len(&self) -> usize {
        match self {
            Cells::W64(w) => w.len(),
            Cells::W32(c) => c.len(),
        }
    }

    fn capacity_bytes(&self) -> usize {
        match self {
            Cells::W64(w) => w.capacity() * 8,
            Cells::W32(c) => c.capacity() * 4,
        }
    }
}

/// Hard cap of the word address space: [`Handle`] bases are `u32`.
pub(crate) const MAX_WORDS: usize = u32::MAX as usize;

/// Round a request up to its size class (see the module docs): powers of
/// two through 16 words, quarter-power granules above.
#[inline]
fn block_size(len: usize) -> usize {
    if len <= 16 {
        len.next_power_of_two()
    } else {
        let b = usize::BITS as usize - 1 - len.leading_zeros() as usize;
        let unit = 1usize << (b - 2);
        len.div_ceil(unit) * unit
    }
}

/// Size-class arena backing the shared memory.
pub(crate) struct Arena {
    /// The memory words themselves, at the machine's cell width.
    cells: Cells,
    /// Per-word stamp: the id of the last step that wrote the cell.
    pub(crate) stamp: Vec<u32>,
    /// Per-word priority of the winning write in the current step — only
    /// allocated for processor-priority policies (see the module docs).
    prio: Option<Vec<u64>>,
    /// Escaped narrow-cell values (unused, and empty, at `W64`).
    pub(crate) wide: WideTable,
    /// Free lists keyed by exact block size in words.
    free: HashMap<usize, Vec<u32>>,
    /// Currently live words (counting size-class rounding).
    live: usize,
    /// High-water mark of `live`.
    peak: usize,
    /// Address-space cap in words (`MAX_WORDS` outside capacity tests).
    cap_words: usize,
}

impl Arena {
    pub(crate) fn new(width: CellWidth, track_prio: bool) -> Self {
        Arena {
            cells: match width {
                CellWidth::W64 => Cells::W64(Vec::new()),
                CellWidth::W32 => Cells::W32(Vec::new()),
            },
            stamp: Vec::new(),
            prio: track_prio.then(Vec::new),
            wide: WideTable::new(),
            free: HashMap::new(),
            live: 0,
            peak: 0,
            cap_words: MAX_WORDS,
        }
    }

    pub(crate) fn width(&self) -> CellWidth {
        match self.cells {
            Cells::W64(_) => CellWidth::W64,
            Cells::W32(_) => CellWidth::W32,
        }
    }

    /// Narrow the address-space cap (capacity-boundary tests only).
    #[cfg(test)]
    pub(crate) fn set_cap_words(&mut self, cap: usize) {
        self.cap_words = cap;
    }

    /// Allocate a block of at least `len` words, filled with `fill`;
    /// panics (naming the 2^32-word limit) on exhaustion.
    pub(crate) fn alloc(&mut self, len: usize, fill: u64) -> Handle {
        match self.try_alloc(len, fill) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Allocate a block of at least `len` words, filled with `fill`.
    pub(crate) fn try_alloc(&mut self, len: usize, fill: u64) -> Result<Handle, crate::PramError> {
        assert!(len > 0, "zero-length allocation");
        let size = block_size(len);
        // Reuse-before-grow: exact-class pop, then best-fit split of a
        // larger free block, and only then new backing. Growing first
        // looks cheaper per call but strands every freed block whose
        // class never recurs; on a path/1e8 Theorem-3 run that pushes
        // backing to the 2^32-word cap with ~2e9 words sitting unusable
        // in the free lists (interleaved with live blocks too finely for
        // even coalescing to recover a large span). Reusing first keeps
        // backing tracking *live peak* instead, which is what the
        // words/vertex budget is measured against.
        let reuse = self
            .free
            .get_mut(&size)
            .and_then(Vec::pop)
            .or_else(|| self.split_reuse(size));
        let base = if let Some(base) = reuse {
            self.fill_words(base as usize, size, fill);
            base
        } else {
            let grown = self.cells.len();
            if grown + size <= self.cap_words {
                self.grow(size, fill);
                grown as u32
            } else if let Some(base) = {
                self.coalesce_free();
                self.free
                    .get_mut(&size)
                    .and_then(Vec::pop)
                    .or_else(|| self.split_reuse(size))
            } {
                self.fill_words(base as usize, size, fill);
                base
            } else {
                return Err(crate::PramError::ArenaExhausted {
                    requested: size,
                    live: self.live,
                    limit: self.cap_words,
                });
            }
        };
        self.live += size;
        self.peak = self.peak.max(self.live);
        Ok(Handle {
            base,
            len: len as u32,
        })
    }

    /// Largest size class ≤ `r` (see [`block_size`]): powers of two below
    /// 16, quarter-power granules above. Used to decompose a split
    /// block's remainder into exact classes, so no words ever leak out
    /// of the free lists.
    fn largest_class_at_most(r: usize) -> usize {
        debug_assert!(r > 0);
        let b = usize::BITS as usize - 1 - r.leading_zeros() as usize;
        if r < 16 {
            1 << b
        } else {
            (r >> (b - 2)) << (b - 2)
        }
    }

    /// Best-fit split: serve `size` by splitting the smallest free block
    /// large enough to hold it, pushing the remainder back onto the free
    /// lists as exact size classes (no words ever leak — remainder
    /// pieces stay available, including to later splits). Tried on
    /// every allocation whose exact class misses, *before* growing the
    /// backing: growth-first strands every freed block whose class never
    /// recurs, and a path/1e8 Theorem-3 run dies that way at ≈ 2.3e9
    /// live words with ≈ 2e9 stranded. Deterministic across processes
    /// and thread counts: the donor is chosen by block size, never by
    /// map iteration order.
    fn split_reuse(&mut self, size: usize) -> Option<u32> {
        let donor = self
            .free
            .iter()
            .filter(|(sz, blocks)| **sz > size && !blocks.is_empty())
            .map(|(sz, _)| *sz)
            .min()?;
        let base = self.free.get_mut(&donor)?.pop()?;
        let mut rem_base = base as usize + size;
        let mut rem = donor - size;
        while rem > 0 {
            let piece = Self::largest_class_at_most(rem);
            self.free.entry(piece).or_default().push(rem_base as u32);
            rem_base += piece;
            rem -= piece;
        }
        Some(base)
    }

    /// Defragment the free lists: merge address-adjacent free blocks into
    /// maximal spans and re-bucket each span as exact size classes.
    /// Per-round table clusters are allocated at consecutive addresses
    /// and freed together, so when a run strands its free words in many
    /// *small* classes (no single block can serve a large request even
    /// after [`Self::split_reuse`]), merging rebuilds the large
    /// contiguous spans those rounds occupied. Only called when the
    /// backing cannot grow; the cost is `O(F log F)` in the number of
    /// free blocks, and each pass restocks the split-reuse donor pool so
    /// passes stay rare. Deterministic: spans are sorted by base address
    /// before merging, never visited in map order.
    fn coalesce_free(&mut self) {
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for (&sz, blocks) in &self.free {
            for &b in blocks {
                spans.push((b as usize, sz));
            }
        }
        spans.sort_unstable();
        for list in self.free.values_mut() {
            list.clear();
        }
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(spans.len());
        for (b, s) in spans {
            match merged.last_mut() {
                Some((mb, ms)) if *mb + *ms == b => *ms += s,
                _ => merged.push((b, s)),
            }
        }
        for (mut b, mut s) in merged {
            while s > 0 {
                let piece = Self::largest_class_at_most(s);
                self.free.entry(piece).or_default().push(b as u32);
                b += piece;
                s -= piece;
            }
        }
    }

    fn grow(&mut self, size: usize, fill: u64) {
        if size >= (1 << 18) && std::env::var_os("LOGDIAM_ARENA_TRACE").is_some() {
            let backing = self.cells.len();
            let largest = self
                .free
                .iter()
                .filter(|(_, b)| !b.is_empty())
                .map(|(s, _)| *s)
                .max()
                .unwrap_or(0);
            eprintln!(
                "arena-trace grow size={size} backing={backing} live={} stranded={} largest_free={largest}",
                self.live,
                backing - self.live,
            );
        }
        let new_len = self.cells.len() + size;
        match &mut self.cells {
            Cells::W64(w) => w.resize(new_len, fill),
            Cells::W32(c) => match narrow_encode(fill) {
                Some(x) => c.resize(new_len, x),
                None => {
                    let start = c.len();
                    c.resize(new_len, NARROW_ESC);
                    for a in start..new_len {
                        self.wide.set(a as u32, fill);
                    }
                }
            },
        }
        self.stamp.resize(new_len, 0);
        if let Some(prio) = &mut self.prio {
            prio.resize(new_len, 0);
        }
    }

    /// Fill `len` words starting at absolute address `start` with `v`.
    pub(crate) fn fill_words(&mut self, start: usize, len: usize, v: u64) {
        match &mut self.cells {
            Cells::W64(w) => w[start..start + len].fill(v),
            Cells::W32(c) => match narrow_encode(v) {
                Some(x) => c[start..start + len].fill(x),
                None => {
                    c[start..start + len].fill(NARROW_ESC);
                    for a in start..start + len {
                        self.wide.set(a as u32, v);
                    }
                }
            },
        }
    }

    /// Decode the word at absolute address `a`.
    #[inline]
    pub(crate) fn load(&self, a: usize) -> u64 {
        self.cells_ref().get(a)
    }

    /// Store `v` at absolute address `a`.
    #[inline]
    pub(crate) fn store(&mut self, a: usize, v: u64) {
        match &mut self.cells {
            Cells::W64(w) => w[a] = v,
            Cells::W32(c) => match narrow_encode(v) {
                Some(x) => c[a] = x,
                None => {
                    self.wide.set(a as u32, v);
                    c[a] = NARROW_ESC;
                }
            },
        }
    }

    /// Copy `len` words from absolute address `s` to `d` (ranges may
    /// overlap, like `copy_within`).
    pub(crate) fn copy_words(&mut self, s: usize, d: usize, len: usize) {
        match &mut self.cells {
            Cells::W64(w) => w.copy_within(s..s + len, d),
            Cells::W32(c) => {
                c.copy_within(s..s + len, d);
                // Escaped markers moved, but the wide table is keyed by
                // address: re-key the copied escapes. Source entries are
                // still present (the cells copy never touches the table).
                for i in 0..len {
                    if c[d + i] == NARROW_ESC {
                        let v = self.wide.get((s + i) as u32);
                        self.wide.set((d + i) as u32, v);
                    }
                }
            }
        }
    }

    /// Direct `&[u64]` access (W64 only — callers that must work at any
    /// width go through [`CellsRef`]/[`MemView`]).
    pub(crate) fn words_u64(&self, base: usize, len: usize) -> &[u64] {
        match &self.cells {
            Cells::W64(w) => &w[base..base + len],
            Cells::W32(_) => panic!(
                "Pram::slice requires CellWidth::W64; use Pram::view for width-agnostic access"
            ),
        }
    }

    pub(crate) fn cells_ref(&self) -> CellsRef<'_> {
        match &self.cells {
            Cells::W64(w) => CellsRef::W64(w),
            Cells::W32(c) => CellsRef::W32 {
                cells: c,
                wide: &self.wide,
            },
        }
    }

    /// Raw commit pointers (see `machine::ShardedMem`).
    pub(crate) fn commit_ptrs(&mut self) -> (CellsPtr, *mut u32, *mut u64) {
        let cells = match &mut self.cells {
            Cells::W64(w) => CellsPtr::W64(w.as_mut_ptr()),
            Cells::W32(c) => CellsPtr::W32(c.as_mut_ptr()),
        };
        let prio = self
            .prio
            .as_mut()
            .map(|p| p.as_mut_ptr())
            .unwrap_or(std::ptr::null_mut());
        (cells, self.stamp.as_mut_ptr(), prio)
    }

    /// Return a block to its size-class free list.
    pub(crate) fn dealloc(&mut self, h: Handle) {
        if h.len == 0 {
            return;
        }
        let size = block_size(h.len as usize);
        self.free.entry(size).or_default().push(h.base);
        self.live -= size;
    }

    /// Drop all allocations and free lists but keep the backing capacity
    /// (cell/stamp/prio buffers, free-list vectors), so the next run
    /// re-grows into already-mapped memory. After a reset the arena is
    /// observationally identical to a fresh one: the same allocation
    /// sequence yields the same addresses and the same initial contents.
    pub(crate) fn reset_keep_capacity(&mut self) {
        match &mut self.cells {
            Cells::W64(w) => w.clear(),
            Cells::W32(c) => c.clear(),
        }
        self.stamp.clear();
        if let Some(prio) = &mut self.prio {
            prio.clear();
        }
        self.wide.clear();
        for list in self.free.values_mut() {
            list.clear();
        }
        self.live = 0;
        self.peak = 0;
    }

    #[inline]
    pub(crate) fn live_words(&self) -> usize {
        self.live
    }

    #[inline]
    pub(crate) fn peak_words(&self) -> usize {
        self.peak
    }

    /// Words currently backed by the cell store (≥ live, the grow
    /// high-water of this run).
    #[cfg(test)]
    pub(crate) fn len_words(&self) -> usize {
        self.cells.len()
    }

    /// Actual heap bytes behind the arena's per-word arrays (cells +
    /// stamps + priority sidecar if present), by capacity. The footprint
    /// measure the bytes/word acceptance tests pin.
    pub(crate) fn backing_bytes(&self) -> usize {
        self.cells.capacity_bytes()
            + self.stamp.capacity() * 4
            + self.prio.as_ref().map_or(0, |p| p.capacity() * 8)
            + self.wide.entries() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena() -> Arena {
        Arena::new(CellWidth::W64, false)
    }

    #[test]
    fn alloc_rounds_to_size_class_and_reuses() {
        let mut a = arena();
        let h1 = a.alloc(5, 0); // class => 8 words
        assert_eq!(a.live_words(), 8);
        let h2 = a.alloc(8, 0);
        assert_eq!(a.live_words(), 16);
        a.dealloc(h1);
        assert_eq!(a.live_words(), 8);
        let h3 = a.alloc(6, 7); // should reuse h1's slot
        assert_eq!(h3.base, h1.base);
        assert_eq!(a.live_words(), 16);
        assert_eq!(a.peak_words(), 16);
        // Reused block is re-filled.
        for i in 0..6 {
            assert_eq!(a.load(h3.base as usize + i), 7);
        }
        let _ = h2;
    }

    #[test]
    fn quarter_classes_bound_rounding_waste() {
        // Above 16 words, rounding goes to {4,5,6,7}·2^k granules.
        assert_eq!(block_size(16), 16);
        assert_eq!(block_size(17), 20);
        assert_eq!(block_size(31), 32);
        assert_eq!(block_size(32), 32);
        assert_eq!(block_size(1000), 1024);
        assert_eq!(block_size(200_000_000), 201_326_592); // 6 · 2^25
        for len in [1usize, 2, 3, 9, 17, 33, 100, 5000, 1 << 20] {
            let s = block_size(len);
            assert!(s >= len);
            assert!(s < len * 2, "waste over 2x at {len}");
            if len > 16 {
                assert!(s as f64 <= len as f64 * 1.25, "waste over 25% at {len}");
            }
        }
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut a = arena();
        let hs: Vec<_> = (0..10).map(|_| a.alloc(16, 0)).collect();
        assert_eq!(a.peak_words(), 160);
        for h in hs {
            a.dealloc(h);
        }
        assert_eq!(a.live_words(), 0);
        assert_eq!(a.peak_words(), 160);
        let _ = a.alloc(16, 0);
        // No growth: reused freed block.
        assert_eq!(a.len_words(), 160);
    }

    #[test]
    fn capacity_boundary_is_a_typed_error() {
        let mut a = arena();
        a.set_cap_words(32);
        let h = a.alloc(16, 0); // fits
        let err = a.try_alloc(32, 0).unwrap_err();
        match err {
            crate::PramError::ArenaExhausted {
                requested, limit, ..
            } => {
                assert_eq!(requested, 32);
                assert_eq!(limit, 32);
            }
        }
        // Freed space is reusable at the boundary.
        a.dealloc(h);
        assert!(a.try_alloc(16, 0).is_ok());
    }

    #[test]
    fn split_reuse_serves_other_classes_at_the_address_cap() {
        let mut a = arena();
        a.set_cap_words(1 << 12);
        let big = a.alloc(3000, 0); // class 3072
        let keep = a.alloc(1000, 0); // class 1024 → backing at the 4096 cap
        a.dealloc(big);
        // Class 2048 is empty and growth would cross the cap: the freed
        // 3072-word block must be split instead of erroring out.
        let h = a.alloc(2000, 7);
        assert_eq!(h.base, 0);
        assert_eq!(a.load(h.base as usize), 7);
        // The 1024-word remainder landed back on its exact class list
        // and serves the next request without growth.
        let h2 = a.alloc(900, 9);
        assert_eq!(h2.base, 2048);
        assert_eq!(a.load(h2.base as usize), 9);
        // Genuine exhaustion (nothing big enough anywhere) still errors.
        assert!(a.try_alloc(2000, 0).is_err());
        let _ = keep;
    }

    #[test]
    fn coalescing_merges_adjacent_small_blocks_at_the_address_cap() {
        let mut a = arena();
        a.set_cap_words(1 << 12);
        // Four adjacent 1024-class blocks fill the backing to the cap.
        let hs: Vec<_> = (0..4).map(|i| a.alloc(1000, i)).collect();
        for h in hs {
            a.dealloc(h);
        }
        // Class 4096 is empty, growth would cross the cap, and no single
        // free block exceeds 4096 — split_reuse alone cannot serve this.
        // Coalescing must merge the four neighbours into one 4096 span.
        let h = a.alloc(4000, 7);
        assert_eq!(h.base, 0);
        assert_eq!(a.load(h.base as usize), 7);
        assert_eq!(a.load(h.base as usize + 3999), 7);
        // Everything is live again: any further request is exhaustion.
        assert!(a.try_alloc(1, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "2^32")]
    fn exhaustion_panic_names_the_limit() {
        let mut a = arena();
        a.set_cap_words(8);
        let _ = a.alloc(16, 0);
    }

    #[test]
    fn reset_keep_capacity_restores_fresh_addressing() {
        let mut a = arena();
        let h1 = a.alloc(100, 3);
        let h2 = a.alloc(8, 9);
        a.dealloc(h1);
        a.reset_keep_capacity();
        assert_eq!(a.live_words(), 0);
        assert_eq!(a.peak_words(), 0);
        // Same allocation sequence gives the same addresses and contents
        // as a brand-new arena.
        let h1b = a.alloc(100, 3);
        let h2b = a.alloc(8, 9);
        assert_eq!((h1b.base, h1b.len), (h1.base, h1.len));
        assert_eq!((h2b.base, h2b.len), (h2.base, h2.len));
        assert_eq!(a.load(h2b.base as usize), 9);
        assert_eq!(a.load(h1b.base as usize + 99), 3);
    }

    #[test]
    fn narrow_cells_roundtrip_all_value_ranges() {
        let mut a = Arena::new(CellWidth::W32, false);
        let h = a.alloc(8, NULL);
        for i in 0..8 {
            assert_eq!(a.load(h.base as usize + i), NULL);
        }
        let base = h.base as usize;
        a.store(base, 7);
        a.store(base + 1, NARROW_ESC as u64 - 1); // largest direct
        a.store(base + 2, NARROW_ESC as u64); // escapes
        a.store(base + 3, u32::MAX as u64); // escapes (collides with NULL marker otherwise)
        a.store(base + 4, 0xDEAD_BEEF_0000_0001); // escapes
        a.store(base + 5, NULL);
        assert_eq!(a.load(base), 7);
        assert_eq!(a.load(base + 1), NARROW_ESC as u64 - 1);
        assert_eq!(a.load(base + 2), NARROW_ESC as u64);
        assert_eq!(a.load(base + 3), u32::MAX as u64);
        assert_eq!(a.load(base + 4), 0xDEAD_BEEF_0000_0001);
        assert_eq!(a.load(base + 5), NULL);
        // Overwriting an escaped cell with a direct value sticks.
        a.store(base + 4, 12);
        assert_eq!(a.load(base + 4), 12);
    }

    #[test]
    fn narrow_copy_rekeys_escaped_entries() {
        let mut a = Arena::new(CellWidth::W32, false);
        let h = a.alloc(16, 0);
        let b = h.base as usize;
        a.store(b, 0xFFFF_FFFF_FF00); // escaped
        a.store(b + 1, 42);
        a.copy_words(b, b + 8, 2);
        assert_eq!(a.load(b + 8), 0xFFFF_FFFF_FF00);
        assert_eq!(a.load(b + 9), 42);
        // Source unchanged.
        assert_eq!(a.load(b), 0xFFFF_FFFF_FF00);
    }

    #[test]
    fn prio_sidecar_only_allocated_when_tracked() {
        // Footprint per word: cells + stamp (+ prio only when tracked).
        let mut plain = Arena::new(CellWidth::W64, false);
        let mut prio = Arena::new(CellWidth::W64, true);
        let mut narrow = Arena::new(CellWidth::W32, false);
        for a in [&mut plain, &mut prio, &mut narrow] {
            let _ = a.alloc(1 << 16, 0);
        }
        let per_word = |a: &Arena| a.backing_bytes() as f64 / a.len_words() as f64;
        assert!(per_word(&plain) <= 12.0, "plain {}", per_word(&plain));
        assert!(per_word(&narrow) <= 8.0, "narrow {}", per_word(&narrow));
        assert!(per_word(&prio) <= 20.0, "prio {}", per_word(&prio));
        assert!(per_word(&prio) > 12.0, "sidecar missing");
    }

    #[test]
    fn sub_blocks_are_bounds_checked() {
        let mut a = arena();
        let h = a.alloc(16, 0);
        let t = h.sub(4, 4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.addr(0), h.base + 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sub_block_overflow_panics() {
        let mut a = arena();
        let h = a.alloc(16, 0);
        let _ = h.sub(10, 10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn handle_index_out_of_bounds_panics() {
        let mut a = arena();
        let h = a.alloc(4, 0);
        let _ = h.addr(4);
    }
}
