//! Concurrent-write resolution policies.
//!
//! The ARBITRARY CRCW PRAM guarantees only that *some* concurrent writer
//! succeeds. A correct algorithm therefore has to work for every possible
//! choice, and the strongest practical test of that property is to run the
//! same algorithm under many different resolution rules. This module defines
//! the rules the simulator supports.

use crate::splitmix64;

/// How concurrent writes to the same cell within one step are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// A deterministic pseudo-random winner: the write whose *value*
    /// hashes highest under `splitmix64(seed ⊕ f(addr, value))` wins
    /// (ties broken toward the larger value). Order-independent, so runs
    /// are reproducible regardless of host-thread scheduling, and —
    /// because the winner is a function of the stored value — the commit
    /// phase can re-derive the incumbent's priority from the cell itself,
    /// with no per-word priority sidecar. This is the default policy; two
    /// different seeds are two different (legal) ARBITRARY machines.
    ArbitrarySeeded(u64),
    /// PRIORITY CRCW with smallest processor id winning.
    PriorityMin,
    /// PRIORITY CRCW with largest processor id winning.
    PriorityMax,
    /// Let the host threads race: the last committing writer (in host
    /// execution order) wins. Fastest mode; non-deterministic, but every
    /// outcome is a legal ARBITRARY execution.
    Racy,
    /// CREW checking mode: commits like `ArbitrarySeeded`, but every
    /// *write conflict* (two or more writers hitting one cell in one step)
    /// is counted in [`crate::Stats::write_conflicts`]. Used to demonstrate
    /// that the paper's algorithms genuinely exploit concurrent writes —
    /// on an exclusive-write machine they would be illegal (and indeed the
    /// EREW/CREW lower bound is Ω(log n), §1).
    CrewChecked(u64),
}

/// The commit-phase resolution rule, precomputed from the policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Resolution {
    /// Host execution order wins (no comparison at all).
    Racy,
    /// Value-hash priority (`ArbitrarySeeded`/`CrewChecked`): the winner
    /// is recomputable from `(seed, addr, stored value)`.
    Hashed(u64),
    /// Smallest processor id wins (needs the per-word priority sidecar).
    ProcMin,
    /// Largest processor id wins (needs the per-word priority sidecar).
    ProcMax,
}

/// The value-hash priority of a write under the seeded policies. Larger
/// wins; ties broken by the larger value (see `Resolution::Hashed`).
/// Deliberately a function of `(seed, addr, value)` only — never the
/// processor — so the incumbent's priority can be recomputed from the
/// committed cell.
#[inline]
pub(crate) fn hashed_prio(seed: u64, addr: u32, value: u64) -> u64 {
    splitmix64(seed ^ (addr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ value.rotate_left(17))
}

impl WritePolicy {
    /// The commit resolution rule for this policy.
    #[inline]
    pub(crate) fn resolution(&self) -> Resolution {
        match *self {
            WritePolicy::ArbitrarySeeded(seed) | WritePolicy::CrewChecked(seed) => {
                Resolution::Hashed(seed)
            }
            WritePolicy::PriorityMin => Resolution::ProcMin,
            WritePolicy::PriorityMax => Resolution::ProcMax,
            WritePolicy::Racy => Resolution::Racy,
        }
    }

    /// Whether resolution compares processor ids — the only case that
    /// needs the per-word priority sidecar in the arena.
    #[inline]
    pub(crate) fn needs_prio_sidecar(&self) -> bool {
        matches!(self, WritePolicy::PriorityMin | WritePolicy::PriorityMax)
    }

    /// Whether write conflicts should be counted (CREW checking).
    #[inline]
    pub(crate) fn counts_conflicts(&self) -> bool {
        matches!(self, WritePolicy::CrewChecked(_))
    }
}

/// Combining operators for the COMBINING CRCW PRAM ([`crate::Pram::step_combine`]).
///
/// When several processors write the same cell in a combining step, the
/// cell receives the combination of all written values (the cell's previous
/// content does not participate; this matches the model in §B of the paper,
/// where e.g. the number of ongoing vertices is obtained by every ongoing
/// vertex writing `1` to a fixed cell with `Sum`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CombineOp {
    /// Wrapping sum of all written values.
    Sum,
    /// Minimum of all written values.
    Min,
    /// Maximum of all written values.
    Max,
    /// Bitwise OR of all written values.
    Or,
}

impl CombineOp {
    /// Identity element of the operator.
    #[inline]
    pub fn identity(&self) -> u64 {
        match self {
            CombineOp::Sum => 0,
            CombineOp::Min => u64::MAX,
            CombineOp::Max => 0,
            CombineOp::Or => 0,
        }
    }

    /// Apply the operator.
    #[inline]
    pub fn apply(&self, a: u64, b: u64) -> u64 {
        match self {
            CombineOp::Sum => a.wrapping_add(b),
            CombineOp::Min => a.min(b),
            CombineOp::Max => a.max(b),
            CombineOp::Or => a | b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_prio_is_deterministic_and_seed_sensitive() {
        assert_eq!(hashed_prio(1, 5, 7), hashed_prio(1, 5, 7));
        assert_ne!(hashed_prio(1, 5, 7), hashed_prio(2, 5, 7));
        assert_ne!(hashed_prio(1, 5, 7), hashed_prio(1, 6, 7));
        assert_ne!(hashed_prio(1, 5, 7), hashed_prio(1, 5, 8));
    }

    #[test]
    fn resolutions_match_policies() {
        assert_eq!(
            WritePolicy::ArbitrarySeeded(9).resolution(),
            Resolution::Hashed(9)
        );
        assert_eq!(
            WritePolicy::CrewChecked(9).resolution(),
            Resolution::Hashed(9)
        );
        assert_eq!(WritePolicy::PriorityMin.resolution(), Resolution::ProcMin);
        assert_eq!(WritePolicy::PriorityMax.resolution(), Resolution::ProcMax);
        assert_eq!(WritePolicy::Racy.resolution(), Resolution::Racy);
        assert!(WritePolicy::PriorityMin.needs_prio_sidecar());
        assert!(WritePolicy::PriorityMax.needs_prio_sidecar());
        assert!(!WritePolicy::ArbitrarySeeded(0).needs_prio_sidecar());
        assert!(!WritePolicy::CrewChecked(0).needs_prio_sidecar());
        assert!(!WritePolicy::Racy.needs_prio_sidecar());
    }

    #[test]
    fn combine_identities_and_application() {
        assert_eq!(CombineOp::Sum.apply(CombineOp::Sum.identity(), 5), 5);
        assert_eq!(CombineOp::Min.apply(CombineOp::Min.identity(), 5), 5);
        assert_eq!(CombineOp::Max.apply(CombineOp::Max.identity(), 5), 5);
        assert_eq!(CombineOp::Or.apply(CombineOp::Or.identity(), 5), 5);
        assert_eq!(CombineOp::Sum.apply(2, 3), 5);
        assert_eq!(CombineOp::Min.apply(2, 3), 2);
        assert_eq!(CombineOp::Max.apply(2, 3), 3);
        assert_eq!(CombineOp::Or.apply(0b01, 0b10), 0b11);
    }
}
