//! Concurrent-write resolution policies.
//!
//! The ARBITRARY CRCW PRAM guarantees only that *some* concurrent writer
//! succeeds. A correct algorithm therefore has to work for every possible
//! choice, and the strongest practical test of that property is to run the
//! same algorithm under many different resolution rules. This module defines
//! the rules the simulator supports.

use crate::splitmix64;

/// How concurrent writes to the same cell within one step are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePolicy {
    /// A deterministic pseudo-random winner: the write with the largest
    /// `splitmix64(seed ⊕ f(addr, proc, value))` wins. Order-independent, so
    /// runs are reproducible regardless of host-thread scheduling. This is
    /// the default policy; two different seeds are two different (legal)
    /// ARBITRARY machines.
    ArbitrarySeeded(u64),
    /// PRIORITY CRCW with smallest processor id winning.
    PriorityMin,
    /// PRIORITY CRCW with largest processor id winning.
    PriorityMax,
    /// Let the host threads race: the last committing writer (in host
    /// execution order) wins. Fastest mode; non-deterministic, but every
    /// outcome is a legal ARBITRARY execution.
    Racy,
    /// CREW checking mode: commits like `ArbitrarySeeded`, but every
    /// *write conflict* (two or more writers hitting one cell in one step)
    /// is counted in [`crate::Stats::write_conflicts`]. Used to demonstrate
    /// that the paper's algorithms genuinely exploit concurrent writes —
    /// on an exclusive-write machine they would be illegal (and indeed the
    /// EREW/CREW lower bound is Ω(log n), §1).
    CrewChecked(u64),
}

impl WritePolicy {
    /// The priority value of a write under this policy. Larger wins.
    ///
    /// For [`WritePolicy::Racy`] the value is unused.
    #[inline]
    pub(crate) fn priority(&self, addr: u32, proc: u64, value: u64) -> u64 {
        match *self {
            WritePolicy::ArbitrarySeeded(seed) | WritePolicy::CrewChecked(seed) => splitmix64(
                seed ^ (addr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ proc.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                    ^ value.rotate_left(17),
            ),
            // Min processor id wins => invert so that larger is better.
            WritePolicy::PriorityMin => u64::MAX - proc,
            WritePolicy::PriorityMax => proc,
            WritePolicy::Racy => 0,
        }
    }

    /// Whether commit must honour priorities (false for racy commits).
    #[inline]
    pub(crate) fn uses_priority(&self) -> bool {
        !matches!(self, WritePolicy::Racy)
    }

    /// Whether write conflicts should be counted (CREW checking).
    #[inline]
    pub(crate) fn counts_conflicts(&self) -> bool {
        matches!(self, WritePolicy::CrewChecked(_))
    }
}

/// Combining operators for the COMBINING CRCW PRAM ([`crate::Pram::step_combine`]).
///
/// When several processors write the same cell in a combining step, the
/// cell receives the combination of all written values (the cell's previous
/// content does not participate; this matches the model in §B of the paper,
/// where e.g. the number of ongoing vertices is obtained by every ongoing
/// vertex writing `1` to a fixed cell with `Sum`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CombineOp {
    /// Wrapping sum of all written values.
    Sum,
    /// Minimum of all written values.
    Min,
    /// Maximum of all written values.
    Max,
    /// Bitwise OR of all written values.
    Or,
}

impl CombineOp {
    /// Identity element of the operator.
    #[inline]
    pub fn identity(&self) -> u64 {
        match self {
            CombineOp::Sum => 0,
            CombineOp::Min => u64::MAX,
            CombineOp::Max => 0,
            CombineOp::Or => 0,
        }
    }

    /// Apply the operator.
    #[inline]
    pub fn apply(&self, a: u64, b: u64) -> u64 {
        match self {
            CombineOp::Sum => a.wrapping_add(b),
            CombineOp::Min => a.min(b),
            CombineOp::Max => a.max(b),
            CombineOp::Or => a | b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_min_prefers_small_proc() {
        let p = WritePolicy::PriorityMin;
        assert!(p.priority(0, 3, 9) > p.priority(0, 7, 9));
    }

    #[test]
    fn priority_max_prefers_large_proc() {
        let p = WritePolicy::PriorityMax;
        assert!(p.priority(0, 7, 9) > p.priority(0, 3, 9));
    }

    #[test]
    fn seeded_priority_is_deterministic_and_seed_sensitive() {
        let a = WritePolicy::ArbitrarySeeded(1);
        let b = WritePolicy::ArbitrarySeeded(2);
        assert_eq!(a.priority(5, 6, 7), a.priority(5, 6, 7));
        assert_ne!(a.priority(5, 6, 7), b.priority(5, 6, 7));
    }

    #[test]
    fn combine_identities_and_application() {
        assert_eq!(CombineOp::Sum.apply(CombineOp::Sum.identity(), 5), 5);
        assert_eq!(CombineOp::Min.apply(CombineOp::Min.identity(), 5), 5);
        assert_eq!(CombineOp::Max.apply(CombineOp::Max.identity(), 5), 5);
        assert_eq!(CombineOp::Or.apply(CombineOp::Or.identity(), 5), 5);
        assert_eq!(CombineOp::Sum.apply(2, 3), 5);
        assert_eq!(CombineOp::Min.apply(2, 3), 2);
        assert_eq!(CombineOp::Max.apply(2, 3), 3);
        assert_eq!(CombineOp::Or.apply(0b01, 0b10), 0b11);
    }
}
