//! # `pram-sim` — a synchronous CRCW PRAM simulator
//!
//! This crate implements the machine model of Liu–Tarjan–Zhong (SPAA 2020):
//! an **ARBITRARY CRCW PRAM** — a set of synchronous processors sharing a
//! common memory of words, where in one step a processor may read a cell,
//! write a cell, or do a constant amount of local computation; concurrent
//! reads are unrestricted and concurrent writes to one cell are resolved by
//! letting an *arbitrary* writer succeed.
//!
//! The simulator is built around three ideas:
//!
//! 1. **Synchronous steps.** [`Pram::step`] executes one parallel step over
//!    `nprocs` processors. All reads performed inside the step observe the
//!    memory contents from *before* the step; all writes are committed
//!    together at the end of the step. This matches the textbook PRAM
//!    semantics (read phase, compute phase, write phase) and makes the
//!    simulated algorithms independent of host-thread scheduling.
//! 2. **Pluggable write resolution.** [`WritePolicy`] selects how concurrent
//!    writes to one cell are resolved: a *seeded arbitrary* policy (a
//!    deterministic, order-independent pseudo-random winner — reproducible
//!    runs), PRIORITY (min or max processor id), or a racy mode that lets the
//!    host threads race (fastest, genuinely arbitrary, non-deterministic).
//!    Algorithms that are correct on an ARBITRARY CRCW PRAM must produce
//!    correct output under *every* policy and seed; the test suites exploit
//!    this to get much stronger coverage than a single machine would give.
//!    [`Pram::step_combine`] additionally provides the COMBINING CRCW PRAM
//!    (sum / min / max / or), which §B of the paper uses to compute the
//!    number of ongoing vertices before showing how to remove it.
//! 3. **Honest accounting.** [`Stats`] tracks simulated time (steps), work
//!    (sum of active processors over steps), the maximum number of
//!    concurrently active processors, reads/writes, and the space high-water
//!    mark of the memory arena. It also audits the *O(1) local computation*
//!    discipline: the maximum number of memory operations any single
//!    processor performed in a step is recorded, so a step that smuggles a
//!    loop past the model is visible in the numbers. Where the paper charges
//!    O(1) time for a primitive that needs polylog processor slack (see
//!    DESIGN.md §1.2) the caller uses [`Pram::step_charged`] and the charge
//!    is recorded separately.
//!
//! Memory is managed by a size-class arena (`mem::Arena`) so the
//! level/budget block machinery of the paper (allocate a block of size
//! `b_ℓ` per root, every round) reuses space exactly the way the paper's
//! zone argument intends, and the peak live footprint is measurable.
//!
//! ```
//! use pram_sim::{Pram, WritePolicy};
//!
//! let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(42));
//! let xs = pram.alloc_filled(8, 0);
//! // 8 processors each write their id+1 into cell 0: ARBITRARY keeps one.
//! pram.step(8, |p, ctx| {
//!     ctx.write(xs, 0, p as u64 + 1);
//! });
//! let winner = pram.get(xs, 0);
//! assert!((1..=8).contains(&winner));
//! assert_eq!(pram.stats().steps, 1);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod ctx;
pub mod error;
pub mod machine;
pub mod mem;
pub mod resolve;
pub mod stats;

pub use ctx::Ctx;
pub use error::PramError;
pub use machine::{Pram, Stamped};
pub use mem::{CellWidth, Handle, MemView, NULL};
pub use resolve::{CombineOp, WritePolicy};
pub use stats::Stats;

/// Mix function used throughout the simulator for seeded pseudo-random
/// decisions (write-resolution priorities, per-processor coins).
///
/// This is `splitmix64`, the finalizer recommended by Vigna; it is a
/// bijection on `u64` with excellent avalanche behaviour, which is all the
/// simulator needs (it is *not* used where the paper requires pairwise
/// independence — see `pram-kit::hashing` for that).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_bijective_on_small_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn splitmix_avalanche_rough() {
        // Flipping one input bit should flip ~32 output bits on average.
        let mut total = 0u32;
        let trials = 1000;
        for i in 0..trials {
            let a = splitmix64(i);
            let b = splitmix64(i ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / trials as f64;
        assert!(
            (24.0..40.0).contains(&avg),
            "avalanche average {avg} out of range"
        );
    }
}
