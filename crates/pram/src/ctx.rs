//! Per-processor step context: the only way simulated processors touch
//! shared memory.
//!
//! A [`Ctx`] is handed to the step closure for every simulated processor.
//! Reads go straight to the frozen pre-step memory image; writes are
//! buffered (sharded by address so the commit phase can run in parallel on
//! disjoint address sets) and committed by the machine when the step ends.
//!
//! Write records carry no precomputed priority: the seeded-arbitrary
//! policies derive the winner from `(seed, addr, value)` at commit time
//! and the processor-priority policies from the record's processor id, so
//! a buffered write is 16 bytes — and only 8 under narrow cells with a
//! value-resolved policy (see `NarrowRec` in this module).

use crate::mem::{narrow_encode, CellsRef, Handle, NARROW_ESC};
use crate::splitmix64;

/// One buffered write (full-width record).
#[derive(Clone, Copy, Debug)]
pub(crate) struct WriteRec {
    pub(crate) addr: u32,
    /// The writing processor id (resolution input for the
    /// processor-priority policies; ignored otherwise). Steps are capped
    /// at 2^32 processors, see `Pram::step_charged`.
    pub(crate) aux: u32,
    pub(crate) val: u64,
}

/// One buffered write in narrow-cell encoding: 8 bytes. `val` is the
/// narrow encoding of the written value; a [`NARROW_ESC`] value means the
/// actual 64-bit value is the next unconsumed entry of the shard's `wide`
/// side list (records are committed strictly in push order per shard, so
/// a single cursor recovers the pairing).
#[derive(Clone, Copy, Debug)]
pub(crate) struct NarrowRec {
    pub(crate) addr: u32,
    pub(crate) val: u32,
}

/// One shard's buffered writes.
pub(crate) enum ShardBuf {
    /// Full-width records (any policy, any cell width).
    Wide(Vec<WriteRec>),
    /// Narrow records + escape side list (narrow cells with a policy that
    /// resolves from the value, i.e. everything but `Priority*`).
    Narrow {
        recs: Vec<NarrowRec>,
        wide: Vec<u64>,
    },
}

impl ShardBuf {
    pub(crate) fn clear(&mut self) {
        match self {
            ShardBuf::Wide(v) => v.clear(),
            ShardBuf::Narrow { recs, wide } => {
                recs.clear();
                wide.clear();
            }
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            ShardBuf::Wide(v) => v.is_empty(),
            ShardBuf::Narrow { recs, wide } => recs.is_empty() && wide.is_empty(),
        }
    }
}

/// Record layout a machine's steps buffer writes in (fixed per machine:
/// chosen from the policy and cell width at construction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RecLayout {
    Wide,
    Narrow,
}

impl RecLayout {
    pub(crate) fn empty_shard(self) -> ShardBuf {
        match self {
            RecLayout::Wide => ShardBuf::Wide(Vec::new()),
            RecLayout::Narrow => ShardBuf::Narrow {
                recs: Vec::new(),
                wide: Vec::new(),
            },
        }
    }
}

/// The write buffers produced by one fold segment of a step.
pub(crate) struct CtxOut {
    pub(crate) shards: Vec<ShardBuf>,
    pub(crate) reads: u64,
    pub(crate) writes: u64,
    pub(crate) max_ops: u32,
}

/// Execution context of a simulated processor within one synchronous step.
///
/// All memory operations are counted; the per-processor operation count is
/// audited so that "each processor does O(1) work per step" is a measured
/// property, not an assumption (see `Stats::max_ops_per_proc`).
pub struct Ctx<'a> {
    mem: CellsRef<'a>,
    shard_mask: u32,
    shards: Vec<ShardBuf>,
    step_seed: u64,
    proc: u64,
    ops_this_proc: u32,
    max_ops: u32,
    reads: u64,
    writes: u64,
}

impl<'a> Ctx<'a> {
    /// Fresh-buffer constructor (tests; the machine recycles via
    /// [`Ctx::new_in`]).
    #[cfg(test)]
    pub(crate) fn new(words: &'a [u64], shard_count: u32, step_seed: u64) -> Self {
        let layout = RecLayout::Wide;
        Self::new_in(
            CellsRef::W64(words),
            shard_count,
            step_seed,
            (0..shard_count).map(|_| layout.empty_shard()).collect(),
        )
    }

    /// Like [`Ctx::new`] but over any cell representation and reusing
    /// `shards` buffers recycled from an earlier step (must be empty,
    /// `shard_count` of them, in the machine's record layout; their
    /// capacity is the point — steady-state steps allocate nothing).
    pub(crate) fn new_in(
        mem: CellsRef<'a>,
        shard_count: u32,
        step_seed: u64,
        shards: Vec<ShardBuf>,
    ) -> Self {
        debug_assert!(shard_count.is_power_of_two());
        debug_assert_eq!(shards.len(), shard_count as usize);
        debug_assert!(shards.iter().all(ShardBuf::is_empty));
        Ctx {
            mem,
            shard_mask: shard_count - 1,
            shards,
            step_seed,
            proc: 0,
            ops_this_proc: 0,
            max_ops: 0,
            reads: 0,
            writes: 0,
        }
    }

    #[inline]
    pub(crate) fn begin_proc(&mut self, p: u64) {
        self.proc = p;
        self.ops_this_proc = 0;
    }

    #[inline]
    pub(crate) fn end_proc(&mut self) {
        self.max_ops = self.max_ops.max(self.ops_this_proc);
    }

    pub(crate) fn finish(self) -> CtxOut {
        CtxOut {
            shards: self.shards,
            reads: self.reads,
            writes: self.writes,
            max_ops: self.max_ops,
        }
    }

    /// The id of the processor currently executing.
    #[inline]
    pub fn proc(&self) -> u64 {
        self.proc
    }

    /// Read cell `i` of block `h` (sees the pre-step memory image).
    #[inline]
    pub fn read(&mut self, h: Handle, i: usize) -> u64 {
        self.reads += 1;
        self.ops_this_proc += 1;
        self.mem.get(h.addr(i) as usize)
    }

    /// Write `val` into cell `i` of block `h` (committed at end of step;
    /// concurrent writes resolved by the machine's [`crate::WritePolicy`]).
    #[inline]
    pub fn write(&mut self, h: Handle, i: usize, val: u64) {
        self.writes += 1;
        self.ops_this_proc += 1;
        let addr = h.addr(i);
        let shard = (addr & self.shard_mask) as usize;
        match &mut self.shards[shard] {
            ShardBuf::Wide(recs) => recs.push(WriteRec {
                addr,
                aux: self.proc as u32,
                val,
            }),
            ShardBuf::Narrow { recs, wide } => match narrow_encode(val) {
                Some(x) => recs.push(NarrowRec { addr, val: x }),
                None => {
                    recs.push(NarrowRec {
                        addr,
                        val: NARROW_ESC,
                    });
                    wide.push(val);
                }
            },
        }
    }

    /// Read cell `i` of a generation-stamped block: the stored value if
    /// its stamp is fresh, else `stale`. Charged as the 1–2 real reads it
    /// performs (stamp probe, then value on a hit).
    #[inline]
    pub fn read_stamped(&mut self, s: crate::machine::Stamped, i: usize, stale: u64) -> u64 {
        if self.read(s.stamps, i) == s.gen {
            self.read(s.values, i)
        } else {
            stale
        }
    }

    /// Write `val` into cell `i` of a generation-stamped block: the value
    /// write plus the stamp write (2 charged writes, committed in this
    /// step). Concurrent writers to the cell are resolved per the machine
    /// policy on the value cell; the stamp cell receives the same
    /// generation from every writer, so it is conflict-free in value.
    #[inline]
    pub fn write_stamped(&mut self, s: crate::machine::Stamped, i: usize, val: u64) {
        self.write(s.values, i, val);
        self.write(s.stamps, i, s.gen);
    }

    /// A deterministic per-step, per-processor pseudo-random word.
    ///
    /// `tag` distinguishes multiple draws by the same processor in one step.
    /// The stream depends on (machine seed, step number, processor, tag), so
    /// runs are reproducible while different seeds give independent-looking
    /// randomness. This models the private random bits PRAM processors are
    /// assumed to hold.
    #[inline]
    pub fn rand(&mut self, tag: u64) -> u64 {
        self.ops_this_proc += 1;
        splitmix64(
            self.step_seed
                ^ self.proc.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ tag.wrapping_mul(0xD134_2543_DE82_EF95),
        )
    }

    /// A deterministic Bernoulli draw: true with probability ≈ `p`.
    #[inline]
    pub fn coin(&mut self, tag: u64, p: f64) -> bool {
        let x = self.rand(tag);
        // Map to [0, 1) with 53 bits of precision.
        let u = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Record `k` units of local computation for the O(1)-discipline audit
    /// without touching memory (e.g. comparing two already-read words).
    #[inline]
    pub fn charge_local(&mut self, k: u32) {
        self.ops_this_proc += k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_sharded_by_address() {
        let words = vec![0u64; 64];
        let mut ctx = Ctx::new(&words, 4, 0);
        ctx.begin_proc(1);
        let h = Handle { base: 0, len: 64 };
        for i in 0..16 {
            ctx.write(h, i, i as u64);
        }
        ctx.end_proc();
        let out = ctx.finish();
        assert_eq!(out.writes, 16);
        for (s, shard) in out.shards.iter().enumerate() {
            let ShardBuf::Wide(recs) = shard else {
                panic!("expected wide layout")
            };
            assert_eq!(recs.len(), 4);
            for rec in recs {
                assert_eq!((rec.addr & 3) as usize, s);
                assert_eq!(rec.aux, 1);
            }
        }
        assert_eq!(out.max_ops, 16);
    }

    #[test]
    fn narrow_layout_escapes_oversized_values() {
        let cells = vec![0u32; 8];
        let wide = crate::mem::WideTable::new();
        let mem = CellsRef::W32 {
            cells: &cells,
            wide: &wide,
        };
        let mut ctx = Ctx::new_in(mem, 1, 0, vec![RecLayout::Narrow.empty_shard()]);
        ctx.begin_proc(0);
        let h = Handle { base: 0, len: 8 };
        ctx.write(h, 0, 5);
        ctx.write(h, 1, crate::NULL);
        ctx.write(h, 2, 1 << 40);
        ctx.end_proc();
        let out = ctx.finish();
        let ShardBuf::Narrow { recs, wide } = &out.shards[0] else {
            panic!("expected narrow layout")
        };
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].val, 5);
        assert_eq!(recs[1].val, u32::MAX);
        assert_eq!(recs[2].val, NARROW_ESC);
        assert_eq!(wide.as_slice(), &[1u64 << 40]);
    }

    #[test]
    fn rand_depends_on_proc_and_tag() {
        let words = vec![0u64; 1];
        let mut ctx = Ctx::new(&words, 1, 7);
        ctx.begin_proc(0);
        let a = ctx.rand(0);
        let b = ctx.rand(1);
        ctx.begin_proc(1);
        let c = ctx.rand(0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Same (seed, proc, tag) => same value.
        ctx.begin_proc(0);
        assert_eq!(a, ctx.rand(0));
    }

    #[test]
    fn coin_matches_probability_roughly() {
        let words = vec![0u64; 1];
        let mut ctx = Ctx::new(&words, 1, 99);
        let mut hits = 0;
        let trials = 20_000;
        for p in 0..trials {
            ctx.begin_proc(p);
            if ctx.coin(0, 0.25) {
                hits += 1;
            }
        }
        let frac = hits as f64 / trials as f64;
        assert!((0.22..0.28).contains(&frac), "fraction {frac}");
    }
}
