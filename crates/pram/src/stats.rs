//! Accounting: simulated time, work, processors, memory traffic, space.

/// Resource accounting for a simulated PRAM run.
///
/// The quantities correspond one-to-one to the resources bounded by the
/// paper's theorems:
///
/// * `steps` — simulated parallel time (`O(log d + log log_{m/n} n)` for
///   Theorem 3),
/// * `max_procs` — the processor bound (`O(m)`),
/// * `peak_words` — the space bound (`O(m)`),
/// * `work` — processor-time product (near work-efficiency),
/// * `max_ops_per_proc` — audit of the "O(1) local computation per step"
///   discipline (see DESIGN.md §1.2: a few primitives scan an `O(log log n)`
///   level array in one charged step; this counter exposes the real
///   constant).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Simulated parallel time: sum of charges over executed steps
    /// (a plain [`crate::Pram::step`] charges 1).
    pub steps: u64,
    /// Number of `step` calls (== `steps` unless charged steps were used).
    pub step_calls: u64,
    /// Total work: Σ (active processors × charge) over steps.
    pub work: u64,
    /// Maximum number of processors active in any single step.
    pub max_procs: u64,
    /// Total shared-memory reads.
    pub reads: u64,
    /// Total shared-memory writes (before write resolution).
    pub writes: u64,
    /// Maximum number of memory/local operations a single processor
    /// performed within one step.
    pub max_ops_per_proc: u64,
    /// Live words currently allocated (counting size-class rounding).
    pub live_words: u64,
    /// High-water mark of `live_words` over the run.
    pub peak_words: u64,
    /// Write conflicts observed (only counted under
    /// [`crate::WritePolicy::CrewChecked`]): the number of writes that hit
    /// a cell already written in the same step. Non-zero means the program
    /// is not a legal CREW program.
    pub write_conflicts: u64,
    /// Number of host threads the rayon pool was running when the machine
    /// was created ([`crate::Pram::new`]) — what the simulation *actually*
    /// executed on, so experiment tables can report it. Purely host-side;
    /// no simulated quantity depends on it.
    pub host_threads: u64,
}

impl Stats {
    /// Merge per-step deltas into the totals.
    pub(crate) fn record_step(&mut self, nprocs: u64, charge: u64) {
        self.steps += charge;
        self.step_calls += 1;
        self.work += nprocs * charge;
        self.max_procs = self.max_procs.max(nprocs);
    }

    /// All fields as `(name, value)` pairs, in declaration order — the
    /// single source for both observability bridges below.
    fn fields(&self) -> [(&'static str, u64); 11] {
        [
            ("steps", self.steps),
            ("step_calls", self.step_calls),
            ("work", self.work),
            ("max_procs", self.max_procs),
            ("reads", self.reads),
            ("writes", self.writes),
            ("max_ops_per_proc", self.max_ops_per_proc),
            ("live_words", self.live_words),
            ("peak_words", self.peak_words),
            ("write_conflicts", self.write_conflicts),
            ("host_threads", self.host_threads),
        ]
    }

    /// Export the totals into `registry` as gauges named
    /// `{prefix}_{field}` (e.g. `sim_steps`). Gauges, not counters: a
    /// `Stats` is a finished run's absolute accounting, not a delta, and
    /// re-recording the same run must not double-count.
    ///
    /// Metric names are interned via [`logdiam_obs::Registry::intern`],
    /// so this is an end-of-run export, not a per-step hot path.
    pub fn record_into(&self, registry: &logdiam_obs::Registry, prefix: &str) {
        for (name, v) in self.fields() {
            let metric = logdiam_obs::Registry::intern(&format!("{prefix}_{name}"));
            registry.gauge(metric).set(v as i64);
        }
    }

    /// The same totals as one structured telemetry event named
    /// `pram_stats` (one field per [`Stats`] field), ready for a
    /// registry's event ring or direct JSON-lines output.
    pub fn to_event(&self) -> logdiam_obs::Event {
        let mut e = logdiam_obs::Event::new("pram_stats");
        for (name, v) in self.fields() {
            e = e.with(name, v);
        }
        e
    }

    /// Pretty one-line summary, used by the experiment harness.
    pub fn summary(&self) -> String {
        format!(
            "steps={} work={} max_procs={} peak_words={} reads={} writes={} max_ops/proc={} host_threads={}",
            self.steps,
            self.work,
            self.max_procs,
            self.peak_words,
            self.reads,
            self.writes,
            self.max_ops_per_proc,
            self.host_threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_step_accumulates() {
        let mut s = Stats::default();
        s.record_step(10, 1);
        s.record_step(4, 3);
        assert_eq!(s.steps, 4);
        assert_eq!(s.step_calls, 2);
        assert_eq!(s.work, 10 + 12);
        assert_eq!(s.max_procs, 10);
    }

    #[test]
    fn summary_contains_fields() {
        let s = Stats {
            steps: 7,
            ..Default::default()
        };
        assert!(s.summary().contains("steps=7"));
    }

    #[test]
    fn record_into_exports_every_field_as_prefixed_gauge() {
        let s = Stats {
            steps: 7,
            work: 40,
            peak_words: 99,
            ..Default::default()
        };
        let reg = logdiam_obs::Registry::new();
        s.record_into(&reg, "sim");
        let snap = reg.snapshot();
        assert_eq!(snap.gauges["sim_steps"], 7);
        assert_eq!(snap.gauges["sim_work"], 40);
        assert_eq!(snap.gauges["sim_peak_words"], 99);
        assert_eq!(snap.gauges.len(), 11, "one gauge per Stats field");
        // Re-recording the same run is idempotent (gauges, not counters).
        s.record_into(&reg, "sim");
        assert_eq!(reg.snapshot().gauges["sim_steps"], 7);
    }

    #[test]
    fn to_event_carries_all_fields() {
        let s = Stats {
            steps: 3,
            host_threads: 2,
            ..Default::default()
        };
        let e = s.to_event();
        assert_eq!(e.name, "pram_stats");
        assert_eq!(e.fields.len(), 11);
        assert_eq!(e.field("steps"), Some(&logdiam_obs::Value::U64(3)));
        assert_eq!(e.field("host_threads"), Some(&logdiam_obs::Value::U64(2)));
        assert!(e.to_json_line().contains("\"steps\":3"));
    }
}
