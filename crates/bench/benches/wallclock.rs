//! E8 — wall-clock of the practical shared-memory CC implementations.
//!
//! Regenerates the E8 series with Criterion statistics: concurrent
//! union–find (yardstick), label propagation, SV rounds, and the paper-
//! flavoured alter-and-contract, on a low-diameter random graph, a grid,
//! and a path.

use criterion::{criterion_group, criterion_main, Criterion};
use logdiam_par::{
    contract::contract_cc, labelprop::labelprop_cc, sv::sv_cc, unionfind::unionfind_cc,
};
use std::hint::black_box;

fn bench_wallclock(c: &mut Criterion) {
    let graphs = [
        ("gnm_50k_200k", cc_graph::gen::gnm(50_000, 200_000, 7)),
        ("grid_200x150", cc_graph::gen::grid(200, 150)),
        ("path_50k", cc_graph::gen::path(50_000)),
    ];
    for (name, g) in &graphs {
        let mut group = c.benchmark_group(format!("e8_wallclock/{name}"));
        group.sample_size(10);
        group.bench_function("unionfind", |b| b.iter(|| black_box(unionfind_cc(g))));
        group.bench_function("labelprop", |b| b.iter(|| black_box(labelprop_cc(g))));
        group.bench_function("sv", |b| b.iter(|| black_box(sv_cc(g))));
        group.bench_function("contract", |b| b.iter(|| black_box(contract_cc(g))));
        group.bench_function("seq_dsu", |b| {
            b.iter(|| black_box(cc_graph::seq::components(g)))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_wallclock);
criterion_main!(benches);
