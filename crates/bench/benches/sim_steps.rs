//! Simulator throughput: how fast the PRAM substrate executes synchronous
//! steps under each write-resolution policy. Not a paper figure, but the
//! denominator behind every simulated experiment's wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use pram_sim::{Pram, WritePolicy};
use std::hint::black_box;

fn bench_steps(c: &mut Criterion) {
    let n = 1 << 20;
    let mut group = c.benchmark_group("sim_steps_1M_procs");
    group.sample_size(10);
    for (name, policy) in [
        ("arbitrary_seeded", WritePolicy::ArbitrarySeeded(1)),
        ("priority_min", WritePolicy::PriorityMin),
        ("racy", WritePolicy::Racy),
    ] {
        group.bench_function(name, |b| {
            let mut pram = Pram::new(policy);
            let xs = pram.alloc(n);
            let ys = pram.alloc(n);
            b.iter(|| {
                pram.step(n, |p, ctx| {
                    let v = ctx.read(xs, p as usize);
                    ctx.write(ys, (p as usize + 1) % n, v + 1);
                });
                black_box(pram.get(ys, 0))
            });
        });
    }
    // Heavy contention: all processors write one cell.
    group.bench_function("contended_single_cell", |b| {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
        let xs = pram.alloc(1);
        b.iter(|| {
            pram.step(n, |p, ctx| ctx.write(xs, 0, p));
            black_box(pram.get(xs, 0))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
