//! E1 companion: end-to-end simulated Theorem-3 runs (wall-clock of the
//! simulation; the round counts live in `experiments e1`).

use criterion::{criterion_group, criterion_main, Criterion};
use logdiam_cc::theorem3::{faster_cc, FasterParams};
use pram_sim::{Pram, WritePolicy};
use std::hint::black_box;

fn bench_faster(c: &mut Criterion) {
    let params = FasterParams::default();
    let graphs = [
        ("clique_chain_32x6", cc_graph::gen::clique_chain(32, 6)),
        ("gnm_2k_8k", cc_graph::gen::gnm(2000, 8000, 5)),
        ("grid_24x32", cc_graph::gen::grid(24, 32)),
    ];
    let mut group = c.benchmark_group("e1_faster_cc_simulated");
    group.sample_size(10);
    // Destructure so `name` is `&str`, which both the vendored criterion
    // shim and real criterion's `IntoBenchmarkId` accept.
    for &(name, ref g) in &graphs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(9));
                black_box(faster_cc(&mut pram, g, 9, &params))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faster);
criterion_main!(benches);
