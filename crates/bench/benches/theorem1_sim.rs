//! E2/E11 companion: simulated Theorem-1 runs and a single EXPAND phase.

use criterion::{criterion_group, criterion_main, Criterion};
use logdiam_cc::theorem1::{self, expand, ExpandParams, Theorem1Params};
use logdiam_cc::CcState;
use pram_sim::{Pram, WritePolicy};
use std::hint::black_box;

fn bench_theorem1(c: &mut Criterion) {
    let params = Theorem1Params::default();
    let mut group = c.benchmark_group("e2_theorem1_simulated");
    group.sample_size(10);
    for (name, g) in [
        ("gnm_2k_16k", cc_graph::gen::gnm(2000, 16_000, 3)),
        ("cycle_1k", cc_graph::gen::cycle(1000)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(4));
                black_box(theorem1::connected_components(&mut pram, &g, 4, &params))
            })
        });
    }
    // One EXPAND on a fixed machine state (the O(log d) inner loop alone).
    group.bench_function("expand_only_cycle_512", |b| {
        let g = cc_graph::gen::cycle(512);
        b.iter(|| {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(6));
            let st = CcState::init(&mut pram, &g);
            let live = logdiam_cc::live::LiveSet::full(&mut pram, &st);
            let e = expand(
                &mut pram,
                &st,
                &ExpandParams {
                    table_size: 64,
                    nblocks: 4096,
                    snapshot: false,
                    round_cap: 16,
                },
                6,
                &live,
                None,
            );
            black_box(e.rounds)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_theorem1);
criterion_main!(benches);
