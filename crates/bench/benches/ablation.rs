//! E10 companion: ablation variants of Theorem 3 under Criterion timing.

use criterion::{criterion_group, criterion_main, Criterion};
use logdiam_cc::theorem3::{faster_cc, FasterParams};
use pram_sim::{Pram, WritePolicy};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let g = cc_graph::gen::clique_chain(32, 6);
    let variants: Vec<(&str, FasterParams)> = vec![
        ("default", FasterParams::default()),
        (
            "no_sampling",
            FasterParams {
                enable_sampling: false,
                ..Default::default()
            },
        ),
        (
            "single_maxlink",
            FasterParams {
                maxlink_iters: 1,
                ..Default::default()
            },
        ),
        (
            "kappa_4",
            FasterParams {
                kappa: 4.0,
                ..Default::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("e10_ablation_clique_chain_32x6");
    group.sample_size(10);
    // Destructure so `name` is `&str`, which both the vendored criterion
    // shim and real criterion's `IntoBenchmarkId` accept.
    for &(name, ref params) in &variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(3));
                black_box(faster_cc(&mut pram, &g, 3, params))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
