//! E7 companion: simulated baseline algorithms on a fixed workload.

use criterion::{criterion_group, criterion_main, Criterion};
use logdiam_cc::baselines::{awerbuch_shiloach, labelprop};
use logdiam_cc::vanilla::vanilla;
use pram_sim::{Pram, WritePolicy};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let g = cc_graph::gen::gnm(4000, 16_000, 11);
    let mut group = c.benchmark_group("e7_baselines_simulated");
    group.sample_size(10);
    group.bench_function("awerbuch_shiloach", |b| {
        b.iter(|| {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(2));
            black_box(awerbuch_shiloach(&mut pram, &g))
        })
    });
    group.bench_function("vanilla_reif", |b| {
        b.iter(|| {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(2));
            black_box(vanilla(&mut pram, &g, 2))
        })
    });
    group.bench_function("labelprop_lt19", |b| {
        b.iter(|| {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(2));
            black_box(labelprop(&mut pram, &g))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
