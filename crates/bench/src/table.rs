//! Markdown table rendering for experiment output.

/// A titled table with a free-text note (the shape being checked).
#[derive(Clone, Debug)]
pub struct Table {
    /// e.g. "E1 — rounds vs diameter".
    pub title: String,
    /// The paper claim / expected shape this table checks.
    pub note: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, note: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            note: note.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as Markdown.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        if !self.note.is_empty() {
            out.push_str(&format!("{}\n\n", self.note));
        }
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for r in &self.rows {
            out.push_str(&fmt_row(r));
        }
        out.push('\n');
        out
    }
}

/// Format a float tersely.
pub fn f(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("T", "note", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a  | bb |") || md.contains("| a | bb |"));
        assert!(md.contains("| 1"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("T", "", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1234.5), "1234");
        assert_eq!(f(42.4242), "42.42");
        assert_eq!(f(0.1234), "0.123");
    }
}
