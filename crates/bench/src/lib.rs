//! # `logdiam-bench` — experiment harness
//!
//! One function per experiment in DESIGN.md §4 (E1–E12). Each returns
//! [`table::Table`]s that the `experiments` binary prints as Markdown —
//! these are the "tables and figures" of the reproduction, recorded in
//! EXPERIMENTS.md. Criterion benches under `benches/` cover the wall-clock
//! measurements (E8) and simulator throughput.
//!
//! Sizes are chosen so `experiments all` finishes in minutes on a laptop;
//! `--full` enlarges the sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod svc;
pub mod svc_durable;
pub mod svc_mt;
pub mod table;

/// Global experiment configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Enlarged sweeps.
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            full: false,
            seed: 0xC0FFEE,
        }
    }
}
