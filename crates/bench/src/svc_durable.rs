//! Durable connectivity-service benchmark: the cost of crash safety.
//!
//! Each trace streams a deterministic write workload (same family
//! generators and edge split as the PR 4 replay) into a service created
//! with [`ConnectivityService::create`] under one [`FsyncPolicy`],
//! measures per-batch commit latency, then drops the handle and times a
//! cold [`ConnectivityService::open`] of the same directory. The
//! recovered partition is verified against a from-scratch sequential BFS
//! on the accumulated graph — the row is only `verified` if both the
//! live partition and the recovered one match, and the recovered epoch
//! equals the number of committed batches. Rows serialize into the
//! `BENCH_PR7.json` schema shared by `svc_driver --durable` (full runs)
//! and `bench_report --smoke` (the CI guard).
//!
//! The module also owns the deterministic workload of the `crash_probe`
//! binary ([`probe_initial`] / [`probe_batches`]): parent and child
//! processes must agree bit-for-bit on what was applied, so the
//! generator lives here, not in the binary.

use crate::svc::{family_graph, percentile_us};
use cc_graph::seq::{components, same_partition};
use cc_graph::{Graph, GraphBuilder, Rng};
use logdiam_svc::{ConnectivityService, FsyncPolicy, SvcParams};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Base seed shared by the default durable configurations.
pub const DURABLE_SEED: u64 = 0xD04_B1E;

/// Wall-clock cap for the whole durable smoke (milliseconds): three
/// policies, one short trace each, in CI seconds.
pub const DURABLE_SMOKE_CAP_MS: f64 = 20_000.0;

/// One durable write trace: workload, batching, and durability knobs.
#[derive(Clone, Debug)]
pub struct DurableConfig {
    /// Workload family (`path` / `grid` / `powerlaw` / `mixture`).
    pub family: String,
    /// Vertex count of the generated family graph.
    pub n: usize,
    /// Batches committed (one WAL record + ticket wait each).
    pub batches: usize,
    /// Edges per batch.
    pub batch: usize,
    /// Fraction of the family graph's edges placed in the genesis CSR;
    /// the rest become the write stream.
    pub initial_frac: f64,
    /// Service rebuild threshold (distinct delta edges).
    pub rebuild_threshold: usize,
    /// Commits between durable snapshots.
    pub snapshot_every: u64,
    /// Fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// RNG seed for the edge split and synthetic tail edges.
    pub seed: u64,
}

impl DurableConfig {
    /// The full-run configuration for one family under one fsync policy.
    pub fn full(family: &str, n: usize, fsync: FsyncPolicy) -> Self {
        DurableConfig {
            family: family.to_string(),
            n,
            batches: 256,
            batch: 256,
            initial_frac: 0.5,
            rebuild_threshold: 4096,
            snapshot_every: 64,
            fsync,
            seed: DURABLE_SEED,
        }
    }

    /// The CI smoke configuration: the same shape, seconds not minutes.
    pub fn smoke(fsync: FsyncPolicy) -> Self {
        DurableConfig {
            family: "mixture".to_string(),
            n: 2_000,
            batches: 48,
            batch: 64,
            initial_frac: 0.5,
            rebuild_threshold: 256,
            snapshot_every: 16,
            fsync,
            seed: DURABLE_SEED,
        }
    }
}

/// The measured result of one durable trace — one row of `BENCH_PR7.json`.
#[derive(Clone, Debug)]
pub struct DurableOutcome {
    /// `family/n`.
    pub workload: String,
    /// Fsync policy, in the `--fsync` spelling (`always` / `batch=N` / `off`).
    pub fsync: String,
    /// Vertex count.
    pub n: usize,
    /// Edges in the genesis CSR.
    pub m_initial: usize,
    /// Edges in the accumulated (genesis + applied) graph.
    pub m_final: usize,
    /// Batches committed.
    pub batches: usize,
    /// Edges per batch.
    pub batch: usize,
    /// Commits between durable snapshots.
    pub snapshot_every: u64,
    /// Wall clock for the commit loop, milliseconds.
    pub elapsed_ms: f64,
    /// Batch commits per second over the loop.
    pub commits_per_s: f64,
    /// Median end-to-end commit latency (enqueue → ticket), microseconds.
    pub commit_p50_us: f64,
    /// 90th-percentile commit latency, microseconds.
    pub commit_p90_us: f64,
    /// 99th-percentile commit latency, microseconds.
    pub commit_p99_us: f64,
    /// WAL size on disk after the clean shutdown, bytes.
    pub wal_bytes: u64,
    /// Durable snapshot files left on disk after pruning.
    pub snapshots: usize,
    /// Cold `open()` (recovery) wall clock, milliseconds.
    pub reopen_ms: f64,
    /// Epoch reported by the recovered service.
    pub recovered_epoch: u64,
    /// Whether the live AND the recovered partitions both matched a
    /// from-scratch sequential recompute, and the recovered epoch was
    /// exactly the committed batch count.
    pub verified: bool,
}

impl DurableOutcome {
    /// Serialize as one JSON object (no external deps, like `bench_report`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workload\":\"{}\",\"fsync\":\"{}\",\"n\":{},\"m_initial\":{},\
             \"m_final\":{},\"batches\":{},\"batch\":{},\"snapshot_every\":{},\
             \"elapsed_ms\":{:.3},\"commits_per_s\":{:.1},\
             \"commit_p50_us\":{:.3},\"commit_p90_us\":{:.3},\"commit_p99_us\":{:.3},\
             \"wal_bytes\":{},\"snapshots\":{},\"reopen_ms\":{:.3},\
             \"recovered_epoch\":{},\"verified\":{}}}",
            self.workload,
            self.fsync,
            self.n,
            self.m_initial,
            self.m_final,
            self.batches,
            self.batch,
            self.snapshot_every,
            self.elapsed_ms,
            self.commits_per_s,
            self.commit_p50_us,
            self.commit_p90_us,
            self.commit_p99_us,
            self.wal_bytes,
            self.snapshots,
            self.reopen_ms,
            self.recovered_epoch,
            self.verified,
        )
    }
}

/// The write stream for one durable trace: the held-out family edges in
/// shuffled order, padded with synthetic seeded pairs once exhausted, cut
/// into `batches` chunks of `batch` edges.
fn trace_batches(cfg: &DurableConfig, stream: &[(u32, u32)], n: usize) -> Vec<Vec<(u32, u32)>> {
    let mut rng = Rng::new(cfg.seed ^ 0x0B5);
    let mut it = stream.iter().copied();
    (0..cfg.batches)
        .map(|_| {
            (0..cfg.batch)
                .map(|_| {
                    it.next()
                        .unwrap_or_else(|| (rng.below(n as u64) as u32, rng.below(n as u64) as u32))
                })
                .collect()
        })
        .collect()
}

/// Run one durable trace in `dir` (created fresh; the caller owns
/// cleanup) and measure it. Panics if `dir` already holds a store.
pub fn run_durable_trace(cfg: &DurableConfig, dir: &Path) -> DurableOutcome {
    let g_full = family_graph(&cfg.family, cfg.n, cfg.seed);
    let n = g_full.n();
    let mut edges: Vec<(u32, u32)> = g_full.edges().to_vec();
    Rng::new(cfg.seed ^ 0x5417).shuffle(&mut edges);
    let cut = ((edges.len() as f64) * cfg.initial_frac).round() as usize;
    let (initial_edges, stream) = edges.split_at(cut.min(edges.len()));
    let mut b = GraphBuilder::with_capacity(n, initial_edges.len());
    for &(u, v) in initial_edges {
        b.add_edge(u, v);
    }
    let initial = b.build();
    let batches = trace_batches(cfg, stream, n);

    let params = SvcParams {
        rebuild_threshold: cfg.rebuild_threshold,
        fsync: cfg.fsync,
        snapshot_every: cfg.snapshot_every,
        ..SvcParams::default()
    };
    let svc = ConnectivityService::create(dir, initial.clone(), params)
        .expect("cannot create durable store");

    let mut commit_ns: Vec<u64> = Vec::with_capacity(cfg.batches);
    let t0 = Instant::now();
    for chunk in &batches {
        let tb = Instant::now();
        svc.apply_batch(chunk).wait().expect("writer died");
        commit_ns.push(tb.elapsed().as_nanos() as u64);
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Ground truth: sequential BFS on the accumulated graph, independent
    // of the concurrent structures under test.
    let applied: Vec<(u32, u32)> = batches.iter().flatten().copied().collect();
    let union = Graph::from_csr_plus_edges(&initial, &applied);
    let truth = components(&union);
    let live_ok = same_partition(svc.latest().labels(), &truth);
    drop(svc); // clean shutdown: final WAL sync, writer joined

    let t1 = Instant::now();
    let recovered = ConnectivityService::open(dir, params).expect("recovery failed");
    let reopen_ms = t1.elapsed().as_secs_f64() * 1e3;
    let recovered_epoch = recovered.epoch();
    let recovered_ok = same_partition(recovered.latest().labels(), &truth);
    drop(recovered);

    let wal_bytes = std::fs::metadata(dir.join("wal.bin"))
        .map(|m| m.len())
        .unwrap_or(0);
    let snapshots = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.starts_with("snap-") && name.ends_with(".bin")
                })
                .count()
        })
        .unwrap_or(0);

    commit_ns.sort_unstable();
    DurableOutcome {
        workload: format!("{}/{}", cfg.family, cfg.n),
        fsync: cfg.fsync.to_string(),
        n,
        m_initial: initial.m(),
        m_final: union.m(),
        batches: cfg.batches,
        batch: cfg.batch,
        snapshot_every: cfg.snapshot_every,
        elapsed_ms,
        commits_per_s: cfg.batches as f64 / (elapsed_ms / 1e3),
        commit_p50_us: percentile_us(&commit_ns, 0.50),
        commit_p90_us: percentile_us(&commit_ns, 0.90),
        commit_p99_us: percentile_us(&commit_ns, 0.99),
        wal_bytes,
        snapshots,
        reopen_ms,
        recovered_epoch,
        verified: live_ok && recovered_ok && recovered_epoch == cfg.batches as u64,
    }
}

/// Serialize outcomes into the `BENCH_PR7.json` document.
pub fn durable_report_json(emitter: &str, smoke: bool, outcomes: &[DurableOutcome]) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rows: Vec<String> = outcomes.iter().map(DurableOutcome::to_json).collect();
    format!(
        "{{\n  \"report\": \"logdiam durable connectivity service baseline\",\n  \"emitter\": \"{emitter}\",\n  \"smoke\": {smoke},\n  \"host_cores\": {cores},\n  \"measurements\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    ")
    )
}

/// A scratch directory under the system temp dir, unique per process and
/// tag; any stale leftover from a crashed previous run is removed first.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logdiam_durable_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The three-policy smoke: one short trace per fsync policy, verification
/// and the wall-clock cap enforced, report written. Shared by
/// `bench_report --smoke` (the CI guard) and `svc_driver --durable --smoke`.
pub fn run_durable_smoke(emitter: &str, out_path: &str) -> Vec<DurableOutcome> {
    let policies = [FsyncPolicy::Always, FsyncPolicy::Batch(8), FsyncPolicy::Off];
    let t0 = Instant::now();
    let outcomes: Vec<DurableOutcome> = policies
        .iter()
        .enumerate()
        .map(|(i, &fsync)| {
            let cfg = DurableConfig::smoke(fsync);
            eprintln!(
                "durable smoke: {}/{} × {} batches under fsync={}...",
                cfg.family, cfg.n, cfg.batches, fsync
            );
            let dir = scratch_dir(&format!("smoke{i}"));
            let out = run_durable_trace(&cfg, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            out
        })
        .collect();
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    for out in &outcomes {
        assert!(
            out.verified,
            "durable smoke: fsync={} row failed verification (epoch {})",
            out.fsync, out.recovered_epoch
        );
    }
    assert!(
        total_ms < DURABLE_SMOKE_CAP_MS,
        "durable smoke exceeded its wall-clock cap: {total_ms:.0} ms (cap {DURABLE_SMOKE_CAP_MS:.0} ms)"
    );
    std::fs::write(out_path, durable_report_json(emitter, true, &outcomes))
        .expect("cannot write durable smoke report");
    eprintln!(
        "durable smoke: OK — commit p50 {:.1} µs (always) vs {:.1} µs (off), wrote {out_path}",
        outcomes[0].commit_p50_us, outcomes[2].commit_p50_us
    );
    outcomes
}

// ---------------------------------------------------------------------
// crash_probe workload: deterministic, shared by parent and child.
// ---------------------------------------------------------------------

/// The crash probe's genesis graph: an edgeless vertex set, so every
/// component merge observed after recovery is attributable to a WAL
/// record that survived the abort.
pub fn probe_initial(n: usize) -> Graph {
    GraphBuilder::new(n).build()
}

/// The crash probe's write stream: `total` batches of `batch` seeded
/// pairs each. Pure function of `(n, total, batch, seed)` — the child
/// applies a prefix before aborting, the parent replays the same prefix
/// into a one-shot recompute to judge the recovered labels.
pub fn probe_batches(n: usize, total: usize, batch: usize, seed: u64) -> Vec<Vec<(u32, u32)>> {
    let mut rng = Rng::new(seed ^ 0xC4A5_4B0B);
    (0..total)
        .map(|_| {
            (0..batch)
                .map(|_| (rng.below(n as u64) as u32, rng.below(n as u64) as u32))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_durable_trace_verifies_under_each_policy() {
        for (i, fsync) in [FsyncPolicy::Off, FsyncPolicy::Batch(4), FsyncPolicy::Always]
            .into_iter()
            .enumerate()
        {
            let mut cfg = DurableConfig::smoke(fsync);
            cfg.n = 400;
            cfg.batches = 10;
            cfg.batch = 16;
            cfg.rebuild_threshold = 32;
            cfg.snapshot_every = 4;
            let dir = scratch_dir(&format!("unit{i}"));
            let out = run_durable_trace(&cfg, &dir);
            let _ = std::fs::remove_dir_all(&dir);
            assert!(out.verified, "fsync={} failed", out.fsync);
            assert_eq!(out.recovered_epoch, 10);
            assert!(out.wal_bytes > 0);
            assert!(out.snapshots >= 1);
            assert!(out.commit_p99_us >= out.commit_p50_us);
        }
    }

    #[test]
    fn probe_workload_is_deterministic() {
        let a = probe_batches(500, 6, 32, 42);
        let b = probe_batches(500, 6, 32, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|c| c.len() == 32));
        assert!(a
            .iter()
            .flatten()
            .all(|&(u, v)| (u as usize) < 500 && (v as usize) < 500));
    }
}
