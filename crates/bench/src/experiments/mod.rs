//! The experiment suite (DESIGN.md §4). Each `eNN` module regenerates one
//! "table/figure" of the reproduction.

pub mod common;
mod e01;
mod e02;
mod e03;
mod e04;
mod e05;
mod e06;
mod e07;
mod e08;
mod e09;
mod e10;
mod e11;
mod e12;
mod e13;
mod e14;

use crate::table::Table;
use crate::Config;

/// All experiment ids in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
];

/// Run one experiment by id.
pub fn run(id: &str, cfg: &Config) -> Vec<Table> {
    match id {
        "e1" => e01::run(cfg),
        "e2" => e02::run(cfg),
        "e3" => e03::run(cfg),
        "e4" => e04::run(cfg),
        "e5" => e05::run(cfg),
        "e6" => e06::run(cfg),
        "e7" => e07::run(cfg),
        "e8" => e08::run(cfg),
        "e9" => e09::run(cfg),
        "e10" => e10::run(cfg),
        "e11" => e11::run(cfg),
        "e12" => e12::run(cfg),
        "e13" => e13::run(cfg),
        "e14" => e14::run(cfg),
        other => panic!("unknown experiment id {other:?} (expected one of {ALL:?})"),
    }
}
