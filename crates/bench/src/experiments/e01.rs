//! E1 — Theorem 3 headline: EXPAND-MAXLINK rounds grow like
//! `O(log d + log log_{m/n} n)`.
//!
//! Workload: clique chains sweep the diameter `d` over two orders of
//! magnitude at (roughly) fixed density; a hairy path repeats the sweep
//! with low-degree shortest paths. Expected shape: rounds ≈
//! `a·log₂ d + b` with a small constant slope `a`, *not* `Θ(log n)`.

use super::common::{diameter_of, faster_runs, mean, slope};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use logdiam_cc::theorem3::FasterParams;

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let params = FasterParams::default();
    let seeds = if cfg.full { 0..5u64 } else { 0..3u64 };
    let ks: &[usize] = if cfg.full {
        &[2, 4, 8, 16, 32, 64, 128, 256, 512]
    } else {
        &[2, 4, 8, 16, 32, 64, 128, 256]
    };

    let mut t = Table::new(
        "E1 — Theorem 3: rounds vs diameter (clique chains, s = 8)",
        "Paper: O(log d + log log_{m/n} n) rounds. Expect rounds ≈ a·log₂d + b \
         with small slope a; the final column is the Theorem-1 postprocess phases \
         (the additive log log term).",
        &[
            "k",
            "n",
            "m",
            "d",
            "log2 d",
            "rounds (mean)",
            "max level",
            "post phases",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &k in ks {
        let g = gen::clique_chain(k, 8);
        let d = diameter_of(&g);
        let reports = faster_runs(&g, &params, seeds.clone());
        let rounds: Vec<f64> = reports.iter().map(|r| r.run.rounds as f64).collect();
        let lvl = reports.iter().map(|r| r.run.max_level()).max().unwrap_or(0);
        let post = mean(
            &reports
                .iter()
                .map(|r| r.post.rounds as f64)
                .collect::<Vec<_>>(),
        );
        let log2d = (d.max(1) as f64).log2();
        xs.push(log2d);
        ys.push(mean(&rounds));
        t.row(vec![
            k.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            d.to_string(),
            f(log2d),
            f(mean(&rounds)),
            lvl.to_string(),
            f(post),
        ]);
    }
    let a = slope(&xs, &ys);
    t.note = format!(
        "{} Measured slope a = {:.2} rounds per doubling of d.",
        t.note, a
    );

    let mut t2 = Table::new(
        "E1b — same sweep on hairy paths (low-degree spine, w = 6)",
        "Same shape expected when shortest paths run through low-degree vertices.",
        &["len", "n", "m", "d", "rounds (mean)"],
    );
    let lens: &[usize] = if cfg.full {
        &[4, 8, 16, 32, 64, 128, 256]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    for &len in lens {
        let g = gen::hairy_clique_path(len, 6, cfg.seed);
        let d = diameter_of(&g);
        let reports = faster_runs(&g, &params, seeds.clone());
        let rounds: Vec<f64> = reports.iter().map(|r| r.run.rounds as f64).collect();
        t2.row(vec![
            len.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            d.to_string(),
            f(mean(&rounds)),
        ]);
    }
    vec![t, t2]
}
