//! E10 — ablations of the paper's design choices (§1.2.2).
//!
//! Fixed workload (clique chain: both a real diameter and real collisions),
//! one knob moved at a time. Expected: correctness always (the machinery is
//! self-correcting); rounds degrade when a load-bearing mechanism is
//! removed — most visibly MAXLINK iterations and the collision-triggered
//! level-ups driven by budget growth κ.

use super::common::{faster_runs, mean};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use logdiam_cc::theorem3::FasterParams;

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let g = gen::clique_chain(if cfg.full { 128 } else { 64 }, 6);
    let seeds = if cfg.full { 0..5u64 } else { 0..3u64 };

    let variants: Vec<(&str, FasterParams)> = vec![
        (
            "default (κ=1.5, 2×MAXLINK, sampling on)",
            FasterParams::default(),
        ),
        (
            "no sampling (Step 2 off)",
            FasterParams {
                enable_sampling: false,
                ..Default::default()
            },
        ),
        (
            "1 MAXLINK iteration",
            FasterParams {
                maxlink_iters: 1,
                ..Default::default()
            },
        ),
        (
            "κ = 2 (faster budget growth)",
            FasterParams {
                kappa: 2.0,
                ..Default::default()
            },
        ),
        (
            "κ = 4 (aggressive budgets)",
            FasterParams {
                kappa: 4.0,
                ..Default::default()
            },
        ),
        (
            "aggressive sampling (cap 0.5, exp 0.1)",
            FasterParams {
                sample_cap: 0.5,
                sample_exp: 0.1,
                ..Default::default()
            },
        ),
        (
            "tiny b₁ = 4",
            FasterParams {
                b1: 4,
                ..Default::default()
            },
        ),
    ];

    let mut t = Table::new(
        format!(
            "E10 — ablations on clique_chain (n = {}, m = {}, d = {})",
            g.n(),
            g.m(),
            super::common::diameter_of(&g)
        ),
        "One knob per row; correctness is asserted for every run. Watch the \
         rounds column for which mechanisms carry the log-d bound.",
        &["variant", "rounds", "post phases", "max level", "cap hits"],
    );
    for (name, params) in variants {
        let reports = faster_runs(&g, &params, seeds.clone());
        let rounds = mean(
            &reports
                .iter()
                .map(|r| r.run.rounds as f64)
                .collect::<Vec<_>>(),
        );
        let post = mean(
            &reports
                .iter()
                .map(|r| r.post.rounds as f64)
                .collect::<Vec<_>>(),
        );
        let lvl = reports.iter().map(|r| r.run.max_level()).max().unwrap_or(0);
        let caps = reports
            .iter()
            .filter(|r| r.run.stop == logdiam_cc::metrics::StopReason::RoundCap)
            .count();
        t.row(vec![
            name.to_string(),
            f(rounds),
            f(post),
            lvl.to_string(),
            caps.to_string(),
        ]);
    }
    vec![t]
}
