//! E13 (supplementary) — why hashing: prefix-sum compaction pays
//! `Θ(log n)` simulated steps where hashing-based approximate compaction
//! stays flat.
//!
//! This is the quantitative form of the paper's central argument (§1):
//! the MPC algorithms lean on O(1)-round sorting/prefix sums, which cost
//! `Ω(log n / log log n)` on a CRCW PRAM [BH89]; limited-collision hashing
//! replaces them. Measured: simulated steps of exact compaction via
//! Blelloch scan vs retry rounds (×2 steps) of hash compaction, `n`
//! doubling.

use crate::table::Table;
use crate::Config;
use pram_kit::compaction::{compact, CompactionMode};
use pram_kit::prefix::compact_by_prefix_sum;
use pram_sim::{Pram, WritePolicy};

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let mut t = Table::new(
        "E13 — compaction cost: prefix-sum vs limited-collision hashing",
        "Prefix-sum steps grow as 2·log₂ n exactly. Our hash-retry compaction \
         grows like log k in the worst case but stays well below the scan \
         (Goodrich's full algorithm reaches O(log* n), and with the n·log n \
         processor slack of Lemma D.2 it is O(1) — the mode the Theorem-3 \
         driver charges).",
        &[
            "n",
            "k (distinguished)",
            "prefix-sum steps",
            "hash-compaction steps",
        ],
    );
    let sizes: &[usize] = if cfg.full {
        &[1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18]
    } else {
        &[1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16]
    };
    for &n in sizes {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(cfg.seed));
        let active = pram.alloc_filled(n, 0);
        let mut k = 0usize;
        for v in (0..n).step_by(5) {
            pram.set(active, v, 1);
            k += 1;
        }
        let (_, total, ps_steps) = compact_by_prefix_sum(&mut pram, active);
        assert_eq!(total as usize, k);

        let mut pram2 = Pram::new(WritePolicy::ArbitrarySeeded(cfg.seed));
        let active2 = pram2.alloc_filled(n, 0);
        for v in (0..n).step_by(5) {
            pram2.set(active2, v, 1);
        }
        let res = compact(&mut pram2, active2, cfg.seed, CompactionMode::Measured)
            .expect("hash compaction failed");
        let hash_steps = 2 * res.rounds;
        t.row(vec![
            n.to_string(),
            k.to_string(),
            ps_steps.to_string(),
            hash_steps.to_string(),
        ]);
    }
    vec![t]
}
