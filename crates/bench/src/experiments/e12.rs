//! E12 — Lemma 3.13/D.16: once the diameter is ≤ 1, the loop winds down
//! and breaks within `O(L + log L)` further rounds.
//!
//! Direct measurement: run Theorem 3 on graphs that *start* at diameter
//! ≤ 2 (cliques, stars, dense G(n,m)) — the whole run is then the
//! "tail"; its round count must be a small constant independent of n.

use super::common::{faster_runs, mean};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use logdiam_cc::theorem3::FasterParams;

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let params = FasterParams::default();
    let seeds = if cfg.full { 0..5u64 } else { 0..3u64 };
    let mut t = Table::new(
        "E12 — tail behaviour on diameter ≤ 2 inputs",
        "With d = O(1) the whole run is the Lemma 3.13 wind-down: rounds must \
         be a small constant, flat in n (the log log n term hides in the \
         Theorem-1 postprocess column).",
        &["graph", "n", "d", "rounds (mean)", "post phases (mean)"],
    );
    let scale = if cfg.full { 2 } else { 1 };
    let graphs: Vec<(&str, cc_graph::Graph, u32)> = vec![
        ("complete(64)", gen::complete(64), 1),
        ("complete(256)", gen::complete(256), 1),
        ("star(1000)", gen::star(1000 * scale), 2),
        ("star(8000)", gen::star(8000 * scale), 2),
        (
            "gnm(2000, 64n)",
            gen::gnm(2000 * scale, 128_000 * scale, cfg.seed),
            2,
        ),
    ];
    for (name, g, d) in &graphs {
        let reports = faster_runs(g, &params, seeds.clone());
        let rounds = mean(
            &reports
                .iter()
                .map(|r| r.run.rounds as f64)
                .collect::<Vec<_>>(),
        );
        let post = mean(
            &reports
                .iter()
                .map(|r| r.post.rounds as f64)
                .collect::<Vec<_>>(),
        );
        t.row(vec![
            name.to_string(),
            g.n().to_string(),
            d.to_string(),
            f(rounds),
            f(post),
        ]);
    }
    vec![t]
}
