//! E7 — the paper's positioning: beat `Θ(log n)` algorithms on
//! small-diameter graphs.
//!
//! Two sweeps:
//! * rounds vs `d` at fixed `n` — Theorem 3 should grow with `log d`
//!   while Awerbuch–Shiloach / Vanilla / label propagation sit near their
//!   `log n` plateau;
//! * rounds vs `n` at fixed small `d` — baselines grow with `log n`,
//!   Theorem 3 stays flat-ish (the crossover argument of §1).

use super::common::{diameter_of, faster_runs, mean};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use cc_graph::Graph;
use logdiam_cc::baselines::{awerbuch_shiloach, labelprop};
use logdiam_cc::theorem3::FasterParams;
use logdiam_cc::vanilla::vanilla;
use logdiam_cc::verify::check_labels;
use pram_sim::{Pram, WritePolicy};

fn baseline_rounds(g: &Graph, seeds: std::ops::Range<u64>) -> (f64, f64, f64) {
    let mut a = Vec::new();
    let mut v = Vec::new();
    let mut l = Vec::new();
    for seed in seeds {
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let r = awerbuch_shiloach(&mut pram, g);
        check_labels(g, &r.labels).unwrap();
        a.push(r.rounds as f64);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let r = vanilla(&mut pram, g, seed);
        check_labels(g, &r.labels).unwrap();
        v.push(r.rounds as f64);
        let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
        let r = labelprop(&mut pram, g);
        check_labels(g, &r.labels).unwrap();
        l.push(r.rounds as f64);
    }
    (mean(&a), mean(&v), mean(&l))
}

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let params = FasterParams::default();
    let seeds = if cfg.full { 0..4u64 } else { 0..2u64 };

    let mut t = Table::new(
        "E7 — rounds vs diameter at fixed n (clique chains, n = 1024)",
        "Theorem 3 rounds should track log₂ d; the O(log n) baselines are \
         roughly flat in d (their cost is set by n). Columns report outer \
         rounds/phases of each algorithm (each O(1) simulated steps except \
         where noted in DESIGN.md).",
        &[
            "k",
            "d",
            "T3 rounds",
            "T3+post",
            "AS",
            "Vanilla",
            "LabelProp",
        ],
    );
    for &k in &[2usize, 8, 32, 128] {
        let s = 1024 / k;
        let g = gen::clique_chain(k, s.max(2));
        let d = diameter_of(&g);
        let reports = faster_runs(&g, &params, seeds.clone());
        let t3 = mean(
            &reports
                .iter()
                .map(|r| r.run.rounds as f64)
                .collect::<Vec<_>>(),
        );
        let t3p = mean(
            &reports
                .iter()
                .map(|r| (r.run.rounds + r.post.rounds) as f64)
                .collect::<Vec<_>>(),
        );
        let (a, v, l) = baseline_rounds(&g, seeds.clone());
        t.row(vec![
            k.to_string(),
            d.to_string(),
            f(t3),
            f(t3p),
            f(a),
            f(v),
            f(l),
        ]);
    }

    let mut t2 = Table::new(
        "E7b — rounds vs n at fixed small diameter (G(n, 8n))",
        "Baselines grow with log n; Theorem 3 stays nearly flat (its cost is \
         log d + log log n).",
        &["n", "d(≥)", "T3 rounds", "AS", "Vanilla", "LabelProp"],
    );
    let ns: &[usize] = if cfg.full {
        &[512, 2048, 8192, 32768]
    } else {
        &[512, 2048, 8192]
    };
    for &n in ns {
        let g = gen::gnm(n, 8 * n, cfg.seed ^ n as u64);
        let d = diameter_of(&g);
        let reports = faster_runs(&g, &params, seeds.clone());
        let t3 = mean(
            &reports
                .iter()
                .map(|r| r.run.rounds as f64)
                .collect::<Vec<_>>(),
        );
        let (a, v, l) = baseline_rounds(&g, seeds.clone());
        t2.row(vec![n.to_string(), d.to_string(), f(t3), f(a), f(v), f(l)]);
    }
    vec![t, t2]
}
