//! E11 — Lemma B.8: the EXPAND inner loop runs `O(log d)` rounds.
//!
//! Workload: diameter sweep at generous table sizes so nothing goes
//! dormant early. Measured: the maximum per-phase expansion round count of
//! a Theorem-1 run. Expected: ≈ `log₂ d + O(1)`.

use super::common::{diameter_of, mean, theorem1_runs};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use logdiam_cc::theorem1::Theorem1Params;

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let params = Theorem1Params::default();
    let seeds = if cfg.full { 0..4u64 } else { 0..2u64 };
    let mut t = Table::new(
        "E11 — EXPAND inner rounds vs diameter (cycles)",
        "Lemma B.7/B.8: after i clean rounds a table holds B(u, 2^i), so the \
         loop runs ≈ log₂ d rounds. Measured: max expansion rounds over the \
         phases of a Theorem-1 run.",
        &["n", "d", "log2 d", "max expand rounds (mean)"],
    );
    let sizes: &[usize] = if cfg.full {
        &[8, 16, 32, 64, 128, 256, 512, 1024, 2048]
    } else {
        &[8, 32, 128, 512, 2048]
    };
    for &n in sizes {
        let g = gen::cycle(n);
        let d = diameter_of(&g);
        let reports = theorem1_runs(&g, &params, seeds.clone());
        let rounds: Vec<f64> = reports
            .iter()
            .map(|r| {
                r.per_round
                    .iter()
                    .map(|p| p.expand_rounds)
                    .max()
                    .unwrap_or(0) as f64
            })
            .collect();
        t.row(vec![
            n.to_string(),
            d.to_string(),
            f((d.max(1) as f64).log2()),
            f(mean(&rounds)),
        ]);
    }
    vec![t]
}
