//! E2 — Theorem 1: phases shrink double-exponentially with density.
//!
//! Workload: `G(n, m)` with `m/n ∈ {2..128}` at fixed `n`. Expected shape:
//! phases fall like `log log_{m/n} n` as density grows, and the per-phase
//! ongoing count of a single run decays double-exponentially.

use super::common::{mean, theorem1_runs};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use logdiam_cc::theorem1::Theorem1Params;

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let n = if cfg.full { 8192 } else { 4096 };
    let params = Theorem1Params::default();
    let seeds = if cfg.full { 0..5u64 } else { 0..3u64 };

    let mut t = Table::new(
        format!("E2 — Theorem 1: phases vs density (G(n, m), n = {n})"),
        "Paper: O(log log_{m/n} n) phases. Expect the phase count to *fall* \
         as m/n grows, tracking log(log n / log(m/n)) + O(1).",
        &[
            "m/n",
            "m",
            "phases (mean)",
            "prepare",
            "total",
            "log log_{m/n} n",
        ],
    );
    for &dens in &[2usize, 4, 8, 16, 32, 64, 128] {
        let g = gen::gnm(n, n * dens, cfg.seed ^ dens as u64);
        let reports = theorem1_runs(&g, &params, seeds.clone());
        let phases = mean(&reports.iter().map(|r| r.rounds as f64).collect::<Vec<_>>());
        let prep = mean(
            &reports
                .iter()
                .map(|r| r.prepare_rounds as f64)
                .collect::<Vec<_>>(),
        );
        let loglog = ((n as f64).ln() / (dens as f64).ln()).ln().max(0.0);
        t.row(vec![
            dens.to_string(),
            (n * dens).to_string(),
            f(phases),
            f(prep),
            f(phases + prep),
            f(loglog),
        ]);
    }

    // "Figure": double-exponential decay of n' within one dense run.
    let mut t2 = Table::new(
        "E2b — per-phase ongoing vertices (single run, m/n = 32)",
        "Paper §A.1: leader contraction with degree-b guarantees shrinks n' by \
         a b^Ω(1) factor per phase — the decay accelerates phase over phase \
         (double-exponential progress).",
        &["phase", "ongoing n'", "shrink factor"],
    );
    let g = gen::gnm(n, n * 32, cfg.seed);
    let reports = theorem1_runs(&g, &params, 0..1);
    let mut prev = n as f64;
    for r in &reports[0].per_round {
        let shrink = if r.ongoing > 0 {
            prev / r.ongoing as f64
        } else {
            f64::INFINITY
        };
        t2.row(vec![
            r.round.to_string(),
            r.ongoing.to_string(),
            if r.ongoing > 0 {
                f(shrink)
            } else {
                "∞".into()
            },
        ]);
        prev = r.ongoing.max(1) as f64;
    }
    vec![t, t2]
}
