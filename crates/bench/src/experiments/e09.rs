//! E9 — near work-efficiency: simulated work per edge stays bounded.
//!
//! Measured: `stats.work / m` (processor-steps per edge) for Theorem 3 on
//! a size sweep at fixed density and diameter profile. Expected shape: a
//! slowly-moving constant (the paper's O(m) processors × O(log d +
//! log log n) time gives work/m ≈ the round count, not a growing power).

use super::common::{faster_runs, mean};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use logdiam_cc::theorem3::FasterParams;

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let params = FasterParams::default();
    let seeds = if cfg.full { 0..3u64 } else { 0..2u64 };
    let ns: &[usize] = if cfg.full {
        &[1000, 2000, 4000, 8000, 16000]
    } else {
        &[1000, 2000, 4000, 8000]
    };

    let mut t = Table::new(
        "E9 — Theorem 3 work per edge (G(n, 4n))",
        "work = Σ active processors over steps. Expect work/m ≈ c · rounds \
         (near work-efficiency), with c a small constant; work/(m·rounds) \
         should be flat in n.",
        &[
            "n",
            "m",
            "rounds",
            "work/m",
            "work/(m·rounds)",
            "max procs/m",
        ],
    );
    for &n in ns {
        let g = gen::gnm(n, 4 * n, cfg.seed ^ n as u64);
        let reports = faster_runs(&g, &params, seeds.clone());
        let rounds = mean(
            &reports
                .iter()
                .map(|r| r.run.rounds as f64)
                .collect::<Vec<_>>(),
        );
        let wpm = mean(
            &reports
                .iter()
                .map(|r| r.run.stats.work as f64 / g.m() as f64)
                .collect::<Vec<_>>(),
        );
        let mp = mean(
            &reports
                .iter()
                .map(|r| r.run.stats.max_procs as f64 / g.m() as f64)
                .collect::<Vec<_>>(),
        );
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            f(rounds),
            f(wpm),
            f(wpm / rounds.max(1.0)),
            f(mp),
        ]);
    }
    vec![t]
}
