//! E14 (supplementary) — ARBITRARY means *arbitrary*: write-resolution
//! sensitivity.
//!
//! The paper's machine only guarantees that *some* concurrent writer
//! wins. This experiment runs Theorem 3 under five different resolution
//! rules (two seeded-arbitrary machines, both PRIORITY orders, and racing
//! host threads). Expected: correct labels under all of them (asserted)
//! and round counts in the same narrow band — the algorithm's performance
//! does not secretly depend on a favourable resolution.

use super::common::diameter_of;
use crate::table::Table;
use crate::Config;
use cc_graph::gen;
use logdiam_cc::theorem3::{faster_cc, FasterParams};
use logdiam_cc::verify::check_labels;
use pram_sim::{Pram, WritePolicy};

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let g = gen::clique_chain(if cfg.full { 64 } else { 32 }, 8);
    let params = FasterParams::default();
    let mut t = Table::new(
        format!(
            "E14 — write-policy sensitivity on clique_chain (n = {}, d = {})",
            g.n(),
            diameter_of(&g)
        ),
        "Correctness is asserted per run; rounds should sit in a narrow band \
         across resolution rules. CREW-checked additionally counts the \
         concurrent writes the algorithm performs — non-zero conflicts show \
         the algorithm genuinely needs the CRCW model.",
        &["policy", "rounds", "post phases", "write conflicts"],
    );
    let policies: Vec<(String, WritePolicy)> = vec![
        ("arbitrary(seed=1)".into(), WritePolicy::ArbitrarySeeded(1)),
        ("arbitrary(seed=2)".into(), WritePolicy::ArbitrarySeeded(2)),
        ("priority(min)".into(), WritePolicy::PriorityMin),
        ("priority(max)".into(), WritePolicy::PriorityMax),
        ("racy".into(), WritePolicy::Racy),
        ("crew-checked".into(), WritePolicy::CrewChecked(1)),
    ];
    for (name, policy) in policies {
        let mut pram = Pram::new(policy);
        let r = faster_cc(&mut pram, &g, cfg.seed, &params);
        check_labels(&g, &r.run.labels).expect("E14: wrong labels");
        t.row(vec![
            name,
            r.run.rounds.to_string(),
            r.post.rounds.to_string(),
            r.run.stats.write_conflicts.to_string(),
        ]);
    }
    vec![t]
}
