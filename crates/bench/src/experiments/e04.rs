//! E4 — Lemma 3.10/D.13: total space stays `O(m)`.
//!
//! Workload: `G(n, 4n)` with `n` doubling. Measured: the peak live table
//! words and the machine arena peak, both divided by `m`. Expected shape:
//! both ratios flat (bounded by a constant) as `n` grows.

use super::common::{faster_runs, mean};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use logdiam_cc::theorem3::FasterParams;

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let params = FasterParams::default();
    let seeds = if cfg.full { 0..3u64 } else { 0..2u64 };
    let ns: &[usize] = if cfg.full {
        &[1000, 2000, 4000, 8000, 16000, 32000]
    } else {
        &[1000, 2000, 4000, 8000]
    };

    let mut t = Table::new(
        "E4 — Theorem 3 space: peak table words / m (G(n, 4n))",
        "Paper: O(m) processors/space over all rounds. Expect flat ratios as n \
         doubles (constants absorb power-of-two rounding and the 2-table \
         double-buffering).",
        &["n", "m", "peak table words/m", "peak arena words/m"],
    );
    for &n in ns {
        let g = gen::gnm(n, 4 * n, cfg.seed ^ n as u64);
        let reports = faster_runs(&g, &params, seeds.clone());
        let tw = mean(
            &reports
                .iter()
                .map(|r| r.table_peak_words as f64 / g.m() as f64)
                .collect::<Vec<_>>(),
        );
        let aw = mean(
            &reports
                .iter()
                .map(|r| r.run.stats.peak_words as f64 / g.m() as f64)
                .collect::<Vec<_>>(),
        );
        t.row(vec![n.to_string(), g.m().to_string(), f(tw), f(aw)]);
    }
    vec![t]
}
