//! Shared measurement helpers.

use cc_graph::seq::{diameter_lower_bound, max_component_diameter_exact};
use cc_graph::Graph;
use logdiam_cc::metrics::RunReport;
use logdiam_cc::theorem1::{self, Theorem1Params};
use logdiam_cc::theorem3::{faster_cc, FasterParams, FasterReport};
use logdiam_cc::verify::check_labels;
use pram_sim::{Pram, WritePolicy};

/// Mean of a sample.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Maximum component diameter: exact up to ~4000 vertices, double-sweep
/// lower bound beyond (exact on the tree-like families used there).
pub fn diameter_of(g: &Graph) -> u32 {
    if g.n() <= 4000 {
        max_component_diameter_exact(g)
    } else {
        diameter_lower_bound(g)
    }
}

/// Run Theorem 3 over `seeds` seeds; labels verified against ground truth
/// every time (an experiment aborts loudly on a wrong answer).
pub fn faster_runs(
    g: &Graph,
    params: &FasterParams,
    seeds: std::ops::Range<u64>,
) -> Vec<FasterReport> {
    seeds
        .map(|seed| {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let report = faster_cc(&mut pram, g, seed, params);
            check_labels(g, &report.run.labels).expect("Theorem 3 produced wrong labels");
            report
        })
        .collect()
}

/// Run Theorem 1 over `seeds` seeds, verified.
pub fn theorem1_runs(
    g: &Graph,
    params: &Theorem1Params,
    seeds: std::ops::Range<u64>,
) -> Vec<RunReport> {
    seeds
        .map(|seed| {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let report = theorem1::connected_components(&mut pram, g, seed, params);
            check_labels(g, &report.labels).expect("Theorem 1 produced wrong labels");
            report
        })
        .collect()
}

/// Least-squares slope of `y` against `x`.
pub fn slope(x: &[f64], y: &[f64]) -> f64 {
    let (mx, my) = (mean(x), mean(y));
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

/// Wall-clock of `f` in milliseconds (median of `reps`).
pub fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            drop(out);
            dt
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_slope() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        let s = slope(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]);
        assert!((s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn diameter_dispatch() {
        let g = cc_graph::gen::path(50);
        assert_eq!(diameter_of(&g), 49);
        let big = cc_graph::gen::path(5000);
        assert_eq!(diameter_of(&big), 4999); // double sweep exact on paths
    }
}
