//! E6 — "with good probability": empirical success over many seeds.
//!
//! Every algorithm run in this repository is verified against ground
//! truth, so "failure" here can only mean (a) a wrong labeling — never
//! observed, the harness would abort — or (b) hitting the safety round
//! cap before the paper's break condition (the run then falls through to
//! the always-correct postprocess). Expected: 0 wrong outputs, round-cap
//! rate ~0.

use crate::table::Table;
use crate::Config;
use cc_graph::gen;
use logdiam_cc::metrics::StopReason;
use logdiam_cc::theorem1::{self, Theorem1Params};
use logdiam_cc::theorem3::{faster_cc, FasterParams};
use logdiam_cc::verify::check_labels;
use pram_sim::{Pram, WritePolicy};

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let trials = if cfg.full { 100 } else { 40 };
    let mut t = Table::new(
        format!("E6 — success probability over {trials} seeds per graph"),
        "Wrong outputs abort the harness; 'cap hits' counts runs stopped by the \
         safety round cap instead of the paper's break condition.",
        &["graph", "algorithm", "trials", "wrong labels", "cap hits"],
    );

    let graphs: Vec<(&str, cc_graph::Graph)> = vec![
        ("gnm(1000,3000)", gen::gnm(1000, 3000, cfg.seed)),
        ("clique_chain(32,6)", gen::clique_chain(32, 6)),
        ("grid(16,24)", gen::grid(16, 24)),
        (
            "mixture",
            gen::union_all(&[gen::path(64), gen::star(40), gen::gnm(200, 500, 1)]),
        ),
    ];

    for (name, g) in &graphs {
        // Theorem 3.
        let mut caps = 0;
        for seed in 0..trials as u64 {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let r = faster_cc(&mut pram, g, seed, &FasterParams::default());
            check_labels(g, &r.run.labels).expect("E6: wrong labels (Theorem 3)");
            if r.run.stop == StopReason::RoundCap {
                caps += 1;
            }
        }
        t.row(vec![
            name.to_string(),
            "Theorem 3".into(),
            trials.to_string(),
            "0".into(),
            caps.to_string(),
        ]);
        // Theorem 1.
        let mut caps = 0;
        for seed in 0..trials as u64 {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let r = theorem1::connected_components(&mut pram, g, seed, &Theorem1Params::default());
            check_labels(g, &r.labels).expect("E6: wrong labels (Theorem 1)");
            if r.stop == StopReason::RoundCap {
                caps += 1;
            }
        }
        t.row(vec![
            name.to_string(),
            "Theorem 1".into(),
            trials.to_string(),
            "0".into(),
            caps.to_string(),
        ]);
    }
    vec![t]
}
