//! E5 — Lemma 3.19/D.23: levels stay below `L = O(max(2, log log_{m/n} n))`.
//!
//! Workload: the E4 sweep plus a density sweep. Measured: the maximum
//! level any vertex reaches. Expected shape: grows (at most) like
//! `log log n`, far below the schedule cap.

use super::common::{faster_runs, mean};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use logdiam_cc::theorem3::FasterParams;

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let params = FasterParams::default();
    let seeds = if cfg.full { 0..5u64 } else { 0..3u64 };

    let mut t = Table::new(
        "E5 — Theorem 3 levels: max level vs n (G(n, 4n))",
        "Paper: max level ≤ L = O(max(2, log log_{m/n} n)) whp. Expect the \
         measured max level to move like log log n (i.e. barely).",
        &["n", "max level (mean)", "max level (max)", "log2 log2 n"],
    );
    let ns: &[usize] = if cfg.full {
        &[500, 1000, 2000, 4000, 8000, 16000, 32000]
    } else {
        &[500, 1000, 2000, 4000, 8000]
    };
    for &n in ns {
        let g = gen::gnm(n, 4 * n, cfg.seed ^ n as u64);
        let reports = faster_runs(&g, &params, seeds.clone());
        let levels: Vec<f64> = reports.iter().map(|r| r.run.max_level() as f64).collect();
        let lmax = levels.iter().cloned().fold(0.0, f64::max);
        let loglog = (n as f64).log2().log2();
        t.row(vec![n.to_string(), f(mean(&levels)), f(lmax), f(loglog)]);
    }

    let mut t2 = Table::new(
        "E5b — max level vs density (n = 2000)",
        "Denser graphs start with bigger budgets, so fewer levels are needed.",
        &["m/n", "max level (mean)"],
    );
    for &dens in &[2usize, 8, 32, 128] {
        let g = gen::gnm(2000, 2000 * dens, cfg.seed ^ dens as u64);
        let reports = faster_runs(&g, &params, seeds.clone());
        let levels: Vec<f64> = reports.iter().map(|r| r.run.max_level() as f64).collect();
        t2.row(vec![dens.to_string(), f(mean(&levels))]);
    }
    vec![t, t2]
}
