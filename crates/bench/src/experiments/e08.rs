//! E8 — wall-clock of the practical shared-memory ports.
//!
//! The paper's practicality claim (§A.3) is that hashing-based CC avoids
//! sorting and "should be preferable in practice". Measured: median
//! wall-clock of each `logdiam-par` implementation plus the sequential
//! union–find yardstick. Criterion benches (`benches/wallclock.rs`) repeat
//! this with statistical rigor.

use super::common::time_ms;
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use cc_graph::seq::{components, same_partition};
use logdiam_par::{
    contract::contract_cc, labelprop::labelprop_cc, sv::sv_cc, unionfind::unionfind_cc,
};
use pram_sim::{Pram, WritePolicy};

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let scale = if cfg.full { 4 } else { 1 };
    let reps = if cfg.full { 5 } else { 3 };
    let graphs: Vec<(&str, cc_graph::Graph)> = vec![
        (
            "gnm n=100k m=500k",
            gen::gnm(100_000 * scale, 500_000 * scale, cfg.seed),
        ),
        ("grid 400x250", gen::grid(400, 250 * scale)),
        ("path 100k", gen::path(100_000 * scale)),
        (
            "mixture",
            gen::union_all(&[
                gen::gnm(50_000 * scale, 200_000 * scale, cfg.seed ^ 1),
                gen::path(20_000 * scale),
                gen::star(10_000 * scale),
            ]),
        ),
    ];

    // Report the thread count a machine actually records, not just the
    // pool's claim — the same field every simulated experiment carries.
    let host_threads = Pram::new(WritePolicy::Racy).stats().host_threads;
    let mut t = Table::new(
        format!("E8 — wall-clock (ms, median of {reps}) on {host_threads} threads"),
        "Practical ports: concurrent union-find is the yardstick; label \
         propagation and alter-and-contract are the paper-flavoured \
         hashing/contraction algorithms; seq-DSU is the O(m α) sequential bound.",
        &[
            "graph",
            "n",
            "m",
            "unionfind",
            "labelprop",
            "sv",
            "contract",
            "seq dsu",
        ],
    );
    for (name, g) in &graphs {
        let truth = components(g);
        let check = |labels: &[u32]| assert!(same_partition(labels, &truth), "E8 wrong labels");

        let uf = time_ms(reps, || {
            let l = unionfind_cc(g);
            check(&l);
            l
        });
        let lp = time_ms(reps, || {
            let l = labelprop_cc(g);
            check(&l);
            l
        });
        let sv = time_ms(reps, || {
            let l = sv_cc(g);
            check(&l);
            l
        });
        let ct = time_ms(reps, || {
            let l = contract_cc(g);
            check(&l);
            l
        });
        let seq = time_ms(reps, || components(g));
        t.row(vec![
            name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            f(uf),
            f(lp),
            f(sv),
            f(ct),
            f(seq),
        ]);
    }
    vec![t]
}
