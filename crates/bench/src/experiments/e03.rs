//! E3 — Theorem 2: spanning forest validity, phase counts tracking
//! Theorem 1, and TREE-LINK tree heights bounded by the diameter
//! (Lemma C.8).

use super::common::{diameter_of, mean};
use crate::table::{f, Table};
use crate::Config;
use cc_graph::gen;
use cc_graph::seq::{components, num_components};
use logdiam_cc::theorem1::Theorem1Params;
use logdiam_cc::theorem2::spanning_forest;
use logdiam_cc::verify::{check_labels, check_spanning_forest};
use pram_sim::{Pram, WritePolicy};

pub(super) fn run(cfg: &Config) -> Vec<Table> {
    let params = Theorem1Params::default();
    let seeds: std::ops::Range<u64> = if cfg.full { 0..5 } else { 0..3 };

    let mut t = Table::new(
        "E3 — Theorem 2: spanning forest over workload shapes",
        "Every run must produce a valid forest (n − #components edges, acyclic, \
         edges ⊆ input); heights right after TREE-LINK must stay ≤ d (Lemma C.8).",
        &[
            "graph",
            "n",
            "m",
            "d",
            "#comp",
            "forest edges",
            "valid",
            "phases (mean)",
            "max height ≤ d?",
        ],
    );
    let n_scale = if cfg.full { 2 } else { 1 };
    let graphs: Vec<(&str, cc_graph::Graph)> = vec![
        (
            "gnm sparse",
            gen::gnm(1000 * n_scale, 2500 * n_scale, cfg.seed),
        ),
        (
            "gnm dense",
            gen::gnm(800 * n_scale, 12000 * n_scale, cfg.seed),
        ),
        ("grid", gen::grid(20, 30 * n_scale)),
        ("cycle", gen::cycle(500 * n_scale)),
        (
            "mixture",
            gen::union_all(&[
                gen::path(120),
                gen::star(80),
                gen::complete(24),
                gen::binary_tree(127),
                gen::gnm(300, 900, cfg.seed ^ 5),
            ]),
        ),
    ];
    for (name, g) in &graphs {
        let d = diameter_of(g);
        let comps = num_components(g);
        let mut phases = Vec::new();
        let mut heights_ok = true;
        let mut forest_len = 0;
        for seed in seeds.clone() {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(seed));
            let report = spanning_forest(&mut pram, g, seed, &params);
            check_spanning_forest(g, &report.forest_edges).expect("invalid forest");
            check_labels(g, &report.labels).expect("wrong labels");
            assert!(cc_graph::seq::same_partition(
                &report.labels,
                &components(g)
            ));
            phases.push(report.run.rounds as f64);
            heights_ok &= report.max_height_observed <= d + 1;
            forest_len = report.forest_edges.len();
        }
        t.row(vec![
            name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            d.to_string(),
            comps.to_string(),
            forest_len.to_string(),
            "yes".into(),
            f(mean(&phases)),
            if heights_ok {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    vec![t]
}
