//! Multi-writer / multi-reader service benchmark: the async-API stress.
//!
//! PR 4's replay (`svc::run_trace`) drives the service from one thread and
//! waits out every commit, so its `batch_*_us` numbers measure the full
//! synchronous commit path (~2 ms at batch = 128 on the full matrix). The
//! PR 6 split moves commits onto a dedicated writer thread and turns
//! `apply_batch` into an enqueue that returns an [`EpochTicket`]; this
//! module measures what that buys under contention:
//!
//! * `W` writer threads enqueue batched edge writes drawn from a shared
//!   (deliberately *contended*) Zipfian stream, keeping a sliding window
//!   of outstanding tickets — **enqueue latency** (the new caller cost)
//!   and **commit latency** (enqueue → ticket fulfilled) are recorded
//!   separately.
//! * `R` reader threads hammer `query_latest` on Zipfian endpoints the
//!   whole time; each sample is tagged with whether a pipelined rebuild
//!   was in flight when it was taken, so the report can show query latency
//!   *during* rebuild windows next to the overall distribution.
//!
//! Acceptance (recorded per row in `BENCH_PR6.json`):
//!
//! * `enqueue_ok` — enqueue p50 under [`ENQUEUE_BUDGET_US`] (1/10 of the
//!   PR 4 synchronous batch p50 at batch = 128);
//! * `rebuild_stall_ok` — query p99 during rebuild windows no worse than
//!   one batch commit (pipelined rebuilds must not stall readers);
//! * `pipeline_sum_ok` — the service registry's per-stage commit
//!   histograms (dedup / WAL append / fsync / absorb / cross-drain /
//!   publish) explain the writer's `svc_commit_ns` span: stage p50 sum
//!   within 20% of the span p50, or exact sum coverage ≥ 80%. Every row
//!   embeds the final registry dump (`obs` field, the
//!   `docs/obs-schema.md` JSON object) so the accounting is auditable.
//! * `verified` — final maintained partition equals a from-scratch
//!   sequential recompute on `initial + every committed batch`.
//!
//! All of it is wall-clock measurement, not fingerprint surface: the
//! determinism suite covers labels; this module covers latency. Numbers
//! from CI containers are 1-core and mostly show scheduling, not
//! parallelism — see README's caveat next to the published rows.

use crate::svc::{family_graph, percentile_us, TraceConfig, Zipf, SMOKE_CAP_MS};
use cc_graph::seq::{components, same_partition};
use cc_graph::{Graph, GraphBuilder, Rng};
use logdiam_svc::{ConnectivityService, EpochTicket, SvcParams};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Enqueue-latency budget, microseconds: 1/10 of PR 4's synchronous
/// batch-commit p50 (~2 ms at batch = 128 on the full matrix).
pub const ENQUEUE_BUDGET_US: f64 = 200.0;

/// Per-reader latency sample cap (queries keep running past it; only
/// recording stops, so percentiles stay memory-bounded on fast hosts).
const READER_SAMPLE_CAP: usize = 2_000_000;

/// One multi-threaded scenario: a base trace plus the contention shape.
#[derive(Clone, Debug)]
pub struct MtConfig {
    /// Workload, sizes, batch, Zipf exponent, seed (ops × (1 − read_frac)
    /// sets the total write count; reads are unbounded — readers run until
    /// the writers finish).
    pub trace: TraceConfig,
    /// Concurrent `apply_batch` caller threads.
    pub writers: usize,
    /// Concurrent `query_latest` threads.
    pub readers: usize,
    /// Overlay shard count handed to the service.
    pub shard_count: usize,
    /// Command-queue depth (bounded channel; blocking send = backpressure).
    pub command_queue: usize,
    /// Outstanding tickets per writer before it awaits the oldest.
    pub window: usize,
}

impl MtConfig {
    /// The full-run configuration for one family at one size.
    pub fn full(family: &str, n: usize) -> Self {
        MtConfig {
            trace: TraceConfig::full(family, n),
            writers: 4,
            readers: 4,
            shard_count: 8,
            command_queue: 1024,
            window: 32,
        }
    }

    /// The CI smoke configuration: same shape, seconds not minutes.
    pub fn smoke() -> Self {
        MtConfig {
            trace: TraceConfig::smoke(),
            writers: 2,
            readers: 2,
            shard_count: 4,
            command_queue: 64,
            window: 8,
        }
    }
}

/// The measured result of one contended run — one row of `BENCH_PR6.json`.
#[derive(Clone, Debug)]
pub struct MtOutcome {
    /// `family/n`.
    pub workload: String,
    /// Vertex count.
    pub n: usize,
    /// Edges in the initial CSR.
    pub m_initial: usize,
    /// Edges in the accumulated (initial + committed) graph.
    pub m_final: usize,
    /// Writer threads.
    pub writers: usize,
    /// Reader threads.
    pub readers: usize,
    /// Overlay shard count.
    pub shard_count: usize,
    /// Writes per `apply_batch`.
    pub batch: usize,
    /// Zipf exponent for write/query endpoints.
    pub zipf_s: f64,
    /// Total edge writes committed.
    pub writes: usize,
    /// `apply_batch` calls.
    pub batches: usize,
    /// Total `query_latest` calls completed by the readers.
    pub reads: u64,
    /// Rayon pool width during the run.
    pub threads: usize,
    /// Wall clock for the whole contended phase, milliseconds.
    pub elapsed_ms: f64,
    /// Committed writes per second.
    pub writes_per_s: f64,
    /// Completed queries per second.
    pub queries_per_s: f64,
    /// Enqueue (caller-side `apply_batch` return) latency p50, µs.
    pub enqueue_p50_us: f64,
    /// Enqueue latency p90, µs.
    pub enqueue_p90_us: f64,
    /// Enqueue latency p99, µs.
    pub enqueue_p99_us: f64,
    /// Commit (enqueue → ticket fulfilled) latency p50, µs.
    pub commit_p50_us: f64,
    /// Commit latency p90, µs.
    pub commit_p90_us: f64,
    /// Commit latency p99, µs.
    pub commit_p99_us: f64,
    /// Query latency p50 over all reader samples, µs.
    pub query_p50_us: f64,
    /// Query latency p99 over all reader samples, µs.
    pub query_p99_us: f64,
    /// Query samples taken while a pipelined rebuild was in flight.
    pub rebuild_samples: usize,
    /// Query latency p99 restricted to rebuild-in-flight samples, µs.
    pub rebuild_query_p99_us: f64,
    /// Worst query latency observed during a rebuild window, µs.
    pub rebuild_query_max_us: f64,
    /// Folds the writer performed.
    pub rebuilds: u64,
    /// Background recomputes that swapped in.
    pub overlay_swaps: u64,
    /// Components in the final maintained partition.
    pub components: usize,
    /// `enqueue_p50_us < ENQUEUE_BUDGET_US`.
    pub enqueue_ok: bool,
    /// Query p99 during rebuild windows ≤ one batch commit (vacuously true
    /// when no query landed inside a rebuild window).
    pub rebuild_stall_ok: bool,
    /// Sum of the per-commit stage p50s (`svc_dedup_ns` + WAL append +
    /// fsync + absorb + cross-drain + publish), µs — the registry's own
    /// account of where a median commit goes.
    pub pipeline_p50_sum_us: f64,
    /// The writer's `svc_commit_ns` span p50, µs (enqueue wait excluded:
    /// the span opens after dequeue).
    pub commit_span_p50_us: f64,
    /// Σ stage `sum` / `svc_commit_ns` `sum` — exact fraction of total
    /// span time the per-stage histograms explain (folds included here;
    /// they are amortized, so they belong in the totals but not in the
    /// median-commit p50 sum).
    pub pipeline_coverage: f64,
    /// The stage accounting explains the commit span: p50 sum within 20%
    /// of the span p50, **or** coverage ≥ 80% — the p50 comparison alone
    /// is quantized by the power-of-two histogram buckets, while the
    /// coverage ratio is exact, so either suffices. Vacuously true when
    /// spans are disabled (no span, nothing to explain).
    pub pipeline_sum_ok: bool,
    /// Final partition equals a from-scratch sequential recompute.
    pub verified: bool,
    /// The service registry's final metrics dump (the `docs/obs-schema.md`
    /// JSON object), embedded verbatim as the row's `obs` field.
    pub obs: String,
}

impl MtOutcome {
    /// Serialize as one JSON object (no external deps, like `bench_report`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workload\":\"{}\",\"n\":{},\"m_initial\":{},\"m_final\":{},\
             \"writers\":{},\"readers\":{},\"shard_count\":{},\"batch\":{},\"zipf_s\":{:.3},\
             \"writes\":{},\"batches\":{},\"reads\":{},\"threads\":{},\
             \"elapsed_ms\":{:.3},\"writes_per_s\":{:.1},\"queries_per_s\":{:.1},\
             \"enqueue_p50_us\":{:.3},\"enqueue_p90_us\":{:.3},\"enqueue_p99_us\":{:.3},\
             \"commit_p50_us\":{:.3},\"commit_p90_us\":{:.3},\"commit_p99_us\":{:.3},\
             \"query_p50_us\":{:.3},\"query_p99_us\":{:.3},\
             \"rebuild_samples\":{},\"rebuild_query_p99_us\":{:.3},\"rebuild_query_max_us\":{:.3},\
             \"rebuilds\":{},\"overlay_swaps\":{},\"components\":{},\
             \"enqueue_ok\":{},\"rebuild_stall_ok\":{},\
             \"pipeline_p50_sum_us\":{:.3},\"commit_span_p50_us\":{:.3},\
             \"pipeline_coverage\":{:.3},\"pipeline_sum_ok\":{},\
             \"verified\":{},\"obs\":{}}}",
            self.workload,
            self.n,
            self.m_initial,
            self.m_final,
            self.writers,
            self.readers,
            self.shard_count,
            self.batch,
            self.zipf_s,
            self.writes,
            self.batches,
            self.reads,
            self.threads,
            self.elapsed_ms,
            self.writes_per_s,
            self.queries_per_s,
            self.enqueue_p50_us,
            self.enqueue_p90_us,
            self.enqueue_p99_us,
            self.commit_p50_us,
            self.commit_p90_us,
            self.commit_p99_us,
            self.query_p50_us,
            self.query_p99_us,
            self.rebuild_samples,
            self.rebuild_query_p99_us,
            self.rebuild_query_max_us,
            self.rebuilds,
            self.overlay_swaps,
            self.components,
            self.enqueue_ok,
            self.rebuild_stall_ok,
            self.pipeline_p50_sum_us,
            self.commit_span_p50_us,
            self.pipeline_coverage,
            self.pipeline_sum_ok,
            self.verified,
            self.obs,
        )
    }
}

/// The per-commit pipeline stages (each runs at most once per commit and
/// is individually timed inside the writer's `svc_commit_ns` span), in
/// commit order. `svc_fold_ns` is deliberately absent: folds hit one
/// commit in thousands, so they belong in [`PIPELINE_TOTAL_STAGES`]'s
/// exact sum accounting but would wreck a median-commit p50 sum.
const PIPELINE_P50_STAGES: [&str; 6] = [
    "svc_wal_append_ns",
    "svc_fsync_ns",
    "svc_dedup_ns",
    "svc_absorb_ns",
    "svc_cross_drain_ns",
    "svc_snapshot_publish_ns",
];

/// Every timed sub-interval of the `svc_commit_ns` span, folds included —
/// the denominator-exact coverage set.
const PIPELINE_TOTAL_STAGES: [&str; 7] = [
    "svc_wal_append_ns",
    "svc_fsync_ns",
    "svc_dedup_ns",
    "svc_absorb_ns",
    "svc_cross_drain_ns",
    "svc_fold_ns",
    "svc_snapshot_publish_ns",
];

/// What one writer thread brings back: caller-side latencies.
struct WriterLog {
    enqueue_ns: Vec<u64>,
    commit_ns: Vec<u64>,
}

/// What one reader thread brings back: sampled latencies, split by
/// whether a rebuild was in flight, plus the true query count (sampling
/// stops at [`READER_SAMPLE_CAP`], counting never does).
struct ReaderLog {
    queries: u64,
    all_ns: Vec<u64>,
    rebuild_ns: Vec<u64>,
}

/// Await the oldest outstanding ticket and record its enqueue→fulfilled
/// latency (the commit latency the window is sized to hide).
fn await_oldest(inflight: &mut VecDeque<(Instant, EpochTicket)>, commit_ns: &mut Vec<u64>) {
    let (sent, ticket) = inflight.pop_front().expect("non-empty window");
    ticket.wait().expect("writer died");
    commit_ns.push(sent.elapsed().as_nanos() as u64);
}

/// Run one contended scenario end-to-end and measure it.
///
/// The write stream is synthesized exactly like `svc::run_trace`: held-out
/// family edges first, then synthetic Zipfian pairs — but here the batches
/// are dealt round-robin to `writers` threads that enqueue concurrently,
/// so commit *order* is a race while commit *content* is fixed. Readers
/// run until the last writer drains its ticket window.
pub fn run_mt_trace(cfg: &MtConfig) -> MtOutcome {
    let t = &cfg.trace;
    assert!(cfg.writers >= 1 && cfg.readers >= 1 && cfg.window >= 1);
    let g_full = family_graph(&t.family, t.n, t.seed);
    let n = g_full.n();

    // Same split as the single-threaded replay: shuffled prefix seeds the
    // CSR, suffix feeds the write stream.
    let mut edges: Vec<(u32, u32)> = g_full.edges().to_vec();
    Rng::new(t.seed ^ 0x5417).shuffle(&mut edges);
    let cut = ((edges.len() as f64) * t.initial_frac).round() as usize;
    let (initial_edges, stream) = edges.split_at(cut.min(edges.len()));
    let mut b = GraphBuilder::with_capacity(n, initial_edges.len());
    for &(u, v) in initial_edges {
        b.add_edge(u, v);
    }
    let initial = b.build();

    // Pre-generate every batch deterministically (the contended part is
    // *when* they commit, not *what* they contain): family stream first,
    // then contended Zipfian pairs — every writer draws from the same hot
    // set, so cross-shard unions and CAS traffic concentrate.
    let zipf = Zipf::new(n, t.zipf_s, t.seed);
    let writes_total = (((t.ops as f64) * (1.0 - t.read_frac)).round() as usize).max(t.batch);
    let mut synth = Rng::new(t.seed ^ 0xA57);
    let mut stream_it = stream.iter().copied();
    let mut batches: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut remaining = writes_total;
    while remaining > 0 {
        let take = remaining.min(t.batch);
        let batch: Vec<(u32, u32)> = (0..take)
            .map(|_| {
                stream_it
                    .next()
                    .unwrap_or_else(|| (zipf.sample(&mut synth), zipf.sample(&mut synth)))
            })
            .collect();
        remaining -= take;
        batches.push(batch);
    }

    let svc = ConnectivityService::new(
        initial.clone(),
        SvcParams {
            rebuild_threshold: t.rebuild_threshold,
            shard_count: cfg.shard_count,
            command_queue: cfg.command_queue,
            ..SvcParams::default()
        },
    );

    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (writer_logs, reader_logs): (Vec<WriterLog>, Vec<ReaderLog>) = std::thread::scope(|s| {
        let readers: Vec<_> = (0..cfg.readers)
            .map(|r| {
                let (svc, zipf, stop) = (&svc, &zipf, &stop);
                let seed = t.seed ^ (0xBEEF + 77 * r as u64);
                s.spawn(move || {
                    let mut rng = Rng::new(seed);
                    let mut log = ReaderLog {
                        queries: 0,
                        all_ns: Vec::new(),
                        rebuild_ns: Vec::new(),
                    };
                    while !stop.load(Ordering::Relaxed) {
                        let (u, v) = (zipf.sample(&mut rng), zipf.sample(&mut rng));
                        let in_rebuild = svc.rebuild_in_flight();
                        let tq = Instant::now();
                        std::hint::black_box(svc.query_latest(u, v));
                        let ns = tq.elapsed().as_nanos() as u64;
                        log.queries += 1;
                        if log.all_ns.len() < READER_SAMPLE_CAP {
                            log.all_ns.push(ns);
                            if in_rebuild {
                                log.rebuild_ns.push(ns);
                            }
                        }
                    }
                    log
                })
            })
            .collect();
        let writers: Vec<_> = (0..cfg.writers)
            .map(|w| {
                let (svc, batches) = (&svc, &batches);
                s.spawn(move || {
                    let mut log = WriterLog {
                        enqueue_ns: Vec::new(),
                        commit_ns: Vec::new(),
                    };
                    let mut inflight: VecDeque<(Instant, EpochTicket)> = VecDeque::new();
                    for batch in batches.iter().skip(w).step_by(cfg.writers) {
                        let te = Instant::now();
                        let ticket = svc.apply_batch(batch);
                        log.enqueue_ns.push(te.elapsed().as_nanos() as u64);
                        inflight.push_back((te, ticket));
                        if inflight.len() >= cfg.window {
                            await_oldest(&mut inflight, &mut log.commit_ns);
                        }
                    }
                    while !inflight.is_empty() {
                        await_oldest(&mut inflight, &mut log.commit_ns);
                    }
                    log
                })
            })
            .collect();
        let writer_logs = writers.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Relaxed);
        (
            writer_logs,
            readers.into_iter().map(|h| h.join().unwrap()).collect(),
        )
    });
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Acceptance check, independent of the code under test: sequential BFS
    // on the accumulated graph. Commit order raced, but union is
    // order-free, so the final partition is still a pure function of the
    // batch contents.
    let applied: Vec<(u32, u32)> = batches.iter().flatten().copied().collect();
    let union = Graph::from_csr_plus_edges(&initial, &applied);
    svc.flush().expect("writer died");
    let verified = same_partition(svc.latest().labels(), &components(&union));

    // Commit-pipeline accounting from the service's own registry: the
    // per-stage histograms must explain the `svc_commit_ns` span (see
    // the field docs on [`MtOutcome`] for the two comparisons).
    let metrics = svc.metrics();
    metrics
        .validate()
        .expect("service metrics snapshot failed validation");
    let commit_span = metrics.histograms["svc_commit_ns"].clone();
    let pipeline_p50_sum_us = PIPELINE_P50_STAGES
        .iter()
        .map(|s| metrics.histograms[*s].p50())
        .sum::<f64>()
        / 1e3;
    let commit_span_p50_us = commit_span.p50() / 1e3;
    let stage_sum_ns: u64 = PIPELINE_TOTAL_STAGES
        .iter()
        .map(|s| metrics.histograms[*s].sum)
        .sum();
    let pipeline_coverage = if commit_span.sum > 0 {
        stage_sum_ns as f64 / commit_span.sum as f64
    } else {
        0.0
    };
    let p50_ratio = if commit_span_p50_us > 0.0 {
        pipeline_p50_sum_us / commit_span_p50_us
    } else {
        0.0
    };
    let pipeline_sum_ok = commit_span.count == 0 // spans disabled
        || (0.8..=1.2).contains(&p50_ratio)
        || (0.8..=1.05).contains(&pipeline_coverage);

    let mut enqueue_ns: Vec<u64> = writer_logs
        .iter()
        .flat_map(|l| &l.enqueue_ns)
        .copied()
        .collect();
    let mut commit_ns: Vec<u64> = writer_logs
        .iter()
        .flat_map(|l| &l.commit_ns)
        .copied()
        .collect();
    let mut all_query_ns: Vec<u64> = reader_logs
        .iter()
        .flat_map(|l| &l.all_ns)
        .copied()
        .collect();
    let mut rebuild_ns: Vec<u64> = reader_logs
        .iter()
        .flat_map(|l| &l.rebuild_ns)
        .copied()
        .collect();
    enqueue_ns.sort_unstable();
    commit_ns.sort_unstable();
    all_query_ns.sort_unstable();
    rebuild_ns.sort_unstable();
    let reads: u64 = reader_logs.iter().map(|l| l.queries).sum();

    let enqueue_p50_us = percentile_us(&enqueue_ns, 0.50);
    let commit_p50_us = percentile_us(&commit_ns, 0.50);
    let rebuild_query_p99_us = percentile_us(&rebuild_ns, 0.99);
    let rebuild_query_max_us = percentile_us(&rebuild_ns, 1.0);
    let spectrum = svc.spectrum();
    MtOutcome {
        workload: format!("{}/{}", t.family, t.n),
        n,
        m_initial: initial.m(),
        m_final: union.m(),
        writers: cfg.writers,
        readers: cfg.readers,
        shard_count: cfg.shard_count,
        batch: t.batch,
        zipf_s: t.zipf_s,
        writes: writes_total,
        batches: batches.len(),
        reads,
        threads: rayon::current_num_threads(),
        elapsed_ms,
        writes_per_s: writes_total as f64 / (elapsed_ms / 1e3),
        queries_per_s: reads as f64 / (elapsed_ms / 1e3),
        enqueue_p50_us,
        enqueue_p90_us: percentile_us(&enqueue_ns, 0.90),
        enqueue_p99_us: percentile_us(&enqueue_ns, 0.99),
        commit_p50_us,
        commit_p90_us: percentile_us(&commit_ns, 0.90),
        commit_p99_us: percentile_us(&commit_ns, 0.99),
        query_p50_us: percentile_us(&all_query_ns, 0.50),
        query_p99_us: percentile_us(&all_query_ns, 0.99),
        rebuild_samples: rebuild_ns.len(),
        rebuild_query_p99_us,
        rebuild_query_max_us,
        rebuilds: spectrum.rebuilds,
        overlay_swaps: svc.overlay_swaps(),
        components: spectrum.components,
        enqueue_ok: enqueue_p50_us < ENQUEUE_BUDGET_US,
        rebuild_stall_ok: rebuild_ns.is_empty() || rebuild_query_p99_us <= commit_p50_us,
        pipeline_p50_sum_us,
        commit_span_p50_us,
        pipeline_coverage,
        pipeline_sum_ok,
        verified,
        obs: metrics.to_json(),
    }
}

/// Serialize outcomes into the `BENCH_PR6.json` document.
pub fn mt_report_json(emitter: &str, smoke: bool, outcomes: &[MtOutcome]) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rows: Vec<String> = outcomes.iter().map(MtOutcome::to_json).collect();
    format!(
        "{{\n  \"report\": \"logdiam connectivity service multi-writer baseline\",\n  \"emitter\": \"{emitter}\",\n  \"smoke\": {smoke},\n  \"host_cores\": {cores},\n  \"measurements\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    ")
    )
}

/// Run the contended smoke scenario, enforce the wall-clock cap, the
/// verification contract, and the enqueue budget, and write the report.
/// Shared by `bench_report --smoke` (the CI guard) and `svc_driver --mt
/// --smoke`.
pub fn run_mt_smoke(emitter: &str, out_path: &str) -> MtOutcome {
    let cfg = MtConfig::smoke();
    eprintln!(
        "svc mt smoke: {}/{} with {} writers × {} readers (batch {}, shards {})...",
        cfg.trace.family, cfg.trace.n, cfg.writers, cfg.readers, cfg.trace.batch, cfg.shard_count
    );
    let outcome = run_mt_trace(&cfg);
    assert!(
        outcome.verified,
        "svc mt smoke: maintained partition diverged from one-shot recompute"
    );
    assert!(
        outcome.enqueue_ok,
        "svc mt smoke: enqueue p50 {:.1} µs blew the {ENQUEUE_BUDGET_US:.0} µs budget",
        outcome.enqueue_p50_us
    );
    assert!(
        outcome.elapsed_ms < SMOKE_CAP_MS,
        "svc mt smoke exceeded its wall-clock cap: {:.0} ms (cap {SMOKE_CAP_MS:.0} ms)",
        outcome.elapsed_ms
    );
    assert!(
        outcome.pipeline_sum_ok,
        "svc mt smoke: per-stage histograms do not explain the commit span: \
         stage p50 sum {:.1} µs vs span p50 {:.1} µs, coverage {:.2}",
        outcome.pipeline_p50_sum_us, outcome.commit_span_p50_us, outcome.pipeline_coverage
    );
    std::fs::write(
        out_path,
        mt_report_json(emitter, true, std::slice::from_ref(&outcome)),
    )
    .expect("cannot write svc mt smoke report");
    eprintln!(
        "svc mt smoke: OK — enqueue p50 {:.1} µs, commit p50 {:.0} µs, \
         {:.0} queries/s alongside, pipeline coverage {:.2}, wrote {out_path}",
        outcome.enqueue_p50_us,
        outcome.commit_p50_us,
        outcome.queries_per_s,
        outcome.pipeline_coverage
    );
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MtConfig {
        let mut cfg = MtConfig::smoke();
        cfg.trace.n = 600;
        cfg.trace.ops = 1_200;
        cfg.trace.rebuild_threshold = 64;
        cfg.writers = 3;
        cfg.readers = 2;
        cfg.window = 4;
        cfg
    }

    #[test]
    fn contended_run_verifies_and_counts_add_up() {
        let out = run_mt_trace(&tiny());
        assert!(out.verified);
        // The embedded registry dump is a real, self-consistent snapshot
        // whose stage sums sit inside the commit span (1.05 allows clock
        // granularity; the tiny scale is too noisy to pin the 0.8 floor
        // the smoke run asserts via `pipeline_sum_ok`).
        assert!(out.obs.contains("\"svc_commits_total\""));
        assert!(
            out.pipeline_coverage > 0.0 && out.pipeline_coverage <= 1.05,
            "stage sums outside the commit span: coverage {}",
            out.pipeline_coverage
        );
        assert_eq!(
            out.batches,
            out.writes.div_ceil(out.batch),
            "every pre-generated batch must have been committed"
        );
        assert!(out.reads > 0, "readers never ran");
        assert!(out.rebuilds > 0, "trace too small to exercise folds");
        assert!(out.enqueue_p99_us >= out.enqueue_p50_us);
        assert!(out.commit_p50_us >= out.enqueue_p50_us);
    }

    #[test]
    fn json_row_has_the_acceptance_fields() {
        let out = run_mt_trace(&tiny());
        let row = out.to_json();
        for key in [
            "enqueue_p50_us",
            "commit_p50_us",
            "rebuild_query_p99_us",
            "rebuild_stall_ok",
            "enqueue_ok",
            "pipeline_p50_sum_us",
            "pipeline_sum_ok",
            "verified",
            "\"obs\":{\"counters\"",
        ] {
            assert!(row.contains(key), "missing {key} in {row}");
        }
        let doc = mt_report_json("test", true, &[out]);
        assert!(doc.contains("multi-writer baseline"));
    }

    #[test]
    fn single_writer_single_reader_degenerate_case() {
        let mut cfg = tiny();
        cfg.writers = 1;
        cfg.readers = 1;
        cfg.window = 1; // fully synchronous: commit == enqueue + wait
        let out = run_mt_trace(&cfg);
        assert!(out.verified);
        assert_eq!(out.writers, 1);
    }
}
