//! Connectivity-service trace replay: the request-serving benchmark.
//!
//! A trace is synthesized deterministically from a [`TraceConfig`]: a
//! workload-family graph is generated, a fraction of its edges seeds the
//! service's initial CSR, and the rest stream in as batched writes mixed
//! with connectivity queries whose endpoints follow a Zipfian popularity
//! distribution (rank-to-vertex mapping shuffled by the seed, so "hot"
//! vertices are spread across the graph). The replay measures end-to-end
//! throughput plus per-query and per-batch-commit latency percentiles,
//! verifies the final maintained partition against a from-scratch
//! recompute on the accumulated graph, and serializes everything into the
//! `BENCH_PR4.json` schema shared by `svc_driver` (full runs) and
//! `bench_report --smoke` (the CI guard).

use cc_graph::seq::{components, same_partition};
use cc_graph::{gen, Graph, GraphBuilder, Rng};
use logdiam_svc::{ConnectivityService, SvcParams};
use std::time::Instant;

/// Base seed shared by the default trace configurations.
pub const SVC_SEED: u64 = 0x5E7_CAFE;

/// Wall-clock cap for the smoke trace (milliseconds): the CI contract is
/// "a short `svc_driver` trace in ≤ 5 s".
pub const SMOKE_CAP_MS: f64 = 5_000.0;

/// One replayable trace: workload, mix, and service knobs.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Workload family (`path` / `grid` / `powerlaw` / `mixture`).
    pub family: String,
    /// Vertex count of the generated family graph.
    pub n: usize,
    /// Total requests (reads + writes) to replay.
    pub ops: usize,
    /// Fraction of requests that are connectivity queries.
    pub read_frac: f64,
    /// Writes buffered per `apply_batch` commit.
    pub batch: usize,
    /// Zipf exponent for query/synthetic-write endpoints (0 = uniform).
    pub zipf_s: f64,
    /// Fraction of the family graph's edges placed in the initial CSR;
    /// the rest become the write stream.
    pub initial_frac: f64,
    /// Service rebuild threshold (distinct delta edges).
    pub rebuild_threshold: usize,
    /// RNG seed for the edge split, op mix, and endpoint sampling.
    pub seed: u64,
}

impl TraceConfig {
    /// The full-run configuration for one family at one size: a 90%-read
    /// mix, the acceptance workload of PR 4.
    pub fn full(family: &str, n: usize) -> Self {
        TraceConfig {
            family: family.to_string(),
            n,
            ops: 200_000,
            read_frac: 0.9,
            batch: 128,
            zipf_s: 1.0,
            initial_frac: 0.5,
            rebuild_threshold: 4096,
            seed: SVC_SEED,
        }
    }

    /// The CI smoke configuration: the same shape, seconds not minutes.
    pub fn smoke() -> Self {
        TraceConfig {
            family: "mixture".to_string(),
            n: 3_000,
            ops: 4_000,
            read_frac: 0.9,
            batch: 64,
            zipf_s: 1.0,
            initial_frac: 0.5,
            rebuild_threshold: 256,
            seed: SVC_SEED,
        }
    }
}

/// The measured result of one trace replay — one row of `BENCH_PR4.json`.
#[derive(Clone, Debug)]
pub struct TraceOutcome {
    /// `family/n`.
    pub workload: String,
    /// Vertex count.
    pub n: usize,
    /// Edges in the initial CSR.
    pub m_initial: usize,
    /// Edges in the accumulated (initial + applied) graph.
    pub m_final: usize,
    /// Total requests replayed.
    pub ops: usize,
    /// Query requests.
    pub reads: usize,
    /// Write requests.
    pub writes: usize,
    /// `apply_batch` commits.
    pub batches: usize,
    /// Configured read fraction.
    pub read_frac: f64,
    /// Configured Zipf exponent.
    pub zipf_s: f64,
    /// Rayon pool width during the replay.
    pub threads: usize,
    /// End-to-end wall clock for the op loop, milliseconds.
    pub elapsed_ms: f64,
    /// Requests per second over the op loop.
    pub ops_per_s: f64,
    /// Query latency percentiles, microseconds.
    pub query_p50_us: f64,
    /// 90th-percentile query latency, microseconds.
    pub query_p90_us: f64,
    /// 99th-percentile query latency, microseconds.
    pub query_p99_us: f64,
    /// Batch-commit latency percentiles, microseconds.
    pub batch_p50_us: f64,
    /// 90th-percentile batch-commit latency, microseconds.
    pub batch_p90_us: f64,
    /// 99th-percentile batch-commit latency, microseconds.
    pub batch_p99_us: f64,
    /// Full rebuilds the service performed during the replay.
    pub rebuilds: u64,
    /// Components in the final maintained partition.
    pub components: usize,
    /// Whether the final partition matched a from-scratch recompute on
    /// the accumulated graph.
    pub verified: bool,
}

impl TraceOutcome {
    /// Serialize as one JSON object (no external deps, like `bench_report`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"workload\":\"{}\",\"n\":{},\"m_initial\":{},\"m_final\":{},\"ops\":{},\
             \"reads\":{},\"writes\":{},\"batches\":{},\"read_frac\":{:.3},\"zipf_s\":{:.3},\
             \"threads\":{},\"elapsed_ms\":{:.3},\"ops_per_s\":{:.1},\
             \"query_p50_us\":{:.3},\"query_p90_us\":{:.3},\"query_p99_us\":{:.3},\
             \"batch_p50_us\":{:.3},\"batch_p90_us\":{:.3},\"batch_p99_us\":{:.3},\
             \"rebuilds\":{},\"components\":{},\"verified\":{}}}",
            self.workload,
            self.n,
            self.m_initial,
            self.m_final,
            self.ops,
            self.reads,
            self.writes,
            self.batches,
            self.read_frac,
            self.zipf_s,
            self.threads,
            self.elapsed_ms,
            self.ops_per_s,
            self.query_p50_us,
            self.query_p90_us,
            self.query_p99_us,
            self.batch_p50_us,
            self.batch_p90_us,
            self.batch_p99_us,
            self.rebuilds,
            self.components,
            self.verified,
        )
    }
}

/// The benchmark workload matrix shared with `bench_report` (same family
/// definitions, so PR 4 service rows are comparable with PR 2/3 rows).
pub fn family_graph(family: &str, n: usize, seed: u64) -> Graph {
    match family {
        // Long path: the d ≈ n stress case the paper's log d bound targets.
        "path" => gen::path(n),
        // Square-ish grid: d ≈ 2√n, m/n ≈ 2.
        "grid" => {
            let rows = (n as f64).sqrt().round() as usize;
            gen::grid(rows, n / rows)
        }
        // Power-law: preferential attachment, low diameter, skewed degrees.
        "powerlaw" => gen::preferential_attachment(n, 4, seed),
        // Mixture: dense random + long path + giant star in one graph.
        "mixture" => gen::union_all(&[
            gen::gnm(n / 2, 2 * n, seed ^ 1),
            gen::path(n / 4),
            gen::star(n / 4),
        ]),
        other => panic!("unknown workload family {other}"),
    }
}

/// A Zipfian sampler over `0..n` with exponent `s`, composed with a
/// seeded rank→vertex shuffle (so popularity is not correlated with the
/// generators' vertex numbering). Sampling is O(log n) via binary search
/// on the precomputed CDF; fully deterministic in (n, s, seed).
pub struct Zipf {
    cdf: Vec<f64>,
    perm: Vec<u32>,
}

impl Zipf {
    /// Build the sampler (O(n) precompute).
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let mut perm: Vec<u32> = (0..n as u32).collect();
        Rng::new(seed ^ 0x21BF).shuffle(&mut perm);
        Zipf { cdf, perm }
    }

    /// Draw one vertex.
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        let total = *self.cdf.last().expect("non-empty CDF");
        let x = rng.f64() * total;
        let rank = self
            .cdf
            .partition_point(|&c| c <= x)
            .min(self.cdf.len() - 1);
        self.perm[rank]
    }
}

/// Latency percentile (sorted input, microseconds out).
pub(crate) fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Replay one trace end-to-end and measure it. See the module docs for
/// the trace construction; the returned outcome's `verified` flag is the
/// acceptance contract — the maintained partition after the last commit
/// must equal a from-scratch concurrent-union-find recompute on
/// `initial + all applied edges`.
pub fn run_trace(cfg: &TraceConfig) -> TraceOutcome {
    let g_full = family_graph(&cfg.family, cfg.n, cfg.seed);
    let n = g_full.n();

    // Split the family's edges: a shuffled prefix seeds the base CSR, the
    // suffix becomes the write stream.
    let mut edges: Vec<(u32, u32)> = g_full.edges().to_vec();
    Rng::new(cfg.seed ^ 0x5417).shuffle(&mut edges);
    let cut = ((edges.len() as f64) * cfg.initial_frac).round() as usize;
    let (initial_edges, stream) = edges.split_at(cut.min(edges.len()));
    let mut b = GraphBuilder::with_capacity(n, initial_edges.len());
    for &(u, v) in initial_edges {
        b.add_edge(u, v);
    }
    let initial = b.build();

    let svc = ConnectivityService::new(
        initial.clone(),
        SvcParams {
            rebuild_threshold: cfg.rebuild_threshold,
            ..SvcParams::default()
        },
    );

    let zipf = Zipf::new(n, cfg.zipf_s, cfg.seed);
    let mut rng = Rng::new(cfg.seed ^ 0x0B5);
    let mut stream_it = stream.iter().copied();
    let mut pending: Vec<(u32, u32)> = Vec::with_capacity(cfg.batch);
    let mut applied: Vec<(u32, u32)> = Vec::new();
    let mut query_ns: Vec<u64> = Vec::new();
    let mut batch_ns: Vec<u64> = Vec::new();
    let (mut reads, mut writes) = (0usize, 0usize);

    let t0 = Instant::now();
    for _ in 0..cfg.ops {
        if rng.coin(cfg.read_frac) {
            reads += 1;
            let (u, v) = (zipf.sample(&mut rng), zipf.sample(&mut rng));
            let tq = Instant::now();
            std::hint::black_box(svc.query_latest(u, v));
            query_ns.push(tq.elapsed().as_nanos() as u64);
        } else {
            writes += 1;
            // Held-out family edges first; once exhausted, synthetic
            // Zipfian pairs (duplicates and loops welcome — the service
            // must absorb them for free).
            let e = stream_it
                .next()
                .unwrap_or_else(|| (zipf.sample(&mut rng), zipf.sample(&mut rng)));
            pending.push(e);
            if pending.len() >= cfg.batch {
                // Enqueue + ticket wait: end-to-end commit latency, the
                // same observable the PR 4 synchronous API measured.
                let tb = Instant::now();
                svc.apply_batch(&pending).wait().expect("writer died");
                batch_ns.push(tb.elapsed().as_nanos() as u64);
                applied.extend_from_slice(&pending);
                pending.clear();
            }
        }
    }
    if !pending.is_empty() {
        let tb = Instant::now();
        svc.apply_batch(&pending).wait().expect("writer died");
        batch_ns.push(tb.elapsed().as_nanos() as u64);
        applied.extend_from_slice(&pending);
        pending.clear();
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Acceptance check: maintained partition == one-shot recompute on the
    // accumulated graph. Sequential BFS ground truth, deliberately *not*
    // the concurrent union–find the service itself is built on — the
    // check must stay independent of the code under test.
    let union = Graph::from_csr_plus_edges(&initial, &applied);
    let verified = same_partition(svc.latest().labels(), &components(&union));

    query_ns.sort_unstable();
    batch_ns.sort_unstable();
    let spectrum = svc.spectrum();
    TraceOutcome {
        workload: format!("{}/{}", cfg.family, cfg.n),
        n,
        m_initial: initial.m(),
        m_final: union.m(),
        ops: cfg.ops,
        reads,
        writes,
        batches: batch_ns.len(),
        read_frac: cfg.read_frac,
        zipf_s: cfg.zipf_s,
        threads: rayon::current_num_threads(),
        elapsed_ms,
        ops_per_s: cfg.ops as f64 / (elapsed_ms / 1e3),
        query_p50_us: percentile_us(&query_ns, 0.50),
        query_p90_us: percentile_us(&query_ns, 0.90),
        query_p99_us: percentile_us(&query_ns, 0.99),
        batch_p50_us: percentile_us(&batch_ns, 0.50),
        batch_p90_us: percentile_us(&batch_ns, 0.90),
        batch_p99_us: percentile_us(&batch_ns, 0.99),
        rebuilds: spectrum.rebuilds,
        components: spectrum.components,
        verified,
    }
}

/// Serialize outcomes into the `BENCH_PR4.json` document.
pub fn report_json(emitter: &str, smoke: bool, outcomes: &[TraceOutcome]) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rows: Vec<String> = outcomes.iter().map(TraceOutcome::to_json).collect();
    format!(
        "{{\n  \"report\": \"logdiam connectivity service baseline\",\n  \"emitter\": \"{emitter}\",\n  \"smoke\": {smoke},\n  \"host_cores\": {cores},\n  \"measurements\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    ")
    )
}

/// Run the smoke trace, enforce the wall-clock cap and the verification
/// contract, and write the report. Shared by `bench_report --smoke` (the
/// CI guard) and `svc_driver --smoke`.
pub fn run_smoke(emitter: &str, out_path: &str) -> TraceOutcome {
    let cfg = TraceConfig::smoke();
    eprintln!(
        "svc smoke: replaying {}/{} ({} ops, {:.0}% reads)...",
        cfg.family,
        cfg.n,
        cfg.ops,
        cfg.read_frac * 100.0
    );
    let outcome = run_trace(&cfg);
    assert!(
        outcome.verified,
        "svc smoke: maintained partition diverged from one-shot recompute"
    );
    assert!(
        outcome.elapsed_ms < SMOKE_CAP_MS,
        "svc smoke exceeded its wall-clock cap: {:.0} ms (cap {SMOKE_CAP_MS:.0} ms)",
        outcome.elapsed_ms
    );
    std::fs::write(
        out_path,
        report_json(emitter, true, std::slice::from_ref(&outcome)),
    )
    .expect("cannot write svc smoke report");
    eprintln!(
        "svc smoke: OK — {:.0} ops/s, query p99 {:.1} µs, {} rebuilds, wrote {out_path}",
        outcome.ops_per_s, outcome.query_p99_us, outcome.rebuilds
    );
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_skewed() {
        let z = Zipf::new(1000, 1.2, 7);
        let mut a = Rng::new(3);
        let mut b = Rng::new(3);
        let xs: Vec<u32> = (0..64).map(|_| z.sample(&mut a)).collect();
        let ys: Vec<u32> = (0..64).map(|_| z.sample(&mut b)).collect();
        assert_eq!(xs, ys);
        // The hottest vertex should dominate a uniform draw's 1/n share.
        let mut counts = std::collections::HashMap::new();
        let mut rng = Rng::new(11);
        for _ in 0..4000 {
            *counts.entry(z.sample(&mut rng)).or_insert(0usize) += 1;
        }
        let hottest = counts.values().copied().max().unwrap();
        assert!(hottest > 200, "hottest vertex drew {hottest}/4000");
    }

    #[test]
    fn percentiles_on_tiny_inputs() {
        assert_eq!(percentile_us(&[], 0.99), 0.0);
        assert_eq!(percentile_us(&[5_000], 0.5), 5.0);
        let xs = [1_000, 2_000, 3_000, 4_000];
        assert_eq!(percentile_us(&xs, 0.0), 1.0);
        assert_eq!(percentile_us(&xs, 1.0), 4.0);
    }

    #[test]
    fn smoke_sized_trace_verifies() {
        let mut cfg = TraceConfig::smoke();
        cfg.n = 600;
        cfg.ops = 800;
        cfg.rebuild_threshold = 64;
        let out = run_trace(&cfg);
        assert!(out.verified);
        assert_eq!(out.ops, out.reads + out.writes);
        assert!(out.batches > 0);
        assert!(out.rebuilds > 0, "trace too small to exercise rebuilds");
        assert!(out.query_p99_us >= out.query_p50_us);
    }
}
