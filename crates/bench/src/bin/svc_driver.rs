//! `svc_driver` — replay request traces against the connectivity service.
//!
//! The service-scenario counterpart of `bench_report`: synthesizes a
//! deterministic request trace per workload family (batched edge writes
//! mixed with Zipfian-endpoint connectivity queries, ≥90% reads by
//! default), replays it end-to-end through `logdiam_svc::
//! ConnectivityService`, and writes throughput plus query/batch latency
//! percentiles to `BENCH_PR4.json`. Every row is verified: the maintained
//! partition after the last commit must equal a from-scratch recompute on
//! the accumulated graph, and the run aborts if it doesn't.
//!
//! Usage:
//!
//! ```text
//! svc_driver [--smoke] [--mt] [--durable DIR] [--fsync always|batch[=N]|off]
//!            [--out PATH] [--family F]... [--n N] [--ops N]
//!            [--read-frac F] [--batch N] [--zipf S] [--seed S]
//!            [--rebuild-threshold N]
//!            [--writers W] [--readers R] [--shards S] [--queue Q] [--window K]
//! ```
//!
//! With no flags the full matrix runs: path/grid/powerlaw/mixture at
//! n = 1e5, 200k ops, 90% reads, batch 128, Zipf 1.0. `--smoke` replays
//! the CI-sized mixture trace instead (same schema, seconds not minutes).
//!
//! `--mt` switches to the PR 6 contended scenario: `--writers` threads
//! enqueue the batched write stream concurrently (each keeping `--window`
//! tickets outstanding) while `--readers` threads hammer `query_latest`,
//! and the report — `BENCH_PR6.json` by default — records enqueue vs
//! commit latency and query latency during pipelined-rebuild windows. Each
//! row asserts `verified`, the enqueue budget (p50 < 1/10 of the PR 4
//! synchronous batch p50), and no reader stall beyond one batch commit
//! during a rebuild.
//!
//! `--durable DIR` switches to the PR 7 durability scenario: stores are
//! created under `DIR` (one subdirectory per row, wiped first), the write
//! stream commits through the WAL under `--fsync {always,batch[=N],off}`
//! (all three policies when the flag is omitted), and the report —
//! `BENCH_PR7.json` by default — records commit latency, WAL/snapshot
//! footprint, and cold-reopen time. Each row asserts `verified`: the live
//! and the recovered partitions must both match a from-scratch recompute.

use logdiam_bench::svc::{report_json, run_smoke, run_trace, TraceConfig};
use logdiam_bench::svc_durable::{
    durable_report_json, run_durable_smoke, run_durable_trace, DurableConfig,
};
use logdiam_bench::svc_mt::{mt_report_json, run_mt_smoke, run_mt_trace, MtConfig};
use logdiam_svc::FsyncPolicy;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: svc_driver [--smoke] [--mt] [--durable DIR] [--fsync always|batch[=N]|off] \
         [--out PATH] [--family F]... [--n N] [--ops N] \
         [--read-frac F] [--batch N] [--zipf S] [--seed S] [--rebuild-threshold N] \
         [--writers W] [--readers R] [--shards S] [--queue Q] [--window K]"
    );
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut mt = false;
    let mut durable_dir: Option<PathBuf> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut out_path: Option<String> = None;
    let mut families: Vec<String> = Vec::new();
    let mut overrides = TraceConfig::full("mixture", 100_000);
    let mut mt_shape = MtConfig::full("mixture", 100_000);
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("svc_driver: {a} needs a {what}");
                usage()
            })
        };
        match a.as_str() {
            "--smoke" => smoke = true,
            "--mt" => mt = true,
            "--durable" => durable_dir = Some(PathBuf::from(next("directory"))),
            "--fsync" => {
                fsync = Some(FsyncPolicy::parse(&next("policy")).unwrap_or_else(|| usage()))
            }
            "--out" => out_path = Some(next("path")),
            "--writers" => mt_shape.writers = next("number").parse().unwrap_or_else(|_| usage()),
            "--readers" => mt_shape.readers = next("number").parse().unwrap_or_else(|_| usage()),
            "--shards" => mt_shape.shard_count = next("number").parse().unwrap_or_else(|_| usage()),
            "--queue" => {
                mt_shape.command_queue = next("number").parse().unwrap_or_else(|_| usage())
            }
            "--window" => mt_shape.window = next("number").parse().unwrap_or_else(|_| usage()),
            "--family" => families.push(next("family name")),
            "--n" => overrides.n = next("number").parse().unwrap_or_else(|_| usage()),
            "--ops" => overrides.ops = next("number").parse().unwrap_or_else(|_| usage()),
            "--read-frac" => {
                overrides.read_frac = next("fraction").parse().unwrap_or_else(|_| usage())
            }
            "--batch" => overrides.batch = next("number").parse().unwrap_or_else(|_| usage()),
            "--zipf" => overrides.zipf_s = next("exponent").parse().unwrap_or_else(|_| usage()),
            "--seed" => overrides.seed = next("seed").parse().unwrap_or_else(|_| usage()),
            "--rebuild-threshold" => {
                overrides.rebuild_threshold = next("number").parse().unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }

    let out_path = out_path.unwrap_or_else(|| {
        if durable_dir.is_some() {
            "BENCH_PR7.json"
        } else if mt {
            "BENCH_PR6.json"
        } else {
            "BENCH_PR4.json"
        }
        .to_string()
    });

    if smoke {
        if let Some(_dir) = durable_dir {
            // The smoke owns its scratch stores; DIR only marks the mode.
            run_durable_smoke("svc_driver --durable --smoke", &out_path);
        } else if mt {
            run_mt_smoke("svc_driver --mt --smoke", &out_path);
        } else {
            run_smoke("svc_driver --smoke", &out_path);
        }
        return;
    }

    if families.is_empty() {
        families = ["path", "grid", "powerlaw", "mixture"]
            .map(String::from)
            .to_vec();
    }

    if let Some(root) = durable_dir {
        let policies: Vec<FsyncPolicy> = match fsync {
            Some(p) => vec![p],
            None => vec![FsyncPolicy::Always, FsyncPolicy::Batch(8), FsyncPolicy::Off],
        };
        let mut outcomes = Vec::new();
        for family in &families {
            for &policy in &policies {
                let mut cfg = DurableConfig::full(family, overrides.n, policy);
                cfg.batch = overrides.batch;
                cfg.rebuild_threshold = overrides.rebuild_threshold;
                cfg.seed = overrides.seed;
                eprintln!(
                    "svc_driver --durable: {}/{} × {} batches under fsync={policy}...",
                    cfg.family, cfg.n, cfg.batches
                );
                let dir = root.join(format!("{family}-{policy}"));
                let _ = std::fs::remove_dir_all(&dir);
                let out = run_durable_trace(&cfg, &dir);
                assert!(
                    out.verified,
                    "svc_driver --durable: {} under fsync={}: recovery diverged \
                     from one-shot recompute (epoch {})",
                    out.workload, out.fsync, out.recovered_epoch
                );
                eprintln!(
                    "svc_driver --durable: [{} fsync={}] commit p50/p99 {:.1}/{:.1} µs, \
                     {:.0} commits/s, wal {} B, {} snapshots, reopen {:.1} ms, verified",
                    out.workload,
                    out.fsync,
                    out.commit_p50_us,
                    out.commit_p99_us,
                    out.commits_per_s,
                    out.wal_bytes,
                    out.snapshots,
                    out.reopen_ms
                );
                outcomes.push(out);
            }
        }
        std::fs::write(
            &out_path,
            durable_report_json("svc_driver --durable", false, &outcomes),
        )
        .expect("cannot write report");
        eprintln!(
            "svc_driver --durable: wrote {} measurements to {out_path}",
            outcomes.len()
        );
        return;
    }

    if mt {
        let mut outcomes = Vec::new();
        for family in &families {
            let cfg = MtConfig {
                trace: TraceConfig {
                    family: family.clone(),
                    ..overrides.clone()
                },
                ..mt_shape.clone()
            };
            eprintln!(
                "svc_driver --mt: {}/{} with {} writers × {} readers \
                 (batch {}, shards {}, window {})...",
                cfg.trace.family,
                cfg.trace.n,
                cfg.writers,
                cfg.readers,
                cfg.trace.batch,
                cfg.shard_count,
                cfg.window
            );
            let out = run_mt_trace(&cfg);
            assert!(
                out.verified,
                "svc_driver --mt: {}: maintained partition diverged from one-shot recompute",
                out.workload
            );
            assert!(
                out.enqueue_ok,
                "svc_driver --mt: {}: enqueue p50 {:.1} µs blew the budget",
                out.workload, out.enqueue_p50_us
            );
            assert!(
                out.rebuild_stall_ok,
                "svc_driver --mt: {}: query p99 during rebuild ({:.1} µs) exceeded \
                 one batch commit ({:.1} µs)",
                out.workload, out.rebuild_query_p99_us, out.commit_p50_us
            );
            assert!(
                out.pipeline_sum_ok,
                "svc_driver --mt: {}: per-stage histograms do not explain the commit \
                 span (stage p50 sum {:.1} µs vs span p50 {:.1} µs, coverage {:.2})",
                out.workload,
                out.pipeline_p50_sum_us,
                out.commit_span_p50_us,
                out.pipeline_coverage
            );
            eprintln!(
                "svc_driver --mt: [{}] enqueue p50/p99 {:.1}/{:.1} µs, commit p50/p99 \
                 {:.0}/{:.0} µs, query p50/p99 {:.1}/{:.1} µs ({} during-rebuild samples, \
                 p99 {:.1} µs), {} rebuilds, {} swaps, verified",
                out.workload,
                out.enqueue_p50_us,
                out.enqueue_p99_us,
                out.commit_p50_us,
                out.commit_p99_us,
                out.query_p50_us,
                out.query_p99_us,
                out.rebuild_samples,
                out.rebuild_query_p99_us,
                out.rebuilds,
                out.overlay_swaps
            );
            outcomes.push(out);
        }
        std::fs::write(
            &out_path,
            mt_report_json("svc_driver --mt", false, &outcomes),
        )
        .expect("cannot write report");
        eprintln!(
            "svc_driver --mt: wrote {} measurements to {out_path}",
            outcomes.len()
        );
        return;
    }

    let mut outcomes = Vec::new();
    for family in &families {
        let cfg = TraceConfig {
            family: family.clone(),
            ..overrides.clone()
        };
        eprintln!(
            "svc_driver: replaying {}/{} ({} ops, {:.0}% reads, batch {}, zipf {:.2})...",
            cfg.family,
            cfg.n,
            cfg.ops,
            cfg.read_frac * 100.0,
            cfg.batch,
            cfg.zipf_s
        );
        let out = run_trace(&cfg);
        assert!(
            out.verified,
            "svc_driver: {}: maintained partition diverged from one-shot recompute",
            out.workload
        );
        eprintln!(
            "svc_driver: [{}] {:.0} ops/s end-to-end, query p50/p99 {:.1}/{:.1} µs, \
             batch p50/p99 {:.0}/{:.0} µs, {} rebuilds, {} components, verified",
            out.workload,
            out.ops_per_s,
            out.query_p50_us,
            out.query_p99_us,
            out.batch_p50_us,
            out.batch_p99_us,
            out.rebuilds,
            out.components
        );
        outcomes.push(out);
    }
    std::fs::write(&out_path, report_json("svc_driver", false, &outcomes))
        .expect("cannot write report");
    eprintln!(
        "svc_driver: wrote {} measurements to {out_path}",
        outcomes.len()
    );
}
