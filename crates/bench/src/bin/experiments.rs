//! Experiment driver: regenerates every table/figure of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p logdiam-bench --release --bin experiments -- all
//! cargo run -p logdiam-bench --release --bin experiments -- e1 e7 --full
//! ```

use logdiam_bench::{experiments, Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::default();
    let mut ids: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--full" => cfg.full = true,
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other if other.starts_with("--seed=") => {
                cfg.seed = other["--seed=".len()..].parse().expect("bad seed");
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [all | e1..e12]... [--full] [--seed=N]\n\
             available: {:?}",
            experiments::ALL
        );
        std::process::exit(2);
    }
    ids.dedup();
    for id in &ids {
        let t0 = std::time::Instant::now();
        let tables = experiments::run(id, &cfg);
        for t in &tables {
            print!("{}", t.markdown());
        }
        eprintln!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
