//! Out-of-process crash-recovery probe for the durable connectivity
//! service.
//!
//! Parent mode (the default) runs a batch-prefix matrix: for each prefix
//! length `k` it re-executes itself as a child (`--child --batches k`)
//! against a fresh store. The child creates the store with
//! `FsyncPolicy::Always`, applies the first `k` batches of the shared
//! deterministic probe workload, waits for every ticket, then calls
//! [`std::process::abort`] — a real `SIGABRT`, no destructors, no WAL
//! sync beyond what each commit already forced. The parent asserts the
//! child died abnormally, reopens the directory, and checks that the
//! recovered epoch is exactly `k` and the recovered labels match a
//! one-shot sequential recompute of the same prefix. It then applies the
//! *remaining* batches to the recovered service and checks the final
//! partition too — recovery must hand back a store that is correct to
//! keep writing into, not merely readable.
//!
//! ```text
//! crash_probe [--n N] [--total T] [--batch B] [--seed S] [--dir D]
//! crash_probe --child --dir D --n N --batches K --total T --batch B --seed S
//! ```
//!
//! Exit status 0 means every prefix in the matrix recovered correctly.
//! Used by the CI recovery smoke and by `crates/bench/tests/crash_probe.rs`.

use cc_graph::seq::{components, same_partition};
use cc_graph::Graph;
use logdiam_bench::svc_durable::{probe_batches, probe_initial};
use logdiam_svc::{ConnectivityService, FsyncPolicy, SvcParams};
use std::path::{Path, PathBuf};
use std::process::Command;

fn usage() -> ! {
    eprintln!(
        "usage: crash_probe [--n N] [--total T] [--batch B] [--seed S] [--dir D]\n\
         \x20      crash_probe --child --dir D --n N --batches K --total T --batch B --seed S"
    );
    std::process::exit(2);
}

/// Service knobs shared by the child (create) and the parent (open):
/// every commit fsyncs, snapshots every 2 commits so the matrix crosses
/// snapshot boundaries, and the rebuild threshold is small enough that
/// prefixes also cross full-rebuild boundaries.
fn probe_params() -> SvcParams {
    SvcParams {
        fsync: FsyncPolicy::Always,
        snapshot_every: 2,
        rebuild_threshold: 64,
        ..SvcParams::default()
    }
}

struct ProbeArgs {
    n: usize,
    total: usize,
    batch: usize,
    seed: u64,
    dir: PathBuf,
    child: bool,
    batches: usize,
}

fn parse_args() -> ProbeArgs {
    let mut pa = ProbeArgs {
        n: 600,
        total: 6,
        batch: 48,
        seed: 7,
        dir: std::env::temp_dir().join(format!("logdiam_crash_probe_{}", std::process::id())),
        child: false,
        batches: 0,
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| usage())
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--child" => pa.child = true,
            "--n" => pa.n = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--total" => pa.total = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--batch" => pa.batch = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--seed" => pa.seed = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--batches" => pa.batches = next(&mut args).parse().unwrap_or_else(|_| usage()),
            "--dir" => pa.dir = PathBuf::from(next(&mut args)),
            _ => usage(),
        }
    }
    pa
}

/// Child: create the store, commit `batches` acked batches, die hard.
fn run_child(pa: &ProbeArgs) -> ! {
    let svc = ConnectivityService::create(&pa.dir, probe_initial(pa.n), probe_params())
        .expect("child: cannot create store");
    let stream = probe_batches(pa.n, pa.total, pa.batch, pa.seed);
    for chunk in stream.iter().take(pa.batches) {
        svc.apply_batch(chunk).wait().expect("child: writer died");
    }
    eprintln!("crash_probe child: {} batches acked, aborting", pa.batches);
    std::process::abort();
}

/// One-shot ground truth for a batch prefix.
fn truth_for_prefix(n: usize, stream: &[Vec<(u32, u32)>], k: usize) -> Vec<u32> {
    let applied: Vec<(u32, u32)> = stream.iter().take(k).flatten().copied().collect();
    let union = Graph::from_csr_plus_edges(&probe_initial(n), &applied);
    components(&union)
}

/// Parent: run the child for one prefix, then recover and judge.
fn run_prefix(pa: &ProbeArgs, exe: &Path, k: usize) {
    let dir = pa.dir.join(format!("prefix-{k}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("cannot create probe dir");
    let status = Command::new(exe)
        .args([
            "--child",
            "--dir",
            dir.to_str().expect("non-UTF-8 temp dir"),
            "--n",
            &pa.n.to_string(),
            "--batches",
            &k.to_string(),
            "--total",
            &pa.total.to_string(),
            "--batch",
            &pa.batch.to_string(),
            "--seed",
            &pa.seed.to_string(),
        ])
        .status()
        .expect("cannot spawn crash_probe child");
    assert!(
        !status.success(),
        "prefix {k}: child exited cleanly instead of aborting ({status})"
    );

    let svc = ConnectivityService::open(&dir, probe_params())
        .unwrap_or_else(|e| panic!("prefix {k}: recovery failed: {e}"));
    assert_eq!(
        svc.epoch(),
        k as u64,
        "prefix {k}: recovered epoch disagrees with acked batches"
    );
    let stream = probe_batches(pa.n, pa.total, pa.batch, pa.seed);
    assert!(
        same_partition(svc.latest().labels(), &truth_for_prefix(pa.n, &stream, k)),
        "prefix {k}: recovered labels diverge from one-shot recompute"
    );
    // Recovery must be resumable: stream the rest, judge the final state.
    for chunk in stream.iter().skip(k) {
        svc.apply_batch(chunk)
            .wait()
            .expect("recovered writer died");
    }
    assert!(
        same_partition(
            svc.latest().labels(),
            &truth_for_prefix(pa.n, &stream, pa.total)
        ),
        "prefix {k}: post-recovery stream diverged from one-shot recompute"
    );
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("crash_probe: prefix {k}/{} OK", pa.total);
}

fn main() {
    let pa = parse_args();
    if pa.child {
        run_child(&pa);
    }
    let exe = std::env::current_exe().expect("cannot locate own binary");
    for k in 0..=pa.total {
        run_prefix(&pa, &exe, k);
    }
    let _ = std::fs::remove_dir_all(&pa.dir);
    println!(
        "crash_probe: OK — {} prefixes of {} batches × {} edges recovered exactly",
        pa.total + 1,
        pa.total,
        pa.batch
    );
}
