//! Ad-hoc probe: per-round live/table/work telemetry of a Theorem-3 run
//! on a path graph (straggler-tail diagnosis).
//!
//! `work` is the round's charged step work; `compact` is the charged work
//! of the round's two live-index rebuilds (the Lemma-D.2 compaction),
//! reported separately so the controller's own bookkeeping cost is
//! visible. On a healthy run every column decays with the live subproblem
//! — no column may flatline at a value scaling with n.

use cc_graph::gen;
use logdiam_cc::theorem3::{faster_cc, FasterParams};
use pram_sim::{Pram, WritePolicy};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let g = gen::path(n);
    let t0 = std::time::Instant::now();
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(0xBEEF_CAFE));
    let r = faster_cc(&mut pram, &g, 0xBEEF_CAFE, &FasterParams::default());
    let main_done = t0.elapsed();
    for m in &r.run.per_round {
        if m.round % 5 == 0 || m.round <= 3 || m.round + 3 >= r.run.rounds {
            eprintln!(
                "round {:3}: work {:10} compact {:9} live_arcs {:7} ongoing {:7} maxlvl {} table_words {:9} dormant {:6}",
                m.round,
                m.work,
                m.compaction_work,
                m.live_arcs,
                m.ongoing,
                m.max_level,
                m.table_words,
                m.dormant
            );
        }
    }
    eprintln!(
        "rounds {} stop {:?} prepare {}",
        r.run.rounds, r.run.stop, r.run.prepare_rounds
    );
    eprintln!("post phases {} post stop {:?}", r.post.rounds, r.post.stop);
    let main_work: u64 = r.run.per_round.iter().map(|m| m.work).sum();
    let compact_work: u64 = r.run.per_round.iter().map(|m| m.compaction_work).sum();
    eprintln!(
        "total work {} (rounds step {} + compaction {} + postprocess {} + startup {})",
        r.run.stats.work,
        main_work,
        compact_work,
        r.post_work,
        r.run.stats.work - main_work - compact_work - r.post_work
    );
    eprintln!("table peak words {}", r.table_peak_words);
    eprintln!("total {:?} (main+post)", main_done);
}
