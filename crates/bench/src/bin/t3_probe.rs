//! Ad-hoc probe: per-round live/table/work telemetry of a Theorem-3 run
//! on a path graph (straggler-tail diagnosis), emitted as structured
//! telemetry events.
//!
//! Every record is a `logdiam_obs` event — the per-round rows come
//! straight from [`RoundMetrics::to_event`], the summary from
//! [`RunReport::to_event`] plus probe-specific events — printed to stdout
//! as JSON lines (the `docs/obs-schema.md` contract; pipe into `jq` or a
//! file). Pass `--human` for the aligned `name key=value` rendering of
//! the *same* records on stderr; there is no second hand-rolled format.
//!
//! `work` is the round's charged step work; `compaction_work` the charged
//! work of the round's two live-index rebuilds (the Lemma-D.2
//! compaction), reported separately so the controller's own bookkeeping
//! cost is visible. On a healthy run every column decays with the live
//! subproblem — no column may flatline at a value scaling with n.
//!
//! Usage: `t3_probe [n] [--human] [--all-rounds] [--w32]`
//!
//! `--w32` runs the simulation on a narrow-cell
//! ([`pram_sim::CellWidth::W32`]) machine; the emitted `arena` event
//! (peak/live words, backing bytes) is how the memory-per-vertex budget
//! for the 1e8 tier was measured.
//!
//! [`RoundMetrics::to_event`]: logdiam_cc::metrics::RoundMetrics::to_event
//! [`RunReport::to_event`]: logdiam_cc::metrics::RunReport::to_event

use cc_graph::gen;
use logdiam_cc::theorem3::{faster_cc, FasterParams};
use logdiam_obs::{Event, Registry};
use pram_sim::{CellWidth, Pram, WritePolicy};

fn main() {
    let mut n: usize = 200_000;
    let mut human = false;
    let mut all_rounds = false;
    let mut width = CellWidth::W64;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--human" => human = true,
            "--all-rounds" => all_rounds = true,
            "--w32" => width = CellWidth::W32,
            other => match other.parse() {
                Ok(v) => n = v,
                Err(_) => {
                    eprintln!("usage: t3_probe [n] [--human] [--all-rounds] [--w32]");
                    std::process::exit(2);
                }
            },
        }
    }

    let g = gen::path(n);
    let t0 = std::time::Instant::now();
    let mut pram = Pram::with_width(WritePolicy::ArbitrarySeeded(0xBEEF_CAFE), width);
    let r = faster_cc(&mut pram, &g, 0xBEEF_CAFE, &FasterParams::default());
    let wall = t0.elapsed();

    // Collect everything through one registry so events carry ordered
    // sequence numbers and a common timestamp base.
    let reg = Registry::new();
    for m in &r.run.per_round {
        // Default: the interesting prefix/suffix plus every 5th round.
        if all_rounds || m.round % 5 == 0 || m.round <= 3 || m.round + 3 >= r.run.rounds {
            reg.event(m.to_event());
        }
    }
    reg.event(r.run.to_event());
    reg.event(
        Event::new("postprocess")
            .with("phases", r.post.rounds)
            .with("stop", r.post.stop.as_str()),
    );
    let main_work: u64 = r.run.per_round.iter().map(|m| m.work).sum();
    let compact_work: u64 = r.run.per_round.iter().map(|m| m.compaction_work).sum();
    reg.event(
        Event::new("work_breakdown")
            .with("total", r.run.stats.work)
            .with("rounds_step", main_work)
            .with("compaction", compact_work)
            .with("postprocess", r.post_work)
            .with(
                "startup",
                r.run.stats.work - main_work - compact_work - r.post_work,
            ),
    );
    // Arena footprint: peak/live simulated words and the actual backing
    // allocation. peak_words × (bytes/word) is the budget line for
    // raising n — 1e8 must stay under the 2^32-word address cap.
    let stats = pram.stats();
    reg.event(
        Event::new("arena")
            .with(
                "cell_width",
                if width == CellWidth::W32 { 32u64 } else { 64 },
            )
            .with("peak_words", stats.peak_words)
            .with("live_words", stats.live_words)
            .with("backing_bytes", pram.arena_backing_bytes() as u64),
    );
    reg.event(
        Event::new("probe_done")
            .with("n", n)
            .with("table_peak_words", r.table_peak_words)
            .with("wall_ms", wall.as_millis() as u64),
    );

    for e in reg.drain_events() {
        println!("{}", e.to_json_line());
        if human {
            eprintln!("{}", e.render_human());
        }
    }
}
