//! `bench_report` — the reproducible perf baseline.
//!
//! Runs a fixed workload matrix — path / grid / power-law / mixture graphs
//! at n ∈ {1e5, 1e6} plus path / grid at 1e7 — through the paper's
//! Theorem-3 pipeline (on the PRAM simulator, i.e. the `Pram::step` host
//! path) and all four `logdiam-par` practical algorithms, at 1 thread and
//! at all available cores, and writes per-(workload, algorithm, threads)
//! wall-clock medians to `BENCH_PR8.json`. Every future perf PR is judged
//! against this file.
//!
//! `theorem3_sim` rows additionally carry the run's charged `work`, its
//! `rounds`, and `work_per_m_round` = work / (m · rounds) — the
//! near-work-efficiency invariant (E9): with live-work scheduling in the
//! rounds, the controller, and (since the stamped EXPAND phase state) the
//! Theorem-1 postprocess, this ratio stays flat as n grows, which is what
//! justifies lifting the simulated range to 1e7.
//!
//! Every workload also gets a `graph_build` row timing the streaming
//! chunked CSR build (generator → bounded sorted runs → k-way merge) and
//! recording `peak_rss_kb` — the kernel's `VmHWM` high-water mark, reset
//! per phase via `/proc/self/clear_refs` — plus the final `csr_bytes`;
//! the streaming-build memory contract (peak ≤ 2× the final CSR
//! footprint) is asserted in-process for CSR footprints large enough to
//! dominate the process baseline. `theorem3_sim` rows record the simulate
//! phase's `peak_rss_kb` the same way. A `builder_equivalence` row
//! asserts the streaming build is bit-identical to the reference
//! sort+dedup build on a duplicate/loop-heavy stream and carries
//! `"verified": true`.
//!
//! Because the rayon pool size is fixed at first use, the parent process
//! re-executes itself once per thread count (`RAYON_NUM_THREADS=k
//! bench_report --child ...`) and merges the children's measurements.
//!
//! Usage:
//!
//! ```text
//! bench_report [--smoke | --xl] [--out PATH] [--svc-out PATH] [--mt-out PATH]
//!              [--durable-out PATH] [--sim-max-n N]
//! ```
//!
//! `--xl` switches to the 1e8 tier (see `BENCH_PR10.json`): path and
//! grid at n = 1e8, graph build forced through out-of-core edge runs
//! (`LOGDIAM_RUN_SPILL` — the parent pins a spill dir for its children,
//! honoring a pre-set value), the Theorem-3 simulation on the narrow-cell
//! (`CellWidth::W32`) machine, path-only and single-rep. Rows carry
//! `cell_width`, `spilled_runs`, `spill_bytes` (process-wide spill
//! counter deltas around the build) and `arena_bytes` (the machine's
//! backing allocation after the run); the streaming-build memory contract
//! (peak RSS ≤ 2× final CSR) is asserted with spilling active, and the
//! practical `logdiam-par` rows are gated off above 1e7 where the
//! graphs alone dominate the measurement budget.
//!
//! `--smoke` shrinks the matrix to seconds (CI keeps the emitter alive)
//! and additionally runs the **wall-clock guards**: diameter-heavy
//! `theorem3_sim`, `theorem1_sim`, and `theorem2_sim` runs on path/2^14
//! must each finish under a generous cap, so an O(n+m)-per-round pathology
//! in any of the live-scheduled drivers can never silently return. The
//! theorem3 guard is then repeated with full `logdiam_obs` registry
//! recording (spans on, per-round events, gauge bridges) and asserted to
//! cost ≤ 5% over the plain run; that `theorem3_sim_obs` row embeds the
//! final registry dump under `"obs"` (the `docs/obs-schema.md` object),
//! which CI's smoke validation parses and cross-checks. Smoke
//! mode also replays the connectivity-service smoke trace (the
//! `svc_driver` workload, capped at 5 s and verified against a
//! from-scratch recompute) and writes its `BENCH_PR4.json`-schema report
//! to `--svc-out` (default `BENCH_PR4_SMOKE.json`), then the contended
//! multi-writer/multi-reader scenario (`svc_driver --mt` workload, same
//! cap, enqueue budget asserted) to `--mt-out` (default
//! `BENCH_PR6_SMOKE.json`), then the durable-store smoke (one short
//! crash-safe trace per fsync policy, recovered and verified against a
//! from-scratch recompute) to `--durable-out` (default
//! `BENCH_PR7_SMOKE.json`). `--out` overrides the output path (default
//! `BENCH_PR8.json`); `--sim-max-n` raises (or lowers) the largest n the
//! full Theorem-3 simulation runs at.

use cc_graph::runs::spill_counters;
use cc_graph::seq::{components, same_partition};
use cc_graph::{gen, EdgeRunStore, Graph, Rng};
use logdiam_cc::theorem1::{connected_components, Theorem1Params};
use logdiam_cc::theorem2::spanning_forest;
use logdiam_cc::theorem3::{faster_cc, faster_cc_with, FasterParams, FasterWorkspace};
use logdiam_obs::Registry;
use logdiam_par::{
    contract::contract_cc, labelprop::labelprop_cc, sv::sv_cc, unionfind::unionfind_cc,
};
use pram_sim::{CellWidth, Pram, WritePolicy};
use std::io::Write as _;
use std::process::Command;

const SEED: u64 = 0xBEEF_CAFE;

/// Default largest n the full Theorem-3 *simulation* runs at. With the
/// rounds, the controller, and the EXPAND phase state all live-sized
/// (charged LiveIndex rebuild, stamped MAXLINK, stamped fdr/liveness),
/// and the streaming chunked builder keeping construction memory at
/// runs + CSR instead of 2× edge list, 1e7 path/grid runs fit and finish.
/// Overridable with `--sim-max-n`; anything larger is skipped with a log
/// line naming the limit and the flag, never silently.
const DEFAULT_SIM_MAX_N: usize = 10_000_000;

/// The `--xl` tier size. A path/1e8 Theorem-3 run peaks at ≈ 33 simulated
/// words per vertex (measured with `t3_probe --w32`), i.e. ≈ 3.3e9 words
/// — inside the arena's 2^32-word address space, which is exactly what
/// the compact-image work buys. The build streams its ≈ 1e8-edge runs
/// through spill files, so construction never holds the unsorted list.
const XL_N: usize = 100_000_000;

/// Largest n the practical `logdiam-par` algorithms (and the `pram_step`
/// microworkload) run at: above this the measurements are dominated by
/// memory traffic on graphs the simulated tier is the story for, so the
/// matrix stops paying for them.
const PAR_MAX_N: usize = 10_000_000;

/// Largest n at which `theorem3_sim` is cheap enough to repeat for an
/// honest median; above this a single rep is taken and the JSON field is
/// labeled `ms` (not `median_ms`).
const SIM_MEDIAN_MAX_N: usize = 100_000;

/// Wall-clock guard workload (`--smoke` only): a path graph this long is
/// diameter-heavy enough that O(n+m)-per-round behaviour costs minutes,
/// while the live-work scheduler finishes in seconds.
const GUARD_N: usize = 1 << 14;

/// Generous cap for the theorem3 guard run (per rep, milliseconds). The
/// pre-PR3 code needed ~2 minutes for this workload; the scheduler needs
/// well under a second.
const GUARD_CAP_MS: f64 = 60_000.0;

/// Caps for the Theorem-1/Theorem-2 guards (per rep, milliseconds). Both
/// drivers run the same live discipline; Theorem 2 snapshots its
/// expansion tables, so it gets the same generous envelope.
const GUARD_T1_CAP_MS: f64 = 60_000.0;
const GUARD_T2_CAP_MS: f64 = 60_000.0;

/// Absolute slack for the observability-overhead guard, milliseconds.
/// The contract is relative (recording into a registry must cost ≤ 5% of
/// the guard run), but 5% of a sub-second run is inside the scheduling
/// jitter of a loaded CI container even with median-of-3 reps, so the
/// assert allows this fixed noise floor on top.
const OBS_GUARD_SLACK_MS: f64 = 100.0;

/// Steps of the `pram_step` microworkload: each step runs n processors
/// that read one cell and write another (with a deterministic per-step
/// shuffle), i.e. pure `run_procs` + sharded-commit throughput.
const PRAM_STEP_ROUNDS: usize = 8;

fn pram_step_workload(n: usize) {
    let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(SEED));
    let xs = pram.alloc(n);
    for _ in 0..PRAM_STEP_ROUNDS {
        pram.step(n, |p, ctx| {
            let i = p as usize;
            let v = ctx.read(xs, i);
            let r = ctx.rand(0);
            let j = (i + 1) % n;
            ctx.write(xs, j, v ^ r);
        });
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_report [--smoke | --xl] [--out PATH] [--svc-out PATH] [--mt-out PATH] \
         [--durable-out PATH] [--sim-max-n N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut smoke = false;
    let mut xl = false;
    let mut out_path: Option<String> = None;
    let mut svc_out_path = "BENCH_PR4_SMOKE.json".to_string();
    let mut mt_out_path = "BENCH_PR6_SMOKE.json".to_string();
    let mut durable_out_path = "BENCH_PR7_SMOKE.json".to_string();
    let mut sim_max_n = DEFAULT_SIM_MAX_N;
    let mut child = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--xl" => xl = true,
            "--child" => child = true,
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            "--svc-out" => svc_out_path = args.next().unwrap_or_else(|| usage()),
            "--mt-out" => mt_out_path = args.next().unwrap_or_else(|| usage()),
            "--durable-out" => durable_out_path = args.next().unwrap_or_else(|| usage()),
            "--sim-max-n" => {
                sim_max_n = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    if smoke && xl {
        usage(); // the tiers are disjoint matrices
    }
    let out_path = out_path.unwrap_or_else(|| {
        (if xl {
            "BENCH_PR10.json"
        } else {
            "BENCH_PR8.json"
        })
        .into()
    });
    if child {
        run_child(smoke, xl, sim_max_n);
    } else {
        run_parent(
            smoke,
            xl,
            &out_path,
            &svc_out_path,
            &mt_out_path,
            &durable_out_path,
            sim_max_n,
        );
    }
}

/// The workload sizes: (label, n). Smoke mode is sized for CI seconds.
fn sizes(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![3_000]
    } else {
        vec![100_000, 1_000_000, 10_000_000]
    }
}

const FAMILIES: [&str; 4] = ["path", "grid", "powerlaw", "mixture"];

/// Workload names, cheap to enumerate; graphs are built one at a time by
/// [`build_graph`] and dropped before the next workload, so a 1e6 graph's
/// footprint never sits resident while an unrelated simulation runs
/// (keeping RSS flat keeps the measurements independent). Beyond 1e6 only
/// path and grid run — the diameter-stress shapes the 1e7 target names —
/// so the matrix grows where the live-work story is tested, not where
/// graph generation dominates.
fn workload_names(smoke: bool, xl: bool) -> Vec<(String, &'static str, usize)> {
    if xl {
        // The 1e8 tier: only the diameter-stress shapes, built out-of-core.
        return ["path", "grid"]
            .into_iter()
            .map(|family| (format!("{family}/{XL_N}"), family, XL_N))
            .collect();
    }
    let mut out = Vec::new();
    for n in sizes(smoke) {
        for family in FAMILIES {
            if n > 1_000_000 && !matches!(family, "path" | "grid") {
                continue;
            }
            out.push((format!("{family}/{n}"), family, n));
        }
    }
    out
}

fn build_graph(family: &str, n: usize) -> Graph {
    match family {
        // Long path: the d ≈ n stress case the paper's log d bound targets.
        "path" => gen::path(n),
        // Square-ish grid: d ≈ 2√n, m/n ≈ 2.
        "grid" => {
            let rows = (n as f64).sqrt().round() as usize;
            gen::grid(rows, n / rows)
        }
        // Power-law: preferential attachment, low diameter, skewed degrees.
        "powerlaw" => gen::preferential_attachment(n, 4, SEED),
        // Mixture: dense random + long path + giant star in one graph.
        "mixture" => gen::union_all(&[
            gen::gnm(n / 2, 2 * n, SEED ^ 1),
            gen::path(n / 4),
            gen::star(n / 4),
        ]),
        other => unreachable!("unknown workload family {other}"),
    }
}

/// Simulation telemetry attached to `theorem3_sim` rows.
struct SimCost {
    rounds: u64,
    work: u64,
    work_per_m_round: f64,
}

/// One measurement row, serialized as a JSON object. A median is only a
/// median with ≥ 3 reps; single-rep rows are labeled `ms` instead of
/// `median_ms` so the JSON never overstates its statistics (CI's smoke
/// validation asserts every `theorem3_sim` row carries a real median).
struct Row {
    workload: String,
    n: usize,
    m: usize,
    algorithm: &'static str,
    threads: u64,
    reps: usize,
    ms: f64,
    sim: Option<SimCost>,
    /// Phase peak RSS (`VmHWM`, kB) — `graph_build` and `theorem3_sim`.
    peak_rss_kb: Option<u64>,
    /// Final CSR heap footprint — `graph_build` rows.
    csr_bytes: Option<usize>,
    /// Correctness flag — `builder_equivalence` rows (asserted before
    /// emission, so a written row is always `true`).
    verified: Option<bool>,
    /// Final `logdiam_obs` registry dump (the `docs/obs-schema.md` JSON
    /// object), embedded verbatim — `theorem3_sim_obs` guard rows.
    obs: Option<String>,
    /// Machine cell width in bits (32 narrow / 64 full) — simulated rows.
    cell_width: Option<u32>,
    /// Edge runs sealed to spill files during the build, and bytes
    /// written to them (deltas of the process-wide spill counters across
    /// the build) — `graph_build` rows. Zero when spilling is off.
    spilled_runs: Option<u64>,
    spill_bytes: Option<u64>,
    /// The machine's arena backing allocation (cells + stamps + priority
    /// sidecar + free lists) after the run — simulated rows; divide by
    /// `n` for the bytes-per-vertex budget line.
    arena_bytes: Option<u64>,
}

impl Row {
    fn to_json(&self) -> String {
        let field = if self.reps >= 3 { "median_ms" } else { "ms" };
        let sim = match &self.sim {
            Some(s) => format!(
                ",\"rounds\":{},\"work\":{},\"work_per_m_round\":{:.3}",
                s.rounds, s.work, s.work_per_m_round
            ),
            None => String::new(),
        };
        let peak = self
            .peak_rss_kb
            .map(|k| format!(",\"peak_rss_kb\":{k}"))
            .unwrap_or_default();
        let csr = self
            .csr_bytes
            .map(|b| format!(",\"csr_bytes\":{b}"))
            .unwrap_or_default();
        let verified = self
            .verified
            .map(|v| format!(",\"verified\":{v}"))
            .unwrap_or_default();
        let obs = self
            .obs
            .as_ref()
            .map(|o| format!(",\"obs\":{o}"))
            .unwrap_or_default();
        let cell = self
            .cell_width
            .map(|w| format!(",\"cell_width\":{w}"))
            .unwrap_or_default();
        let spill = match (self.spilled_runs, self.spill_bytes) {
            (Some(r), Some(b)) => format!(",\"spilled_runs\":{r},\"spill_bytes\":{b}"),
            _ => String::new(),
        };
        let arena = self
            .arena_bytes
            .map(|b| format!(",\"arena_bytes\":{b}"))
            .unwrap_or_default();
        format!(
            "{{\"workload\":\"{}\",\"n\":{},\"m\":{},\"algorithm\":\"{}\",\"threads\":{},\"reps\":{},\"{}\":{:.3}{}{}{}{}{}{}{}{}}}",
            self.workload, self.n, self.m, self.algorithm, self.threads, self.reps, field, self.ms,
            sim, peak, csr, verified, obs, cell, spill, arena
        )
    }
}

/// Reset the kernel's peak-RSS watermark (`VmHWM`) so the next
/// [`peak_rss_kb`] read covers only the phase between the two calls.
/// Best-effort: a kernel without `clear_refs` just yields whole-process
/// peaks (still monotone, never under-reported).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak RSS in kB since the last [`reset_peak_rss`] (`VmHWM` from
/// `/proc/self/status`), if the proc interface is readable.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// One child-level proof that the streaming chunked builder is
/// bit-identical to the reference sort+dedup build: a duplicate- and
/// self-loop-heavy pseudo-random stream goes through an [`EdgeRunStore`]
/// with a deliberately tiny run capacity (so run sealing and the k-way
/// parallel merge genuinely execute, at this child's thread count) and
/// through the obvious canonicalize+sort+dedup reference; the two
/// [`Graph`]s must compare equal (`Graph: Eq`, so edges, offsets, and
/// adjacency all match bit-for-bit). Asserted before the row is written,
/// so an emitted row always carries `"verified": true`.
fn builder_equivalence_row(threads: u64) -> Row {
    const N: usize = 50_000;
    const PUSHES: usize = 400_000;
    let mut rng = Rng::new(SEED ^ 0xB01D);
    let mut stream: Vec<(u32, u32)> = Vec::with_capacity(PUSHES);
    for _ in 0..PUSHES {
        let u = (rng.next_u64() % N as u64) as u32;
        // Half the pushes land in a 64-vertex hot set: heavy duplicates
        // (both orientations) and a steady rate of self-loops.
        let v = if rng.next_u64().is_multiple_of(2) {
            (rng.next_u64() % 64) as u32
        } else {
            (rng.next_u64() % N as u64) as u32
        };
        stream.push((u, v));
    }
    let t0 = std::time::Instant::now();
    let mut store = EdgeRunStore::with_run_capacity(Some(N as u32), 1 << 12);
    for &(u, v) in &stream {
        store.push(u, v);
    }
    let streamed = Graph::from_canonical_edges(N as u32, store.into_sorted_edges());
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut reference: Vec<(u32, u32)> = stream
        .iter()
        .filter(|&&(u, v)| u != v)
        .map(|&(u, v)| (u.min(v), u.max(v)))
        .collect();
    reference.sort_unstable();
    reference.dedup();
    let expected = Graph::from_canonical_edges(N as u32, reference);
    assert_eq!(
        streamed, expected,
        "streaming chunked builder diverged from the reference \
         sort+dedup build at {threads} thread(s)"
    );
    eprintln!("bench_report: builder_equivalence verified at {threads} thread(s)");
    Row {
        workload: format!("dirty_stream/{N}"),
        n: streamed.n(),
        m: streamed.m(),
        algorithm: "builder_equivalence",
        threads,
        reps: 1,
        ms,
        sim: None,
        peak_rss_kb: None,
        csr_bytes: None,
        verified: Some(true),
        obs: None,
        cell_width: None,
        spilled_runs: None,
        spill_bytes: None,
        arena_bytes: None,
    }
}

/// Wall-clock median of `reps` runs, in milliseconds.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            drop(out);
            dt
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// One verified `faster_cc` run returning its charged-cost telemetry.
///
/// The machine and workspace come from the caller and are reused across
/// reps: [`Pram::reset_for_run`] rewinds the step counter and live image
/// while keeping the arena's backing, free lists, and commit scratch, so
/// repeated reps replay bit-identically without re-mapping memory — the
/// cross-run reuse path the 1e8 tier depends on, measured here.
fn faster_run(
    pram: &mut Pram,
    ws: &mut FasterWorkspace,
    g: &Graph,
    check: &impl Fn(&[u32]),
) -> SimCost {
    pram.reset_for_run();
    let report = faster_cc_with(pram, g, SEED, &FasterParams::default(), ws);
    check(&report.run.labels);
    let work = report.run.stats.work;
    let rounds = report.run.rounds.max(1);
    SimCost {
        rounds: report.run.rounds,
        work,
        work_per_m_round: work as f64 / (g.m().max(1) as f64 * rounds as f64),
    }
}

/// Child mode: run the matrix at this process's (env-pinned) thread count
/// and print one JSON object per line.
fn run_child(smoke: bool, xl: bool, sim_max_n: usize) {
    let threads = rayon::current_num_threads() as u64;
    let reps = if xl { 1 } else { 3 };
    let stdout = std::io::stdout();
    let emit = |row: Row| writeln!(stdout.lock(), "{}", row.to_json()).unwrap();
    emit(builder_equivalence_row(threads));
    for (name, family, size) in workload_names(smoke, xl) {
        // Build phase: reset the RSS watermark so `VmHWM` covers just the
        // streaming chunked build (generator → sealed runs → merge → CSR),
        // then check the memory contract against the finished footprint.
        // The spill-counter delta around the build records how much of it
        // ran out-of-core (the `--xl` parent pins `LOGDIAM_RUN_SPILL`).
        reset_peak_rss();
        let (spill_runs0, spill_bytes0) = spill_counters();
        let t0 = std::time::Instant::now();
        let g = build_graph(family, size);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (spill_runs1, spill_bytes1) = spill_counters();
        let build_peak = peak_rss_kb();
        let csr_bytes = g.heap_bytes();
        if let Some(peak) = build_peak {
            // Only meaningful when the CSR dominates the process baseline
            // (binary + rayon pool + allocator slack ≈ tens of MB): the
            // 1e7 rows are the ones the contract is about.
            if csr_bytes >= 100 * 1024 * 1024 {
                assert!(
                    peak.saturating_mul(1024) <= 2 * csr_bytes as u64,
                    "streaming-build memory contract violated on {name}: \
                     build peak RSS {peak} kB exceeds 2x the final CSR \
                     footprint ({csr_bytes} bytes)"
                );
            }
        }
        let truth = components(&g);
        let check = |labels: &[u32]| {
            assert!(
                same_partition(labels, &truth),
                "bench_report: {name} produced wrong labels"
            )
        };
        let row = |algorithm: &'static str, reps: usize, ms: f64, sim: Option<SimCost>| {
            eprintln!("bench_report: [{name}] {algorithm}: done");
            Row {
                workload: name.clone(),
                n: g.n(),
                m: g.m(),
                algorithm,
                threads,
                reps,
                ms,
                sim,
                peak_rss_kb: None,
                csr_bytes: None,
                verified: None,
                obs: None,
                cell_width: None,
                spilled_runs: None,
                spill_bytes: None,
                arena_bytes: None,
            }
        };
        emit(Row {
            peak_rss_kb: build_peak,
            csr_bytes: Some(csr_bytes),
            spilled_runs: Some(spill_runs1 - spill_runs0),
            spill_bytes: Some(spill_bytes1 - spill_bytes0),
            ..row("graph_build", 1, build_ms, None)
        });
        // The xl tier simulates path only (the d ≈ n shape the paper's
        // bound is about) on the narrow-cell machine: the whole point of
        // the compact image is that 1e8 vertices of simulated memory fit
        // the 2^32-word address space, which W64 alone would not change
        // but the 8-bytes-per-word backing makes affordable.
        let run_sim = if xl {
            family == "path"
        } else {
            g.n() <= sim_max_n
        };
        if run_sim {
            // A simulated rep is deterministic in its seed but minutes long
            // at 1e6+; repeat only where the live-work scheduler makes reps
            // cheap, and label the single-rep case honestly (see Row).
            let sim_reps = if g.n() <= SIM_MEDIAN_MAX_N { reps } else { 1 };
            let width = if xl { CellWidth::W32 } else { CellWidth::W64 };
            let mut pram = Pram::with_width(WritePolicy::ArbitrarySeeded(SEED), width);
            let mut ws = FasterWorkspace::new();
            let mut cost = None;
            reset_peak_rss();
            let ms = time_ms(sim_reps, || {
                // Identical seed per rep → identical charged cost; keep the
                // last rep's telemetry.
                cost = Some(faster_run(&mut pram, &mut ws, &g, &check));
            });
            let sim_peak = peak_rss_kb();
            emit(Row {
                peak_rss_kb: sim_peak,
                cell_width: Some(if width == CellWidth::W32 { 32 } else { 64 }),
                arena_bytes: Some(pram.arena_backing_bytes() as u64),
                ..row("theorem3_sim", sim_reps, ms, cost)
            });
        } else if !xl {
            eprintln!(
                "bench_report: skipping theorem3_sim on {name} \
                 (n {size} > configured sim-max-n limit {sim_max_n}; \
                 raise with --sim-max-n N to simulate larger inputs)"
            );
        }
        if g.n() > PAR_MAX_N {
            eprintln!(
                "bench_report: skipping practical rows on {name} \
                 (n {size} > practical-tier limit {PAR_MAX_N})"
            );
            continue;
        }
        emit(row(
            "pram_step",
            reps,
            time_ms(reps, || pram_step_workload(g.n())),
            None,
        ));
        emit(row(
            "labelprop",
            reps,
            time_ms(reps, || check(&labelprop_cc(&g))),
            None,
        ));
        emit(row(
            "unionfind",
            reps,
            time_ms(reps, || check(&unionfind_cc(&g))),
            None,
        ));
        emit(row("sv", reps, time_ms(reps, || check(&sv_cc(&g))), None));
        emit(row(
            "contract",
            reps,
            time_ms(reps, || check(&contract_cc(&g))),
            None,
        ));
    }
    if smoke {
        // Wall-clock guards: diameter-heavy simulations under hard caps,
        // one per live-scheduled driver family.
        let g = gen::path(GUARD_N);
        let truth = components(&g);
        let check = |labels: &[u32]| {
            assert!(
                same_partition(labels, &truth),
                "bench_report: guard workload produced wrong labels"
            )
        };
        let guard_row = |algorithm: &'static str, ms: f64, sim: Option<SimCost>| Row {
            workload: format!("path/{GUARD_N}"),
            n: g.n(),
            m: g.m(),
            algorithm,
            threads,
            reps,
            ms,
            sim,
            peak_rss_kb: None,
            csr_bytes: None,
            verified: None,
            obs: None,
            cell_width: None,
            spilled_runs: None,
            spill_bytes: None,
            arena_bytes: None,
        };

        let mut guard_pram = Pram::new(WritePolicy::ArbitrarySeeded(SEED));
        let mut guard_ws = FasterWorkspace::new();
        let mut cost = None;
        let ms = time_ms(reps, || {
            cost = Some(faster_run(&mut guard_pram, &mut guard_ws, &g, &check));
        });
        assert!(
            ms < GUARD_CAP_MS,
            "wall-clock guard tripped: theorem3_sim on path/{GUARD_N} took {ms:.0} ms \
             (cap {GUARD_CAP_MS:.0} ms) — per-round cost is no longer tracking live work"
        );
        emit(guard_row("theorem3_sim", ms, cost));

        // Observability-overhead guard: the same workload, re-measured
        // with full registry recording — spans enabled, per-round events
        // and `sim_`/`run_` gauges via `RunReport::record_into`, plus a
        // per-round charged-work histogram. The plain guard run above is
        // the spans-off baseline; recording must cost ≤ 5% of it (plus
        // [`OBS_GUARD_SLACK_MS`] of scheduler noise). The row embeds the
        // final registry dump, which CI's smoke validation parses.
        let off_ms = ms;
        let reg = Registry::new();
        reg.set_spans_enabled(true);
        let round_work = reg.histogram("sim_round_work");
        let on_ms = time_ms(reps, || {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(SEED));
            let report = faster_cc(&mut pram, &g, SEED, &FasterParams::default());
            check(&report.run.labels);
            report.run.record_into(&reg);
            for m in &report.run.per_round {
                round_work.observe(m.work);
            }
        });
        assert!(
            on_ms <= off_ms * 1.05 + OBS_GUARD_SLACK_MS,
            "observability overhead guard tripped: theorem3_sim on path/{GUARD_N} \
             took {on_ms:.0} ms with registry recording vs {off_ms:.0} ms without \
             (allowed: 5% + {OBS_GUARD_SLACK_MS:.0} ms slack)"
        );
        let dump = reg.snapshot();
        dump.validate()
            .expect("obs guard registry snapshot failed validation");
        emit(Row {
            obs: Some(dump.to_json()),
            ..guard_row("theorem3_sim_obs", on_ms, None)
        });

        let ms = time_ms(reps, || {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(SEED));
            let report = connected_components(&mut pram, &g, SEED, &Theorem1Params::default());
            check(&report.labels);
        });
        assert!(
            ms < GUARD_T1_CAP_MS,
            "wall-clock guard tripped: theorem1_sim on path/{GUARD_N} took {ms:.0} ms \
             (cap {GUARD_T1_CAP_MS:.0} ms) — per-phase cost is no longer tracking live work"
        );
        emit(guard_row("theorem1_sim", ms, None));

        let ms = time_ms(reps, || {
            let mut pram = Pram::new(WritePolicy::ArbitrarySeeded(SEED));
            let report = spanning_forest(&mut pram, &g, SEED, &Theorem1Params::default());
            check(&report.labels);
        });
        assert!(
            ms < GUARD_T2_CAP_MS,
            "wall-clock guard tripped: theorem2_sim on path/{GUARD_N} took {ms:.0} ms \
             (cap {GUARD_T2_CAP_MS:.0} ms) — per-phase cost is no longer tracking live work"
        );
        emit(guard_row("theorem2_sim", ms, None));
    }
}

/// Parent mode: one child process per thread count, merged into the JSON
/// report.
fn run_parent(
    smoke: bool,
    xl: bool,
    out_path: &str,
    svc_out_path: &str,
    mt_out_path: &str,
    durable_out_path: &str,
    sim_max_n: usize,
) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_counts = vec![1];
    if cores > 1 {
        thread_counts.push(cores);
    }
    // The xl tier builds out-of-core: pin a spill directory for the
    // children unless the caller already chose one via the environment.
    let spill_dir = xl.then(|| {
        std::env::var(cc_graph::runs::RUN_SPILL_ENV)
            .unwrap_or_else(|_| std::env::temp_dir().to_string_lossy().into_owned())
    });
    let exe = std::env::current_exe().expect("cannot locate own binary");
    let mut rows: Vec<String> = Vec::new();
    for &t in &thread_counts {
        eprintln!("bench_report: measuring at {t} thread(s)...");
        let mut cmd = Command::new(&exe);
        cmd.arg("--child")
            .args(["--sim-max-n", &sim_max_n.to_string()])
            .env("RAYON_NUM_THREADS", t.to_string());
        if smoke {
            cmd.arg("--smoke");
        }
        if xl {
            cmd.arg("--xl");
        }
        if let Some(dir) = &spill_dir {
            cmd.env(cc_graph::runs::RUN_SPILL_ENV, dir);
        }
        // Child stderr (per-workload progress + skip logs) streams through
        // live; only stdout (the JSON rows) is captured.
        cmd.stderr(std::process::Stdio::inherit());
        let out = cmd.output().expect("failed to spawn child bench process");
        if !out.status.success() {
            panic!("bench_report child at {t} threads failed: {}", out.status);
        }
        rows.extend(
            String::from_utf8(out.stdout)
                .expect("child emitted invalid UTF-8")
                .lines()
                .map(str::to_string),
        );
    }
    let json = format!(
        "{{\n  \"report\": \"logdiam perf baseline\",\n  \"emitter\": \"bench_report\",\n  \"smoke\": {smoke},\n  \"xl\": {xl},\n  \"host_cores\": {cores},\n  \"sim_max_n\": {sim_max_n},\n  \"thread_counts\": {thread_counts:?},\n  \"measurements\": [\n    {}\n  ]\n}}\n",
        rows.join(",\n    ")
    );
    std::fs::write(out_path, &json).expect("cannot write report");
    eprintln!(
        "bench_report: wrote {} measurements to {out_path}",
        rows.len()
    );
    if smoke {
        // Connectivity-service smoke: a short svc_driver trace (capped at
        // 5 s, verified against a from-scratch recompute) emitting the
        // BENCH_PR4.json schema — CI validates the written file.
        logdiam_bench::svc::run_smoke("bench_report --smoke", svc_out_path);
        // Contended-service smoke: writers enqueue concurrently against
        // readers, emitting the BENCH_PR6.json schema (enqueue budget and
        // verification asserted inside) — CI validates this file too.
        logdiam_bench::svc_mt::run_mt_smoke("bench_report --smoke", mt_out_path);
        // Durable-store smoke: one short crash-safe trace per fsync
        // policy (always / batch / off), each reopened and verified
        // against a from-scratch recompute, emitting the BENCH_PR7.json
        // schema — CI validates this file too.
        logdiam_bench::svc_durable::run_durable_smoke("bench_report --smoke", durable_out_path);
    }
}
