//! End-to-end crash-recovery proof through a real process boundary: the
//! `crash_probe` binary kills a child with `SIGABRT` after each acked
//! batch prefix and asserts the reopened store recovered exactly that
//! prefix. Complements the in-process fault injection in
//! `crates/service/tests/recovery.rs`, which models crashes by
//! truncating copies of the WAL — here the kernel, not the test, decides
//! what hit the disk.

use std::process::Command;

#[test]
fn crash_probe_matrix_recovers_every_prefix() {
    let dir = std::env::temp_dir().join(format!("logdiam_probe_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let status = Command::new(env!("CARGO_BIN_EXE_crash_probe"))
        .args([
            "--n",
            "400",
            "--total",
            "4",
            "--batch",
            "32",
            "--seed",
            "11",
            "--dir",
            dir.to_str().expect("non-UTF-8 temp dir"),
        ])
        .status()
        .expect("cannot spawn crash_probe");
    assert!(status.success(), "crash_probe matrix failed: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
