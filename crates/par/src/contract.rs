//! Alter-and-contract: the paper's ALTER + hash-deduplication flavour as a
//! practical recursive algorithm.
//!
//! Each level: a few label-relaxation rounds (cheap partial clustering),
//! full flattening, then every edge is rewritten to its endpoint labels
//! (ALTER) and deduplicated *by hashing* (a `HashSet` shard per rayon
//! worker — no sorting, mirroring §A.3's "hashing naturally removes the
//! duplicate neighbours"). The shrunken multigraph recurses until no edge
//! remains, and labels compose back down the levels.

use crate::{finalize_labels, identity_parents};
use cc_graph::Graph;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::Ordering;

/// How many relaxation rounds to run per contraction level.
const RELAX_ROUNDS: usize = 2;

/// Connected components by recursive alter-and-contract.
pub fn contract_cc(g: &Graph) -> Vec<u32> {
    let edges: Vec<(u32, u32)> = g.edges().to_vec();
    contract_rec(g.n(), edges, 0)
}

fn contract_rec(n: usize, edges: Vec<(u32, u32)>, depth: usize) -> Vec<u32> {
    assert!(depth <= 64, "contraction failed to make progress");
    if edges.is_empty() {
        return (0..n as u32).collect();
    }
    let p = identity_parents(n);
    for _ in 0..RELAX_ROUNDS {
        edges.par_iter().for_each(|&(u, v)| {
            let lu = p[u as usize].load(Ordering::Relaxed);
            let lv = p[v as usize].load(Ordering::Relaxed);
            if lu < lv {
                p[lv as usize].fetch_min(lu, Ordering::Relaxed);
            } else if lv < lu {
                p[lu as usize].fetch_min(lv, Ordering::Relaxed);
            }
        });
        (0..n).into_par_iter().for_each(|v| {
            let mut l = p[v].load(Ordering::Relaxed);
            loop {
                let ll = p[l as usize].load(Ordering::Relaxed);
                if ll == l {
                    break;
                }
                l = ll;
            }
            p[v].store(l, Ordering::Relaxed);
        });
    }
    let labels = finalize_labels(&p);

    // ALTER + hash-dedup: rewrite edges to labels, drop loops, dedup in
    // per-worker hash sets, then merge the shards' sets.
    let shards: Vec<HashSet<(u32, u32)>> = edges
        .par_iter()
        .fold(HashSet::new, |mut set, &(u, v)| {
            let (a, b) = (labels[u as usize], labels[v as usize]);
            if a != b {
                set.insert((a.min(b), a.max(b)));
            }
            set
        })
        .collect();
    let mut merged: HashSet<(u32, u32)> = HashSet::new();
    for s in shards {
        merged.extend(s);
    }
    if merged.is_empty() {
        return labels;
    }
    let next_edges: Vec<(u32, u32)> = merged.into_iter().collect();
    assert!(
        next_edges.len() < edges.len(),
        "contraction level {depth} did not shrink the edge set"
    );
    let upper = contract_rec(n, next_edges, depth + 1);
    // Compose: final label of v = upper label of its contraction label.
    labels.into_par_iter().map(|l| upper[l as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use cc_graph::seq::{components, same_partition};

    #[test]
    fn matches_ground_truth_on_shapes() {
        for g in [
            gen::path(90),
            gen::cycle(41),
            gen::grid(8, 9),
            gen::union_all(&[gen::star(17), gen::complete(7), gen::path(23)]),
        ] {
            let labels = contract_cc(&g);
            assert!(same_partition(&labels, &components(&g)));
        }
    }

    #[test]
    fn matches_ground_truth_on_random_graphs() {
        for seed in 0..8 {
            let g = gen::gnm(2000, 7000, seed);
            let labels = contract_cc(&g);
            assert!(same_partition(&labels, &components(&g)), "seed {seed}");
        }
    }

    #[test]
    fn deep_path_recursion_bounded() {
        let g = gen::path(50_000);
        let labels = contract_cc(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
