//! Shiloach–Vishkin-style rounds on atomics: conditional hook of tree
//! roots onto smaller labels, stagnant-star hook, then one pointer-jump
//! pass. Deterministic O(log n) rounds, the E8 counterpart of the
//! simulated Awerbuch–Shiloach baseline.

use crate::{finalize_labels, identity_parents};
use cc_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Connected components via SV hook+shortcut rounds.
pub fn sv_cc(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let p = identity_parents(n);
    let changed = AtomicBool::new(true);
    let mut rounds = 0usize;
    while changed.swap(false, Ordering::Relaxed) {
        rounds += 1;
        debug_assert!(rounds <= 4 * (64 - (n as u64).leading_zeros() as usize) + 64);
        let star = star_flags(&p);
        // Conditional hook: stars onto strictly smaller neighbouring
        // labels (id-decreasing ⇒ acyclic).
        g.edges().par_iter().for_each(|&(u, v)| {
            hook(&p, &star, &changed, u, v);
            hook(&p, &star, &changed, v, u);
        });
        // Stagnant hook: still-stars onto any different label. Safe for
        // the same reason as the simulated baseline: two adjacent stars
        // cannot both be stagnant (the larger hooked conditionally), and
        // we keep the smaller-only direction here anyway for determinism.
        let star = star_flags(&p);
        g.edges().par_iter().for_each(|&(u, v)| {
            hook(&p, &star, &changed, u, v);
            hook(&p, &star, &changed, v, u);
        });
        // Shortcut.
        (0..n).into_par_iter().for_each(|v| {
            let parent = p[v].load(Ordering::Relaxed);
            let gp = p[parent as usize].load(Ordering::Relaxed);
            if gp != parent {
                p[v].store(gp, Ordering::Relaxed);
                changed.store(true, Ordering::Relaxed);
            }
        });
    }
    finalize_labels(&p)
}

/// Hook `u`'s root under `v`'s strictly smaller parent when `u` is in a
/// star.
#[inline]
fn hook(p: &[AtomicU32], star: &[bool], changed: &AtomicBool, u: u32, v: u32) {
    if !star[u as usize] {
        return;
    }
    let pu = p[u as usize].load(Ordering::Relaxed);
    let pv = p[v as usize].load(Ordering::Relaxed);
    if pv < pu && p[pu as usize].fetch_min(pv, Ordering::Relaxed) > pv {
        changed.store(true, Ordering::Relaxed);
    }
}

/// Standard O(1)-depth star detection.
fn star_flags(p: &[AtomicU32]) -> Vec<bool> {
    let n = p.len();
    let star: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();
    (0..n).into_par_iter().for_each(|v| {
        let parent = p[v].load(Ordering::Relaxed) as usize;
        let gp = p[parent].load(Ordering::Relaxed) as usize;
        if parent != gp {
            star[v].store(false, Ordering::Relaxed);
            star[gp].store(false, Ordering::Relaxed);
        }
    });
    (0..n)
        .into_par_iter()
        .map(|v| {
            let parent = p[v].load(Ordering::Relaxed) as usize;
            star[v].load(Ordering::Relaxed) && star[parent].load(Ordering::Relaxed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use cc_graph::seq::{components, same_partition};

    #[test]
    fn matches_ground_truth_on_shapes() {
        for g in [
            gen::path(128),
            gen::cycle(77),
            gen::grid(10, 10),
            gen::union_all(&[gen::star(21), gen::complete(9), gen::spider(4, 6)]),
        ] {
            let labels = sv_cc(&g);
            assert!(same_partition(&labels, &components(&g)));
        }
    }

    #[test]
    fn matches_ground_truth_on_random_graphs() {
        for seed in 0..8 {
            let g = gen::gnm(2500, 8000, seed);
            let labels = sv_cc(&g);
            assert!(same_partition(&labels, &components(&g)), "seed {seed}");
        }
    }
}
