//! Frontier-parallel BFS connected components: the direct "just search"
//! counterpoint — `O(d)` rounds, each a parallel edge relaxation. Fast
//! when `d` is small, terrible on paths; included so E8 can show the
//! diameter sensitivity the paper's `log d` bound removes.

use cc_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Connected components by repeated frontier expansion from each
/// unvisited minimum vertex (labels = minimum vertex per component).
pub fn bfs_cc(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut frontier: Vec<u32> = Vec::new();
    for src in 0..n as u32 {
        if labels[src as usize].load(Ordering::Relaxed) != u32::MAX {
            continue;
        }
        labels[src as usize].store(src, Ordering::Relaxed);
        frontier.clear();
        frontier.push(src);
        while !frontier.is_empty() {
            frontier = frontier
                .par_iter()
                .flat_map_iter(|&v| {
                    g.neighbors(v).iter().filter_map(|&w| {
                        labels[w as usize]
                            .compare_exchange(u32::MAX, src, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                            .then_some(w)
                    })
                })
                .collect();
        }
    }
    labels.into_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use cc_graph::seq::{components, same_partition};

    #[test]
    fn matches_ground_truth() {
        for g in [
            gen::path(200),
            gen::grid(12, 13),
            gen::union_all(&[gen::cycle(30), gen::star(25), gen::complete(9)]),
            gen::gnm(1500, 4000, 5),
        ] {
            let labels = bfs_cc(&g);
            assert!(same_partition(&labels, &components(&g)));
        }
    }

    #[test]
    fn labels_are_minima() {
        let g = gen::union_all(&[gen::cycle(5), gen::path(4)]);
        assert_eq!(bfs_cc(&g), vec![0, 0, 0, 0, 0, 5, 5, 5, 5]);
    }

    #[test]
    fn isolated_vertices_self_labeled() {
        let g = cc_graph::GraphBuilder::new(4).build();
        assert_eq!(bfs_cc(&g), vec![0, 1, 2, 3]);
    }
}
