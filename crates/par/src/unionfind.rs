//! Lock-free concurrent union–find: CAS root splicing with path-halving
//! finds ("Rem's algorithm" family; the strongest practical CC baseline,
//! cf. ConnectIt). Linearizable enough for connectivity: every successful
//! CAS hooks a *root* onto a smaller-id vertex, so the structure stays an
//! id-decreasing forest at all times.
//!
//! The structure is exposed as a resumable [`UnionFind`]: callers that
//! maintain connectivity state across edge batches (the `logdiam-svc`
//! delta overlay) and the one-shot [`unionfind_cc`] entry point share one
//! implementation.

use crate::{finalize_labels, find, identity_parents};
use cc_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A resumable concurrent union–find over vertices `0..n`.
///
/// [`absorb`](UnionFind::absorb) takes `&self` and is safe to call from
/// many threads at once (all mutation is CAS on atomics); it can be called
/// any number of times, so incremental edge streams resume where the last
/// batch left off. The forest is id-decreasing at all times, which makes
/// every root the minimum vertex of its set —
/// [`representative`](UnionFind::representative) therefore returns
/// canonical min-vertex labels directly.
///
/// Read methods ([`representative`](UnionFind::representative),
/// [`same_set`](UnionFind::same_set), [`labels`](UnionFind::labels)) are
/// deterministic in quiescent state (no concurrent `absorb`); while a
/// batch is in flight they are still safe but may observe a prefix of its
/// unions, so epoch-consistent readers should query a published snapshot
/// instead (see `logdiam-svc`).
///
/// # Example
///
/// ```
/// use logdiam_par::UnionFind;
///
/// let uf = UnionFind::new(5);
/// uf.absorb(&[(0, 1), (3, 4)]);
/// assert!(uf.same_set(0, 1));
/// assert!(!uf.same_set(1, 3));
///
/// // Batches resume where the last one left off, and labels are always
/// // canonical min-vertex representatives.
/// uf.absorb(&[(4, 1)]);
/// assert_eq!(uf.labels(), vec![0, 0, 2, 0, 0]);
/// ```
pub struct UnionFind {
    p: Vec<AtomicU32>,
}

impl UnionFind {
    /// A fresh singleton partition over `n` vertices.
    pub fn new(n: usize) -> Self {
        UnionFind {
            p: identity_parents(n),
        }
    }

    /// Resume from an existing component labeling: vertex `v` starts in
    /// the same set as every vertex with `labels[v]`'s label. Labels may
    /// be any valid partition labeling with vertex-id values (as produced
    /// by every CC entry point in this workspace); they are canonicalized
    /// to min-vertex parents internally, so the forest invariant holds
    /// regardless of which algorithm produced them.
    pub fn from_labels(labels: &[u32]) -> Self {
        let n = labels.len();
        let mut min_of = vec![u32::MAX; n];
        for (v, &l) in labels.iter().enumerate() {
            let slot = &mut min_of[l as usize];
            if (v as u32) < *slot {
                *slot = v as u32;
            }
        }
        let p = labels
            .iter()
            .map(|&l| AtomicU32::new(min_of[l as usize]))
            .collect();
        UnionFind { p }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Whether the structure has no vertices.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Merge the endpoints of every edge in the batch, in parallel.
    /// Self-loops are no-ops; duplicate and already-connected edges are
    /// absorbed for free (the CAS loop exits on equal roots).
    pub fn absorb(&self, edges: &[(u32, u32)]) {
        edges.par_iter().for_each(|&(u, v)| {
            unite(&self.p, u, v);
        });
    }

    /// [`absorb`](UnionFind::absorb) without the parallel fan-out: unions
    /// run on the calling thread in slice order. This is the drain
    /// primitive for callers that buffer edges and pay for them in one
    /// deterministic pass (the `logdiam-svc` cross-shard pending lists);
    /// it is also the right call for batches too small to amortize a
    /// pool dispatch.
    pub fn absorb_seq(&self, edges: &[(u32, u32)]) {
        for &(u, v) in edges {
            unite(&self.p, u, v);
        }
    }

    /// Shard-aware absorb: one parallel task per shard bucket, each
    /// draining its bucket sequentially.
    ///
    /// Callers that partition a batch by vertex range (the `logdiam-svc`
    /// sharded overlay) get per-shard cache locality and exactly
    /// `buckets.len()` pool tasks instead of a per-edge fan-out. The
    /// structure is a single global forest, so a shard task *may* still
    /// CAS a parent slot outside its range when an earlier epoch already
    /// merged components across shards — that is safe (all mutation is
    /// CAS on the shared atomics) and does not affect the resulting
    /// partition, which is interleaving-independent.
    pub fn absorb_sharded(&self, buckets: &[Vec<(u32, u32)>]) {
        buckets.par_iter().for_each(|bucket| {
            self.absorb_seq(bucket);
        });
    }

    /// The canonical (minimum-vertex) representative of `v`'s set.
    pub fn representative(&self, v: u32) -> u32 {
        find(&self.p, v)
    }

    /// Whether `u` and `v` are currently in the same set.
    pub fn same_set(&self, u: u32, v: u32) -> bool {
        self.representative(u) == self.representative(v)
    }

    /// Canonical min-vertex component labels for all vertices (parallel).
    pub fn labels(&self) -> Vec<u32> {
        finalize_labels(&self.p)
    }
}

/// Connected components via concurrent union–find.
pub fn unionfind_cc(g: &Graph) -> Vec<u32> {
    let uf = UnionFind::new(g.n());
    uf.absorb(g.edges());
    uf.labels()
}

/// Merge the sets of `u` and `v`.
fn unite(p: &[AtomicU32], u: u32, v: u32) {
    let (mut ru, mut rv) = (find(p, u), find(p, v));
    loop {
        if ru == rv {
            return;
        }
        // Hook the larger root under the smaller: keeps pointers strictly
        // id-decreasing, hence acyclic under any interleaving.
        let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
        match p[hi as usize].compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(_) => {
                // hi is no longer a root; re-find and retry.
                ru = find(p, hi);
                rv = find(p, lo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use cc_graph::seq::{components, same_partition};

    #[test]
    fn matches_ground_truth_on_shapes() {
        for g in [
            gen::path(100),
            gen::cycle(51),
            gen::grid(9, 11),
            gen::union_all(&[gen::star(20), gen::complete(10), gen::path(13)]),
        ] {
            let labels = unionfind_cc(&g);
            assert!(same_partition(&labels, &components(&g)));
        }
    }

    #[test]
    fn matches_ground_truth_on_random_graphs() {
        for seed in 0..10 {
            let g = gen::gnm(2000, 5000, seed);
            let labels = unionfind_cc(&g);
            assert!(same_partition(&labels, &components(&g)), "seed {seed}");
        }
    }

    #[test]
    fn labels_are_component_minima() {
        let g = gen::union_all(&[gen::cycle(5), gen::path(4)]);
        let labels = unionfind_cc(&g);
        assert_eq!(&labels[0..5], &[0; 5]);
        assert_eq!(&labels[5..9], &[5; 4]);
    }

    #[test]
    fn repeated_runs_agree_despite_racing() {
        let g = gen::gnm(5000, 20000, 3);
        let a = unionfind_cc(&g);
        for _ in 0..3 {
            assert_eq!(unionfind_cc(&g), a);
        }
    }

    #[test]
    fn absorb_resumes_across_batches() {
        let g = gen::gnm(1200, 4000, 9);
        let one_shot = unionfind_cc(&g);
        let uf = UnionFind::new(g.n());
        for chunk in g.edges().chunks(157) {
            uf.absorb(chunk);
        }
        assert_eq!(uf.labels(), one_shot);
    }

    #[test]
    fn absorb_tolerates_loops_and_duplicates() {
        let uf = UnionFind::new(4);
        uf.absorb(&[(2, 2), (0, 1), (1, 0), (0, 1)]);
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(1, 2));
        assert_eq!(uf.labels(), vec![0, 0, 2, 3]);
    }

    #[test]
    fn from_labels_resumes_a_finished_run() {
        let g = gen::union_all(&[gen::path(6), gen::path(5)]);
        let labels = unionfind_cc(&g); // {0..5}, {6..10}
        let uf = UnionFind::from_labels(&labels);
        assert_eq!(uf.labels(), labels);
        assert!(uf.same_set(0, 5));
        assert!(!uf.same_set(0, 6));
        // Bridge the two components incrementally.
        uf.absorb(&[(5, 6)]);
        assert!(uf.same_set(0, 10));
        assert_eq!(uf.representative(10), 0);
    }

    #[test]
    fn absorb_seq_and_sharded_match_parallel_absorb() {
        let g = gen::gnm(900, 2600, 13);
        let expected = unionfind_cc(&g);
        // Sequential drain.
        let seq = UnionFind::new(g.n());
        seq.absorb_seq(g.edges());
        assert_eq!(seq.labels(), expected);
        // Sharded drain: bucket edges by the smaller endpoint's range.
        let shards = 7usize;
        let size = g.n().div_ceil(shards);
        let mut buckets = vec![Vec::new(); shards];
        for &(u, v) in g.edges() {
            buckets[(u.min(v) as usize) / size].push((u, v));
        }
        let sharded = UnionFind::new(g.n());
        sharded.absorb_sharded(&buckets);
        assert_eq!(sharded.labels(), expected);
    }

    #[test]
    fn from_labels_canonicalizes_non_min_labels() {
        // A valid partition labeling whose label values are not minima:
        // {0,2} labeled 2, {1} labeled 1.
        let uf = UnionFind::from_labels(&[2, 1, 2]);
        assert_eq!(uf.labels(), vec![0, 1, 0]);
    }
}
