//! Lock-free concurrent union–find: CAS root splicing with path-halving
//! finds ("Rem's algorithm" family; the strongest practical CC baseline,
//! cf. ConnectIt). Linearizable enough for connectivity: every successful
//! CAS hooks a *root* onto a smaller-id vertex, so the structure stays an
//! id-decreasing forest at all times.

use crate::{finalize_labels, find, identity_parents};
use cc_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::Ordering;

/// Connected components via concurrent union–find.
pub fn unionfind_cc(g: &Graph) -> Vec<u32> {
    let p = identity_parents(g.n());
    g.edges().par_iter().for_each(|&(u, v)| {
        unite(&p, u, v);
    });
    finalize_labels(&p)
}

/// Merge the sets of `u` and `v`.
fn unite(p: &[std::sync::atomic::AtomicU32], u: u32, v: u32) {
    let (mut ru, mut rv) = (find(p, u), find(p, v));
    loop {
        if ru == rv {
            return;
        }
        // Hook the larger root under the smaller: keeps pointers strictly
        // id-decreasing, hence acyclic under any interleaving.
        let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
        match p[hi as usize].compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(_) => {
                // hi is no longer a root; re-find and retry.
                ru = find(p, hi);
                rv = find(p, lo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use cc_graph::seq::{components, same_partition};

    #[test]
    fn matches_ground_truth_on_shapes() {
        for g in [
            gen::path(100),
            gen::cycle(51),
            gen::grid(9, 11),
            gen::union_all(&[gen::star(20), gen::complete(10), gen::path(13)]),
        ] {
            let labels = unionfind_cc(&g);
            assert!(same_partition(&labels, &components(&g)));
        }
    }

    #[test]
    fn matches_ground_truth_on_random_graphs() {
        for seed in 0..10 {
            let g = gen::gnm(2000, 5000, seed);
            let labels = unionfind_cc(&g);
            assert!(same_partition(&labels, &components(&g)), "seed {seed}");
        }
    }

    #[test]
    fn labels_are_component_minima() {
        let g = gen::union_all(&[gen::cycle(5), gen::path(4)]);
        let labels = unionfind_cc(&g);
        assert_eq!(&labels[0..5], &[0; 5]);
        assert_eq!(&labels[5..9], &[5; 4]);
    }

    #[test]
    fn repeated_runs_agree_despite_racing() {
        let g = gen::gnm(5000, 20000, 3);
        let a = unionfind_cc(&g);
        for _ in 0..3 {
            assert_eq!(unionfind_cc(&g), a);
        }
    }
}
