//! Synchronous min-label propagation with pointer jumping — the practical
//! Liu–Tarjan '19 style algorithm (link + shortcut + implicit alter).

use crate::{finalize_labels, identity_parents};
use cc_graph::Graph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Connected components via rounds of `fetch_min` hooks over edges plus
/// full pointer jumping, until a fixed point.
pub fn labelprop_cc(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let p = identity_parents(n);
    let changed = AtomicBool::new(true);
    let mut rounds = 0usize;
    while changed.swap(false, Ordering::Relaxed) {
        rounds += 1;
        debug_assert!(rounds <= 2 * n + 64, "labelprop failed to converge");
        // Hook: parent[label(u)] = min(.., label(v)) both ways.
        g.edges().par_iter().for_each(|&(u, v)| {
            let lu = p[u as usize].load(Ordering::Relaxed);
            let lv = p[v as usize].load(Ordering::Relaxed);
            let improved = if lu < lv {
                p[lv as usize].fetch_min(lu, Ordering::Relaxed) > lu
            } else if lv < lu {
                p[lu as usize].fetch_min(lv, Ordering::Relaxed) > lv
            } else {
                false
            };
            if improved {
                changed.store(true, Ordering::Relaxed);
            }
        });
        // Shortcut to full compression (each vertex chases its chain; the
        // chains are id-decreasing so this terminates).
        (0..n).into_par_iter().for_each(|v| {
            let mut l = p[v].load(Ordering::Relaxed);
            loop {
                let ll = p[l as usize].load(Ordering::Relaxed);
                if ll == l {
                    break;
                }
                l = ll;
            }
            p[v].store(l, Ordering::Relaxed);
        });
    }
    finalize_labels(&p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use cc_graph::seq::{components, same_partition};

    #[test]
    fn matches_ground_truth_on_shapes() {
        for g in [
            gen::path(64),
            gen::cycle(33),
            gen::grid(7, 8),
            gen::union_all(&[gen::star(15), gen::complete(8), gen::binary_tree(31)]),
        ] {
            let labels = labelprop_cc(&g);
            assert!(same_partition(&labels, &components(&g)));
        }
    }

    #[test]
    fn matches_ground_truth_on_random_graphs() {
        for seed in 0..8 {
            let g = gen::gnm(3000, 9000, seed);
            let labels = labelprop_cc(&g);
            assert!(same_partition(&labels, &components(&g)), "seed {seed}");
        }
    }

    #[test]
    fn long_path_converges() {
        let g = gen::path(10_000);
        let labels = labelprop_cc(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
