//! # `logdiam-par` — practical shared-memory ports (rayon + atomics)
//!
//! The paper argues (§1, §A.3) that its hashing-based approach "should be
//! preferable in practice" to sort-based MPC primitives. This crate holds
//! real-thread implementations used by the wall-clock experiments (E8):
//!
//! * [`labelprop`] — synchronous min-label propagation with pointer
//!   jumping (the practical face of Liu–Tarjan '19; `fetch_min` hooks).
//! * [`unionfind`] — lock-free concurrent union–find (CAS root splicing
//!   with path halving), the strongest practical CC baseline
//!   (ConnectIt-style); exposes the resumable [`UnionFind`] that the
//!   `logdiam-svc` incremental delta overlay builds on.
//! * [`sv`] — Shiloach–Vishkin-style hook+shortcut rounds on atomics.
//! * [`contract`] — alter-and-contract in the paper's spirit: relax labels
//!   over edges, flatten, rewrite every edge to its component labels and
//!   deduplicate (hashing, not sorting), recurse on the shrunken graph.
//!
//! All functions return min-vertex component labels and are verified
//! against the sequential ground truth in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod contract;
pub mod labelprop;
pub mod sv;
pub mod unionfind;

pub use unionfind::UnionFind;

use std::sync::atomic::{AtomicU32, Ordering};

/// Create a self-parent atomic array.
pub(crate) fn identity_parents(n: usize) -> Vec<AtomicU32> {
    (0..n as u32).map(AtomicU32::new).collect()
}

/// Path-halving find on an atomic parent array.
///
/// `inline(always)`: this is the innermost loop of every algorithm in the
/// crate, and the call sites are themselves tiny closures — guaranteeing
/// the inline keeps the loads/CAS in registers.
#[inline(always)]
pub(crate) fn find(p: &[AtomicU32], mut v: u32) -> u32 {
    loop {
        let parent = p[v as usize].load(Ordering::Relaxed);
        if parent == v {
            return v;
        }
        let gp = p[parent as usize].load(Ordering::Relaxed);
        if gp == parent {
            return parent;
        }
        // Path halving: point v at its grandparent.
        let _ =
            p[v as usize].compare_exchange_weak(parent, gp, Ordering::Relaxed, Ordering::Relaxed);
        v = gp;
    }
}

/// Canonicalize: every vertex labeled by its tree root, then every label
/// rewritten to the minimum vertex of its component (parallel, two passes).
///
/// Pass 1 fuses the root lookup with the min-vertex scatter: each vertex
/// finds its root, `fetch_min`s itself into the root's slot, and emits the
/// root. Pass 2 gathers the per-root minima. (The scatter is commutative,
/// so the fused pass stays deterministic under any thread interleaving.)
pub(crate) fn finalize_labels(p: &[AtomicU32]) -> Vec<u32> {
    use rayon::prelude::*;
    let n = p.len();
    let mins: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let roots: Vec<u32> = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let r = find(p, v);
            mins[r as usize].fetch_min(v, Ordering::Relaxed);
            r
        })
        .collect();
    roots
        .into_par_iter()
        .map(|r| mins[r as usize].load(Ordering::Relaxed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_flattens_chains() {
        let p = identity_parents(6);
        // chain 5 -> 4 -> 3 -> 2 -> 1 -> 0
        for (v, slot) in p.iter().enumerate().skip(1) {
            slot.store(v as u32 - 1, Ordering::Relaxed);
        }
        assert_eq!(find(&p, 5), 0);
        // After path halving the chain is strictly shorter.
        assert!(p[5].load(Ordering::Relaxed) < 4);
    }

    #[test]
    fn finalize_labels_canonicalizes_to_min() {
        let p = identity_parents(5);
        p[0].store(4, Ordering::Relaxed); // {0,4}, {1}, {2,3}
        p[3].store(2, Ordering::Relaxed);
        let labels = finalize_labels(&p);
        assert_eq!(labels, vec![0, 1, 2, 2, 0]);
    }
}
