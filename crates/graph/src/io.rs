//! Plain-text edge-list I/O.
//!
//! Format: optional comment lines starting with `#` or `%`, then one
//! `u v` pair per line (whitespace separated). Vertex count is
//! `max id + 1` unless a `# nodes: N` header raises it. This covers the
//! common SNAP/Konect-style exports, so real-world graphs can be fed to
//! the experiments.

use crate::csr::Graph;
use crate::runs::EdgeRunStore;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors from [`read_edge_list`].
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Unparsable line (1-based line number and content).
    Parse(usize, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(line, s) => write!(f, "line {line}: cannot parse {s:?}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse an edge list from a reader.
///
/// Lines stream directly into an [`EdgeRunStore`] (canonicalized,
/// loop-dropped, buffered as bounded sorted runs), so loading never
/// materializes the full unsorted edge list — peak memory is the sealed
/// runs plus the final CSR, whatever the file size.
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<Graph, IoError> {
    let mut store = EdgeRunStore::unbounded();
    let mut n_hint = 0usize;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            if let Some(v) = rest.trim().strip_prefix("nodes:") {
                n_hint = v
                    .trim()
                    .parse()
                    .map_err(|_| IoError::Parse(i + 1, line.clone()))?;
            }
            continue;
        }
        if trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => {
                let u = a.parse().map_err(|_| IoError::Parse(i + 1, line.clone()))?;
                let v = b.parse().map_err(|_| IoError::Parse(i + 1, line.clone()))?;
                (u, v)
            }
            _ => return Err(IoError::Parse(i + 1, line.clone())),
        };
        store.push(u, v);
    }
    let n = store
        .max_id()
        .map(|m| m as usize + 1)
        .unwrap_or(0)
        .max(n_hint);
    assert!(n < u32::MAX as usize, "vertex count too large");
    Ok(Graph::from_canonical_edges(
        n as u32,
        store.into_sorted_edges(),
    ))
}

/// Read an edge-list file.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<Graph, IoError> {
    let file = std::fs::File::open(path)?;
    parse_edge_list(std::io::BufReader::new(file))
}

/// Write a graph as an edge list (with a `# nodes:` header so isolated
/// trailing vertices round-trip).
pub fn write_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# nodes: {}", g.n())?;
    writeln!(w, "# edges: {}", g.m())?;
    for &(u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parse_basic_with_comments() {
        let text = "# a comment\n% another\n0 1\n1 2\n\n2 0\n";
        let g = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn nodes_header_preserves_isolated_vertices() {
        let text = "# nodes: 10\n0 1\n";
        let g = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "0 1\nnot numbers\n";
        match parse_edge_list(text.as_bytes()) {
            Err(IoError::Parse(2, _)) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let g = gen::union_all(&[gen::gnm(50, 120, 3), gen::path(5)]);
        let dir = std::env::temp_dir().join("logdiam_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_edge_list(&g, &path).unwrap();
        let h = read_edge_list(&path).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.edges(), h.edges());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duplicate_and_self_loop_lines_are_cleaned() {
        let text = "0 1\n1 0\n2 2\n1 2\n";
        let g = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
    }
}
