//! Streaming edge-run storage and k-way parallel run merge.
//!
//! The pre-PR-8 construction path materialized every pushed edge in one
//! unsorted `Vec<(u32, u32)>`, then sorted and deduplicated it in place —
//! a transient 2× footprint (unsorted list + CSR) that was the binding
//! memory constraint at n ≥ 1e7. This module replaces that with a
//! *streaming* discipline:
//!
//! * [`EdgeRunStore`] accepts edges one at a time (canonicalizing to
//!   `(min, max)` and dropping self-loops on the way in) into a bounded
//!   buffer. Whenever the buffer reaches the run capacity it is *sealed*:
//!   sorted, deduplicated, and shrunk — so the store only ever holds
//!   sorted duplicate-free runs plus one bounded open buffer.
//! * [`merge_sorted_runs`] turns the sealed runs into the single sorted
//!   duplicate-free canonical edge list by a k-way merge. The key space is
//!   partitioned into contiguous chunks (splitters sampled from the
//!   largest run, sub-ranges located by binary search in every run) and
//!   the chunks merge independently on the rayon pool. Because equal keys
//!   always land in the same chunk, streamwise dedup inside a chunk is
//!   exact, and because the output — the sorted set union of the runs —
//!   is independent of chunk boundaries and thread count, the result is
//!   deterministic at any `RAYON_NUM_THREADS`.
//!
//! Peak bytes during a build are therefore ≈ (sealed runs, which total at
//! most the deduplicated pushed edges) + (the merged list being written),
//! instead of (full unsorted push list) + (sorted copy). The run capacity
//! is a host-memory knob only — it never changes the resulting graph.

use rayon::prelude::*;

/// Default run capacity (edges per sealed run): 2^21 edges = 16 MiB per
/// run buffer. Large enough that sort/seal overhead is negligible, small
/// enough that the open buffer never dominates the peak.
pub const DEFAULT_RUN_EDGES: usize = 1 << 21;

/// Environment variable overriding [`DEFAULT_RUN_EDGES`] (min 1). A host
/// memory/perf knob for `bench_report` sweeps; the built graph is
/// identical for every value.
pub const RUN_EDGES_ENV: &str = "LOGDIAM_RUN_EDGES";

/// Below this many total edges a chunked parallel merge is pure overhead;
/// merge sequentially instead.
const MIN_PARALLEL_MERGE: usize = 1 << 15;

/// The run capacity currently in effect (env override or default).
pub fn run_capacity() -> usize {
    std::env::var(RUN_EDGES_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|v| v.max(1))
        .unwrap_or(DEFAULT_RUN_EDGES)
}

/// Bounded-buffer store of canonicalized edges as sorted deduplicated
/// runs. See the module docs for the memory discipline.
#[derive(Clone, Debug)]
pub struct EdgeRunStore {
    /// Range bound for pushed endpoints (`None` = unbounded, track max).
    bound: Option<u32>,
    /// Largest endpoint seen (unbounded mode; `None` until the first push).
    max_id: Option<u32>,
    /// Edges per sealed run.
    run_capacity: usize,
    /// The open (unsorted) buffer.
    buf: Vec<(u32, u32)>,
    /// Sealed runs: each sorted and duplicate-free.
    runs: Vec<Vec<(u32, u32)>>,
    /// Loop-surviving pushes (pre-dedup), for `raw_edge_count` semantics.
    pushed: usize,
}

impl EdgeRunStore {
    /// Store for edges on vertices `0..n` (out-of-range pushes panic),
    /// with the ambient run capacity ([`run_capacity`]).
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count too large");
        Self::with_run_capacity(Some(n as u32), run_capacity())
    }

    /// Store with no upper vertex bound: the needed vertex count is
    /// discovered from the stream (see [`EdgeRunStore::max_id`]). Used by
    /// the text loader, where ids precede any `# nodes:` knowledge.
    pub fn unbounded() -> Self {
        Self::with_run_capacity(None, run_capacity())
    }

    /// Explicit run capacity (tests and sweeps; `cap ≥ 1`).
    pub fn with_run_capacity(bound: Option<u32>, cap: usize) -> Self {
        let cap = cap.max(1);
        EdgeRunStore {
            bound,
            max_id: None,
            run_capacity: cap,
            buf: Vec::new(),
            runs: Vec::new(),
            pushed: 0,
        }
    }

    /// Push one undirected edge: self-loops are dropped, endpoints
    /// canonicalized to `(min, max)`. O(1) amortized; seals a run when
    /// the open buffer fills.
    #[inline]
    pub fn push(&mut self, u: u32, v: u32) {
        if let Some(b) = self.bound {
            assert!(u < b && v < b, "edge ({u},{v}) out of range");
        } else {
            let hi = u.max(v);
            self.max_id = Some(self.max_id.map_or(hi, |m| m.max(hi)));
        }
        if u == v {
            return;
        }
        self.pushed += 1;
        if self.buf.capacity() == 0 {
            // First edge: size the buffer lazily so empty stores stay free.
            self.buf.reserve(self.run_capacity.min(1 << 10));
        }
        self.buf.push((u.min(v), u.max(v)));
        if self.buf.len() >= self.run_capacity {
            self.seal();
        }
    }

    /// Loop-surviving pushes so far (duplicates included).
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Largest endpoint pushed in unbounded mode (`None` when bounded or
    /// no edges yet).
    pub fn max_id(&self) -> Option<u32> {
        self.max_id
    }

    /// Sort + dedup the open buffer into a sealed run.
    fn seal(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut run = std::mem::take(&mut self.buf);
        run.sort_unstable();
        run.dedup();
        run.shrink_to_fit();
        self.runs.push(run);
    }

    /// Finish: merge all runs into the sorted duplicate-free canonical
    /// edge list.
    pub fn into_sorted_edges(mut self) -> Vec<(u32, u32)> {
        self.seal();
        if self.runs.len() == 1 {
            return self.runs.pop().unwrap();
        }
        let slices: Vec<&[(u32, u32)]> = self.runs.iter().map(|r| r.as_slice()).collect();
        merge_sorted_runs(&slices)
    }
}

/// Merge sorted duplicate-free edge runs into one sorted duplicate-free
/// list (the set union), deduplicating across runs streamwise.
///
/// Deterministic for any thread count and any partition of the input into
/// runs: the output is a pure function of the union. Parallelism comes
/// from partitioning the *key space* (not the runs), so each chunk of the
/// output is produced by exactly one task; equal keys cannot straddle a
/// chunk boundary, which is what makes per-chunk dedup exact.
pub fn merge_sorted_runs(runs: &[&[(u32, u32)]]) -> Vec<(u32, u32)> {
    let live: Vec<&[(u32, u32)]> = runs.iter().copied().filter(|r| !r.is_empty()).collect();
    match live.len() {
        0 => return Vec::new(),
        1 => return live[0].to_vec(),
        _ => {}
    }
    let total: usize = live.iter().map(|r| r.len()).sum();
    let nthreads = rayon::current_num_threads();
    if nthreads <= 1 || total < MIN_PARALLEL_MERGE {
        return merge_range(&live);
    }

    // Sample chunk splitters from the largest run (it holds ≥ total/k of
    // the mass, so its quantiles balance the chunks well enough).
    let nchunks = (nthreads * 4).min(total / (MIN_PARALLEL_MERGE / 4)).max(1);
    let largest = live.iter().max_by_key(|r| r.len()).unwrap();
    let mut splitters: Vec<(u32, u32)> = (1..nchunks)
        .map(|c| largest[c * largest.len() / nchunks])
        .collect();
    splitters.dedup();

    // cuts[r] = the nchunks+1 boundaries of run r (binary-searched once
    // per splitter), so chunk c of run r is r[cuts[r][c]..cuts[r][c+1]].
    let cuts: Vec<Vec<usize>> = live
        .iter()
        .map(|r| {
            let mut c = Vec::with_capacity(splitters.len() + 2);
            c.push(0);
            for s in &splitters {
                c.push(r.partition_point(|e| e < s));
            }
            c.push(r.len());
            c
        })
        .collect();
    let nchunks = splitters.len() + 1;

    let parts: Vec<Vec<(u32, u32)>> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let subs: Vec<&[(u32, u32)]> = live
                .iter()
                .zip(&cuts)
                .map(|(r, cut)| &r[cut[c]..cut[c + 1]])
                .filter(|s| !s.is_empty())
                .collect();
            merge_range(&subs)
        })
        .collect();
    let mut out = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
    for p in parts {
        out.extend_from_slice(&p);
    }
    out
}

/// Sequential k-way merge with dedup via a tournament over run heads
/// (binary heap keyed on the head edge, ties broken by run index so the
/// pop order is deterministic).
fn merge_range(subs: &[&[(u32, u32)]]) -> Vec<(u32, u32)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    match subs.len() {
        0 => return Vec::new(),
        1 => return subs[0].to_vec(),
        2 => return merge2(subs[0], subs[1]),
        _ => {}
    }
    let mut out = Vec::with_capacity(subs.iter().map(|s| s.len()).sum());
    let mut heap: BinaryHeap<Reverse<((u32, u32), usize)>> = subs
        .iter()
        .enumerate()
        .map(|(i, s)| Reverse((s[0], i)))
        .collect();
    let mut cursor = vec![0usize; subs.len()];
    while let Some(Reverse((e, i))) = heap.pop() {
        if out.last() != Some(&e) {
            out.push(e);
        }
        cursor[i] += 1;
        if cursor[i] < subs[i].len() {
            heap.push(Reverse((subs[i][cursor[i]], i)));
        }
    }
    out
}

/// Two-way sorted merge with dedup (the common fan-in: an incremental
/// fold merges one base list with one fresh list).
fn merge2(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let e = match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                let e = a[i];
                i += 1;
                e
            }
            std::cmp::Ordering::Greater => {
                let e = b[j];
                j += 1;
                e
            }
            std::cmp::Ordering::Equal => {
                let e = a[i];
                i += 1;
                j += 1;
                e
            }
        };
        out.push(e);
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn reference(mut edges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        edges.retain(|&(u, v)| u != v);
        for e in edges.iter_mut() {
            *e = (e.0.min(e.1), e.0.max(e.1));
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    fn random_stream(n: u32, m: usize, seed: u64, loops: bool) -> Vec<(u32, u32)> {
        let mut rng = Rng::new(seed);
        (0..m)
            .map(|_| {
                let u = (rng.next_u64() % n as u64) as u32;
                let v = if loops && rng.next_u64().is_multiple_of(4) {
                    u
                } else {
                    (rng.next_u64() % n as u64) as u32
                };
                (u, v)
            })
            .collect()
    }

    #[test]
    fn store_matches_sort_dedup_for_every_run_size() {
        let stream = random_stream(97, 4000, 42, true);
        let want = reference(stream.clone());
        for cap in [1, 7, 64, 1024, stream.len(), stream.len() * 2] {
            let mut store = EdgeRunStore::with_run_capacity(Some(97), cap);
            for &(u, v) in &stream {
                store.push(u, v);
            }
            assert_eq!(store.into_sorted_edges(), want, "run capacity {cap}");
        }
    }

    #[test]
    fn duplicate_heavy_stream_collapses() {
        let mut store = EdgeRunStore::with_run_capacity(Some(8), 3);
        for _ in 0..100 {
            store.push(1, 2);
            store.push(2, 1);
            store.push(5, 5);
        }
        assert_eq!(store.pushed(), 200); // loops dropped pre-count
        assert_eq!(store.into_sorted_edges(), vec![(1, 2)]);
    }

    #[test]
    fn unbounded_mode_tracks_max_id() {
        let mut store = EdgeRunStore::unbounded();
        assert_eq!(store.max_id(), None);
        store.push(3, 9);
        store.push(7, 7); // loop still counts for max_id
        assert_eq!(store.max_id(), Some(9));
        assert_eq!(store.into_sorted_edges(), vec![(3, 9)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounded_mode_checks_range() {
        let mut store = EdgeRunStore::with_run_capacity(Some(4), 8);
        store.push(0, 4);
    }

    #[test]
    fn merge_handles_empty_and_singleton_runs() {
        assert_eq!(merge_sorted_runs(&[]), vec![]);
        assert_eq!(merge_sorted_runs(&[&[], &[]]), vec![]);
        let a = [(0u32, 1u32), (2, 3)];
        assert_eq!(merge_sorted_runs(&[&a, &[]]), a.to_vec());
    }

    #[test]
    fn merge_many_overlapping_runs() {
        // 5 runs with heavy overlap, exercising the heap path.
        let runs: Vec<Vec<(u32, u32)>> = (0..5u32)
            .map(|r| (0..50u32).map(|i| (i + r, i + r + 1)).collect())
            .collect();
        let slices: Vec<&[(u32, u32)]> = runs.iter().map(|r| r.as_slice()).collect();
        let got = merge_sorted_runs(&slices);
        let want = reference(runs.concat());
        assert_eq!(got, want);
    }

    #[test]
    fn large_merge_exercises_parallel_chunking() {
        // Total above MIN_PARALLEL_MERGE so the chunked path runs when the
        // pool has threads; the result must match the sequential reference
        // either way.
        let stream = random_stream(5000, 3 * MIN_PARALLEL_MERGE, 7, false);
        let want = reference(stream.clone());
        let mut store = EdgeRunStore::with_run_capacity(Some(5000), MIN_PARALLEL_MERGE / 2);
        for &(u, v) in &stream {
            store.push(u, v);
        }
        assert_eq!(store.into_sorted_edges(), want);
    }
}
