//! Streaming edge-run storage and k-way parallel run merge.
//!
//! The pre-PR-8 construction path materialized every pushed edge in one
//! unsorted `Vec<(u32, u32)>`, then sorted and deduplicated it in place —
//! a transient 2× footprint (unsorted list + CSR) that was the binding
//! memory constraint at n ≥ 1e7. This module replaces that with a
//! *streaming* discipline:
//!
//! * [`EdgeRunStore`] accepts edges one at a time (canonicalizing to
//!   `(min, max)` and dropping self-loops on the way in) into a bounded
//!   buffer. Whenever the buffer reaches the run capacity it is *sealed*:
//!   sorted, deduplicated, and shrunk — so the store only ever holds
//!   sorted duplicate-free runs plus one bounded open buffer.
//! * [`merge_sorted_runs`] turns the sealed runs into the single sorted
//!   duplicate-free canonical edge list by a k-way merge. The key space is
//!   partitioned into contiguous chunks (splitters sampled from the
//!   largest run, sub-ranges located by binary search in every run) and
//!   the chunks merge independently on the rayon pool. Because equal keys
//!   always land in the same chunk, streamwise dedup inside a chunk is
//!   exact, and because the output — the sorted set union of the runs —
//!   is independent of chunk boundaries and thread count, the result is
//!   deterministic at any `RAYON_NUM_THREADS`.
//!
//! Peak bytes during a build are therefore ≈ (sealed runs, which total at
//! most the deduplicated pushed edges) + (the merged list being written),
//! instead of (full unsorted push list) + (sorted copy). The run capacity
//! is a host-memory knob only — it never changes the resulting graph.
//!
//! **Out-of-core mode** (PR 10): with spill enabled
//! ([`RUN_SPILL_ENV`] or [`EdgeRunStore::set_spill_dir`]), sealed runs are
//! written to disk as fixed-width 8-byte little-endian records in
//! *unlinked* temp files (the fd keeps the data alive; nothing is left
//! behind on any exit path), and the final merge streams them back through
//! bounded read buffers. Peak build memory then drops to ≈ (one open run
//! buffer) + (merge read buffers) + (the merged list being written) —
//! the sealed-run mass moves to disk. The merge output is the sorted set
//! union either way, so spilling is bit-identical to in-memory building,
//! at any thread count.

use rayon::prelude::*;
use std::fs::File;
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default run capacity (edges per sealed run): 2^21 edges = 16 MiB per
/// run buffer. Large enough that sort/seal overhead is negligible, small
/// enough that the open buffer never dominates the peak.
pub const DEFAULT_RUN_EDGES: usize = 1 << 21;

/// Environment variable overriding [`DEFAULT_RUN_EDGES`] (min 1). A host
/// memory/perf knob for `bench_report` sweeps; the built graph is
/// identical for every value.
pub const RUN_EDGES_ENV: &str = "LOGDIAM_RUN_EDGES";

/// Below this many total edges a chunked parallel merge is pure overhead;
/// merge sequentially instead.
const MIN_PARALLEL_MERGE: usize = 1 << 15;

/// The run capacity currently in effect (env override or default).
pub fn run_capacity() -> usize {
    std::env::var(RUN_EDGES_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|v| v.max(1))
        .unwrap_or(DEFAULT_RUN_EDGES)
}

/// Environment variable enabling run spill: unset, empty, or `0` = off;
/// `1` = spill to the system temp dir; anything else = spill to that
/// directory. A host-memory knob only — the built graph is identical.
pub const RUN_SPILL_ENV: &str = "LOGDIAM_RUN_SPILL";

/// Edge pairs per file-read buffer while merging spilled runs: 2^14 pairs
/// = 128 KiB per cursor, large enough to amortize syscalls, small enough
/// that even dozens of concurrent cursors stay in cache-level memory.
const FILE_BUF_PAIRS: usize = 1 << 14;

/// The spill directory currently requested by [`RUN_SPILL_ENV`] (`None` =
/// spill off).
pub fn spill_dir_from_env() -> Option<PathBuf> {
    match std::env::var(RUN_SPILL_ENV) {
        Err(_) => None,
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) if v == "1" => Some(std::env::temp_dir()),
        Ok(v) => Some(PathBuf::from(v)),
    }
}

/// Process-wide spill traffic counters (monotonic), so a driver can delta
/// around a build it doesn't own the store of: `(runs spilled, bytes
/// written)`.
static SPILLED_RUNS: AtomicU64 = AtomicU64::new(0);
static SPILL_BYTES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide spill counters: `(runs, bytes)` written
/// to spill files since process start.
pub fn spill_counters() -> (u64, u64) {
    (
        SPILLED_RUNS.load(Ordering::Relaxed),
        SPILL_BYTES.load(Ordering::Relaxed),
    )
}

/// A sealed run spilled to disk: `len` sorted duplicate-free edges as
/// 8-byte LE `(u, v)` records in an *unlinked* file (deleted from the
/// directory the moment it is written — the open fd is the only thing
/// keeping the bytes, so every exit path cleans up).
struct FileRun {
    file: File,
    len: usize,
}

impl FileRun {
    /// Spill `edges` into a fresh unlinked file under `dir`.
    fn write(edges: &[(u32, u32)], dir: &Path) -> FileRun {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("spill dir {} unusable: {e}", dir.display()));
        let name = format!(
            "logdiam-run-{}-{}.spill",
            std::process::id(),
            NEXT_ID.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("spill file {} create failed: {e}", path.display()));
        // Unlink immediately: the handle keeps the run readable, and the
        // kernel reclaims the space whenever the store (or process) dies.
        std::fs::remove_file(&path)
            .unwrap_or_else(|e| panic!("spill file {} unlink failed: {e}", path.display()));
        let mut w = std::io::BufWriter::with_capacity(1 << 20, &file);
        for &(u, v) in edges {
            w.write_all(&u.to_le_bytes()).expect("spill write failed");
            w.write_all(&v.to_le_bytes()).expect("spill write failed");
        }
        w.flush().expect("spill flush failed");
        drop(w);
        SPILLED_RUNS.fetch_add(1, Ordering::Relaxed);
        SPILL_BYTES.fetch_add(edges.len() as u64 * 8, Ordering::Relaxed);
        FileRun {
            file,
            len: edges.len(),
        }
    }

    /// Random-access read of record `i` (used by splitter binary search —
    /// O(log len) such reads per splitter, negligible next to streaming).
    fn get(&self, i: usize) -> (u32, u32) {
        debug_assert!(i < self.len);
        let mut rec = [0u8; 8];
        self.file
            .read_exact_at(&mut rec, i as u64 * 8)
            .expect("spill read failed");
        (
            u32::from_le_bytes(rec[0..4].try_into().unwrap()),
            u32::from_le_bytes(rec[4..8].try_into().unwrap()),
        )
    }

    /// Bulk read of records `[start, end)` into `out` (appended).
    fn read_range_into(&self, start: usize, end: usize, out: &mut Vec<(u32, u32)>) {
        debug_assert!(start <= end && end <= self.len);
        let n = end - start;
        let mut bytes = vec![0u8; n * 8];
        self.file
            .read_exact_at(&mut bytes, start as u64 * 8)
            .expect("spill read failed");
        out.reserve(n);
        for rec in bytes.chunks_exact(8) {
            out.push((
                u32::from_le_bytes(rec[0..4].try_into().unwrap()),
                u32::from_le_bytes(rec[4..8].try_into().unwrap()),
            ));
        }
    }

    fn to_vec(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        self.read_range_into(0, self.len, &mut out);
        out
    }
}

impl std::fmt::Debug for FileRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileRun").field("len", &self.len).finish()
    }
}

/// One sealed (sorted, duplicate-free) run, in memory or spilled.
#[derive(Debug)]
enum SealedRun {
    Mem(Vec<(u32, u32)>),
    File(FileRun),
}

impl SealedRun {
    fn len(&self) -> usize {
        match self {
            SealedRun::Mem(v) => v.len(),
            SealedRun::File(f) => f.len,
        }
    }

    /// Record `i` (random access; cheap for memory, one pread for files).
    fn get(&self, i: usize) -> (u32, u32) {
        match self {
            SealedRun::Mem(v) => v[i],
            SealedRun::File(f) => f.get(i),
        }
    }

    /// First index whose record is ≥ `key` (the `partition_point` of the
    /// run under `< key`), by binary search over [`SealedRun::get`].
    fn lower_bound(&self, key: (u32, u32)) -> usize {
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.get(mid) < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Bounded-buffer store of canonicalized edges as sorted deduplicated
/// runs. See the module docs for the memory discipline.
#[derive(Debug)]
pub struct EdgeRunStore {
    /// Range bound for pushed endpoints (`None` = unbounded, track max).
    bound: Option<u32>,
    /// Largest endpoint seen (unbounded mode; `None` until the first push).
    max_id: Option<u32>,
    /// Edges per sealed run.
    run_capacity: usize,
    /// Spill directory (`None` = sealed runs stay in memory).
    spill: Option<PathBuf>,
    /// The open (unsorted) buffer.
    buf: Vec<(u32, u32)>,
    /// Sealed runs: each sorted and duplicate-free.
    runs: Vec<SealedRun>,
    /// Loop-surviving pushes (pre-dedup), for `raw_edge_count` semantics.
    pushed: usize,
    /// Bytes this store has written to spill files.
    spill_bytes: u64,
}

impl Clone for EdgeRunStore {
    /// Cloning a store with spilled runs reads them back into memory (the
    /// clone path is host bookkeeping on small stores; big out-of-core
    /// builds never clone mid-stream).
    fn clone(&self) -> Self {
        EdgeRunStore {
            bound: self.bound,
            max_id: self.max_id,
            run_capacity: self.run_capacity,
            spill: self.spill.clone(),
            buf: self.buf.clone(),
            runs: self
                .runs
                .iter()
                .map(|r| match r {
                    SealedRun::Mem(v) => SealedRun::Mem(v.clone()),
                    SealedRun::File(f) => SealedRun::Mem(f.to_vec()),
                })
                .collect(),
            pushed: self.pushed,
            spill_bytes: self.spill_bytes,
        }
    }
}

impl EdgeRunStore {
    /// Store for edges on vertices `0..n` (out-of-range pushes panic),
    /// with the ambient run capacity ([`run_capacity`]) and the ambient
    /// spill setting ([`RUN_SPILL_ENV`]).
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count too large");
        Self::with_run_capacity(Some(n as u32), run_capacity())
    }

    /// Store with no upper vertex bound: the needed vertex count is
    /// discovered from the stream (see [`EdgeRunStore::max_id`]). Used by
    /// the text loader, where ids precede any `# nodes:` knowledge.
    pub fn unbounded() -> Self {
        Self::with_run_capacity(None, run_capacity())
    }

    /// Explicit run capacity (tests and sweeps; `cap ≥ 1`). Spill follows
    /// [`RUN_SPILL_ENV`]; override with [`EdgeRunStore::set_spill_dir`].
    pub fn with_run_capacity(bound: Option<u32>, cap: usize) -> Self {
        let cap = cap.max(1);
        EdgeRunStore {
            bound,
            max_id: None,
            run_capacity: cap,
            spill: spill_dir_from_env(),
            buf: Vec::new(),
            runs: Vec::new(),
            pushed: 0,
            spill_bytes: 0,
        }
    }

    /// Set (or clear) the spill directory programmatically, overriding
    /// the [`RUN_SPILL_ENV`] default. Affects runs sealed *after* the
    /// call; already-sealed runs keep their representation (mixing is
    /// fine — the merge handles both).
    pub fn set_spill_dir(&mut self, dir: Option<PathBuf>) {
        self.spill = dir;
    }

    /// Sealed runs currently spilled to disk.
    pub fn spilled_runs(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| matches!(r, SealedRun::File(_)))
            .count()
    }

    /// Bytes this store has written to spill files (monotonic).
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes
    }

    /// Push one undirected edge: self-loops are dropped, endpoints
    /// canonicalized to `(min, max)`. O(1) amortized; seals a run when
    /// the open buffer fills.
    #[inline]
    pub fn push(&mut self, u: u32, v: u32) {
        if let Some(b) = self.bound {
            assert!(u < b && v < b, "edge ({u},{v}) out of range");
        } else {
            let hi = u.max(v);
            self.max_id = Some(self.max_id.map_or(hi, |m| m.max(hi)));
        }
        if u == v {
            return;
        }
        self.pushed += 1;
        if self.buf.capacity() == 0 {
            // First edge: size the buffer lazily so empty stores stay free.
            self.buf.reserve(self.run_capacity.min(1 << 10));
        }
        self.buf.push((u.min(v), u.max(v)));
        if self.buf.len() >= self.run_capacity {
            self.seal();
        }
    }

    /// Loop-surviving pushes so far (duplicates included).
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Largest endpoint pushed in unbounded mode (`None` when bounded or
    /// no edges yet).
    pub fn max_id(&self) -> Option<u32> {
        self.max_id
    }

    /// Sort + dedup the open buffer into a sealed run (spilled to disk
    /// when a spill directory is set — the buffer is then reused for the
    /// next run instead of being given away).
    fn seal(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        match &self.spill {
            Some(dir) => {
                let fr = FileRun::write(&self.buf, dir);
                self.spill_bytes += fr.len as u64 * 8;
                self.runs.push(SealedRun::File(fr));
                self.buf.clear();
            }
            None => {
                let mut run = std::mem::take(&mut self.buf);
                run.shrink_to_fit();
                self.runs.push(SealedRun::Mem(run));
            }
        }
    }

    /// Finish: merge all runs into the sorted duplicate-free canonical
    /// edge list.
    pub fn into_sorted_edges(mut self) -> Vec<(u32, u32)> {
        self.seal();
        if self.runs.len() == 1 {
            return match self.runs.pop().unwrap() {
                SealedRun::Mem(v) => v,
                SealedRun::File(f) => f.to_vec(),
            };
        }
        if self.runs.iter().all(|r| matches!(r, SealedRun::Mem(_))) {
            // Pure in-memory path, unchanged from PR 8.
            let slices: Vec<&[(u32, u32)]> = self
                .runs
                .iter()
                .map(|r| match r {
                    SealedRun::Mem(v) => v.as_slice(),
                    SealedRun::File(_) => unreachable!(),
                })
                .collect();
            return merge_sorted_runs(&slices);
        }
        merge_sealed_runs(&self.runs)
    }
}

/// Merge sorted duplicate-free edge runs into one sorted duplicate-free
/// list (the set union), deduplicating across runs streamwise.
///
/// Deterministic for any thread count and any partition of the input into
/// runs: the output is a pure function of the union. Parallelism comes
/// from partitioning the *key space* (not the runs), so each chunk of the
/// output is produced by exactly one task; equal keys cannot straddle a
/// chunk boundary, which is what makes per-chunk dedup exact.
pub fn merge_sorted_runs(runs: &[&[(u32, u32)]]) -> Vec<(u32, u32)> {
    let live: Vec<&[(u32, u32)]> = runs.iter().copied().filter(|r| !r.is_empty()).collect();
    match live.len() {
        0 => return Vec::new(),
        1 => return live[0].to_vec(),
        _ => {}
    }
    let total: usize = live.iter().map(|r| r.len()).sum();
    let nthreads = rayon::current_num_threads();
    if nthreads <= 1 || total < MIN_PARALLEL_MERGE {
        return merge_range(&live);
    }

    // Sample chunk splitters from the largest run (it holds ≥ total/k of
    // the mass, so its quantiles balance the chunks well enough).
    let nchunks = (nthreads * 4).min(total / (MIN_PARALLEL_MERGE / 4)).max(1);
    let largest = live.iter().max_by_key(|r| r.len()).unwrap();
    let mut splitters: Vec<(u32, u32)> = (1..nchunks)
        .map(|c| largest[c * largest.len() / nchunks])
        .collect();
    splitters.dedup();

    // cuts[r] = the nchunks+1 boundaries of run r (binary-searched once
    // per splitter), so chunk c of run r is r[cuts[r][c]..cuts[r][c+1]].
    let cuts: Vec<Vec<usize>> = live
        .iter()
        .map(|r| {
            let mut c = Vec::with_capacity(splitters.len() + 2);
            c.push(0);
            for s in &splitters {
                c.push(r.partition_point(|e| e < s));
            }
            c.push(r.len());
            c
        })
        .collect();
    let nchunks = splitters.len() + 1;

    let parts: Vec<Vec<(u32, u32)>> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let subs: Vec<&[(u32, u32)]> = live
                .iter()
                .zip(&cuts)
                .map(|(r, cut)| &r[cut[c]..cut[c + 1]])
                .filter(|s| !s.is_empty())
                .collect();
            merge_range(&subs)
        })
        .collect();
    let mut out = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
    for p in parts {
        out.extend_from_slice(&p);
    }
    out
}

/// Merge sealed runs of any representation (memory and/or spilled) into
/// the sorted duplicate-free set union — the out-of-core counterpart of
/// [`merge_sorted_runs`], sharing its key-space partitioning scheme so
/// the output is bit-identical to what the in-memory merge produces for
/// the same union, at any thread count. File runs are streamed through
/// bounded buffers ([`FILE_BUF_PAIRS`] pairs per cursor); per-record
/// random access happens only in the O(k · log) splitter search.
fn merge_sealed_runs(runs: &[SealedRun]) -> Vec<(u32, u32)> {
    let live: Vec<&SealedRun> = runs.iter().filter(|r| r.len() > 0).collect();
    match live.len() {
        0 => return Vec::new(),
        1 => {
            return match live[0] {
                SealedRun::Mem(v) => v.clone(),
                SealedRun::File(f) => f.to_vec(),
            }
        }
        _ => {}
    }
    let total: usize = live.iter().map(|r| r.len()).sum();
    let nthreads = rayon::current_num_threads();
    if nthreads <= 1 || total < MIN_PARALLEL_MERGE {
        let cursors = live.iter().map(|r| RunCursor::new(r, 0, r.len())).collect();
        return merge_cursors(cursors, total);
    }

    // Same splitter scheme as merge_sorted_runs: quantiles of the largest
    // run partition the key space; every run is cut at each splitter.
    let nchunks = (nthreads * 4).min(total / (MIN_PARALLEL_MERGE / 4)).max(1);
    let largest = live.iter().max_by_key(|r| r.len()).unwrap();
    let mut splitters: Vec<(u32, u32)> = (1..nchunks)
        .map(|c| largest.get(c * largest.len() / nchunks))
        .collect();
    splitters.dedup();
    let cuts: Vec<Vec<usize>> = live
        .iter()
        .map(|r| {
            let mut c = Vec::with_capacity(splitters.len() + 2);
            c.push(0);
            for &s in &splitters {
                c.push(r.lower_bound(s));
            }
            c.push(r.len());
            c
        })
        .collect();
    let nchunks = splitters.len() + 1;

    let parts: Vec<Vec<(u32, u32)>> = (0..nchunks)
        .into_par_iter()
        .map(|c| {
            let mut size = 0usize;
            let cursors: Vec<RunCursor> = live
                .iter()
                .zip(&cuts)
                .filter(|(_, cut)| cut[c] < cut[c + 1])
                .map(|(r, cut)| {
                    size += cut[c + 1] - cut[c];
                    RunCursor::new(r, cut[c], cut[c + 1])
                })
                .collect();
            merge_cursors(cursors, size)
        })
        .collect();
    let mut out = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
    for p in parts {
        out.extend_from_slice(&p);
    }
    out
}

/// Streaming cursor over a `[start, end)` range of a sealed run: memory
/// ranges borrow the slice, file ranges refill a bounded buffer.
struct RunCursor<'a> {
    run: &'a SealedRun,
    /// Next absolute index to buffer from (file runs).
    next: usize,
    end: usize,
    /// Buffered window (file runs; memory runs use the slice directly).
    buf: Vec<(u32, u32)>,
    /// Position within `buf` / within the memory slice.
    pos: usize,
}

impl<'a> RunCursor<'a> {
    fn new(run: &'a SealedRun, start: usize, end: usize) -> Self {
        let mut c = RunCursor {
            run,
            next: start,
            end,
            buf: Vec::new(),
            pos: start,
        };
        if let SealedRun::File(_) = run {
            c.pos = 0;
            c.refill();
        }
        c
    }

    fn refill(&mut self) {
        if let SealedRun::File(f) = self.run {
            self.buf.clear();
            self.pos = 0;
            let upto = self.end.min(self.next + FILE_BUF_PAIRS);
            if self.next < upto {
                f.read_range_into(self.next, upto, &mut self.buf);
                self.next = upto;
            }
        }
    }

    /// The current head edge, or `None` when the range is exhausted.
    fn head(&self) -> Option<(u32, u32)> {
        match self.run {
            SealedRun::Mem(v) => (self.pos < self.end).then(|| v[self.pos]),
            SealedRun::File(_) => self.buf.get(self.pos).copied(),
        }
    }

    fn advance(&mut self) {
        self.pos += 1;
        if let SealedRun::File(_) = self.run {
            if self.pos >= self.buf.len() && self.next < self.end {
                self.refill();
            }
        }
    }
}

/// K-way tournament over cursors with streamwise dedup — the same merge
/// order (heap keyed on head edge, ties by cursor index) as
/// [`merge_range`], so the output is the identical sorted set union.
fn merge_cursors(mut cursors: Vec<RunCursor>, size_hint: usize) -> Vec<(u32, u32)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut out = Vec::with_capacity(size_hint);
    let mut heap: BinaryHeap<Reverse<((u32, u32), usize)>> = cursors
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.head().map(|e| Reverse((e, i))))
        .collect();
    while let Some(Reverse((e, i))) = heap.pop() {
        if out.last() != Some(&e) {
            out.push(e);
        }
        cursors[i].advance();
        if let Some(next) = cursors[i].head() {
            heap.push(Reverse((next, i)));
        }
    }
    out
}

/// Sequential k-way merge with dedup via a tournament over run heads
/// (binary heap keyed on the head edge, ties broken by run index so the
/// pop order is deterministic).
fn merge_range(subs: &[&[(u32, u32)]]) -> Vec<(u32, u32)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    match subs.len() {
        0 => return Vec::new(),
        1 => return subs[0].to_vec(),
        2 => return merge2(subs[0], subs[1]),
        _ => {}
    }
    let mut out = Vec::with_capacity(subs.iter().map(|s| s.len()).sum());
    let mut heap: BinaryHeap<Reverse<((u32, u32), usize)>> = subs
        .iter()
        .enumerate()
        .map(|(i, s)| Reverse((s[0], i)))
        .collect();
    let mut cursor = vec![0usize; subs.len()];
    while let Some(Reverse((e, i))) = heap.pop() {
        if out.last() != Some(&e) {
            out.push(e);
        }
        cursor[i] += 1;
        if cursor[i] < subs[i].len() {
            heap.push(Reverse((subs[i][cursor[i]], i)));
        }
    }
    out
}

/// Two-way sorted merge with dedup (the common fan-in: an incremental
/// fold merges one base list with one fresh list).
fn merge2(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let e = match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                let e = a[i];
                i += 1;
                e
            }
            std::cmp::Ordering::Greater => {
                let e = b[j];
                j += 1;
                e
            }
            std::cmp::Ordering::Equal => {
                let e = a[i];
                i += 1;
                j += 1;
                e
            }
        };
        out.push(e);
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn reference(mut edges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        edges.retain(|&(u, v)| u != v);
        for e in edges.iter_mut() {
            *e = (e.0.min(e.1), e.0.max(e.1));
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    fn random_stream(n: u32, m: usize, seed: u64, loops: bool) -> Vec<(u32, u32)> {
        let mut rng = Rng::new(seed);
        (0..m)
            .map(|_| {
                let u = (rng.next_u64() % n as u64) as u32;
                let v = if loops && rng.next_u64().is_multiple_of(4) {
                    u
                } else {
                    (rng.next_u64() % n as u64) as u32
                };
                (u, v)
            })
            .collect()
    }

    #[test]
    fn store_matches_sort_dedup_for_every_run_size() {
        let stream = random_stream(97, 4000, 42, true);
        let want = reference(stream.clone());
        for cap in [1, 7, 64, 1024, stream.len(), stream.len() * 2] {
            let mut store = EdgeRunStore::with_run_capacity(Some(97), cap);
            for &(u, v) in &stream {
                store.push(u, v);
            }
            assert_eq!(store.into_sorted_edges(), want, "run capacity {cap}");
        }
    }

    #[test]
    fn duplicate_heavy_stream_collapses() {
        let mut store = EdgeRunStore::with_run_capacity(Some(8), 3);
        for _ in 0..100 {
            store.push(1, 2);
            store.push(2, 1);
            store.push(5, 5);
        }
        assert_eq!(store.pushed(), 200); // loops dropped pre-count
        assert_eq!(store.into_sorted_edges(), vec![(1, 2)]);
    }

    #[test]
    fn unbounded_mode_tracks_max_id() {
        let mut store = EdgeRunStore::unbounded();
        assert_eq!(store.max_id(), None);
        store.push(3, 9);
        store.push(7, 7); // loop still counts for max_id
        assert_eq!(store.max_id(), Some(9));
        assert_eq!(store.into_sorted_edges(), vec![(3, 9)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounded_mode_checks_range() {
        let mut store = EdgeRunStore::with_run_capacity(Some(4), 8);
        store.push(0, 4);
    }

    #[test]
    fn merge_handles_empty_and_singleton_runs() {
        assert_eq!(merge_sorted_runs(&[]), vec![]);
        assert_eq!(merge_sorted_runs(&[&[], &[]]), vec![]);
        let a = [(0u32, 1u32), (2, 3)];
        assert_eq!(merge_sorted_runs(&[&a, &[]]), a.to_vec());
    }

    #[test]
    fn merge_many_overlapping_runs() {
        // 5 runs with heavy overlap, exercising the heap path.
        let runs: Vec<Vec<(u32, u32)>> = (0..5u32)
            .map(|r| (0..50u32).map(|i| (i + r, i + r + 1)).collect())
            .collect();
        let slices: Vec<&[(u32, u32)]> = runs.iter().map(|r| r.as_slice()).collect();
        let got = merge_sorted_runs(&slices);
        let want = reference(runs.concat());
        assert_eq!(got, want);
    }

    #[test]
    fn large_merge_exercises_parallel_chunking() {
        // Total above MIN_PARALLEL_MERGE so the chunked path runs when the
        // pool has threads; the result must match the sequential reference
        // either way.
        let stream = random_stream(5000, 3 * MIN_PARALLEL_MERGE, 7, false);
        let want = reference(stream.clone());
        let mut store = EdgeRunStore::with_run_capacity(Some(5000), MIN_PARALLEL_MERGE / 2);
        for &(u, v) in &stream {
            store.push(u, v);
        }
        assert_eq!(store.into_sorted_edges(), want);
    }
}
