//! Ground-truth connected components and label-partition comparison.

use crate::csr::Graph;
use crate::seq::bfs::UNREACHED;
use crate::seq::dsu::Dsu;
use std::collections::VecDeque;

/// Component labels via union–find; the label of a vertex is the smallest
/// vertex id in its component (canonical form).
pub fn components(g: &Graph) -> Vec<u32> {
    let mut dsu = Dsu::new(g.n());
    for &(u, v) in g.edges() {
        dsu.union(u, v);
    }
    // Canonicalize to min-vertex-per-component.
    let mut min_of_root = vec![u32::MAX; g.n()];
    for v in 0..g.n() as u32 {
        let r = dsu.find(v) as usize;
        min_of_root[r] = min_of_root[r].min(v);
    }
    (0..g.n() as u32)
        .map(|v| {
            let r = dsu.find(v) as usize;
            min_of_root[r]
        })
        .collect()
}

/// Component labels via BFS (independent implementation used to cross-check
/// [`components`]).
pub fn components_bfs(g: &Graph) -> Vec<u32> {
    let mut label = vec![UNREACHED; g.n()];
    let mut q = VecDeque::new();
    for s in 0..g.n() as u32 {
        if label[s as usize] != UNREACHED {
            continue;
        }
        label[s as usize] = s;
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &w in g.neighbors(v) {
                if label[w as usize] == UNREACHED {
                    label[w as usize] = s;
                    q.push_back(w);
                }
            }
        }
    }
    label
}

/// Number of connected components.
pub fn num_components(g: &Graph) -> usize {
    let labels = components(g);
    let mut distinct: Vec<u32> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

/// Canonicalize an arbitrary component labeling: every vertex gets the
/// smallest vertex id that shares its label. Two labelings describe the
/// same partition iff their canonical forms are equal.
pub fn canonical_labels(labels: &[u32]) -> Vec<u32> {
    let n = labels.len();
    let mut min_of_label: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        let e = min_of_label.entry(l).or_insert(v as u32);
        *e = (*e).min(v as u32);
    }
    (0..n).map(|v| min_of_label[&labels[v]]).collect()
}

/// Whether two labelings induce the same partition of the vertices.
pub fn same_partition(a: &[u32], b: &[u32]) -> bool {
    a.len() == b.len() && canonical_labels(a) == canonical_labels(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{cycle, path, star, union_all};
    use crate::gen::{gnm, scramble};

    #[test]
    fn components_of_union() {
        let g = union_all(&[path(4), cycle(3), star(5)]);
        let labels = components(&g);
        assert_eq!(labels[0..4], [0, 0, 0, 0]);
        assert_eq!(labels[4..7], [4, 4, 4]);
        assert_eq!(labels[7..12], [7, 7, 7, 7, 7]);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn bfs_and_dsu_components_agree() {
        for seed in 0..10 {
            let g = gnm(300, 320, seed);
            assert_eq!(components(&g), components_bfs(&g));
        }
    }

    #[test]
    fn canonicalization_recognizes_equivalent_labelings() {
        // Same partition with different label values.
        let a = vec![5, 5, 9, 9, 5];
        let b = vec![0, 0, 2, 2, 0];
        assert!(same_partition(&a, &b));
        let c = vec![0, 0, 2, 2, 2];
        assert!(!same_partition(&a, &c));
    }

    #[test]
    fn scrambled_graph_same_component_count() {
        let g = gnm(500, 700, 3);
        let s = scramble(&g, 8);
        assert_eq!(num_components(&g), num_components(&s));
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = crate::GraphBuilder::new(4).build();
        assert_eq!(components(&g), vec![0, 1, 2, 3]);
        assert_eq!(num_components(&g), 4);
    }
}
