//! Disjoint-set union (union by size + path halving) — the sequential
//! `O(m α(n))` baseline (Tarjan–van Leeuwen '84, cited by the paper for
//! path splitting).

/// Union–find over `0..n`.
#[derive(Clone, Debug)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `v`'s set (path halving).
    pub fn find(&mut self, mut v: u32) -> u32 {
        while self.parent[v as usize] != v {
            let gp = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = gp;
            v = gp;
        }
        v
    }

    /// Merge the sets of `u` and `v`; returns true if they were distinct.
    pub fn union(&mut self, u: u32, v: u32) -> bool {
        let (mut ru, mut rv) = (self.find(u), self.find(v));
        if ru == rv {
            return false;
        }
        if self.size[ru as usize] < self.size[rv as usize] {
            std::mem::swap(&mut ru, &mut rv);
        }
        self.parent[rv as usize] = ru;
        self.size[ru as usize] += self.size[rv as usize];
        self.components -= 1;
        true
    }

    /// Whether `u` and `v` are in the same set.
    pub fn same(&mut self, u: u32, v: u32) -> bool {
        self.find(u) == self.find(v)
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of `v`'s set.
    pub fn size_of(&mut self, v: u32) -> usize {
        let r = self.find(v);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut d = Dsu::new(6);
        assert_eq!(d.components(), 6);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0));
        assert!(d.union(1, 3));
        assert_eq!(d.components(), 3);
        assert!(d.same(0, 2));
        assert!(!d.same(0, 4));
        assert_eq!(d.size_of(3), 4);
    }

    #[test]
    fn find_is_idempotent_and_flat_after_ops() {
        let mut d = Dsu::new(100);
        for i in 0..99 {
            d.union(i, i + 1);
        }
        let r = d.find(0);
        for v in 0..100 {
            assert_eq!(d.find(v), r);
        }
        assert_eq!(d.components(), 1);
    }
}
