//! Sequential ground truth: BFS, union–find components, diameters, and
//! label-partition comparison. These are the yardsticks every parallel
//! algorithm in the workspace is verified against.

mod bfs;
mod components;
mod diameter;
mod dsu;

pub use bfs::{bfs, bfs_farthest};
pub use components::{
    canonical_labels, components, components_bfs, num_components, same_partition,
};
pub use diameter::{diameter_exact, diameter_lower_bound, max_component_diameter_exact};
pub use dsu::Dsu;
