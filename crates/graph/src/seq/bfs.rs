//! Breadth-first search.

use crate::csr::Graph;
use std::collections::VecDeque;

/// Distance label for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS distances from `src` (`UNREACHED` where not reachable).
pub fn bfs(g: &Graph, src: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.n()];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHED {
                dist[w as usize] = dv + 1;
                q.push_back(w);
            }
        }
    }
    dist
}

/// The farthest reachable vertex from `src` and its distance
/// (ties broken toward the smallest vertex id).
pub fn bfs_farthest(g: &Graph, src: u32) -> (u32, u32) {
    let dist = bfs(g, src);
    let mut best = (src, 0u32);
    for (v, &d) in dist.iter().enumerate() {
        if d != UNREACHED && d > best.1 {
            best = (v as u32, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{cycle, path, union_all};

    #[test]
    fn bfs_on_path() {
        let g = path(6);
        let d = bfs(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let g = union_all(&[path(3), path(3)]);
        let d = bfs(&g, 0);
        assert_eq!(&d[0..3], &[0, 1, 2]);
        assert!(d[3..].iter().all(|&x| x == UNREACHED));
    }

    #[test]
    fn farthest_on_cycle() {
        let g = cycle(8);
        let (v, d) = bfs_farthest(&g, 0);
        assert_eq!(d, 4);
        assert_eq!(v, 4);
    }
}
