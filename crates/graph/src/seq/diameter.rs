//! Diameter computation. The paper's `d` is the **maximum diameter over
//! components**; experiments need it exactly for small inputs (to plot
//! rounds against true `d`) and cheaply bounded for large ones.

use crate::csr::Graph;
use crate::seq::bfs::{bfs, bfs_farthest, UNREACHED};

/// Exact diameter of a *connected* graph by all-pairs BFS (`O(nm)`;
/// intended for `n` up to a few tens of thousands on sparse graphs).
/// Panics if the graph is disconnected — use
/// [`max_component_diameter_exact`] for that.
pub fn diameter_exact(g: &Graph) -> u32 {
    let mut best = 0;
    for s in 0..g.n() as u32 {
        let dist = bfs(g, s);
        for &d in &dist {
            assert!(d != UNREACHED, "diameter_exact on disconnected graph");
            best = best.max(d);
        }
    }
    best
}

/// Exact maximum component diameter (all-pairs BFS per component).
pub fn max_component_diameter_exact(g: &Graph) -> u32 {
    let mut best = 0;
    for s in 0..g.n() as u32 {
        let dist = bfs(g, s);
        for &d in &dist {
            if d != UNREACHED {
                best = best.max(d);
            }
        }
    }
    best
}

/// Double-sweep lower bound on the maximum component diameter:
/// for each component, BFS from its smallest vertex, then BFS again from
/// the farthest vertex found. Exact on trees; a lower bound in general.
/// `O(m)` per component.
pub fn diameter_lower_bound(g: &Graph) -> u32 {
    let mut seen = vec![false; g.n()];
    let mut best = 0;
    for s in 0..g.n() as u32 {
        if seen[s as usize] {
            continue;
        }
        let dist = bfs(g, s);
        for (v, &d) in dist.iter().enumerate() {
            if d != UNREACHED {
                seen[v] = true;
            }
        }
        let (far, _) = bfs_farthest(g, s);
        let (_, d2) = bfs_farthest(g, far);
        best = best.max(d2);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{binary_tree, cycle, grid, path, union_all};

    #[test]
    fn exact_matches_known_shapes() {
        assert_eq!(diameter_exact(&path(17)), 16);
        assert_eq!(diameter_exact(&cycle(10)), 5);
        assert_eq!(diameter_exact(&grid(3, 9)), 10);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn exact_panics_on_disconnected() {
        let g = union_all(&[path(2), path(2)]);
        let _ = diameter_exact(&g);
    }

    #[test]
    fn max_component_diameter_over_mixture() {
        let g = union_all(&[path(5), path(11), cycle(6)]);
        assert_eq!(max_component_diameter_exact(&g), 10);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        for n in [7usize, 15, 31, 100] {
            let g = binary_tree(n);
            assert_eq!(diameter_lower_bound(&g), diameter_exact(&g));
        }
    }

    #[test]
    fn double_sweep_is_lower_bound() {
        for seed in 0..5 {
            let g = crate::gen::gnm(200, 260, seed);
            assert!(diameter_lower_bound(&g) <= max_component_diameter_exact(&g));
        }
    }
}
