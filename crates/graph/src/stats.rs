//! Workload characterization: the quantities the paper's bounds are
//! parameterized by, in one summary.

use crate::csr::Graph;
use crate::seq::{components, diameter_lower_bound};

/// Summary statistics of a workload graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// `m/n` — the paper's density parameter.
    pub density: f64,
    /// Connected components.
    pub components: usize,
    /// Isolated vertices.
    pub isolated: usize,
    /// Max degree.
    pub max_degree: usize,
    /// Lower bound on the maximum component diameter (double sweep; exact
    /// on trees) — the paper's `d`.
    pub diameter_lb: u32,
    /// `log₂ d` and `log log_{m/n} n`, the two terms of Theorem 3's bound
    /// (0 when undefined).
    pub log2_d: f64,
    /// See `log2_d`.
    pub loglog_density_n: f64,
}

impl GraphStats {
    /// Compute the summary (runs BFS per component; linear-ish).
    pub fn of(g: &Graph) -> GraphStats {
        let labels = components(g);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let isolated = (0..g.n() as u32).filter(|&v| g.degree(v) == 0).count();
        let max_degree = (0..g.n() as u32).map(|v| g.degree(v)).max().unwrap_or(0);
        let d = diameter_lower_bound(g);
        let density = g.density();
        let loglog = if density > 1.0 && g.n() > 2 {
            ((g.n() as f64).ln() / density.ln()).max(1.0).ln().max(0.0)
        } else {
            0.0
        };
        GraphStats {
            n: g.n(),
            m: g.m(),
            density,
            components: distinct.len(),
            isolated,
            max_degree,
            diameter_lb: d,
            log2_d: (d.max(1) as f64).log2(),
            loglog_density_n: loglog,
        }
    }

    /// One-line rendering for logs and examples.
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} m/n={:.2} comps={} isolated={} maxdeg={} d≥{} (log2 d={:.1}, loglog={:.2})",
            self.n,
            self.m,
            self.density,
            self.components,
            self.isolated,
            self.max_degree,
            self.diameter_lb,
            self.log2_d,
            self.loglog_density_n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_path() {
        let s = GraphStats::of(&gen::path(10));
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 9);
        assert_eq!(s.components, 1);
        assert_eq!(s.diameter_lb, 9);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn stats_of_mixture_counts_isolated() {
        let mut b = crate::GraphBuilder::new(6);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let s = GraphStats::of(&b.build());
        assert_eq!(s.components, 4); // {0,1,2} + 3 isolated
        assert_eq!(s.isolated, 3);
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = GraphStats::of(&gen::cycle(8));
        let line = s.summary();
        assert!(line.contains("n=8") && line.contains("d≥4"));
    }
}
