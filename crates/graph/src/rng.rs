//! Deterministic random number generation.
//!
//! Implemented in-repo (xoshiro256++ seeded via splitmix64) so that every
//! workload and every randomized algorithm run is reproducible from a single
//! `u64` seed on any platform, with no dependence on external crate version
//! churn.

/// splitmix64 mix step (used for seeding and one-shot hashing).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ deterministic RNG.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the generator (any seed is fine, including 0).
    pub fn new(seed: u64) -> Self {
        let mut s = [0u64; 4];
        let mut x = seed;
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(x);
        }
        Rng { s }
    }

    /// Next uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn coin(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_usize(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng::new(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn coin_probability() {
        let mut rng = Rng::new(9);
        let hits = (0..100_000).filter(|_| rng.coin(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.28..0.32).contains(&frac), "{frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }
}
