//! Compact undirected simple graph: canonical edge list + CSR adjacency.

/// An undirected simple graph on vertices `0..n`.
///
/// * `edges` holds each undirected edge once, as `(u, v)` with `u < v`,
///   sorted lexicographically — the canonical edge list.
/// * The CSR arrays give O(1)-indexable adjacency for BFS etc.
///
/// Build through [`crate::GraphBuilder`], which deduplicates and removes
/// self-loops.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: u32,
    edges: Vec<(u32, u32)>,
    offsets: Vec<u32>,
    adj: Vec<u32>,
}

impl Graph {
    /// Build directly from an already-canonical edge list: each undirected
    /// edge once as `(u, v)` with `u < v < n`, sorted lexicographically,
    /// duplicate-free — exactly what [`crate::runs::merge_sorted_runs`]
    /// emits. This is the zero-copy back door the streaming builder and
    /// the incremental fold use; everything else should go through
    /// [`crate::GraphBuilder`], which canonicalizes arbitrary streams.
    ///
    /// The CSR fill is fused: `offsets` serves as degree counter, prefix
    /// sum, and fill cursor in turn (restored by a right shift at the
    /// end), so construction allocates only the two arrays the graph
    /// keeps — no transient second copy of the offsets.
    pub fn from_canonical_edges(n: u32, edges: Vec<(u32, u32)>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edge list not sorted/deduplicated"
        );
        debug_assert!(
            edges.iter().all(|&(u, v)| u < v && (v as u64) < n as u64),
            "edge list not canonical for n={n}"
        );
        let mut offsets = vec![0u32; n as usize + 1];
        for &(u, v) in &edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n as usize {
            offsets[i + 1] += offsets[i];
        }
        let mut adj = vec![0u32; edges.len() * 2];
        // `offsets[v]` doubles as the fill cursor; after the loop it holds
        // end(v) — i.e. the pre-loop offsets[v + 1].
        for &(u, v) in &edges {
            adj[offsets[u as usize] as usize] = v;
            offsets[u as usize] += 1;
            adj[offsets[v as usize] as usize] = u;
            offsets[v as usize] += 1;
        }
        for i in (1..=n as usize).rev() {
            offsets[i] = offsets[i - 1];
        }
        offsets[0] = 0;
        Graph {
            n,
            edges,
            offsets,
            adj,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Heap footprint of the built graph in bytes: the canonical edge
    /// list plus the CSR arrays (capacity, not length, so shrink bugs are
    /// visible). This is the "final CSR footprint" the streaming builder's
    /// peak-memory contract is stated against (see `runs` module docs and
    /// `bench_report`'s `peak_rss_kb` rows).
    pub fn heap_bytes(&self) -> usize {
        self.edges.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.adj.capacity() * std::mem::size_of::<u32>()
    }

    /// Average degree `2m/n` (the paper's density parameter is `m/n`).
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m() as f64 / self.n() as f64
        }
    }

    /// The canonical edge list: each undirected edge once, `(u, v)` with
    /// `u < v`, sorted.
    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Neighbourhood of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Iterate over all `2m` directed arcs `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)])
    }

    /// Disjoint union: relabels `other`'s vertices to `self.n()..`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let shift = self.n;
        let mut edges = self.edges.clone();
        edges.extend(other.edges.iter().map(|&(u, v)| (u + shift, v + shift)));
        edges.sort_unstable();
        Graph::from_canonical_edges(self.n + other.n, edges)
    }

    /// Relabel vertices by the permutation `perm` (vertex `v` becomes
    /// `perm[v]`). Used to destroy any accidental locality the generators
    /// produce before feeding graphs to the algorithms.
    pub fn relabel(&self, perm: &[u32]) -> Graph {
        assert_eq!(perm.len(), self.n());
        let mut edges: Vec<(u32, u32)> = self
            .edges
            .iter()
            .map(|&(u, v)| {
                let (a, b) = (perm[u as usize], perm[v as usize]);
                (a.min(b), a.max(b))
            })
            .collect();
        edges.sort_unstable();
        Graph::from_canonical_edges(self.n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_pendant() -> Graph {
        // 0-1, 1-2, 0-2, 2-3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn csr_adjacency_matches_edges() {
        let g = triangle_plus_pendant();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn arcs_yield_both_directions() {
        let g = triangle_plus_pendant();
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs.len(), 8);
        assert!(arcs.contains(&(3, 2)) && arcs.contains(&(2, 3)));
    }

    #[test]
    fn disjoint_union_relabels() {
        let g = triangle_plus_pendant();
        let u = g.disjoint_union(&g);
        assert_eq!(u.n(), 8);
        assert_eq!(u.m(), 8);
        assert!(u.edges().contains(&(4, 5)));
        assert!(u.edges().contains(&(6, 7)));
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = triangle_plus_pendant();
        let perm = vec![3, 2, 1, 0];
        let h = g.relabel(&perm);
        assert_eq!(h.m(), g.m());
        // Old edge (2,3) becomes (1,0) => canonical (0,1).
        assert!(h.edges().contains(&(0, 1)));
        assert_eq!(h.degree(1), 3); // image of old vertex 2
    }

    #[test]
    fn density_is_m_over_n() {
        let g = triangle_plus_pendant();
        assert!((g.density() - 1.0).abs() < 1e-12);
    }
}
