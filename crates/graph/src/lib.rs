//! # `cc-graph` — graph substrate for the logdiam reproduction
//!
//! Provides everything the experiments need on the input side:
//!
//! * [`Graph`]: a compact undirected simple graph (CSR adjacency + canonical
//!   edge list), built through [`GraphBuilder`] which deduplicates parallel
//!   edges and drops self-loops.
//! * [`runs`]: the streaming construction substrate — bounded pre-sorted
//!   edge runs ([`EdgeRunStore`]) and a deterministic k-way parallel run
//!   merge, so building a graph never holds the full unsorted edge list
//!   (peak bytes ≈ sealed runs + final CSR).
//! * [`gen`]: synthetic workload families with *controlled* parameters. The
//!   paper's bounds are functions of `(n, m, d)` — number of vertices,
//!   edges, and maximum component diameter — so the generators sweep those
//!   three quantities independently: paths/cycles/grids/trees (diameter
//!   drivers), `G(n, m)` (density driver), path-of-cliques and hairy paths
//!   (high density at chosen diameter), mixtures (multi-component).
//! * [`seq`]: sequential ground truth — BFS, union–find components, exact
//!   and double-sweep diameter — used by every verifier in the workspace.
//! * [`rng`]: a small deterministic RNG (splitmix64-seeded xoshiro256++) so
//!   workloads are reproducible across platforms without external deps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod rng;
pub mod runs;
pub mod seq;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use rng::Rng;
pub use runs::EdgeRunStore;
pub use stats::GraphStats;
