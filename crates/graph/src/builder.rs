//! Graph construction with deduplication and self-loop removal.
//!
//! [`GraphBuilder`] is backed by the streaming [`EdgeRunStore`]: pushed
//! edges accumulate in bounded sorted runs instead of one full unsorted
//! list, and `build` k-way-merges the runs straight into CSR — so peak
//! bytes during construction are ≈ (sealed runs) + (final CSR), never
//! 2× the edge list. See [`crate::runs`] for the memory model.

use crate::csr::Graph;
use crate::runs::{merge_sorted_runs, EdgeRunStore};
use pram_kit::PairSet;

/// Seed for the incremental-merge dedup set: any fixed value keeps
/// [`Graph::from_csr_plus_edges`] deterministic in its inputs.
const FOLD_DEDUP_SEED: u64 = 0xF01D_5EED;

impl Graph {
    /// Canonicalize a delta edge list against this graph and a
    /// caller-held dedup set: self-loops are dropped, each edge is
    /// normalized to `(min, max)`, duplicates within `extra` — and across
    /// calls sharing the same `seen` set — are collapsed (an exact
    /// [`PairSet`] probe, so the dedup costs O(|extra|), never O(m)), and
    /// edges already present in this graph are filtered out (binary
    /// search on the canonical edge list). Returns the surviving new
    /// edges in arrival order.
    ///
    /// This is the one normalization rule for incremental edges: both
    /// [`Graph::from_csr_plus_edges`] and the `logdiam-svc` batch path
    /// route through it, so "counts as a new edge" can never mean two
    /// different things.
    pub fn dedup_new_edges(&self, extra: &[(u32, u32)], seen: &mut PairSet) -> Vec<(u32, u32)> {
        let n = self.n() as u32;
        let mut fresh: Vec<(u32, u32)> = Vec::new();
        for &(u, v) in extra {
            assert!(u < n && v < n, "edge ({u},{v}) out of range");
            if u == v {
                continue;
            }
            let e = (u.min(v), u.max(v));
            if seen.insert(e.0 as u64, e.1 as u64) && self.edges().binary_search(&e).is_err() {
                fresh.push(e);
            }
        }
        fresh
    }

    /// Append a delta edge list onto an existing CSR graph and rebuild:
    /// the incremental path used when a maintained labeling folds its
    /// accumulated deltas back into a fresh base (`logdiam-svc` rebuilds,
    /// regeneration loops).
    ///
    /// Deltas are normalized through [`Graph::dedup_new_edges`]
    /// (loop-drop, exact dedup, already-present filter); the base's
    /// canonical edge list is then merged with the sorted fresh edges in
    /// one linear pass, so the whole rebuild is O(m + |extra| log
    /// |extra|). If every extra edge is already present the base is
    /// returned unchanged (cheap clone, no re-sort).
    pub fn from_csr_plus_edges(base: &Graph, extra: &[(u32, u32)]) -> Graph {
        let n = base.n() as u32;
        let mut seen = PairSet::with_capacity(FOLD_DEDUP_SEED, extra.len());
        let mut fresh = base.dedup_new_edges(extra, &mut seen);
        if fresh.is_empty() {
            return base.clone();
        }
        fresh.sort_unstable();
        // The base's canonical list and the sorted fresh list are two
        // sorted duplicate-free runs (disjoint by construction): the same
        // k-way merge primitive the streaming builder uses folds them.
        let edges = merge_sorted_runs(&[base.edges(), &fresh]);
        Graph::from_canonical_edges(n, edges)
    }
}

/// Accumulates edges and produces a canonical [`Graph`].
///
/// Self-loops are dropped and parallel edges collapsed, so the resulting
/// graph is simple — the setting of the paper (self-loops would only add
/// trivial arcs, and the algorithms treat multi-edges identically to single
/// edges). Edges stream into an [`EdgeRunStore`], so a builder never holds
/// the full unsorted edge list; every generator in [`crate::gen`] and the
/// text loader inherit the bounded-run memory discipline through this type.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: u32,
    store: EdgeRunStore,
}

impl GraphBuilder {
    /// Start a graph on vertices `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count too large");
        GraphBuilder {
            n: n as u32,
            store: EdgeRunStore::new(n),
        }
    }

    /// Start a graph on vertices `0..n`, expecting about `m` edges.
    /// (Capacity is bounded by the run size; the hint only pre-sizes the
    /// open buffer.)
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let _ = m; // runs are bounded; the store sizes its buffer lazily
        Self::new(n)
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Add an undirected edge (self-loops silently dropped).
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) {
        self.store.push(u, v);
    }

    /// Number of loop-surviving edges pushed so far (duplicates included;
    /// already-sealed runs may have collapsed theirs, but the count is of
    /// pushes, matching the pre-streaming semantics).
    pub fn raw_edge_count(&self) -> usize {
        self.store.pushed()
    }

    /// Set (or clear) the edge-run spill directory, overriding the
    /// `LOGDIAM_RUN_SPILL` default (see [`EdgeRunStore::set_spill_dir`]).
    pub fn set_spill_dir(&mut self, dir: Option<std::path::PathBuf>) {
        self.store.set_spill_dir(dir);
    }

    /// `(runs spilled, spill bytes written)` by this builder's store.
    pub fn spill_stats(&self) -> (usize, u64) {
        (self.store.spilled_runs(), self.store.spill_bytes())
    }

    /// Finish: merge the sealed runs and build CSR.
    pub fn build(self) -> Graph {
        Graph::from_canonical_edges(self.n, self.store.into_sorted_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate in other direction
        b.add_edge(1, 1); // self loop
        b.add_edge(1, 2);
        b.add_edge(1, 2); // duplicate
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    /// Reference implementation: rebuild from scratch through the
    /// one-shot builder.
    fn rebuild_naive(base: &Graph, extra: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new(base.n());
        for &(u, v) in base.edges() {
            b.add_edge(u, v);
        }
        for &(u, v) in extra {
            if u != v {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn incremental_merge_matches_scratch_rebuild() {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [(0, 1), (2, 3), (5, 6)] {
            b.add_edge(u, v);
        }
        let base = b.build();
        let extra = [
            (1, 2),
            (2, 1), // duplicate of (1,2), other direction
            (4, 4), // self loop
            (0, 1), // already in base
            (6, 7),
            (6, 7), // duplicate within extra
        ];
        let merged = Graph::from_csr_plus_edges(&base, &extra);
        assert_eq!(merged, rebuild_naive(&base, &extra));
        assert_eq!(merged.m(), 5);
        assert_eq!(merged.neighbors(6), &[5, 7]);
    }

    #[test]
    fn incremental_merge_with_no_fresh_edges_is_identity() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let base = b.build();
        assert_eq!(Graph::from_csr_plus_edges(&base, &[]), base);
        assert_eq!(Graph::from_csr_plus_edges(&base, &[(1, 0), (3, 3)]), base);
    }

    #[test]
    fn incremental_merge_onto_empty_base() {
        let base = GraphBuilder::new(5).build();
        let merged = Graph::from_csr_plus_edges(&base, &[(4, 0), (1, 2)]);
        assert_eq!(merged.edges(), &[(0, 4), (1, 2)]);
        assert_eq!(merged.degree(4), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn incremental_merge_checks_range() {
        let base = GraphBuilder::new(3).build();
        Graph::from_csr_plus_edges(&base, &[(0, 3)]);
    }
}
