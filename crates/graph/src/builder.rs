//! Graph construction with deduplication and self-loop removal.

use crate::csr::Graph;

/// Accumulates edges and produces a canonical [`Graph`].
///
/// Self-loops are dropped and parallel edges collapsed, so the resulting
/// graph is simple — the setting of the paper (self-loops would only add
/// trivial arcs, and the algorithms treat multi-edges identically to single
/// edges).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Start a graph on vertices `0..n`.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "vertex count too large");
        GraphBuilder {
            n: n as u32,
            edges: Vec::new(),
        }
    }

    /// Reserve capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n as usize
    }

    /// Add an undirected edge (self-loops silently dropped).
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        if u == v {
            return;
        }
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Current number of (not yet deduplicated) edges.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finish: sort, deduplicate, build CSR.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_canonical_edges(self.n, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate in other direction
        b.add_edge(1, 1); // self loop
        b.add_edge(1, 2);
        b.add_edge(1, 2); // duplicate
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }
}
