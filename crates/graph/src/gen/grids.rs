//! Mesh-like families: moderate diameter `Θ(√n)`, the paper's motivating
//! contrast to "internet-like" low-diameter graphs (E7 crossover).

use crate::builder::GraphBuilder;
use crate::csr::Graph;

/// `rows × cols` grid; diameter `rows + cols - 2`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build()
}

/// `rows × cols` torus (grid with wraparound); diameter
/// `⌊rows/2⌋ + ⌊cols/2⌋`.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs sides ≥ 3");
    let n = rows * cols;
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(idx(r, c), idx(r, (c + 1) % cols));
            b.add_edge(idx(r, c), idx((r + 1) % rows, c));
        }
    }
    b.build()
}

/// `dim`-dimensional hypercube: `n = 2^dim`, diameter `dim = log₂ n`.
pub fn hypercube(dim: usize) -> Graph {
    assert!(dim <= 24, "hypercube dimension too large");
    let n = 1usize << dim;
    let mut b = GraphBuilder::with_capacity(n, n * dim / 2);
    for v in 0..n {
        for bit in 0..dim {
            let w = v ^ (1 << bit);
            if w > v {
                b.add_edge(v as u32, w as u32);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{diameter_exact, num_components};

    #[test]
    fn grid_counts() {
        let g = grid(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 3 * 5); // horizontal + vertical
        assert_eq!(diameter_exact(&g), 7);
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn grid_single_row_is_path() {
        let g = grid(1, 6);
        assert_eq!(g.m(), 5);
        assert_eq!(diameter_exact(&g), 5);
    }

    #[test]
    fn torus_counts_and_diameter() {
        let g = torus(4, 6);
        assert_eq!(g.n(), 24);
        assert_eq!(g.m(), 2 * 24);
        assert_eq!(diameter_exact(&g), 2 + 3);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert_eq!(diameter_exact(&g), 4);
        for v in 0..16u32 {
            assert_eq!(g.degree(v), 4);
        }
    }
}
