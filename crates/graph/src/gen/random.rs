//! Random graph families and randomization utilities.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::rng::Rng;

/// Erdős–Rényi `G(n, m)`: `m` distinct uniform edges.
///
/// For `m/n ≫ 1` the giant component has diameter `O(log n / log(m/n))`
/// whp — the "internet-like" low-diameter regime the paper targets.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "gnm needs n ≥ 2");
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m, "too many edges requested: {m} > {max_m}");
    let mut rng = Rng::new(seed ^ 0x676E_6D00);
    let mut b = GraphBuilder::with_capacity(n, m + m / 8);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.below(n as u64) as u32;
        let v = rng.below(n as u64) as u32;
        if u == v {
            continue;
        }
        let key = ((u.min(v) as u64) << 32) | u.max(v) as u64;
        if seen.insert(key) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` via geometric skipping (O(m) expected time).
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    let mut rng = Rng::new(seed ^ 0x676E_7000);
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Iterate over the implicit index of pairs (u,v), u<v, skipping
    // geometrically distributed gaps.
    let log1mp = (1.0 - p).ln();
    let total = n * (n - 1) / 2;
    let mut idx = 0usize;
    loop {
        let r = rng.f64().max(1e-300);
        let skip = (r.ln() / log1mp).floor() as usize;
        idx += skip;
        if idx >= total {
            break;
        }
        let (u, v) = pair_of_index(idx, n);
        b.add_edge(u as u32, v as u32);
        idx += 1;
    }
    b.build()
}

/// Inverse of the row-major enumeration of pairs `(u, v)` with `u < v`:
/// row `u` holds pairs `(u, u+1)..(u, n-1)` and starts at index
/// `u(n-1) - u(u-1)/2`.
fn pair_of_index(idx: usize, n: usize) -> (usize, usize) {
    // O(1) quadratic-formula guess, corrected by a guard loop against
    // floating-point error.
    let idxf = idx as f64;
    let nf = n as f64;
    let disc = ((2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * idxf).max(0.0);
    let guess = ((2.0 * nf - 1.0 - disc.sqrt()) / 2.0).floor();
    let mut u = (guess.max(0.0) as usize).min(n - 2);
    let row_start = |u: usize| u * (n - 1) - u * u.saturating_sub(1) / 2;
    loop {
        let start = row_start(u);
        let row_len = n - u - 1;
        if idx < start {
            u = u.checked_sub(1).expect("pair_of_index guess underflow");
        } else if idx >= start + row_len {
            u += 1;
        } else {
            return (u, u + 1 + (idx - start));
        }
    }
}

/// Approximately `deg`-regular graph: the union of `deg` random perfect
/// matchings (self-loops and duplicates dropped, so degrees are ≤ `deg`).
/// Expander-like: diameter `O(log n)` whp for `deg ≥ 3`.
pub fn random_regular(n: usize, deg: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut rng = Rng::new(seed ^ 0x7265_6775);
    let mut b = GraphBuilder::with_capacity(n, n * deg / 2);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for _ in 0..deg {
        rng.shuffle(&mut perm);
        for pair in perm.chunks_exact(2) {
            b.add_edge(pair[0], pair[1]);
        }
    }
    b.build()
}

/// Add `extra` random edges to `g` (deduplicated against existing ones).
/// Densifies while only ever *shrinking* distances.
pub fn add_random_edges(g: &Graph, extra: usize, seed: u64) -> Graph {
    let n = g.n();
    assert!(n >= 2);
    let mut rng = Rng::new(seed ^ 0xADD0_ED6E);
    let mut b = GraphBuilder::with_capacity(n, g.m() + extra);
    for &(u, v) in g.edges() {
        b.add_edge(u, v);
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < extra * 20 + 1000 {
        guard += 1;
        let u = rng.below(n as u64) as u32;
        let v = rng.below(n as u64) as u32;
        if u != v {
            b.add_edge(u, v);
            added += 1;
        }
    }
    b.build()
}

/// Randomly relabel the vertices of `g` — destroys generator locality so
/// algorithms cannot accidentally benefit from vertex-id structure.
pub fn scramble(g: &Graph, seed: u64) -> Graph {
    let mut rng = Rng::new(seed ^ 0x5C2A_3B1E);
    let mut perm: Vec<u32> = (0..g.n() as u32).collect();
    rng.shuffle(&mut perm);
    g.relabel(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{diameter_exact, num_components};

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = gnm(100, 350, 4);
        assert_eq!(g.n(), 100);
        assert_eq!(g.m(), 350);
    }

    #[test]
    fn gnm_deterministic_in_seed() {
        assert_eq!(gnm(80, 200, 5).edges(), gnm(80, 200, 5).edges());
        assert_ne!(gnm(80, 200, 5).edges(), gnm(80, 200, 6).edges());
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 11);
        let expect = (n * (n - 1) / 2) as f64 * p;
        let m = g.m() as f64;
        assert!(
            (m - expect).abs() < 4.0 * expect.sqrt() + 20.0,
            "m={m} expect≈{expect}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn pair_of_index_roundtrip() {
        let n = 23;
        let mut idx = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_of_index(idx, n), (u, v), "idx={idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn random_regular_degrees_bounded_and_connected() {
        let g = random_regular(200, 4, 3);
        for v in 0..200u32 {
            assert!(g.degree(v) <= 4);
        }
        // Union of 4 matchings on 200 vertices is connected whp.
        assert_eq!(num_components(&g), 1);
        assert!(diameter_exact(&g) <= 16);
    }

    #[test]
    fn add_random_edges_only_shrinks_diameter() {
        let base = crate::gen::path(60);
        let dense = add_random_edges(&base, 40, 7);
        assert!(dense.m() > base.m());
        assert!(diameter_exact(&dense) <= diameter_exact(&base));
        // All original edges still present.
        for e in base.edges() {
            assert!(dense.edges().binary_search(e).is_ok());
        }
    }

    #[test]
    fn scramble_preserves_shape() {
        let g = crate::gen::grid(6, 7);
        let s = scramble(&g, 13);
        assert_eq!(s.n(), g.n());
        assert_eq!(s.m(), g.m());
        assert_eq!(diameter_exact(&s), diameter_exact(&g));
        assert_eq!(num_components(&s), 1);
    }
}
