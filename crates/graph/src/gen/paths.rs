//! Path-like and dense-core families: the diameter drivers.

use crate::builder::GraphBuilder;
use crate::csr::Graph;

/// Path on `n` vertices (`0-1-2-…`); diameter `n-1`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as u32 {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Cycle on `n ≥ 3` vertices; diameter `⌊n/2⌋`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 1..n as u32 {
        b.add_edge(v - 1, v);
    }
    b.add_edge(n as u32 - 1, 0);
    b.build()
}

/// Star: center `0` joined to `n-1` leaves; diameter 2.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as u32 {
        b.add_edge(0, v);
    }
    b.build()
}

/// Complete graph `K_n`; diameter 1, density `(n-1)/2`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` vertices, each with `legs` pendant
/// leaves. `n = spine·(1+legs)`, `d = spine+1` — lets `n` (and `m`) grow
/// while the diameter stays put.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for s in 1..spine as u32 {
        b.add_edge(s - 1, s);
    }
    let mut next = spine as u32;
    for s in 0..spine as u32 {
        for _ in 0..legs {
            b.add_edge(s, next);
            next += 1;
        }
    }
    b.build()
}

/// Broom: a path of length `handle` whose far end fans out into `bristles`
/// leaves. Diameter `max(handle + 1, 2)` (path end to a bristle).
pub fn broom(handle: usize, bristles: usize) -> Graph {
    assert!(handle >= 1);
    let n = handle + 1 + bristles;
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..=handle as u32 {
        b.add_edge(v - 1, v);
    }
    let tip = handle as u32;
    for i in 0..bristles as u32 {
        b.add_edge(tip, handle as u32 + 1 + i);
    }
    b.build()
}

/// Lollipop: `K_clique` with a path of `tail` extra vertices attached.
/// The classic "dense core + long appendage" stress shape.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 1);
    let n = clique + tail;
    let mut b = GraphBuilder::with_capacity(n, clique * clique / 2 + tail);
    for u in 0..clique as u32 {
        for v in (u + 1)..clique as u32 {
            b.add_edge(u, v);
        }
    }
    let mut prev = 0u32; // attach tail to vertex 0 of the clique
    for i in 0..tail as u32 {
        let v = clique as u32 + i;
        b.add_edge(prev, v);
        prev = v;
    }
    b.build()
}

/// Barbell: two `K_clique`s joined by a path of `bridge` intermediate
/// vertices.
pub fn barbell(clique: usize, bridge: usize) -> Graph {
    assert!(clique >= 1);
    let n = 2 * clique + bridge;
    let mut b = GraphBuilder::with_capacity(n, clique * clique + bridge + 1);
    for side in 0..2u32 {
        let base = side * clique as u32;
        for u in 0..clique as u32 {
            for v in (u + 1)..clique as u32 {
                b.add_edge(base + u, base + v);
            }
        }
    }
    // Path from vertex 0 (left clique) through bridge vertices to vertex
    // `clique` (right clique).
    let mut prev = 0u32;
    for i in 0..bridge as u32 {
        let v = 2 * clique as u32 + i;
        b.add_edge(prev, v);
        prev = v;
    }
    b.add_edge(prev, clique as u32);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{components, diameter_exact, num_components};

    #[test]
    fn path_shape() {
        let g = path(10);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 9);
        assert_eq!(diameter_exact(&g), 9);
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn path_degenerate_sizes() {
        assert_eq!(path(1).m(), 0);
        assert_eq!(path(2).m(), 1);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(9);
        assert_eq!(g.m(), 9);
        assert_eq!(diameter_exact(&g), 4);
        assert!(g.neighbors(0).contains(&8));
    }

    #[test]
    fn star_diameter_two() {
        let g = star(50);
        assert_eq!(g.m(), 49);
        assert_eq!(diameter_exact(&g), 2);
        assert_eq!(g.degree(0), 49);
    }

    #[test]
    fn complete_graph() {
        let g = complete(8);
        assert_eq!(g.m(), 28);
        assert_eq!(diameter_exact(&g), 1);
    }

    #[test]
    fn caterpillar_counts_and_diameter() {
        let g = caterpillar(6, 3);
        assert_eq!(g.n(), 24);
        assert_eq!(g.m(), 23);
        assert_eq!(num_components(&g), 1);
        // leaf - spine(6 long) - leaf
        assert_eq!(diameter_exact(&g), 7);
    }

    #[test]
    fn broom_diameter() {
        let g = broom(5, 4);
        assert_eq!(g.n(), 10);
        assert_eq!(diameter_exact(&g), 6);
    }

    #[test]
    fn lollipop_connected() {
        let g = lollipop(6, 5);
        assert_eq!(g.n(), 11);
        assert_eq!(num_components(&g), 1);
        assert_eq!(diameter_exact(&g), 6); // across clique (1) + tail (5)
    }

    #[test]
    fn barbell_connected_single_component() {
        let g = barbell(5, 3);
        assert_eq!(g.n(), 13);
        let labels = components(&g);
        assert!(labels.iter().all(|&l| l == labels[0]));
        assert_eq!(diameter_exact(&g), 6); // 1 + 4 hops bridge + 1
    }
}
