//! Tree families (`m = n - 1`): the sparsest connected inputs, and the
//! regime where the paper's `log log_{m/n} n` term is largest.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::rng::Rng;

/// Complete-ish binary tree on `n` vertices (heap numbering); diameter
/// `≈ 2 log₂ n`.
pub fn binary_tree(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as u32 {
        b.add_edge((v - 1) / 2, v);
    }
    b.build()
}

/// Uniform random recursive tree: vertex `v` attaches to a uniform earlier
/// vertex. Expected diameter `Θ(log n)`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = Rng::new(seed ^ 0x0072_6563_7472_6565);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as u32 {
        let parent = rng.below(v as u64) as u32;
        b.add_edge(parent, v);
    }
    b.build()
}

/// Spider: `legs` paths of length `leg_len` sharing a common center.
/// `n = 1 + legs·leg_len`, diameter `2·leg_len`.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    assert!(legs >= 1 && leg_len >= 1);
    let n = 1 + legs * leg_len;
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    let mut next = 1u32;
    for _ in 0..legs {
        let mut prev = 0u32;
        for _ in 0..leg_len {
            b.add_edge(prev, next);
            prev = next;
            next += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{diameter_exact, num_components};

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15);
        assert_eq!(g.m(), 14);
        assert_eq!(num_components(&g), 1);
        assert_eq!(diameter_exact(&g), 6); // leaf..root..leaf in depth-3 tree
    }

    #[test]
    fn random_tree_is_spanning_and_connected() {
        for seed in 0..5 {
            let g = random_tree(200, seed);
            assert_eq!(g.m(), 199);
            assert_eq!(num_components(&g), 1);
        }
    }

    #[test]
    fn random_tree_deterministic_in_seed() {
        assert_eq!(random_tree(64, 9).edges(), random_tree(64, 9).edges());
        assert_ne!(random_tree(64, 9).edges(), random_tree(64, 10).edges());
    }

    #[test]
    fn spider_diameter() {
        let g = spider(5, 7);
        assert_eq!(g.n(), 36);
        assert_eq!(g.m(), 35);
        assert_eq!(diameter_exact(&g), 14);
        assert_eq!(g.degree(0), 5);
    }
}
