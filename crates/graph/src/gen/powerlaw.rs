//! Skewed-degree families: the "internet-scale graphs" of the paper's
//! introduction have heavy-tailed degrees and tiny diameters.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::rng::Rng;

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices chosen proportionally to degree. Produces a
/// connected graph with a power-law-ish degree tail and diameter
/// `O(log n)`.
pub fn preferential_attachment(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(n >= 2 && attach >= 1);
    let mut rng = Rng::new(seed ^ 0xBABA);
    let mut b = GraphBuilder::with_capacity(n, n * attach);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<u32> = vec![0, 1];
    b.add_edge(0, 1);
    for v in 2..n as u32 {
        let mut targets = Vec::with_capacity(attach);
        for _ in 0..attach.min(v as usize) {
            let t = endpoints[rng.below_usize(endpoints.len())];
            targets.push(t);
        }
        for &t in &targets {
            if t != v {
                b.add_edge(v, t);
                endpoints.push(t);
                endpoints.push(v);
            }
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`: diameter 2, density `ab/(a+b)` —
/// an extreme "hub layer" shape.
pub fn complete_bipartite(a: usize, b_count: usize) -> Graph {
    let n = a + b_count;
    let mut b = GraphBuilder::with_capacity(n, a * b_count);
    for u in 0..a as u32 {
        for v in 0..b_count as u32 {
            b.add_edge(u, a as u32 + v);
        }
    }
    b.build()
}

/// Wheel: a cycle of `n-1` vertices all joined to a hub; diameter 2.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4);
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for v in 1..n as u32 {
        b.add_edge(0, v);
    }
    for v in 1..(n - 1) as u32 {
        b.add_edge(v, v + 1);
    }
    b.add_edge(n as u32 - 1, 1);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{diameter_exact, num_components};

    #[test]
    fn preferential_attachment_connected_and_skewed() {
        let g = preferential_attachment(2000, 2, 7);
        assert_eq!(num_components(&g), 1);
        let max_deg = (0..g.n() as u32).map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(
            max_deg as f64 > 8.0 * avg,
            "expected a heavy tail: max {max_deg} vs avg {avg:.1}"
        );
    }

    #[test]
    fn preferential_attachment_deterministic() {
        assert_eq!(
            preferential_attachment(300, 2, 9).edges(),
            preferential_attachment(300, 2, 9).edges()
        );
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 5);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 15);
        assert_eq!(diameter_exact(&g), 2);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(10);
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 9 + 9);
        assert_eq!(diameter_exact(&g), 2);
        assert_eq!(g.degree(0), 9);
    }
}
