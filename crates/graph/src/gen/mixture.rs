//! Multi-component mixtures: the algorithms must label *every* component,
//! not just a giant one, and the spanning-forest output must contain one
//! tree per component.

use crate::csr::Graph;

/// `k` disjoint copies of `g`, relabeled consecutively.
pub fn disjoint_copies(g: &Graph, k: usize) -> Graph {
    assert!(k >= 1);
    let mut out = g.clone();
    for _ in 1..k {
        out = out.disjoint_union(g);
    }
    out
}

/// Disjoint union of an arbitrary list of graphs.
pub fn union_all(graphs: &[Graph]) -> Graph {
    assert!(!graphs.is_empty());
    let mut out = graphs[0].clone();
    for g in &graphs[1..] {
        out = out.disjoint_union(g);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{complete, cycle, path, star};
    use crate::seq::num_components;

    #[test]
    fn disjoint_copies_multiply_components() {
        let g = cycle(10);
        let h = disjoint_copies(&g, 5);
        assert_eq!(h.n(), 50);
        assert_eq!(h.m(), 50);
        assert_eq!(num_components(&h), 5);
    }

    #[test]
    fn union_all_mixes_shapes() {
        let h = union_all(&[path(10), star(20), complete(6), cycle(5)]);
        assert_eq!(h.n(), 41);
        assert_eq!(num_components(&h), 4);
    }
}
