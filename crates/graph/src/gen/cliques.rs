//! Clique chains: the workhorse family for E1/E7.
//!
//! A chain of `k` cliques of size `s` joined consecutively has
//! `n = k·s`, `m ≈ k·s²/2`, and diameter `Θ(k)` — so the experiments can
//! sweep the diameter `d` and the density `m/n ≈ s/2` *independently*,
//! which is exactly what Theorem 3's `O(log d + log log_{m/n} n)` bound
//! calls for.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::rng::Rng;

/// A chain of `k` cliques of size `s`.
///
/// Consecutive cliques are joined by a single edge between "port" vertices,
/// giving diameter `3k - 1 - 2 = 3(k-1)+1` hops in the worst orientation
/// (clique-internal hop, bridge, …). With `s = 1` this degenerates to a
/// path on `k` vertices.
pub fn clique_chain(k: usize, s: usize) -> Graph {
    assert!(k >= 1 && s >= 1);
    let n = k * s;
    let mut b = GraphBuilder::with_capacity(n, k * s * s / 2 + k);
    for c in 0..k {
        let base = (c * s) as u32;
        for u in 0..s as u32 {
            for v in (u + 1)..s as u32 {
                b.add_edge(base + u, base + v);
            }
        }
        if c + 1 < k {
            // Bridge from the last vertex of this clique to the first of
            // the next.
            b.add_edge(base + s as u32 - 1, base + s as u32);
        }
    }
    b.build()
}

/// A path of length `len` where every path vertex is additionally connected
/// to `w` private "hair" vertices that form a clique with it.
///
/// Keeps the diameter at `len + 2` while pushing the density to
/// `m/n ≈ w/2`; unlike [`clique_chain`] the shortest paths run through
/// *low-degree* spine vertices, which stresses the paper's expansion
/// machinery differently (the hairs are the high-degree side).
pub fn hairy_clique_path(len: usize, w: usize, seed: u64) -> Graph {
    assert!(len >= 1);
    let spine = len + 1;
    let n = spine * (1 + w);
    let mut rng = Rng::new(seed ^ 0x6861_6972);
    let mut b = GraphBuilder::with_capacity(n, spine * (w * w / 2 + w + 1));
    for v in 1..spine as u32 {
        b.add_edge(v - 1, v);
    }
    let mut next = spine as u32;
    for sv in 0..spine as u32 {
        let hair_base = next;
        for i in 0..w as u32 {
            // Hair vertices form a clique among themselves and attach to
            // the spine vertex.
            b.add_edge(sv, hair_base + i);
            for j in (i + 1)..w as u32 {
                b.add_edge(hair_base + i, hair_base + j);
            }
            next += 1;
        }
        // A little randomness in which hair anchors where (keeps the
        // family from being perfectly symmetric).
        if w > 1 && rng.coin(0.5) {
            b.add_edge(sv, hair_base + rng.below(w as u64) as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{diameter_exact, num_components};

    #[test]
    fn clique_chain_counts() {
        let g = clique_chain(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 10 + 3);
        assert_eq!(num_components(&g), 1);
    }

    #[test]
    fn clique_chain_diameter_grows_linearly_in_k() {
        let d3 = diameter_exact(&clique_chain(3, 4));
        let d6 = diameter_exact(&clique_chain(6, 4));
        assert!(d6 >= d3 + 5, "d3={d3} d6={d6}");
    }

    #[test]
    fn clique_chain_degenerates_to_path() {
        let g = clique_chain(7, 1);
        assert_eq!(g.m(), 6);
        assert_eq!(diameter_exact(&g), 6);
    }

    #[test]
    fn hairy_path_diameter_independent_of_width() {
        let d_thin = diameter_exact(&hairy_clique_path(10, 2, 1));
        let d_fat = diameter_exact(&hairy_clique_path(10, 8, 1));
        assert!((10..=13).contains(&d_thin));
        assert!((d_fat as i64 - d_thin as i64).abs() <= 1);
    }

    #[test]
    fn hairy_path_density_scales_with_width() {
        let g2 = hairy_clique_path(10, 2, 1);
        let g8 = hairy_clique_path(10, 8, 1);
        assert!(g8.density() > 2.0 * g2.density());
        assert_eq!(num_components(&g8), 1);
    }
}
