//! Synthetic workload generators.
//!
//! The paper's time bounds are functions of three workload parameters —
//! vertex count `n`, edge count `m`, and maximum component diameter `d` —
//! so the families here are chosen to sweep each one while pinning the
//! others:
//!
//! | family | sweeps | pins |
//! |---|---|---|
//! | [`path`], [`cycle`], [`grid`], [`torus`] | `d` | `m/n ≈ 1..2` |
//! | [`clique_chain`] | `d` and `m/n` independently | — |
//! | [`caterpillar`], [`broom`] | `n` at fixed `d` contribution | sparse |
//! | [`gnm`], [`gnp`] | `m/n` | `d = O(log n)` whp |
//! | [`random_regular`] | degree | expander-like, tiny `d` |
//! | [`binary_tree`], [`random_tree`], [`spider`] | tree shapes | `m = n-1` |
//! | [`lollipop`], [`barbell`], [`hypercube`] | classic stress shapes | — |
//! | [`disjoint_copies`], [`union_all`] | component count | — |
//!
//! All randomized generators are deterministic in their `seed` argument.

mod cliques;
mod grids;
mod mixture;
mod paths;
mod powerlaw;
mod random;
mod trees;

pub use cliques::{clique_chain, hairy_clique_path};
pub use grids::{grid, hypercube, torus};
pub use mixture::{disjoint_copies, union_all};
pub use paths::{barbell, broom, caterpillar, complete, cycle, lollipop, path, star};
pub use powerlaw::{complete_bipartite, preferential_attachment, wheel};
pub use random::{add_random_edges, gnm, gnp, random_regular, scramble};
pub use trees::{binary_tree, random_tree, spider};
