//! Property tests pinning the streaming chunked builder to the canonical
//! [`Graph::from_canonical_edges`] contract: for any stream and any run
//! size the built graph is bit-identical to the reference sort+dedup
//! build. Run under `RAYON_NUM_THREADS` ∈ {1, 2, 8} by the CI thread
//! matrix — the merge output must be independent of both the run
//! boundaries and the pool size.

use cc_graph::runs::{merge_sorted_runs, EdgeRunStore};
use cc_graph::Graph;
use proptest::prelude::*;

/// Reference semantics: canonicalize, sort, dedup on the full list.
fn reference_graph(n: usize, stream: &[(u32, u32)]) -> Graph {
    let mut edges: Vec<(u32, u32)> = stream
        .iter()
        .filter(|&&(u, v)| u != v)
        .map(|&(u, v)| (u.min(v), u.max(v)))
        .collect();
    edges.sort_unstable();
    edges.dedup();
    Graph::from_canonical_edges(n as u32, edges)
}

/// Build through an [`EdgeRunStore`] with an explicit run capacity,
/// optionally spilling sealed runs to the system temp dir.
fn streamed_graph_spill(n: usize, stream: &[(u32, u32)], cap: usize, spill: bool) -> Graph {
    let mut store = EdgeRunStore::with_run_capacity(Some(n as u32), cap);
    store.set_spill_dir(spill.then(std::env::temp_dir));
    for &(u, v) in stream {
        store.push(u, v);
    }
    if spill {
        assert!(
            store.pushed() < cap || store.spilled_runs() > 0,
            "spill mode sealed no run to disk"
        );
    }
    Graph::from_canonical_edges(n as u32, store.into_sorted_edges())
}

/// Build through an [`EdgeRunStore`] with an explicit run capacity.
fn streamed_graph(n: usize, stream: &[(u32, u32)], cap: usize) -> Graph {
    streamed_graph_spill(n, stream, cap, false)
}

/// An edge stream that is heavy on duplicates and self-loops: endpoints
/// drawn from a small id range, plus every 5th pair forced into a loop.
fn dirty_stream(n: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..n, 0u32..n), 0..600).prop_map(move |mut pairs| {
        for (i, p) in pairs.iter_mut().enumerate() {
            if i % 5 == 0 {
                p.1 = p.0; // self-loop
            }
            if i % 3 == 0 && i > 0 {
                // force duplicates: collapse onto a small set of pairs
                let j = (i / 2) as u32;
                p.0 = j % n;
                p.1 = (j / 2) % n;
            }
        }
        pairs
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The tentpole contract: streaming build ≡ reference build for run
    /// sizes 1, 7, 1024 and m (single run), on duplicate- and loop-heavy
    /// streams.
    #[test]
    fn streaming_build_is_bit_identical_across_run_sizes(
        n in 2usize..80,
        stream in dirty_stream(80),
    ) {
        let stream: Vec<(u32, u32)> = stream
            .into_iter()
            .filter(|&(u, v)| (u as usize) < n && (v as usize) < n)
            .collect();
        let want = reference_graph(n, &stream);
        for cap in [1usize, 7, 1024, stream.len().max(1)] {
            let got = streamed_graph(n, &stream, cap);
            prop_assert_eq!(&got, &want, "run capacity {}", cap);
        }
    }

    /// PR 10: out-of-core builds are bit-identical to in-memory builds for
    /// run caps 1, 7, 1024 — every sealed run round-trips through an
    /// unlinked spill file and the streaming merge must reproduce the
    /// exact set union (the CI thread matrix runs this at 1, 2 and 8
    /// threads too).
    #[test]
    fn spilled_build_is_bit_identical_across_run_sizes(
        n in 2usize..80,
        stream in dirty_stream(80),
    ) {
        let stream: Vec<(u32, u32)> = stream
            .into_iter()
            .filter(|&(u, v)| (u as usize) < n && (v as usize) < n)
            .collect();
        let want = reference_graph(n, &stream);
        for cap in [1usize, 7, 1024] {
            let got = streamed_graph_spill(n, &stream, cap, true);
            prop_assert_eq!(&got, &want, "spilled, run capacity {}", cap);
        }
    }

    /// The merge primitive is a pure set union: independent of how the
    /// input is cut into runs.
    #[test]
    fn merge_is_partition_invariant(
        edges in proptest::collection::vec((0u32..200, 200u32..400), 0..300),
        cut_a in 1usize..64,
        cut_b in 1usize..64,
    ) {
        let mut all: Vec<(u32, u32)> = edges;
        all.sort_unstable();
        all.dedup();
        let cut = |k: usize| -> Vec<(u32, u32)> {
            let runs: Vec<Vec<(u32, u32)>> =
                all.chunks(k).map(|c| c.to_vec()).collect();
            // Each chunk of a sorted dedup'd list is itself sorted+dedup'd.
            let slices: Vec<&[(u32, u32)]> = runs.iter().map(|r| r.as_slice()).collect();
            merge_sorted_runs(&slices)
        };
        prop_assert_eq!(cut(cut_a), cut(cut_b));
        prop_assert_eq!(cut(cut_a.max(cut_b)), all);
    }
}

/// Deterministic large-stream check: big enough to cross the parallel
/// chunked-merge threshold, so at `RAYON_NUM_THREADS > 1` the pool path
/// must reproduce the reference exactly (CI runs this file at 1, 2 and 8
/// threads).
#[test]
fn large_stream_crosses_parallel_threshold() {
    let n = 20_000usize;
    let mut rng = cc_graph::Rng::new(0xC0FFEE);
    let stream: Vec<(u32, u32)> = (0..200_000)
        .map(|_| {
            (
                (rng.next_u64() % n as u64) as u32,
                (rng.next_u64() % n as u64) as u32,
            )
        })
        .collect();
    let want = reference_graph(n, &stream);
    for cap in [1 << 12, 1 << 15, stream.len()] {
        assert_eq!(streamed_graph(n, &stream, cap), want, "cap {cap}");
    }
    // And the spilled merge must cross the same parallel threshold with
    // the identical result (many file runs + chunked cursor merge).
    for cap in [1 << 12, 1 << 15] {
        assert_eq!(
            streamed_graph_spill(n, &stream, cap, true),
            want,
            "spilled cap {cap}"
        );
    }
}
