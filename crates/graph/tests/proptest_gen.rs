//! Property tests for the graph substrate: structural invariants of the
//! canonical representation and the generators.

use cc_graph::seq::{components, num_components};
use cc_graph::{gen, Graph, GraphBuilder};
use proptest::prelude::*;

/// The canonical-representation invariants every `Graph` must satisfy.
fn assert_canonical(g: &Graph) {
    // Edge list canonical: (u < v), strictly sorted (deduped).
    for w in g.edges().windows(2) {
        assert!(w[0] < w[1], "edges not strictly sorted");
    }
    for &(u, v) in g.edges() {
        assert!(u < v, "edge ({u},{v}) not canonical");
        assert!((v as usize) < g.n());
    }
    // CSR symmetric and consistent with the edge list.
    let degree_sum: usize = (0..g.n() as u32).map(|v| g.degree(v)).sum();
    assert_eq!(degree_sum, 2 * g.m());
    for v in 0..g.n() as u32 {
        for &w in g.neighbors(v) {
            assert!(g.neighbors(w).contains(&v), "asymmetric adjacency {v}-{w}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn builder_output_is_canonical(
        n in 1usize..120,
        pairs in proptest::collection::vec((0u32..120, 0u32..120), 0..300),
    ) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in pairs {
            if (u as usize) < n && (v as usize) < n {
                b.add_edge(u, v);
            }
        }
        assert_canonical(&b.build());
    }

    #[test]
    fn gnm_canonical_and_exact(n in 2usize..150, seed in any::<u64>()) {
        let max_m = n * (n - 1) / 2;
        let m = max_m.min(3 * n);
        let g = gen::gnm(n, m, seed);
        assert_canonical(&g);
        prop_assert_eq!(g.m(), m);
    }

    #[test]
    fn scramble_preserves_degree_multiset_and_components(
        n in 2usize..100,
        seed in any::<u64>(),
    ) {
        let g = gen::gnm(n, (2 * n).min(n * (n - 1) / 2), seed);
        let s = gen::scramble(&g, seed ^ 0xFF);
        assert_canonical(&s);
        let mut dg: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
        let mut ds: Vec<usize> = (0..n as u32).map(|v| s.degree(v)).collect();
        dg.sort_unstable();
        ds.sort_unstable();
        prop_assert_eq!(dg, ds);
        prop_assert_eq!(num_components(&g), num_components(&s));
    }

    #[test]
    fn disjoint_union_adds_components(k in 1usize..6, n in 3usize..30) {
        let g = gen::cycle(n);
        let u = gen::disjoint_copies(&g, k);
        assert_canonical(&u);
        prop_assert_eq!(u.n(), k * n);
        prop_assert_eq!(num_components(&u), k);
    }

    #[test]
    fn trees_have_n_minus_1_edges_and_one_component(
        n in 2usize..200,
        seed in any::<u64>(),
    ) {
        for g in [gen::random_tree(n, seed), gen::binary_tree(n)] {
            assert_canonical(&g);
            prop_assert_eq!(g.m(), n - 1);
            prop_assert_eq!(num_components(&g), 1);
        }
    }

    #[test]
    fn io_roundtrip(n in 1usize..80, seed in any::<u64>()) {
        let nv = n.max(2);
        let g = gen::gnm(nv, n.min(nv * (nv - 1) / 2), seed);
        let mut buf = Vec::new();
        {
            use std::io::Write;
            writeln!(buf, "# nodes: {}", g.n()).unwrap();
            for &(u, v) in g.edges() {
                writeln!(buf, "{u} {v}").unwrap();
            }
        }
        let h = cc_graph::io::parse_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g.n(), h.n());
        prop_assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn component_labels_are_class_minima(n in 2usize..120, seed in any::<u64>()) {
        let g = gen::gnm(n, n.min(n * (n - 1) / 2), seed);
        let labels = components(&g);
        for (v, &l) in labels.iter().enumerate() {
            prop_assert!(l as usize <= v, "label above vertex id");
            prop_assert_eq!(labels[l as usize], l, "representative not self-labeled");
        }
    }
}
