//! Durable epoch snapshots, the genesis file, and the recovery state
//! machine.
//!
//! # Directory layout
//!
//! A durable service dir holds exactly three kinds of file:
//!
//! ```text
//! genesis.bin            the initial graph (written once at create time)
//! wal.bin                the write-ahead edge log (see crate::wal)
//! snap-<epoch>.bin       durable epoch snapshots, newest few retained
//! snap-<epoch>.bin.tmp   in-flight snapshot writes (deleted on recovery)
//! ```
//!
//! Snapshots are written to the `.tmp` name, fsynced, and atomically
//! renamed into place, so a crash mid-snapshot leaves either the old
//! file set or the new one — never a half-written snapshot under the
//! real name. Every file is CRC32-checksummed over its payload.
//!
//! # Recovery state machine
//!
//! [`recover`] rebuilds the newest provable state:
//!
//! 1. Read `genesis.bin` (hard error if missing or corrupt: without it
//!    the vertex count itself is unknown).
//! 2. Open the WAL, which scans its longest valid record prefix and
//!    truncates any torn tail (see [`crate::wal`]).
//! 3. Walk snapshots newest-first. A snapshot is *usable* iff its
//!    checksum and shape validate **and** the WAL can extend it: the
//!    snapshot's recorded WAL offset must be a record boundary the scan
//!    actually reached ([`WalScan::boundary_after`]). A snapshot from a
//!    newer epoch than the surviving WAL covers is skipped — recovery
//!    falls back to an older snapshot or to genesis + full replay,
//!    never to a state the log cannot prove.
//!    (Exception: if the WAL has no valid records at all, the newest
//!    valid snapshot wins outright and the log is reset — an empty log
//!    extends any state.)
//! 4. Replay the WAL records beyond the chosen snapshot through the
//!    ordinary commit path.
//!
//! The result is always a prefix of the committed epochs: the newest
//! state the surviving bytes can prove, bit-identical (labels *and*
//! spectrum) to the uninterrupted run at that epoch.

use crate::wal::{crc32, Wal, WalRecord};
use crate::{Edge, Epoch};
use cc_graph::{Graph, GraphBuilder};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

const SNAP_MAGIC: &[u8; 8] = b"LDIAMSNP";
const GENESIS_MAGIC: &[u8; 8] = b"LDIAMGEN";
const FORMAT_VERSION: u32 = 1;

/// When the durable layer calls `fdatasync` on the write-ahead log.
///
/// The policy trades commit latency against the window of batches a
/// *power loss* can lose; an ordinary process crash (panic, OOM-kill,
/// `kill -9`) loses nothing under any policy, because appends go
/// straight to the file, not through a userspace buffer. Snapshot files
/// are always synced before their atomic rename (except under
/// [`FsyncPolicy::Off`]), so a snapshot can never name a WAL offset the
/// disk does not have.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every appended record: a fulfilled ticket means the
    /// batch survives power loss. The default.
    Always,
    /// Sync every `0`-th… no — sync once per this many appended records
    /// (and before every snapshot): bounded loss window, most of the
    /// throughput of `Off`.
    Batch(u32),
    /// Never sync: the OS flushes when it pleases. Survives process
    /// crashes, not power loss. The right choice for tests and for
    /// workloads that treat the WAL as best-effort.
    Off,
}

impl FsyncPolicy {
    /// Parse the `svc_driver --fsync` spellings: `always`, `batch`,
    /// `batch=N`, `off`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "off" => Some(FsyncPolicy::Off),
            "batch" => Some(FsyncPolicy::Batch(64)),
            _ => s
                .strip_prefix("batch=")
                .and_then(|n| n.parse().ok())
                .filter(|&n| n > 0)
                .map(FsyncPolicy::Batch),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch(n) => write!(f, "batch={n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Why a durable directory could not be created or recovered.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// A file that must be trusted (genesis, WAL header) failed
    /// validation, or no combination of snapshot + WAL can prove a
    /// state. Unlike a torn WAL tail — which recovery rolls back over
    /// silently — this is unrecoverable without operator action.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "durable store i/o error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "durable store corrupt: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Everything a durable snapshot file captures: the full writer state at
/// one epoch, sufficient to resume *exactly* (same future dedup
/// decisions, fold triggers, and spectrum counters — not merely the same
/// partition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SnapshotFile {
    pub(crate) epoch: Epoch,
    /// WAL byte offset where the record for `epoch + 1` begins; the tail
    /// from here replays on top of this state.
    pub(crate) wal_offset: u64,
    pub(crate) rebuilds: u64,
    pub(crate) cross_unions: u64,
    /// Canonical edge list of the folded base CSR.
    pub(crate) base_edges: Vec<Edge>,
    /// Distinct delta edges since the last fold, in arrival order (the
    /// order matters: the dedup seen-set is rebuilt by re-inserting
    /// them, and a future fold merges them in this order).
    pub(crate) delta: Vec<Edge>,
    /// The canonical min-vertex labels published at `epoch`.
    pub(crate) labels: Vec<u32>,
}

/// The state [`recover`] proved, ready to seed a writer.
pub(crate) struct Recovered {
    pub(crate) base: Graph,
    pub(crate) delta: Vec<Edge>,
    /// `None` when recovery fell all the way back to genesis — the
    /// caller recomputes the initial labeling with its backend.
    pub(crate) labels: Option<Vec<u32>>,
    pub(crate) epoch: Epoch,
    pub(crate) rebuilds: u64,
    pub(crate) cross_unions: u64,
    /// The open WAL, truncated to its valid prefix and positioned for
    /// appending.
    pub(crate) wal: Wal,
    /// Valid WAL records beyond the recovered epoch, to be replayed
    /// through the normal commit path.
    pub(crate) replay: Vec<WalRecord>,
}

pub(crate) fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.bin")
}

fn genesis_path(dir: &Path) -> PathBuf {
    dir.join("genesis.bin")
}

fn snapshot_path(dir: &Path, epoch: Epoch) -> PathBuf {
    dir.join(format!("snap-{epoch:020}.bin"))
}

/// `[magic 8][version u32][crc u32][payload]` — the frame shared by the
/// genesis and snapshot files.
fn write_framed(
    path: &Path,
    magic: &[u8; 8],
    payload: &[u8],
    fsync: bool,
) -> Result<(), PersistError> {
    let mut file = File::create(path)?;
    file.write_all(magic)?;
    file.write_all(&FORMAT_VERSION.to_le_bytes())?;
    file.write_all(&crc32(payload).to_le_bytes())?;
    file.write_all(payload)?;
    if fsync {
        file.sync_all()?;
    }
    Ok(())
}

/// Validate the frame and return the payload, or `None` when the file is
/// malformed (the caller decides whether that is skippable or fatal).
fn read_framed(path: &Path, magic: &[u8; 8]) -> Result<Option<Vec<u8>>, PersistError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 16 || &bytes[..8] != magic {
        return Ok(None);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let payload = &bytes[16..];
    if version != FORMAT_VERSION || crc32(payload) != crc {
        return Ok(None);
    }
    Ok(Some(payload.to_vec()))
}

/// Durability for the rename itself: fsync the directory so the new
/// name survives power loss. Ignored where directories cannot be opened
/// (non-POSIX filesystems) — the data file was already synced.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Write `genesis.bin` (create-time only; fails if present).
pub(crate) fn write_genesis(dir: &Path, g: &Graph, fsync: bool) -> Result<(), PersistError> {
    let path = genesis_path(dir);
    if path.exists() {
        return Err(PersistError::Corrupt(format!(
            "{} already exists — a durable dir is created once; use open() to restart",
            path.display()
        )));
    }
    let mut payload = Vec::with_capacity(12 + 8 * g.m());
    payload.extend_from_slice(&(g.n() as u32).to_le_bytes());
    payload.extend_from_slice(&(g.m() as u64).to_le_bytes());
    for &(u, v) in g.edges() {
        payload.extend_from_slice(&u.to_le_bytes());
        payload.extend_from_slice(&v.to_le_bytes());
    }
    write_framed(&path, GENESIS_MAGIC, &payload, fsync)?;
    if fsync {
        sync_dir(dir);
    }
    Ok(())
}

/// Read and validate `genesis.bin`. Hard error when missing or corrupt:
/// nothing else records the vertex count, so nothing can be recovered
/// without it.
pub(crate) fn read_genesis(dir: &Path) -> Result<Graph, PersistError> {
    let path = genesis_path(dir);
    let payload = read_framed(&path, GENESIS_MAGIC)?
        .ok_or_else(|| PersistError::Corrupt(format!("{}: bad genesis frame", path.display())))?;
    let mut r = Reader::new(&payload);
    let n = r.u32()? as usize;
    let m = r.u64()? as usize;
    let edges = r.edge_list(m, n)?;
    r.done()?;
    let mut b = GraphBuilder::with_capacity(n, m);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Serialize and durably install `snap-<epoch>.bin` via temp file +
/// atomic rename.
pub(crate) fn write_snapshot(
    dir: &Path,
    snap: &SnapshotFile,
    fsync: bool,
) -> Result<(), PersistError> {
    let n = snap.labels.len();
    let mut payload =
        Vec::with_capacity(44 + 8 * (snap.base_edges.len() + snap.delta.len()) + 4 * n);
    payload.extend_from_slice(&snap.epoch.to_le_bytes());
    payload.extend_from_slice(&snap.wal_offset.to_le_bytes());
    payload.extend_from_slice(&snap.rebuilds.to_le_bytes());
    payload.extend_from_slice(&snap.cross_unions.to_le_bytes());
    payload.extend_from_slice(&(n as u32).to_le_bytes());
    payload.extend_from_slice(&(snap.base_edges.len() as u64).to_le_bytes());
    for &(u, v) in &snap.base_edges {
        payload.extend_from_slice(&u.to_le_bytes());
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload.extend_from_slice(&(snap.delta.len() as u64).to_le_bytes());
    for &(u, v) in &snap.delta {
        payload.extend_from_slice(&u.to_le_bytes());
        payload.extend_from_slice(&v.to_le_bytes());
    }
    for &l in &snap.labels {
        payload.extend_from_slice(&l.to_le_bytes());
    }
    let final_path = snapshot_path(dir, snap.epoch);
    let tmp_path = final_path.with_extension("bin.tmp");
    write_framed(&tmp_path, SNAP_MAGIC, &payload, fsync)?;
    std::fs::rename(&tmp_path, &final_path)?;
    if fsync {
        sync_dir(dir);
    }
    Ok(())
}

/// Decode one snapshot file; `Ok(None)` when it fails any validation
/// (recovery skips it and falls back).
pub(crate) fn read_snapshot(path: &Path, n: usize) -> Result<Option<SnapshotFile>, PersistError> {
    let Some(payload) = read_framed(path, SNAP_MAGIC)? else {
        return Ok(None);
    };
    let parse = |payload: &[u8]| -> Result<SnapshotFile, PersistError> {
        let mut r = Reader::new(payload);
        let epoch = r.u64()?;
        let wal_offset = r.u64()?;
        let rebuilds = r.u64()?;
        let cross_unions = r.u64()?;
        let snap_n = r.u32()? as usize;
        if snap_n != n {
            return Err(PersistError::Corrupt("n mismatch".into()));
        }
        let base_count = r.u64()? as usize;
        let base_edges = r.edge_list(base_count, n)?;
        let delta_count = r.u64()? as usize;
        let delta = r.edge_list(delta_count, n)?;
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let l = r.u32()?;
            if l as usize >= n.max(1) {
                return Err(PersistError::Corrupt("label out of range".into()));
            }
            labels.push(l);
        }
        r.done()?;
        Ok(SnapshotFile {
            epoch,
            wal_offset,
            rebuilds,
            cross_unions,
            base_edges,
            delta,
            labels,
        })
    };
    Ok(parse(&payload).ok())
}

/// Snapshot files present in `dir`, newest epoch first. The zero-padded
/// name encodes the epoch; files that do not parse are ignored.
pub(crate) fn list_snapshots(dir: &Path) -> Result<Vec<(Epoch, PathBuf)>, PersistError> {
    let mut snaps = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|s| s.to_str()) else {
            continue;
        };
        if let Some(num) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".bin"))
        {
            if let Ok(epoch) = num.parse::<Epoch>() {
                snaps.push((epoch, path));
            }
        }
    }
    snaps.sort_unstable_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
    Ok(snaps)
}

/// Delete all but the newest `keep` snapshots (and any stale `.tmp`
/// leftovers from interrupted writes). Deletion failures are ignored —
/// an undeletable old snapshot costs disk, not correctness.
pub(crate) fn prune_snapshots(dir: &Path, keep: usize) -> Result<(), PersistError> {
    for (_, path) in list_snapshots(dir)?.into_iter().skip(keep.max(1)) {
        let _ = std::fs::remove_file(path);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            let _ = std::fs::remove_file(path);
        }
    }
    Ok(())
}

/// The recovery state machine (see the module docs): genesis, WAL scan,
/// newest usable snapshot, replay tail.
pub(crate) fn recover(dir: &Path) -> Result<Recovered, PersistError> {
    let genesis = read_genesis(dir)?;
    let n = genesis.n();
    let (mut wal, scan) = Wal::open(&wal_path(dir), n)?;
    // Newest-first: the first snapshot the WAL can extend wins.
    for (epoch, path) in list_snapshots(dir)? {
        let Some(snap) = read_snapshot(&path, n)? else {
            continue; // corrupt snapshot: fall back to an older one
        };
        debug_assert_eq!(snap.epoch, epoch);
        if scan.records.is_empty() {
            // No log survives; the newest intact snapshot is the best
            // provable state. Reset the log so future records extend it,
            // and rewrite the snapshot's WAL offset to match the reset
            // log — otherwise a *second* recovery would find a snapshot
            // whose stored offset points into the discarded log and
            // wrongly skip it.
            wal.reset()?;
            let mut snap = snap;
            if snap.wal_offset != crate::wal::WAL_HEADER_LEN {
                snap.wal_offset = crate::wal::WAL_HEADER_LEN;
                write_snapshot(dir, &snap, true)?;
            }
            return Ok(from_snapshot(snap, wal, Vec::new()));
        }
        if scan.boundary_after(snap.epoch) == Some(snap.wal_offset) {
            let replay = scan
                .records
                .iter()
                .filter(|r| r.epoch > snap.epoch)
                .cloned()
                .collect();
            return Ok(from_snapshot(snap, wal, replay));
        }
        // The WAL cannot extend this snapshot (e.g. the snapshot is from
        // a newer epoch than the surviving log covers): fall back.
    }
    // Genesis + full replay. Only sound if the log actually starts at
    // epoch 1 — after a log reset it will not, and losing *both* the
    // post-reset snapshots and the pre-reset log is unrecoverable.
    if let Some(first) = scan.records.first() {
        if first.epoch != 1 {
            return Err(PersistError::Corrupt(format!(
                "no usable snapshot and the WAL starts at epoch {} (full replay needs epoch 1)",
                first.epoch
            )));
        }
    }
    Ok(Recovered {
        base: genesis,
        delta: Vec::new(),
        labels: None,
        epoch: 0,
        rebuilds: 0,
        cross_unions: 0,
        wal,
        replay: scan.records,
    })
}

fn from_snapshot(snap: SnapshotFile, wal: Wal, replay: Vec<WalRecord>) -> Recovered {
    let n = snap.labels.len();
    let mut b = GraphBuilder::with_capacity(n, snap.base_edges.len());
    for (u, v) in snap.base_edges {
        b.add_edge(u, v);
    }
    Recovered {
        base: b.build(),
        delta: snap.delta,
        labels: Some(snap.labels),
        epoch: snap.epoch,
        rebuilds: snap.rebuilds,
        cross_unions: snap.cross_unions,
        wal,
        replay,
    }
}

/// Bounds-checked little-endian cursor over a payload.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], PersistError> {
        if self.bytes.len() - self.at < len {
            return Err(PersistError::Corrupt("payload truncated".into()));
        }
        let s = &self.bytes[self.at..self.at + len];
        self.at += len;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn edge_list(&mut self, count: usize, n: usize) -> Result<Vec<Edge>, PersistError> {
        // Bound first so a corrupt count cannot drive a huge allocation.
        let bytes = self.take(
            count
                .checked_mul(8)
                .ok_or_else(|| PersistError::Corrupt("edge count overflow".into()))?,
        )?;
        let mut edges = Vec::with_capacity(count);
        for c in bytes.chunks_exact(8) {
            let u = u32::from_le_bytes(c[..4].try_into().expect("4"));
            let v = u32::from_le_bytes(c[4..].try_into().expect("4"));
            if u as usize >= n || v as usize >= n {
                return Err(PersistError::Corrupt("edge endpoint out of range".into()));
            }
            edges.push((u, v));
        }
        Ok(edges)
    }

    fn done(&self) -> Result<(), PersistError> {
        if self.at != self.bytes.len() {
            return Err(PersistError::Corrupt("trailing bytes in payload".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("logdiam_persist_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn genesis_roundtrip_and_double_create_rejected() {
        let dir = tmpdir("genesis");
        let g = gen::union_all(&[gen::path(6), gen::star(4)]);
        write_genesis(&dir, &g, false).unwrap();
        let h = read_genesis(&dir).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.edges(), h.edges());
        assert!(matches!(
            write_genesis(&dir, &g, false),
            Err(PersistError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_roundtrip_listing_and_pruning() {
        let dir = tmpdir("snap");
        for epoch in [3u64, 12, 7] {
            let snap = SnapshotFile {
                epoch,
                wal_offset: 16 + epoch,
                rebuilds: 1,
                cross_unions: 2,
                base_edges: vec![(0, 1)],
                delta: vec![(1, 2)],
                labels: vec![0, 0, 0, 3],
            };
            write_snapshot(&dir, &snap, false).unwrap();
        }
        let listed = list_snapshots(&dir).unwrap();
        let epochs: Vec<_> = listed.iter().map(|&(e, _)| e).collect();
        assert_eq!(epochs, vec![12, 7, 3]);
        let snap = read_snapshot(&listed[1].1, 4).unwrap().unwrap();
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.delta, vec![(1, 2)]);
        prune_snapshots(&dir, 2).unwrap();
        let epochs: Vec<_> = list_snapshots(&dir)
            .unwrap()
            .iter()
            .map(|&(e, _)| e)
            .collect();
        assert_eq!(epochs, vec![12, 7]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_reads_as_none_not_error() {
        let dir = tmpdir("corrupt");
        let snap = SnapshotFile {
            epoch: 5,
            wal_offset: 40,
            rebuilds: 0,
            cross_unions: 0,
            base_edges: vec![],
            delta: vec![],
            labels: vec![0, 1],
        };
        write_snapshot(&dir, &snap, false).unwrap();
        let path = snapshot_path(&dir, 5);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path, 2).unwrap().is_none());
        // Wrong n is also a skip, not a hard error.
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path, 3).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses_driver_spellings() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("batch"), Some(FsyncPolicy::Batch(64)));
        assert_eq!(FsyncPolicy::parse("batch=7"), Some(FsyncPolicy::Batch(7)));
        assert_eq!(FsyncPolicy::parse("batch=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::Batch(7).to_string(), "batch=7");
    }
}
