//! The connectivity service: writer state behind a mutex, epoch snapshots
//! behind a read-mostly ring.

use crate::{Edge, Epoch, EpochError, RebuildBackend, Snapshot, SvcParams};
use cc_graph::Graph;
use logdiam_par::unionfind::{unionfind_cc, UnionFind};
use pram_kit::PairSet;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, RwLock};

/// Seed for the delta dedup set; fixed so replays are deterministic.
const DELTA_DEDUP_SEED: u64 = 0xD317_A5E7;

/// A connectivity service over a mutable graph: batched edge insertions
/// mutate an epoch-versioned labeling; queries read published immutable
/// snapshots. See the crate docs for the design.
///
/// Writer path ([`apply_batch`](ConnectivityService::apply_batch)) and
/// read path ([`query`](ConnectivityService::query) and friends) are
/// internally synchronized: the service is `Sync`, batches from
/// concurrent callers serialize on the writer mutex, and readers only
/// take a brief read-lock to clone an `Arc` off the snapshot ring — they
/// never wait for an in-flight batch.
pub struct ConnectivityService {
    params: SvcParams,
    inner: Mutex<Inner>,
    /// Published snapshots for the most recent epochs, oldest first. The
    /// back entry is always the latest epoch.
    published: RwLock<VecDeque<Arc<Snapshot>>>,
}

/// Writer-side state: the rebuilt base plus the delta overlay on top.
struct Inner {
    /// The base CSR graph from the last full rebuild.
    base: Graph,
    /// Concurrent union–find over all n vertices, seeded from the base
    /// labeling and advanced by every absorbed delta edge.
    overlay: UnionFind,
    /// Distinct delta edges absorbed since the last rebuild, in arrival
    /// order (becomes the `extra` list of the next rebuild's CSR fold).
    delta: Vec<Edge>,
    /// Exact dedup set over `delta` (reset at each rebuild).
    seen: PairSet,
    epoch: Epoch,
    rebuilds: u64,
}

impl ConnectivityService {
    /// Start a service over an initial graph. The initial labeling is
    /// computed with the configured rebuild backend and published as
    /// epoch 0.
    pub fn new(initial: Graph, params: SvcParams) -> Self {
        assert!(
            params.rebuild_threshold > 0,
            "rebuild_threshold must be ≥ 1"
        );
        assert!(params.snapshot_history > 0, "snapshot_history must be ≥ 1");
        let labels = run_backend(params.backend, &initial);
        let overlay = UnionFind::from_labels(&labels);
        let snapshot = Arc::new(Snapshot::new(0, overlay.labels(), initial.m(), 0, 0));
        let inner = Inner {
            base: initial,
            overlay,
            delta: Vec::new(),
            seen: PairSet::with_capacity(DELTA_DEDUP_SEED, params.rebuild_threshold),
            epoch: 0,
            rebuilds: 0,
        };
        ConnectivityService {
            params,
            inner: Mutex::new(inner),
            published: RwLock::new(VecDeque::from([snapshot])),
        }
    }

    /// Number of vertices the service was built over.
    pub fn n(&self) -> usize {
        self.latest().labels().len()
    }

    /// The newest committed epoch.
    pub fn epoch(&self) -> Epoch {
        self.latest().epoch()
    }

    /// Apply one batch of edge insertions and commit a new epoch.
    ///
    /// Self-loops are dropped; edges already present (in the base graph
    /// or absorbed by an earlier batch since the last rebuild) don't
    /// count toward the rebuild threshold. The surviving edges are
    /// absorbed into the overlay union–find in parallel; if the overlay
    /// then holds ≥ [`SvcParams::rebuild_threshold`] delta edges, the
    /// deltas are folded into a fresh base CSR and fully recomputed with
    /// the configured backend. Either way the new labeling is sealed into
    /// a [`Snapshot`] and published before the epoch number is returned,
    /// so a query at the returned epoch always succeeds (until evicted).
    ///
    /// An empty batch (or one that is all duplicates/loops) still commits
    /// and publishes an epoch — callers can rely on one epoch per call.
    pub fn apply_batch(&self, batch: &[Edge]) -> Epoch {
        let mut inner = self.inner.lock().expect("service writer poisoned");
        // One normalization rule shared with the rebuild fold: loop-drop,
        // exact dedup (persistent `seen` across batches), already-in-base
        // filter — see `Graph::dedup_new_edges`.
        let Inner { base, seen, .. } = &mut *inner;
        let fresh = base.dedup_new_edges(batch, seen);
        inner.overlay.absorb(&fresh);
        inner.delta.extend_from_slice(&fresh);
        if inner.delta.len() >= self.params.rebuild_threshold {
            self.rebuild(&mut inner);
        }
        inner.epoch += 1;
        let snapshot = Arc::new(Snapshot::new(
            inner.epoch,
            inner.overlay.labels(),
            inner.base.m(),
            inner.delta.len(),
            inner.rebuilds,
        ));
        let epoch = inner.epoch;
        {
            let mut ring = self.published.write().expect("snapshot ring poisoned");
            ring.push_back(snapshot);
            while ring.len() > self.params.snapshot_history {
                ring.pop_front();
            }
        }
        epoch
    }

    /// Fold the accumulated deltas into a fresh base CSR and recompute
    /// the labeling from scratch with the configured backend.
    fn rebuild(&self, inner: &mut Inner) {
        let base = Graph::from_csr_plus_edges(&inner.base, &inner.delta);
        let labels = run_backend(self.params.backend, &base);
        inner.overlay = UnionFind::from_labels(&labels);
        inner.base = base;
        inner.delta.clear();
        inner.seen = PairSet::with_capacity(
            DELTA_DEDUP_SEED ^ inner.rebuilds.wrapping_add(1),
            self.params.rebuild_threshold,
        );
        inner.rebuilds += 1;
    }

    /// The latest published snapshot.
    pub fn latest(&self) -> Arc<Snapshot> {
        self.published
            .read()
            .expect("snapshot ring poisoned")
            .back()
            .expect("ring always holds the latest snapshot")
            .clone()
    }

    /// The snapshot published at `at`, if still retained.
    pub fn snapshot(&self, at: Epoch) -> Result<Arc<Snapshot>, EpochError> {
        let ring = self.published.read().expect("snapshot ring poisoned");
        let oldest = ring.front().expect("ring never empty").epoch();
        let latest = ring.back().expect("ring never empty").epoch();
        if at > latest {
            return Err(EpochError::Future {
                requested: at,
                latest,
            });
        }
        if at < oldest {
            return Err(EpochError::Evicted {
                requested: at,
                oldest,
            });
        }
        Ok(ring[(at - oldest) as usize].clone())
    }

    /// Were `u` and `v` connected at epoch `at`?
    pub fn query(&self, u: u32, v: u32, at: Epoch) -> Result<bool, EpochError> {
        Ok(self.snapshot(at)?.connected(u, v))
    }

    /// Are `u` and `v` connected in the latest epoch?
    pub fn query_latest(&self, u: u32, v: u32) -> bool {
        self.latest().connected(u, v)
    }

    /// Canonical component label of `u` in the latest epoch.
    pub fn component_of(&self, u: u32) -> u32 {
        self.latest().component_of(u)
    }

    /// Canonical component label of `u` at epoch `at`.
    pub fn component_of_at(&self, u: u32, at: Epoch) -> Result<u32, EpochError> {
        Ok(self.snapshot(at)?.component_of(u))
    }

    /// Component statistics for the latest epoch.
    pub fn spectrum(&self) -> crate::Spectrum {
        self.latest().spectrum()
    }
}

/// Full recompute with the selected backend; always returns canonical
/// min-vertex labels (the `FasterSim` labeling is canonicalized through
/// [`UnionFind::from_labels`]), so every epoch's published labels are
/// backend- and thread-count-independent.
fn run_backend(backend: RebuildBackend, g: &Graph) -> Vec<u32> {
    match backend {
        RebuildBackend::UnionFind => unionfind_cc(g),
        RebuildBackend::FasterSim { seed } => {
            let mut pram = pram_sim::Pram::new(pram_sim::WritePolicy::ArbitrarySeeded(seed));
            let report = logdiam_cc::theorem3::faster_cc(
                &mut pram,
                g,
                seed,
                &logdiam_cc::theorem3::FasterParams::default(),
            );
            UnionFind::from_labels(&report.run.labels).labels()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::seq::{components, same_partition};
    use cc_graph::{gen, GraphBuilder};

    fn svc(initial: Graph, threshold: usize) -> ConnectivityService {
        ConnectivityService::new(
            initial,
            SvcParams {
                rebuild_threshold: threshold,
                ..SvcParams::default()
            },
        )
    }

    #[test]
    fn initial_epoch_matches_ground_truth() {
        let g = gen::union_all(&[gen::cycle(6), gen::path(5), gen::star(4)]);
        let truth = components(&g);
        let svc = svc(g, 64);
        assert_eq!(svc.epoch(), 0);
        assert!(same_partition(svc.latest().labels(), &truth));
        assert_eq!(svc.spectrum().components, 3);
    }

    #[test]
    fn batches_connect_components_and_advance_epochs() {
        // Two paths: {0..4}, {5..9}.
        let svc = svc(gen::union_all(&[gen::path(5), gen::path(5)]), 1024);
        assert!(!svc.query_latest(0, 9));
        let e1 = svc.apply_batch(&[(4, 5)]);
        assert_eq!(e1, 1);
        assert!(svc.query_latest(0, 9));
        assert_eq!(svc.component_of(9), 0);
        // Historical epoch 0 still answers the pre-batch state.
        assert!(!svc.query(0, 9, 0).unwrap());
        assert!(svc.query(0, 9, e1).unwrap());
        assert_eq!(svc.spectrum().components, 1);
    }

    #[test]
    fn empty_and_duplicate_batches_commit_epochs_without_growing_deltas() {
        let svc = svc(gen::path(4), 1024);
        let e1 = svc.apply_batch(&[]);
        let e2 = svc.apply_batch(&[(0, 1), (1, 0), (2, 2)]); // all dups/loops
        assert_eq!((e1, e2), (1, 2));
        let sp = svc.spectrum();
        assert_eq!(sp.delta_edges, 0);
        assert_eq!(sp.components, 1);
        assert_eq!(svc.latest().labels(), svc.snapshot(0).unwrap().labels());
    }

    #[test]
    fn threshold_triggers_rebuild_and_folds_deltas_into_base() {
        let svc = svc(GraphBuilder::new(8).build(), 3);
        svc.apply_batch(&[(0, 1)]);
        svc.apply_batch(&[(2, 3)]);
        assert_eq!(svc.spectrum().rebuilds, 0);
        assert_eq!(svc.spectrum().base_m, 0);
        assert_eq!(svc.spectrum().delta_edges, 2);
        // Third distinct edge crosses the threshold: rebuild fires.
        svc.apply_batch(&[(4, 5)]);
        let sp = svc.spectrum();
        assert_eq!(sp.rebuilds, 1);
        assert_eq!(sp.base_m, 3);
        assert_eq!(sp.delta_edges, 0);
        assert_eq!(sp.components, 5); // {0,1},{2,3},{4,5},{6},{7}
                                      // An edge that was folded into the base no longer counts as new.
        svc.apply_batch(&[(0, 1)]);
        assert_eq!(svc.spectrum().delta_edges, 0);
    }

    #[test]
    fn snapshot_history_evicts_old_epochs() {
        let svc = ConnectivityService::new(
            gen::path(3),
            SvcParams {
                snapshot_history: 2,
                ..SvcParams::default()
            },
        );
        svc.apply_batch(&[]);
        svc.apply_batch(&[]);
        svc.apply_batch(&[]);
        assert!(matches!(
            svc.snapshot(0),
            Err(EpochError::Evicted {
                requested: 0,
                oldest: 2
            })
        ));
        assert!(svc.snapshot(2).is_ok());
        assert!(svc.snapshot(3).is_ok());
        assert!(matches!(
            svc.snapshot(9),
            Err(EpochError::Future {
                requested: 9,
                latest: 3
            })
        ));
    }

    #[test]
    fn faster_sim_backend_agrees_with_unionfind_backend() {
        let initial = gen::gnm(120, 150, 5);
        let stream = gen::gnm(120, 90, 17);
        let mk = |backend| {
            ConnectivityService::new(
                initial.clone(),
                SvcParams {
                    backend,
                    rebuild_threshold: 40,
                    ..SvcParams::default()
                },
            )
        };
        let a = mk(RebuildBackend::UnionFind);
        let b = mk(RebuildBackend::FasterSim { seed: 11 });
        for chunk in stream.edges().chunks(25) {
            a.apply_batch(chunk);
            b.apply_batch(chunk);
        }
        // Canonical labels are *identical*, not just partition-equal.
        assert_eq!(a.latest().labels(), b.latest().labels());
        assert!(a.spectrum().rebuilds >= 1);
    }

    #[test]
    fn replay_matches_one_shot_on_union_graph() {
        let initial = gen::union_all(&[gen::path(40), gen::gnm(60, 80, 3)]);
        let stream = gen::gnm(100, 70, 21);
        let svc = svc(initial.clone(), 16);
        for chunk in stream.edges().chunks(9) {
            svc.apply_batch(chunk);
        }
        let union = Graph::from_csr_plus_edges(&initial, stream.edges());
        let truth = components(&union);
        assert!(same_partition(svc.latest().labels(), &truth));
        let mut distinct: Vec<u32> = truth.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(svc.spectrum().components, distinct.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_batch_edge_panics() {
        let svc = svc(gen::path(3), 8);
        svc.apply_batch(&[(0, 3)]);
    }
}
