//! The controller handle: enqueue commits, read published snapshots.
//!
//! All mutable state lives on the writer thread (see [`crate::writer`]);
//! this module is the thin, `Sync` front the rest of the workspace talks
//! to. The split follows the execution-controller idiom: a command
//! channel into a state-owning thread, a handle that returns tickets.

use crate::persist;
use crate::ticket::{EpochTicket, TicketCell};
use crate::wal::{Wal, WalRecord};
use crate::writer::{Cmd, Durable, Ring, SharedStats, Writer, WriterSeed};
use crate::{Edge, Epoch, EpochError, FsyncPolicy, PersistError, Snapshot, SvcParams, WriterDead};
use cc_graph::Graph;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, RwLock};

/// A connectivity service over a mutable graph: batched edge insertions
/// mutate an epoch-versioned labeling; queries read published immutable
/// snapshots. See the crate docs for the design and `ARCHITECTURE.md`
/// for the architecture contract.
///
/// This struct is only the **controller handle**. The state — base CSR,
/// sharded delta overlay, delta list — is owned by a dedicated writer
/// thread; [`apply_batch`](ConnectivityService::apply_batch) enqueues a
/// normalized batch on a bounded command channel and immediately returns
/// an [`EpochTicket`]. The writer drains commands in FIFO order, so epoch
/// assignment is totally ordered no matter how many threads enqueue.
/// Queries ([`query`](ConnectivityService::query) and friends) clone an
/// `Arc` off the published snapshot ring under a brief read lock — they
/// never wait on a committing batch, a fold, or a background rebuild.
///
/// Dropping the handle shuts the service down: already-enqueued batches
/// are drained, committed, and their tickets fulfilled; then the writer
/// joins its rebuild worker and exits. No thread outlives the handle.
pub struct ConnectivityService {
    n: usize,
    /// `Some` until Drop; taken there so the channel closes before join.
    tx: Option<mpsc::SyncSender<Cmd>>,
    published: Arc<Ring>,
    stats: Arc<SharedStats>,
    writer: Option<std::thread::JoinHandle<()>>,
}

impl ConnectivityService {
    /// Start a **memory-only** service over an initial graph. The initial
    /// labeling is computed synchronously with the configured rebuild
    /// backend and published as epoch 0 before this returns; the writer
    /// thread and its background rebuild worker are running when it does.
    /// Nothing is persisted — use [`create`](ConnectivityService::create)
    /// / [`open`](ConnectivityService::open) for a durable service.
    pub fn new(initial: Graph, params: SvcParams) -> Self {
        Self::launch(WriterSeed::fresh(initial), params, &[])
    }

    /// Create a **durable** service in `dir` (made if absent, which must
    /// not already hold one): writes the genesis file (the initial graph,
    /// the full-replay anchor; never pruned) and an empty write-ahead
    /// log, then starts the service exactly like
    /// [`new`](ConnectivityService::new). Every subsequent batch is
    /// WAL-appended before it is applied; snapshots land every
    /// [`SvcParams::snapshot_every`] commits. Restart with
    /// [`open`](ConnectivityService::open).
    pub fn create(
        dir: impl AsRef<Path>,
        initial: Graph,
        params: SvcParams,
    ) -> Result<Self, PersistError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
        let fsync = params.fsync != FsyncPolicy::Off;
        persist::write_genesis(dir, &initial, fsync)?;
        let wal = Wal::create(&persist::wal_path(dir), initial.n())?;
        let mut seed = WriterSeed::fresh(initial);
        seed.durable = Some(Durable::new(dir.to_path_buf(), wal));
        Ok(Self::launch(seed, params, &[]))
    }

    /// Reopen a durable service after a shutdown or crash: the
    /// first-class restart constructor.
    ///
    /// Recovery loads the newest snapshot the surviving WAL can extend
    /// (falling back to older snapshots, then to genesis + full replay),
    /// truncates any torn WAL tail at the first bad checksum, and replays
    /// the tail through the ordinary commit path *before this returns* —
    /// so the recovered state is bit-identical (labels and spectrum) to
    /// the uninterrupted run at the same epoch: a prefix of the committed
    /// history, specifically every batch whose WAL record survived
    /// (under [`FsyncPolicy::Always`], every batch whose ticket was
    /// fulfilled — and possibly the one in flight at the crash).
    ///
    /// Errors only on unrecoverable storage state (missing/corrupt
    /// genesis, unreadable dir, or no snapshot the log can extend); torn
    /// tails and corrupt snapshots are recovered over silently.
    pub fn open(dir: impl AsRef<Path>, params: SvcParams) -> Result<Self, PersistError> {
        let dir = dir.as_ref();
        let rec = persist::recover(dir)?;
        let seed = WriterSeed {
            base: rec.base,
            delta: rec.delta,
            labels: rec.labels,
            epoch: rec.epoch,
            rebuilds: rec.rebuilds,
            cross_unions: rec.cross_unions,
            durable: Some(Durable::new(dir.to_path_buf(), rec.wal)),
        };
        Ok(Self::launch(seed, params, &rec.replay))
    }

    fn launch(seed: WriterSeed, params: SvcParams, replay: &[WalRecord]) -> Self {
        assert!(
            params.rebuild_threshold > 0,
            "rebuild_threshold must be ≥ 1"
        );
        assert!(params.snapshot_history > 0, "snapshot_history must be ≥ 1");
        assert!(params.shard_count > 0, "shard_count must be ≥ 1");
        assert!(params.command_queue > 0, "command_queue must be ≥ 1");
        assert!(params.snapshot_every > 0, "snapshot_every must be ≥ 1");
        assert!(params.snapshots_kept > 0, "snapshots_kept must be ≥ 1");
        let n = seed.base.n();
        let published: Arc<Ring> = Arc::new(RwLock::new(VecDeque::new()));
        let stats = Arc::new(SharedStats::new());
        let mut writer_state = Writer::start(seed, params, published.clone(), stats.clone());
        writer_state.replay(replay);
        let (tx, rx) = mpsc::sync_channel(params.command_queue);
        let writer = std::thread::Builder::new()
            .name("logdiam-svc-writer".into())
            .spawn(move || writer_state.run(rx))
            .expect("cannot spawn service writer");
        ConnectivityService {
            n,
            tx: Some(tx),
            published,
            stats,
            writer: Some(writer),
        }
    }

    /// Number of vertices the service was built over.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The newest committed epoch.
    pub fn epoch(&self) -> Epoch {
        self.latest().epoch()
    }

    /// Enqueue one batch of edge insertions; returns an [`EpochTicket`]
    /// immediately.
    ///
    /// The handle normalizes the batch before enqueuing (self-loops
    /// dropped, endpoints validated — an out-of-range endpoint panics
    /// here, on the caller); the writer applies the stateful half of the
    /// normalization rule (exact dedup against earlier batches and the
    /// base CSR, see [`Graph::dedup_new_edges`]) when it dequeues the
    /// command, so edges already present never count toward the rebuild
    /// threshold. An empty batch (or one that is all duplicates/loops)
    /// still commits and publishes an epoch — callers can rely on one
    /// epoch per call, assigned in dequeue (FIFO) order.
    ///
    /// **Backpressure:** the command channel is bounded
    /// ([`SvcParams::command_queue`]); when the writer is
    /// [`SvcParams::command_queue`] commits behind, this call blocks
    /// until a slot frees instead of buffering unboundedly. The returned
    /// ticket can be [`wait`](EpochTicket::wait)ed (block until the
    /// epoch's snapshot is published) or [`poll`](EpochTicket::poll)ed
    /// (non-blocking).
    ///
    /// **Writer death:** if the writer thread has died (contained panic —
    /// see [`WriterDead`]), this does not block on the channel at all: it
    /// returns a ticket already poisoned with the cause of death. A
    /// batch enqueued concurrently with the death is drained and its
    /// ticket poisoned by the dying writer; either way the ticket
    /// resolves, it never hangs.
    pub fn apply_batch(&self, batch: &[Edge]) -> EpochTicket {
        let n = self.n as u32;
        let mut edges = Vec::with_capacity(batch.len());
        for &(u, v) in batch {
            assert!(u < n && v < n, "edge ({u},{v}) out of range");
            if u != v {
                edges.push((u, v));
            }
        }
        let cell = TicketCell::new();
        if let Some(err) = self.writer_dead() {
            cell.poison(err);
            return EpochTicket::new(cell);
        }
        self.send(Cmd::Apply {
            edges,
            ticket: cell.clone(),
            enqueued: std::time::Instant::now(),
        });
        EpochTicket::new(cell)
    }

    /// Block until every batch enqueued before this call has committed.
    /// Does **not** wait for an in-flight background rebuild — rebuild
    /// completion is a representation change invisible to queries (see
    /// [`rebuild_in_flight`](ConnectivityService::rebuild_in_flight)).
    /// Errors instead of hanging when the writer thread has died.
    pub fn flush(&self) -> Result<(), WriterDead> {
        let (done_tx, done_rx) = mpsc::sync_channel(1);
        self.send(Cmd::Flush(done_tx));
        done_rx.recv().map_err(|_| {
            self.writer_dead()
                .unwrap_or_else(|| WriterDead::new("writer thread terminated".into()))
        })
    }

    /// `Some(cause)` if the writer thread has died (contained panic).
    /// The service is then read-only: queries keep working off the
    /// published ring, but every ticket resolves to the error.
    pub fn writer_dead(&self) -> Option<WriterDead> {
        self.stats.dead.lock().expect("dead flag poisoned").clone()
    }

    /// Test-only fault injection: make the writer thread panic on its
    /// commit path, exercising the real containment machinery.
    #[doc(hidden)]
    pub fn inject_writer_panic(&self) {
        self.send(Cmd::Crash);
    }

    fn send(&self, cmd: Cmd) {
        self.tx
            .as_ref()
            .expect("service handle already shut down")
            .send(cmd)
            .expect("service writer gone");
    }

    /// Whether a background rebuild (fold already published, recompute
    /// still running or awaiting its swap) is currently in flight.
    /// Observability only: the value depends on worker timing and is
    /// *not* part of the deterministic per-epoch surface.
    pub fn rebuild_in_flight(&self) -> bool {
        self.stats.rebuild_in_flight.load(Ordering::Acquire)
    }

    /// Background recomputes whose labelings were swapped into the
    /// overlay so far (observability only, timing-dependent).
    pub fn overlay_swaps(&self) -> u64 {
        self.stats.overlay_swaps.get()
    }

    /// Background recomputes discarded because their base was re-folded
    /// while they ran (observability only, timing-dependent).
    pub fn stale_rebuilds(&self) -> u64 {
        self.stats.stale_rebuilds.get()
    }

    /// The service's observability registry: commit-pipeline span
    /// histograms, WAL counters, and the structured event ring (e.g.
    /// `stale_rebuild`, `replay_progress`). Metric names and the event
    /// schema are the contract in `docs/obs-schema.md`. Everything here
    /// is host-timing telemetry — never part of the deterministic
    /// per-epoch surface.
    pub fn obs(&self) -> &logdiam_obs::Registry {
        &self.stats.obs
    }

    /// A point-in-time [`MetricsSnapshot`](logdiam_obs::MetricsSnapshot)
    /// of the service's registry: mergeable, self-validating, exportable
    /// as JSON or Prometheus text. After any committed batch the
    /// commit-pipeline histograms (`svc_absorb_ns`,
    /// `svc_snapshot_publish_ns`, and for durable services
    /// `svc_wal_append_ns` / `svc_fsync_ns`) are populated.
    pub fn metrics(&self) -> logdiam_obs::MetricsSnapshot {
        self.stats.obs.snapshot()
    }

    /// The latest published snapshot.
    pub fn latest(&self) -> Arc<Snapshot> {
        self.published
            .read()
            .expect("snapshot ring poisoned")
            .back()
            .expect("ring always holds the latest snapshot")
            .clone()
    }

    /// The snapshot published at `at`, if still retained.
    pub fn snapshot(&self, at: Epoch) -> Result<Arc<Snapshot>, EpochError> {
        let ring = self.published.read().expect("snapshot ring poisoned");
        let oldest = ring.front().expect("ring never empty").epoch();
        let latest = ring.back().expect("ring never empty").epoch();
        if at > latest {
            return Err(EpochError::Future {
                requested: at,
                latest,
            });
        }
        if at < oldest {
            return Err(EpochError::Evicted {
                requested: at,
                oldest,
            });
        }
        Ok(ring[(at - oldest) as usize].clone())
    }

    /// Were `u` and `v` connected at epoch `at`?
    pub fn query(&self, u: u32, v: u32, at: Epoch) -> Result<bool, EpochError> {
        Ok(self.snapshot(at)?.connected(u, v))
    }

    /// Are `u` and `v` connected in the latest epoch?
    pub fn query_latest(&self, u: u32, v: u32) -> bool {
        self.latest().connected(u, v)
    }

    /// Canonical component label of `u` in the latest epoch.
    pub fn component_of(&self, u: u32) -> u32 {
        self.latest().component_of(u)
    }

    /// Canonical component label of `u` at epoch `at`.
    pub fn component_of_at(&self, u: u32, at: Epoch) -> Result<u32, EpochError> {
        Ok(self.snapshot(at)?.component_of(u))
    }

    /// Component statistics for the latest epoch.
    pub fn spectrum(&self) -> crate::Spectrum {
        self.latest().spectrum()
    }
}

impl Drop for ConnectivityService {
    fn drop(&mut self) {
        // Closing the channel ends the writer's drain loop *after* every
        // buffered command is processed; join so shutdown is clean even
        // when a rebuild was mid-flight.
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            writer.join().expect("service writer panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RebuildBackend, SvcParams};
    use cc_graph::seq::{components, same_partition};
    use cc_graph::{gen, GraphBuilder};

    fn svc(initial: Graph, threshold: usize) -> ConnectivityService {
        ConnectivityService::new(
            initial,
            SvcParams {
                rebuild_threshold: threshold,
                ..SvcParams::default()
            },
        )
    }

    #[test]
    fn initial_epoch_matches_ground_truth() {
        let g = gen::union_all(&[gen::cycle(6), gen::path(5), gen::star(4)]);
        let truth = components(&g);
        let svc = svc(g, 64);
        assert_eq!(svc.epoch(), 0);
        assert!(same_partition(svc.latest().labels(), &truth));
        assert_eq!(svc.spectrum().components, 3);
    }

    #[test]
    fn batches_connect_components_and_advance_epochs() {
        // Two paths: {0..4}, {5..9}.
        let svc = svc(gen::union_all(&[gen::path(5), gen::path(5)]), 1024);
        assert!(!svc.query_latest(0, 9));
        let e1 = svc.apply_batch(&[(4, 5)]).wait().unwrap();
        assert_eq!(e1, 1);
        assert!(svc.query_latest(0, 9));
        assert_eq!(svc.component_of(9), 0);
        // Historical epoch 0 still answers the pre-batch state.
        assert!(!svc.query(0, 9, 0).unwrap());
        assert!(svc.query(0, 9, e1).unwrap());
        assert_eq!(svc.spectrum().components, 1);
    }

    #[test]
    fn tickets_resolve_in_enqueue_order_and_poll_converges() {
        let svc = svc(gen::path(64), 1 << 20);
        let tickets: Vec<_> = (0..32u32)
            .map(|i| svc.apply_batch(&[(i, i + 32)]))
            .collect();
        // FIFO epoch assignment: ticket i commits as epoch i + 1.
        for (i, t) in tickets.iter().enumerate() {
            assert_eq!(t.wait().unwrap(), i as Epoch + 1);
            assert_eq!(t.poll().unwrap(), Some(i as Epoch + 1));
        }
    }

    #[test]
    fn empty_and_duplicate_batches_commit_epochs_without_growing_deltas() {
        let svc = svc(gen::path(4), 1024);
        let e1 = svc.apply_batch(&[]).wait().unwrap();
        let e2 = svc.apply_batch(&[(0, 1), (1, 0), (2, 2)]).wait().unwrap(); // all dups/loops
        assert_eq!((e1, e2), (1, 2));
        let sp = svc.spectrum();
        assert_eq!(sp.delta_edges, 0);
        assert_eq!(sp.components, 1);
        assert_eq!(svc.latest().labels(), svc.snapshot(0).unwrap().labels());
    }

    #[test]
    fn threshold_triggers_fold_and_merges_deltas_into_base() {
        let svc = svc(GraphBuilder::new(8).build(), 3);
        svc.apply_batch(&[(0, 1)]).wait().unwrap();
        svc.apply_batch(&[(2, 3)]).wait().unwrap();
        assert_eq!(svc.spectrum().rebuilds, 0);
        assert_eq!(svc.spectrum().base_m, 0);
        assert_eq!(svc.spectrum().delta_edges, 2);
        // Third distinct edge crosses the threshold: the fold happens
        // synchronously at that commit (deterministically), even though
        // the recompute itself is pipelined onto the background worker.
        svc.apply_batch(&[(4, 5)]).wait().unwrap();
        let sp = svc.spectrum();
        assert_eq!(sp.rebuilds, 1);
        assert_eq!(sp.base_m, 3);
        assert_eq!(sp.delta_edges, 0);
        assert_eq!(sp.components, 5); // {0,1},{2,3},{4,5},{6},{7}
                                      // An edge that was folded into the base no longer counts as new.
        svc.apply_batch(&[(0, 1)]).wait().unwrap();
        assert_eq!(svc.spectrum().delta_edges, 0);
    }

    #[test]
    fn snapshot_history_evicts_old_epochs() {
        let svc = ConnectivityService::new(
            gen::path(3),
            SvcParams {
                snapshot_history: 2,
                ..SvcParams::default()
            },
        );
        svc.apply_batch(&[]).wait().unwrap();
        svc.apply_batch(&[]).wait().unwrap();
        svc.apply_batch(&[]).wait().unwrap();
        assert!(matches!(
            svc.snapshot(0),
            Err(EpochError::Evicted {
                requested: 0,
                oldest: 2
            })
        ));
        assert!(svc.snapshot(2).is_ok());
        assert!(svc.snapshot(3).is_ok());
        assert!(matches!(
            svc.snapshot(9),
            Err(EpochError::Future {
                requested: 9,
                latest: 3
            })
        ));
    }

    #[test]
    fn faster_sim_backend_agrees_with_unionfind_backend() {
        let initial = gen::gnm(120, 150, 5);
        let stream = gen::gnm(120, 90, 17);
        let mk = |backend| {
            ConnectivityService::new(
                initial.clone(),
                SvcParams {
                    backend,
                    rebuild_threshold: 40,
                    ..SvcParams::default()
                },
            )
        };
        let a = mk(RebuildBackend::UnionFind);
        let b = mk(RebuildBackend::FasterSim { seed: 11 });
        for chunk in stream.edges().chunks(25) {
            a.apply_batch(chunk).wait().unwrap();
            b.apply_batch(chunk).wait().unwrap();
        }
        // Canonical labels are *identical*, not just partition-equal.
        assert_eq!(a.latest().labels(), b.latest().labels());
        assert!(a.spectrum().rebuilds >= 1);
    }

    #[test]
    fn replay_matches_one_shot_on_union_graph() {
        let initial = gen::union_all(&[gen::path(40), gen::gnm(60, 80, 3)]);
        let stream = gen::gnm(100, 70, 21);
        let svc = svc(initial.clone(), 16);
        for chunk in stream.edges().chunks(9) {
            svc.apply_batch(chunk).wait().unwrap();
        }
        let union = Graph::from_csr_plus_edges(&initial, stream.edges());
        let truth = components(&union);
        assert!(same_partition(svc.latest().labels(), &truth));
        let mut distinct: Vec<u32> = truth.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(svc.spectrum().components, distinct.len());
    }

    #[test]
    fn pipelined_enqueue_then_flush_commits_everything() {
        let g = gen::gnm(400, 600, 7);
        let svc = ConnectivityService::new(
            GraphBuilder::new(g.n()).build(),
            SvcParams {
                rebuild_threshold: 64,
                ..SvcParams::default()
            },
        );
        // Fire the whole stream without waiting any individual ticket.
        let tickets: Vec<_> = g.edges().chunks(31).map(|c| svc.apply_batch(c)).collect();
        svc.flush().unwrap();
        // Every ticket is now fulfilled without blocking.
        for t in &tickets {
            assert!(t.poll().unwrap().is_some());
        }
        assert_eq!(svc.epoch(), tickets.len() as Epoch);
        assert!(same_partition(svc.latest().labels(), &components(&g)));
        assert!(svc.spectrum().rebuilds >= 1);
    }

    #[test]
    fn shard_counts_do_not_change_published_labels() {
        let initial = gen::gnm(300, 400, 2);
        let stream = gen::gnm(300, 500, 4);
        let replay = |shard_count| {
            let svc = ConnectivityService::new(
                initial.clone(),
                SvcParams {
                    shard_count,
                    rebuild_threshold: 96,
                    ..SvcParams::default()
                },
            );
            let mut per_epoch = Vec::new();
            for chunk in stream.edges().chunks(13) {
                svc.apply_batch(chunk).wait().unwrap();
                per_epoch.push(svc.latest().labels().to_vec());
            }
            per_epoch
        };
        let one = replay(1);
        assert_eq!(one, replay(3));
        assert_eq!(one, replay(8));
        assert_eq!(one, replay(1024));
    }

    #[test]
    fn cross_unions_accumulate_deterministically() {
        // 2 shards of 2: (0,2) and (1,3) cross, (0,1) and (2,3) do not.
        let mk = || {
            let svc = ConnectivityService::new(
                GraphBuilder::new(4).build(),
                SvcParams {
                    shard_count: 2,
                    ..SvcParams::default()
                },
            );
            svc.apply_batch(&[(0, 2), (0, 1)]).wait().unwrap();
            svc.apply_batch(&[(1, 3), (2, 3)]).wait().unwrap();
            let sp = svc.spectrum();
            (sp.shards, sp.cross_unions)
        };
        assert_eq!(mk(), (2, 2));
        assert_eq!(mk(), (2, 2));
    }

    #[test]
    fn metrics_populate_commit_pipeline_histograms_and_events() {
        let svc = svc(GraphBuilder::new(16).build(), 4);
        for i in 0..8u32 {
            svc.apply_batch(&[(i, i + 8)]).wait().unwrap();
        }
        let m = svc.metrics();
        m.validate().unwrap();
        assert_eq!(m.counters["svc_commits_total"], 8);
        assert_eq!(m.histograms["svc_dedup_ns"].count, 8);
        assert_eq!(m.histograms["svc_absorb_ns"].count, 8);
        assert_eq!(m.histograms["svc_cross_drain_ns"].count, 8);
        assert_eq!(m.histograms["svc_snapshot_publish_ns"].count, 8);
        assert_eq!(m.histograms["svc_enqueue_wait_ns"].count, 8);
        // 8 distinct edges at threshold 4 → two folds, each counted and
        // span-timed.
        assert_eq!(m.counters["svc_folds_total"], 2);
        assert_eq!(m.histograms["svc_fold_ns"].count, 2);
        // The commit span also landed in the event ring.
        let events = svc.obs().drain_events();
        assert!(events.iter().any(|e| e.name == "svc_commit_ns"));
        // Memory-only service: the WAL counters exist (pre-registered,
        // schema-stable) but never move.
        assert_eq!(m.counters["svc_wal_records_total"], 0);
        assert_eq!(m.histograms["svc_wal_append_ns"].count, 0);
        // Exporters work end-to-end on a live service snapshot.
        assert!(m.to_json().contains("\"svc_commits_total\":8"));
        assert!(m
            .to_prometheus()
            .contains("# TYPE svc_commits_total counter"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_batch_edge_panics_on_the_caller() {
        let svc = svc(gen::path(3), 8);
        let _ = svc.apply_batch(&[(0, 3)]);
    }
}
