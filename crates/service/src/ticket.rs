//! Epoch tickets: the caller's handle on an enqueued-but-not-yet-committed
//! batch.
//!
//! [`ConnectivityService::apply_batch`](crate::ConnectivityService::apply_batch)
//! returns immediately after enqueuing the batch on the writer's command
//! channel; the [`EpochTicket`] it hands back is fulfilled by the writer
//! thread at commit time, after the epoch's [`Snapshot`](crate::Snapshot)
//! is published. A fulfilled ticket therefore guarantees the epoch is
//! queryable (until it falls off the bounded history ring).
//!
//! A ticket resolves exactly once, to one of two ends: the committed
//! epoch, or [`WriterDead`] when the writer thread died (contained panic)
//! before this batch could commit. It never hangs: a dead writer keeps
//! draining its channel and poisons every ticket it dequeues.

use crate::{Epoch, WriterDead};
use std::sync::{Arc, Condvar, Mutex};

type TicketState = Option<Result<Epoch, WriterDead>>;

/// Shared slot the writer fulfills (or poisons) at commit time.
#[derive(Debug)]
pub(crate) struct TicketCell {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl TicketCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketCell {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Writer side: record the committed epoch and wake every waiter.
    /// Called exactly once per ticket, *after* the snapshot is published.
    pub(crate) fn fulfill(&self, epoch: Epoch) {
        let mut slot = self.state.lock().expect("ticket poisoned");
        debug_assert!(slot.is_none(), "ticket fulfilled twice");
        *slot = Some(Ok(epoch));
        self.cv.notify_all();
    }

    /// Writer side: the batch will never commit — the writer died first.
    /// A no-op on an already-fulfilled ticket (a committed epoch stays
    /// committed even if the writer dies on a later batch).
    pub(crate) fn poison(&self, err: WriterDead) {
        let mut slot = self.state.lock().expect("ticket poisoned");
        if slot.is_none() {
            *slot = Some(Err(err));
            self.cv.notify_all();
        }
    }
}

/// A claim on a future epoch: returned by
/// [`apply_batch`](crate::ConnectivityService::apply_batch) at enqueue
/// time, fulfilled by the writer thread when the batch commits.
///
/// Epoch numbers are assigned by the writer in dequeue order, so tickets
/// from one caller resolve in the order the batches were enqueued. The
/// ticket outlives the service handle: batches already enqueued when the
/// handle drops are still drained, committed, and fulfilled before the
/// writer exits. A [`wait`](EpochTicket::wait) never hangs — if the
/// writer thread dies (contained panic, including a durable-storage
/// failure), the ticket resolves to [`WriterDead`] instead.
///
/// ```
/// use cc_graph::gen;
/// use logdiam_svc::{ConnectivityService, SvcParams};
///
/// let svc = ConnectivityService::new(gen::path(8), SvcParams::default());
/// let ticket = svc.apply_batch(&[(0, 7)]); // enqueue only: returns fast
/// let epoch = ticket.wait().unwrap();      // block until committed
/// assert!(svc.query(0, 7, epoch).unwrap());
/// ```
#[derive(Debug)]
#[must_use = "an unawaited ticket gives no ordering guarantee; call wait() or poll()"]
pub struct EpochTicket {
    cell: Arc<TicketCell>,
}

impl EpochTicket {
    pub(crate) fn new(cell: Arc<TicketCell>) -> Self {
        EpochTicket { cell }
    }

    /// Non-blocking probe: `Ok(Some(epoch))` once the batch has committed
    /// and its snapshot is published, `Ok(None)` while it is still queued
    /// or in flight, `Err(WriterDead)` if the writer died before this
    /// batch committed.
    pub fn poll(&self) -> Result<Option<Epoch>, WriterDead> {
        match &*self.cell.state.lock().expect("ticket poisoned") {
            None => Ok(None),
            Some(Ok(epoch)) => Ok(Some(*epoch)),
            Some(Err(dead)) => Err(dead.clone()),
        }
    }

    /// Block until the batch commits (returning the epoch it was
    /// assigned) or the writer dies (returning [`WriterDead`]).
    ///
    /// On success the epoch's snapshot is published before the ticket is
    /// fulfilled, so an immediate
    /// [`query`](crate::ConnectivityService::query) at the returned epoch
    /// succeeds — unless later commits have already pushed it off the
    /// history ring (see
    /// [`EpochError::Evicted`](crate::EpochError::Evicted)).
    pub fn wait(&self) -> Result<Epoch, WriterDead> {
        let mut slot = self.cell.state.lock().expect("ticket poisoned");
        loop {
            match &*slot {
                Some(Ok(epoch)) => return Ok(*epoch),
                Some(Err(dead)) => return Err(dead.clone()),
                None => slot = self.cv_wait(slot),
            }
        }
    }

    fn cv_wait<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, TicketState>,
    ) -> std::sync::MutexGuard<'a, TicketState> {
        self.cell.cv.wait(guard).expect("ticket poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_then_fulfill_then_wait() {
        let cell = TicketCell::new();
        let ticket = EpochTicket::new(cell.clone());
        assert_eq!(ticket.poll().unwrap(), None);
        cell.fulfill(7);
        assert_eq!(ticket.poll().unwrap(), Some(7));
        assert_eq!(ticket.wait().unwrap(), 7);
    }

    #[test]
    fn wait_blocks_until_fulfilled_from_another_thread() {
        let cell = TicketCell::new();
        let ticket = EpochTicket::new(cell.clone());
        let t = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.fulfill(3);
        assert_eq!(t.join().unwrap().unwrap(), 3);
    }

    #[test]
    fn poison_resolves_wait_and_poll_with_the_payload() {
        let cell = TicketCell::new();
        let ticket = EpochTicket::new(cell.clone());
        let t = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.poison(crate::WriterDead::new("boom".into()));
        let err = t.join().unwrap().unwrap_err();
        assert_eq!(err.payload(), "boom");
        let ticket = EpochTicket::new(cell);
        assert_eq!(ticket.poll().unwrap_err().payload(), "boom");
    }

    #[test]
    fn poison_after_fulfill_is_a_no_op() {
        let cell = TicketCell::new();
        let ticket = EpochTicket::new(cell.clone());
        cell.fulfill(5);
        cell.poison(crate::WriterDead::new("late".into()));
        assert_eq!(ticket.wait().unwrap(), 5);
    }
}
