//! Epoch tickets: the caller's handle on an enqueued-but-not-yet-committed
//! batch.
//!
//! [`ConnectivityService::apply_batch`](crate::ConnectivityService::apply_batch)
//! returns immediately after enqueuing the batch on the writer's command
//! channel; the [`EpochTicket`] it hands back is fulfilled by the writer
//! thread at commit time, after the epoch's [`Snapshot`](crate::Snapshot)
//! is published. A fulfilled ticket therefore guarantees the epoch is
//! queryable (until it falls off the bounded history ring).

use crate::Epoch;
use std::sync::{Arc, Condvar, Mutex};

/// Shared slot the writer fulfills at commit time.
#[derive(Debug)]
pub(crate) struct TicketCell {
    state: Mutex<Option<Epoch>>,
    cv: Condvar,
}

impl TicketCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(TicketCell {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Writer side: record the committed epoch and wake every waiter.
    /// Called exactly once per ticket, *after* the snapshot is published.
    pub(crate) fn fulfill(&self, epoch: Epoch) {
        let mut slot = self.state.lock().expect("ticket poisoned");
        debug_assert!(slot.is_none(), "ticket fulfilled twice");
        *slot = Some(epoch);
        self.cv.notify_all();
    }
}

/// A claim on a future epoch: returned by
/// [`apply_batch`](crate::ConnectivityService::apply_batch) at enqueue
/// time, fulfilled by the writer thread when the batch commits.
///
/// Epoch numbers are assigned by the writer in dequeue order, so tickets
/// from one caller resolve in the order the batches were enqueued. The
/// ticket outlives the service handle: batches already enqueued when the
/// handle drops are still drained, committed, and fulfilled before the
/// writer exits, so a [`wait`](EpochTicket::wait) on a live writer never
/// hangs.
///
/// ```
/// use cc_graph::gen;
/// use logdiam_svc::{ConnectivityService, SvcParams};
///
/// let svc = ConnectivityService::new(gen::path(8), SvcParams::default());
/// let ticket = svc.apply_batch(&[(0, 7)]); // enqueue only: returns fast
/// let epoch = ticket.wait();               // block until committed
/// assert!(svc.query(0, 7, epoch).unwrap());
/// ```
#[derive(Debug)]
#[must_use = "an unawaited ticket gives no ordering guarantee; call wait() or poll()"]
pub struct EpochTicket {
    cell: Arc<TicketCell>,
}

impl EpochTicket {
    pub(crate) fn new(cell: Arc<TicketCell>) -> Self {
        EpochTicket { cell }
    }

    /// Non-blocking probe: `Some(epoch)` once the batch has committed and
    /// its snapshot is published, `None` while it is still queued or
    /// in flight.
    pub fn poll(&self) -> Option<Epoch> {
        *self.cell.state.lock().expect("ticket poisoned")
    }

    /// Block until the batch commits; returns the epoch it was assigned.
    /// The epoch's snapshot is published before the ticket is fulfilled,
    /// so an immediate [`query`](crate::ConnectivityService::query) at the
    /// returned epoch succeeds — unless later commits have already pushed
    /// it off the history ring (see
    /// [`EpochError::Evicted`](crate::EpochError::Evicted)).
    pub fn wait(&self) -> Epoch {
        let mut slot = self.cell.state.lock().expect("ticket poisoned");
        loop {
            if let Some(epoch) = *slot {
                return epoch;
            }
            slot = self.cv_wait(slot);
        }
    }

    fn cv_wait<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, Option<Epoch>>,
    ) -> std::sync::MutexGuard<'a, Option<Epoch>> {
        self.cell.cv.wait(guard).expect("ticket poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_then_fulfill_then_wait() {
        let cell = TicketCell::new();
        let ticket = EpochTicket::new(cell.clone());
        assert_eq!(ticket.poll(), None);
        cell.fulfill(7);
        assert_eq!(ticket.poll(), Some(7));
        assert_eq!(ticket.wait(), 7);
    }

    #[test]
    fn wait_blocks_until_fulfilled_from_another_thread() {
        let cell = TicketCell::new();
        let ticket = EpochTicket::new(cell.clone());
        let t = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        cell.fulfill(3);
        assert_eq!(t.join().unwrap(), 3);
    }
}
