//! The sharded delta overlay: a global union–find whose batch absorption
//! is partitioned by vertex range.
//!
//! Edges whose endpoints fall in the same shard are bucketed per shard and
//! absorbed in parallel — one pool task per shard, each draining its
//! bucket sequentially ([`UnionFind::absorb_sharded`]), so a contended
//! batch costs `shard_count` task dispatches instead of a per-edge
//! fan-out and each task's finds stay range-local in the common case.
//! Edges that *cross* shards are buffered on the shard of their smaller
//! endpoint and drained by the writer in **one sequential pass per
//! commit** — cross-shard traffic, not total `n`, is what the drain pays
//! for, and the deterministic drain order means the per-commit union
//! schedule is a pure function of the batch.
//!
//! Correctness does not depend on the partition at all: the parent array
//! is one global id-decreasing CAS forest, so any interleaving of the
//! shard tasks yields the same components, and
//! [`labels`](ShardedOverlay::labels) canonicalizes to min-vertex
//! representatives. Shard count is therefore a pure performance knob —
//! per-epoch label fingerprints are identical for any
//! [`SvcParams::shard_count`](crate::SvcParams::shard_count) at any
//! thread count (pinned by the workspace determinism suite).

use logdiam_par::UnionFind;

/// The writer-owned overlay: shard-partitioned absorption over one global
/// resumable union–find.
pub(crate) struct ShardedOverlay {
    uf: UnionFind,
    shard_size: usize,
    /// Per-shard buckets of intra-shard edges; reused across commits.
    intra: Vec<Vec<(u32, u32)>>,
    /// Per-shard pending cross-shard unions (keyed by the smaller
    /// endpoint's shard), drained once per commit; reused across commits.
    pending: Vec<Vec<(u32, u32)>>,
    /// Cross-shard unions drained over this overlay's lifetime.
    cross_unions: u64,
}

impl ShardedOverlay {
    /// A fresh singleton overlay over `n` vertices in `shard_count`
    /// ranges of `ceil(n / shard_count)` vertices each.
    #[cfg(test)]
    pub(crate) fn new(n: usize, shard_count: usize) -> Self {
        Self::with_uf(UnionFind::new(n), n, shard_count)
    }

    /// Resume from a component labeling (the last full recompute's), as
    /// [`UnionFind::from_labels`] — used both at service start and at the
    /// atomic swap that retires an overlay after a background rebuild.
    pub(crate) fn from_labels(labels: &[u32], shard_count: usize) -> Self {
        Self::with_uf(UnionFind::from_labels(labels), labels.len(), shard_count)
    }

    fn with_uf(uf: UnionFind, n: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let shard_size = n.div_ceil(shard_count).max(1);
        ShardedOverlay {
            uf,
            shard_size,
            intra: vec![Vec::new(); shard_count],
            pending: vec![Vec::new(); shard_count],
            cross_unions: 0,
        }
    }

    fn shard_of(&self, v: u32) -> usize {
        v as usize / self.shard_size
    }

    /// Absorb one batch: partition by shard, parallel intra-shard
    /// absorption, then drain the cross-shard pending lists in one
    /// sequential pass. On return every union in `edges` is applied (the
    /// buffering is within-commit, never across commits), so the labels
    /// sealed into the epoch's snapshot are complete. Returns the number
    /// of cross-shard unions drained — a pure function of the batch and
    /// the shard geometry, so callers may fold it into deterministic
    /// statistics.
    pub(crate) fn absorb(&mut self, edges: &[(u32, u32)]) -> u64 {
        if edges.is_empty() {
            return 0;
        }
        self.partition(edges);
        self.absorb_intra();
        self.drain_cross()
    }

    /// Same semantics as [`absorb`](ShardedOverlay::absorb), but each
    /// stage is timed into the given histograms (nanoseconds) — the
    /// writer's instrumented commit path. The timing is host-side only;
    /// the union schedule is identical to the untimed path.
    pub(crate) fn absorb_timed(
        &mut self,
        edges: &[(u32, u32)],
        intra_ns: &logdiam_obs::Histogram,
        drain_ns: &logdiam_obs::Histogram,
    ) -> u64 {
        if edges.is_empty() {
            return 0;
        }
        self.partition(edges);
        let t = std::time::Instant::now();
        self.absorb_intra();
        intra_ns.observe_duration(t.elapsed());
        let t = std::time::Instant::now();
        let cross = self.drain_cross();
        drain_ns.observe_duration(t.elapsed());
        cross
    }

    /// Bucket a batch by shard: intra-shard edges per shard, cross-shard
    /// edges on the shard of their smaller endpoint.
    fn partition(&mut self, edges: &[(u32, u32)]) {
        for &(u, v) in edges {
            let (su, sv) = (self.shard_of(u), self.shard_of(v));
            if su == sv {
                self.intra[su].push((u, v));
            } else {
                self.pending[su.min(sv)].push((u, v));
            }
        }
    }

    /// Parallel intra-shard absorption: one pool task per shard.
    fn absorb_intra(&mut self) {
        self.uf.absorb_sharded(&self.intra);
        for bucket in &mut self.intra {
            bucket.clear();
        }
    }

    /// The charged cross-shard pass: one drain per commit, sequential
    /// and in deterministic (shard-major, arrival-order) order.
    fn drain_cross(&mut self) -> u64 {
        let mut cross = 0u64;
        for bucket in &mut self.pending {
            cross += bucket.len() as u64;
            self.uf.absorb_seq(bucket);
            bucket.clear();
        }
        self.cross_unions += cross;
        cross
    }

    /// Canonical min-vertex labels of the current partition.
    pub(crate) fn labels(&self) -> Vec<u32> {
        self.uf.labels()
    }

    /// Shard count this overlay partitions over.
    pub(crate) fn shard_count(&self) -> usize {
        self.intra.len()
    }

    /// Cross-shard unions drained since this overlay was built.
    #[cfg(test)]
    pub(crate) fn cross_unions(&self) -> u64 {
        self.cross_unions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, seq};

    #[test]
    fn sharded_absorb_matches_ground_truth_for_any_shard_count() {
        let g = gen::union_all(&[gen::gnm(400, 900, 3), gen::path(200)]);
        let truth = seq::components(&g);
        for shard_count in [1, 2, 3, 8, 64, 1024] {
            let mut ov = ShardedOverlay::new(g.n(), shard_count);
            for chunk in g.edges().chunks(37) {
                ov.absorb(chunk);
            }
            assert!(
                seq::same_partition(&ov.labels(), &truth),
                "shard_count={shard_count}"
            );
            assert_eq!(ov.shard_count(), shard_count);
        }
    }

    #[test]
    fn labels_identical_across_shard_counts() {
        let g = gen::gnm(600, 1400, 9);
        let base: Vec<Vec<u32>> = [1usize, 4, 16]
            .iter()
            .map(|&s| {
                let mut ov = ShardedOverlay::new(g.n(), s);
                ov.absorb(g.edges());
                ov.labels()
            })
            .collect();
        assert_eq!(base[0], base[1]);
        assert_eq!(base[0], base[2]);
    }

    #[test]
    fn cross_unions_counts_only_range_crossing_edges() {
        // 8 vertices, 2 shards of 4: (0,1) intra, (1,6) cross, (6,7) intra.
        let mut ov = ShardedOverlay::new(8, 2);
        ov.absorb(&[(0, 1), (1, 6), (6, 7)]);
        assert_eq!(ov.cross_unions(), 1);
        assert_eq!(ov.labels(), vec![0, 0, 2, 3, 4, 5, 0, 0]);
    }

    #[test]
    fn absorb_timed_matches_absorb_and_records_both_stages() {
        let g = gen::gnm(200, 500, 11);
        let mut plain = ShardedOverlay::new(g.n(), 4);
        let mut timed = ShardedOverlay::new(g.n(), 4);
        let intra = logdiam_obs::Histogram::default();
        let drain = logdiam_obs::Histogram::default();
        let mut chunks = 0u64;
        for chunk in g.edges().chunks(41) {
            let a = plain.absorb(chunk);
            let b = timed.absorb_timed(chunk, &intra, &drain);
            assert_eq!(a, b);
            chunks += 1;
        }
        assert_eq!(plain.labels(), timed.labels());
        assert_eq!(intra.count(), chunks, "one intra timing per batch");
        assert_eq!(drain.count(), chunks, "one drain timing per batch");
    }

    #[test]
    fn from_labels_resumes_and_more_shards_than_vertices_is_fine() {
        let labels = vec![0, 0, 2, 2, 4];
        let mut ov = ShardedOverlay::from_labels(&labels, 64);
        ov.absorb(&[(1, 4)]);
        assert_eq!(ov.labels(), vec![0, 0, 2, 2, 0]);
    }
}
