//! The write-ahead edge log: an append-only file of normalized edge
//! batches, one record per epoch.
//!
//! # File format
//!
//! A 16-byte header (`LDIAMWAL`, format version, vertex count) followed
//! by records. Every record is length-prefixed and checksummed:
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload = [epoch: u64 LE] [count: u32 LE] [count × (u: u32 LE, v: u32 LE)]
//! ```
//!
//! The payload is the *handle-normalized* batch (endpoints validated,
//! self-loops dropped) exactly as the writer dequeued it — the stateful
//! half of normalization (dedup against the base CSR and earlier
//! batches) is deliberately **not** applied before logging, so replaying
//! a record through the ordinary commit path reproduces the original
//! commit bit-for-bit, including the dedup decisions.
//!
//! # Torn tails
//!
//! The writer appends a record *before* applying the batch, so a crash
//! can leave a partially written final record. [`Wal::open`] scans the
//! file from the header, validating each record's length bound, CRC,
//! payload shape, and epoch density; the scan stops at the first invalid
//! byte and the file is truncated there — a torn or corrupted tail
//! silently rolls the log back to its last fully durable record. (A
//! flipped byte in the *middle* of the log therefore discards everything
//! after it: record boundaries downstream of a corruption are
//! untrustworthy, so recovery keeps the longest clean prefix.)

use crate::{Edge, Epoch, PersistError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File-format magic for the WAL header.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"LDIAMWAL";
/// WAL format version this build reads and writes.
pub(crate) const WAL_VERSION: u32 = 1;
/// Header bytes: magic + version + vertex count.
pub(crate) const WAL_HEADER_LEN: u64 = 16;
/// Bytes of record framing before the payload (len + crc).
const FRAME_LEN: usize = 8;
/// Payload bytes before the edge pairs (epoch + count).
const PAYLOAD_PREFIX: usize = 12;

/// CRC-32 (IEEE 802.3, reflected) over a byte slice — the checksum used
/// by both the WAL records and the snapshot/genesis files. Table-free
/// bitwise form: ~0.5 GB/s, plenty for batch-sized payloads, and zero
/// state to get wrong.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One valid record recovered from a WAL scan.
#[derive(Debug, Clone)]
pub(crate) struct WalRecord {
    /// The epoch this batch committed (or would have committed) as.
    pub(crate) epoch: Epoch,
    /// The handle-normalized batch, exactly as enqueued.
    pub(crate) edges: Vec<Edge>,
    /// Byte offset of this record's first byte.
    pub(crate) start: u64,
    /// Byte offset one past this record's last byte.
    pub(crate) end: u64,
}

/// The result of scanning a WAL file: the longest valid record prefix.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// Valid records, epoch-dense (`records[i+1].epoch ==
    /// records[i].epoch + 1`). May start at any epoch (a reset log
    /// restarts above its snapshot's epoch).
    pub(crate) records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header included); everything at
    /// and beyond this offset is torn or corrupt and will be truncated.
    pub(crate) valid_len: u64,
}

impl WalScan {
    /// Byte offset where the record for `epoch + 1` starts (equivalently:
    /// one past the record that committed `epoch`), if the scan can name
    /// it. This is the boundary a snapshot at `epoch` must carry for its
    /// WAL tail to be replayable.
    pub(crate) fn boundary_after(&self, epoch: Epoch) -> Option<u64> {
        let first = self.records.first()?;
        if epoch + 1 == first.epoch {
            return Some(first.start);
        }
        let idx = epoch.checked_sub(first.epoch)?;
        self.records.get(idx as usize).map(|r| r.end)
    }
}

/// An open, appendable write-ahead log positioned at its valid tail.
#[derive(Debug)]
pub(crate) struct Wal {
    file: File,
    /// Current end of the valid log (= next append offset).
    len: u64,
    /// Appends since the last fsync (for
    /// [`FsyncPolicy::Batch`](crate::FsyncPolicy::Batch)).
    unsynced: u32,
}

impl Wal {
    /// Create a fresh WAL at `path` with only the header. Fails if the
    /// file already exists (a durable dir is created exactly once).
    pub(crate) fn create(path: &Path, n: usize) -> Result<Self, PersistError> {
        let mut file = OpenOptions::new()
            .write(true)
            .read(true)
            .create_new(true)
            .open(path)?;
        file.write_all(&header_bytes(n))?;
        Ok(Wal {
            file,
            len: WAL_HEADER_LEN,
            unsynced: 0,
        })
    }

    /// Open an existing WAL, scan its valid prefix, and truncate any torn
    /// or corrupt tail so the next append lands at the valid end. A file
    /// shorter than its own header (including zero-length: a crash before
    /// the header hit the disk) is rebuilt as an empty log — there cannot
    /// have been a durable record in it.
    pub(crate) fn open(path: &Path, n: usize) -> Result<(Self, WalScan), PersistError> {
        let mut file = OpenOptions::new().write(true).read(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if (bytes.len() as u64) < WAL_HEADER_LEN {
            // Torn header: rewrite it; the log is empty.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header_bytes(n))?;
            return Ok((
                Wal {
                    file,
                    len: WAL_HEADER_LEN,
                    unsynced: 0,
                },
                WalScan {
                    records: Vec::new(),
                    valid_len: WAL_HEADER_LEN,
                },
            ));
        }
        if &bytes[..8] != WAL_MAGIC {
            return Err(PersistError::Corrupt(format!(
                "{}: bad WAL magic",
                path.display()
            )));
        }
        let version = u32_at(&bytes, 8);
        if version != WAL_VERSION {
            return Err(PersistError::Corrupt(format!(
                "{}: WAL format version {version}, expected {WAL_VERSION}",
                path.display()
            )));
        }
        let wal_n = u32_at(&bytes, 12) as usize;
        if wal_n != n {
            return Err(PersistError::Corrupt(format!(
                "{}: WAL is over {wal_n} vertices, expected {n}",
                path.display()
            )));
        }
        let scan = scan_records(&bytes, n);
        if scan.valid_len < bytes.len() as u64 {
            file.set_len(scan.valid_len)?;
        }
        file.seek(SeekFrom::Start(scan.valid_len))?;
        let wal = Wal {
            file,
            len: scan.valid_len,
            unsynced: 0,
        };
        Ok((wal, scan))
    }

    /// Discard every record (keeping the header): used when recovery
    /// accepted a snapshot the surviving log cannot extend (e.g. the log
    /// was destroyed down to zero bytes). The next record may then start
    /// at any epoch.
    pub(crate) fn reset(&mut self) -> Result<(), PersistError> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        self.len = WAL_HEADER_LEN;
        self.unsynced = 0;
        Ok(())
    }

    /// Append one record. The caller syncs separately (per its fsync
    /// policy) via [`Wal::sync`].
    pub(crate) fn append(&mut self, epoch: Epoch, edges: &[Edge]) -> Result<(), PersistError> {
        let mut payload = Vec::with_capacity(PAYLOAD_PREFIX + 8 * edges.len());
        payload.extend_from_slice(&epoch.to_le_bytes());
        payload.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for &(u, v) in edges {
            payload.extend_from_slice(&u.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut rec = Vec::with_capacity(FRAME_LEN + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        self.file.write_all(&rec)?;
        self.len += rec.len() as u64;
        self.unsynced += 1;
        Ok(())
    }

    /// Flush OS buffers to stable storage (`fdatasync`). Resets the
    /// batch-policy append counter.
    pub(crate) fn sync(&mut self) -> Result<(), PersistError> {
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Appends since the last [`Wal::sync`].
    pub(crate) fn unsynced(&self) -> u32 {
        self.unsynced
    }

    /// Current byte length of the valid log (= the offset the next record
    /// will start at).
    pub(crate) fn len(&self) -> u64 {
        self.len
    }
}

fn header_bytes(n: usize) -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&(n as u32).to_le_bytes());
    h
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Walk records from the header to the first invalid byte. Every check
/// that fails — short frame, length bound, CRC, malformed payload,
/// out-of-range endpoint, non-dense epoch — ends the valid prefix there.
fn scan_records(bytes: &[u8], n: usize) -> WalScan {
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN as usize;
    let mut expect_epoch: Option<Epoch> = None;
    while bytes.len() - at >= FRAME_LEN {
        let len = u32_at(bytes, at) as usize;
        let crc = u32_at(bytes, at + 4);
        let payload_at = at + FRAME_LEN;
        if len < PAYLOAD_PREFIX || len > bytes.len() - payload_at {
            break;
        }
        let payload = &bytes[payload_at..payload_at + len];
        if crc32(payload) != crc {
            break;
        }
        let epoch = u64_at(payload, 0);
        let count = u32_at(payload, 8) as usize;
        if len != PAYLOAD_PREFIX + 8 * count {
            break;
        }
        if let Some(e) = expect_epoch {
            if epoch != e {
                break;
            }
        }
        let mut edges = Vec::with_capacity(count);
        let mut ok = true;
        for i in 0..count {
            let u = u32_at(payload, PAYLOAD_PREFIX + 8 * i);
            let v = u32_at(payload, PAYLOAD_PREFIX + 8 * i + 4);
            if u as usize >= n || v as usize >= n {
                ok = false;
                break;
            }
            edges.push((u, v));
        }
        if !ok {
            break;
        }
        let end = (payload_at + len) as u64;
        records.push(WalRecord {
            epoch,
            edges,
            start: at as u64,
            end,
        });
        expect_epoch = Some(epoch + 1);
        at = end as usize;
    }
    WalScan {
        records,
        valid_len: at as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("logdiam_wal_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.bin")
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 reference values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::create(&path, 10).unwrap();
        wal.append(1, &[(0, 1), (2, 3)]).unwrap();
        wal.append(2, &[]).unwrap();
        wal.append(3, &[(9, 0)]).unwrap();
        wal.sync().unwrap();
        let end = wal.len();
        drop(wal);
        let (wal, scan) = Wal::open(&path, 10).unwrap();
        assert_eq!(scan.valid_len, end);
        assert_eq!(wal.len(), end);
        let epochs: Vec<_> = scan.records.iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3]);
        assert_eq!(scan.records[0].edges, vec![(0, 1), (2, 3)]);
        assert_eq!(scan.records[1].edges, vec![]);
        assert_eq!(scan.boundary_after(0), Some(scan.records[0].start));
        assert_eq!(scan.boundary_after(1), Some(scan.records[0].end));
        assert_eq!(scan.boundary_after(3), Some(scan.records[2].end));
        assert_eq!(scan.boundary_after(4), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncates_to_last_valid_record() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::create(&path, 8).unwrap();
        wal.append(1, &[(0, 1)]).unwrap();
        wal.append(2, &[(2, 3), (4, 5)]).unwrap();
        let keep = {
            let (_, scan) = {
                drop(wal);
                Wal::open(&path, 8).unwrap()
            };
            scan.records[0].end
        };
        // Chop mid-way through record 2; reopen must truncate to record 1.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..keep as usize + 5]).unwrap();
        let (wal, scan) = Wal::open(&path, 8).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep);
        assert_eq!(wal.len(), keep);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_length_file_reopens_empty() {
        let path = tmp("zero");
        std::fs::remove_file(&path).ok();
        std::fs::write(&path, b"").unwrap();
        let (wal, scan) = Wal::open(&path, 4).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(wal.len(), WAL_HEADER_LEN);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vertex_count_mismatch_is_corrupt_not_torn() {
        let path = tmp("nmismatch");
        std::fs::remove_file(&path).ok();
        Wal::create(&path, 4).unwrap();
        match Wal::open(&path, 5) {
            Err(PersistError::Corrupt(msg)) => assert!(msg.contains("vertices")),
            other => panic!("expected corrupt error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_endpoint_ends_the_valid_prefix() {
        let path = tmp("range");
        std::fs::remove_file(&path).ok();
        let mut wal = Wal::create(&path, 100).unwrap();
        wal.append(1, &[(0, 98)]).unwrap();
        wal.append(2, &[(7, 99)]).unwrap();
        drop(wal);
        // Reopen claiming fewer vertices than record 2 uses: the header
        // check fires first, so rewrite the header to n=99 instead.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12..16].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let (_, scan) = Wal::open(&path, 99).unwrap();
        assert_eq!(scan.records.len(), 1, "record with endpoint 99 must drop");
        std::fs::remove_file(&path).ok();
    }
}
