//! # `logdiam-svc` — an incremental connectivity service
//!
//! The first subsystem in the workspace that owns *mutable* connectivity
//! state. Every other entry point is one-shot over a static CSR graph;
//! [`ConnectivityService`] instead maintains a component labeling under a
//! stream of batched edge insertions and answers connectivity queries
//! against published, immutable snapshots.
//!
//! The design is the hybrid the companion literature motivates:
//!
//! * **Fast incremental absorption** — each [`apply_batch`] folds its
//!   edges into an *epoch delta overlay*: a concurrent union–find
//!   ([`logdiam_par::UnionFind`], CAS root splicing on the vendored rayon
//!   pool) resumed from the last full recompute, in the spirit of
//!   Liu–Tarjan's concurrent label-update rules — cheap rules absorb
//!   incremental edges between full recomputes.
//! * **Periodic log-diameter rebuild** — once the overlay has accumulated
//!   [`SvcParams::rebuild_threshold`] distinct new edges, the deltas are
//!   folded into a fresh CSR ([`cc_graph::Graph::from_csr_plus_edges`])
//!   and a full recompute runs on a selectable [`RebuildBackend`]: the
//!   practical concurrent union–find, or the paper's Theorem-3
//!   `faster_cc` on a simulated CRCW PRAM.
//! * **Epoch-versioned reads** — every batch commit publishes an
//!   immutable [`Snapshot`] (canonical min-vertex labels plus a
//!   [`Spectrum`] of component statistics). Queries clone an `Arc` to a
//!   published snapshot and never touch the writer's mutex, so reads
//!   proceed while a batch commits; a bounded history ring
//!   ([`SvcParams::snapshot_history`]) keeps recent epochs addressable.
//!
//! Label canonicalization makes the service deterministic: for a fixed
//! replay (initial graph + batch sequence), every epoch's labels are
//! identical at any thread count and for either rebuild backend.
//!
//! ```
//! use cc_graph::gen;
//! use logdiam_svc::{ConnectivityService, SvcParams};
//!
//! let svc = ConnectivityService::new(gen::path(10), SvcParams::default());
//! assert!(svc.query_latest(0, 9));
//! let e = svc.apply_batch(&[(3, 7)]); // already connected: labels stable
//! assert_eq!(svc.component_of(9), 0);
//! assert!(svc.query(0, 9, e).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod service;
mod snapshot;

pub use service::ConnectivityService;
pub use snapshot::{Snapshot, Spectrum};

/// An undirected edge request: endpoints in either order, self-loops
/// tolerated (and dropped).
pub type Edge = (u32, u32);

/// A monotone version number: epoch `e` is the state after the `e`-th
/// [`ConnectivityService::apply_batch`] commit (epoch 0 is the initial
/// graph).
pub type Epoch = u64;

/// Which full-recompute algorithm a rebuild runs once the delta overlay
/// exceeds its threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildBackend {
    /// The practical lock-free concurrent union–find
    /// ([`logdiam_par::unionfind::unionfind_cc`]): the fast default.
    UnionFind,
    /// The paper's Theorem-3 EXPAND–MAXLINK algorithm (`faster_cc`) on a
    /// seeded-ARBITRARY simulated CRCW PRAM — orders of magnitude slower
    /// per rebuild, but routes the service's maintenance path through the
    /// reproduction itself.
    FasterSim {
        /// Seed for the simulated machine and the algorithm's hash draws.
        seed: u64,
    },
}

/// Tuning knobs for [`ConnectivityService`].
#[derive(Clone, Copy, Debug)]
pub struct SvcParams {
    /// Rebuild backend (default: [`RebuildBackend::UnionFind`]).
    pub backend: RebuildBackend,
    /// Distinct new (not in the base graph, not previously absorbed)
    /// edges the delta overlay may accumulate before a commit triggers a
    /// full rebuild.
    pub rebuild_threshold: usize,
    /// How many recent epoch snapshots stay addressable by
    /// [`ConnectivityService::query`]; older epochs are evicted
    /// ([`EpochError::Evicted`]). At least 1 (the latest snapshot is
    /// always kept).
    pub snapshot_history: usize,
}

impl Default for SvcParams {
    fn default() -> Self {
        SvcParams {
            backend: RebuildBackend::UnionFind,
            rebuild_threshold: 4096,
            snapshot_history: 8,
        }
    }
}

/// Why an epoch-addressed read could not be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochError {
    /// The epoch has not been committed yet.
    Future {
        /// The epoch the caller asked for.
        requested: Epoch,
        /// The newest committed epoch.
        latest: Epoch,
    },
    /// The epoch fell out of the bounded snapshot history.
    Evicted {
        /// The epoch the caller asked for.
        requested: Epoch,
        /// The oldest epoch still retained.
        oldest: Epoch,
    },
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EpochError::Future { requested, latest } => {
                write!(
                    f,
                    "epoch {requested} not yet committed (latest is {latest})"
                )
            }
            EpochError::Evicted { requested, oldest } => {
                write!(
                    f,
                    "epoch {requested} evicted from history (oldest retained is {oldest})"
                )
            }
        }
    }
}

impl std::error::Error for EpochError {}
